//! Property-based tests for layout/stride/relayout invariants.

use memcnn_tensor::{Dim, Layout, Shape, Tensor};
use proptest::prelude::*;

fn small_shape() -> impl Strategy<Value = Shape> {
    (1usize..6, 1usize..6, 1usize..8, 1usize..8).prop_map(|(n, c, h, w)| Shape::new(n, c, h, w))
}

fn any_layout() -> impl Strategy<Value = Layout> {
    (0usize..24).prop_map(|i| Layout::all()[i])
}

proptest! {
    /// offset() is a bijection from logical coordinates onto 0..len.
    #[test]
    fn offsets_are_a_bijection(shape in small_shape(), layout in any_layout()) {
        let mut seen = vec![false; shape.len()];
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        let off = layout.offset(shape, n, c, h, w);
                        prop_assert!(off < shape.len());
                        prop_assert!(!seen[off]);
                        seen[off] = true;
                    }
                }
            }
        }
    }

    /// coords() inverts offset() everywhere.
    #[test]
    fn coords_inverts_offset(shape in small_shape(), layout in any_layout(), idx in 0usize..1000) {
        let off = idx % shape.len();
        let (n, c, h, w) = layout.coords(shape, off);
        prop_assert_eq!(layout.offset(shape, n, c, h, w), off);
    }

    /// The innermost dimension always has unit stride, and the product of
    /// stride and extent of the outermost dimension equals the tensor size.
    #[test]
    fn stride_structure(shape in small_shape(), layout in any_layout()) {
        let strides = layout.strides(shape);
        prop_assert_eq!(strides[layout.innermost().index()], 1);
        let outer = layout.outermost();
        prop_assert_eq!(strides[outer.index()] * shape.extent(outer), shape.len());
    }

    /// Relayout preserves every logical value, for arbitrary layout pairs.
    #[test]
    fn relayout_preserves_values(
        shape in small_shape(),
        src in any_layout(),
        dst in any_layout(),
        seed in 0u64..1000,
    ) {
        let t = Tensor::random(shape, src, seed);
        let u = t.to_layout(dst);
        prop_assert!(t.approx_eq(&u, 0.0));
    }

    /// Relayout round-trips bit-exactly.
    #[test]
    fn relayout_roundtrips(
        shape in small_shape(),
        src in any_layout(),
        dst in any_layout(),
        seed in 0u64..1000,
    ) {
        let t = Tensor::random(shape, src, seed);
        let back = t.to_layout(dst).to_layout(src);
        prop_assert_eq!(t.as_slice(), back.as_slice());
    }

    /// Parallel relayout agrees with the sequential reference.
    #[test]
    fn parallel_relayout_matches(
        shape in small_shape(),
        src in any_layout(),
        dst in any_layout(),
        seed in 0u64..1000,
    ) {
        let t = Tensor::random(shape, src, seed);
        let a = memcnn_tensor::relayout::relayout(&t, dst);
        let b = memcnn_tensor::relayout::relayout_parallel(&t, dst);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    /// The flattened-2D-transpose fast path agrees with the reference for
    /// the CHWN <-> NCHW pair at arbitrary shapes.
    #[test]
    fn transpose_fast_path_matches(shape in small_shape(), seed in 0u64..1000) {
        let t = Tensor::random(shape, Layout::CHWN, seed);
        let a = memcnn_tensor::relayout::relayout(&t, Layout::NCHW);
        let b = memcnn_tensor::relayout::relayout_2d_transpose(&t, Layout::NCHW);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    /// Strides scale linearly: doubling the extent of the innermost
    /// dimension doubles the strides of all dimensions outside it.
    #[test]
    fn stride_scaling(shape in small_shape(), layout in any_layout()) {
        let inner = layout.innermost();
        let doubled = shape.with_extent(inner, shape.extent(inner) * 2);
        let s1 = layout.strides(shape);
        let s2 = layout.strides(doubled);
        for d in Dim::ALL {
            if d == inner {
                prop_assert_eq!(s1[d.index()], s2[d.index()]);
            } else {
                prop_assert_eq!(s1[d.index()] * 2, s2[d.index()]);
            }
        }
    }
}
