//! Owned 4D `f32` tensors carrying shape and layout.

use crate::{relayout, Dim, Layout, Shape, TensorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// An owned, dense, `f32` 4D tensor with an explicit [`Layout`].
///
/// All public coordinates are *logical* `(n, c, h, w)` tuples; the layout
/// determines where each element lives in the backing buffer. Converting
/// between layouts is an explicit, observable operation ([`Tensor::to_layout`]),
/// mirroring the paper's treatment of layout transformation as a real kernel
/// with a real cost rather than an implicit view change.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    layout: Layout,
    /// Precomputed per-dimension strides, indexed by [`Dim::index`].
    strides: [usize; 4],
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(shape: Shape, layout: Layout) -> Tensor {
        Tensor { shape, layout, strides: layout.strides(shape), data: vec![0.0; shape.len()] }
    }

    /// A tensor filled with one value.
    pub fn full(shape: Shape, layout: Layout, value: f32) -> Tensor {
        let mut t = Tensor::zeros(shape, layout);
        t.data.fill(value);
        t
    }

    /// A tensor whose elements are a function of their logical coordinates.
    pub fn from_fn(
        shape: Shape,
        layout: Layout,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Tensor {
        let mut t = Tensor::zeros(shape, layout);
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        let off = Layout::offset_with_strides(&t.strides, n, c, h, w);
                        t.data[off] = f(n, c, h, w);
                    }
                }
            }
        }
        t
    }

    /// A tensor of uniform random values in `[-1, 1)`, deterministic in the
    /// seed. Synthetic data stands in for MNIST/CIFAR/ImageNet images: every
    /// quantity the reproduced experiments measure depends only on shapes.
    pub fn random(shape: Shape, layout: Layout, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Tensor::zeros(shape, layout);
        for v in &mut t.data {
            *v = rng.gen_range(-1.0..1.0);
        }
        t
    }

    /// Wrap an existing buffer. The buffer is interpreted in `layout` order.
    pub fn from_vec(shape: Shape, layout: Layout, data: Vec<f32>) -> Result<Tensor, TensorError> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { shape, layout, strides: layout.strides(shape), data })
    }

    /// Logical shape.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Memory layout.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Precomputed strides, indexed by [`Dim::index`].
    #[inline]
    pub fn strides(&self) -> [usize; 4] {
        self.strides
    }

    /// Stride of one logical dimension.
    #[inline]
    pub fn stride_of(&self, dim: Dim) -> usize {
        self.strides[dim.index()]
    }

    /// Flat view of the backing buffer (layout order).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the backing buffer (layout order).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Linear offset of logical coordinates in the backing buffer.
    #[inline]
    pub fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.shape.n && c < self.shape.c && h < self.shape.h && w < self.shape.w);
        Layout::offset_with_strides(&self.strides, n, c, h, w)
    }

    /// Read one element by logical coordinates.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.offset(n, c, h, w)]
    }

    /// Write one element by logical coordinates.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let off = self.offset(n, c, h, w);
        self.data[off] = value;
    }

    /// Convert to another layout (copying). Returns a clone if the layout is
    /// already the requested one.
    pub fn to_layout(&self, layout: Layout) -> Tensor {
        if layout == self.layout {
            return self.clone();
        }
        relayout::relayout(self, layout)
    }

    /// Maximum absolute element-wise difference to another tensor of the
    /// same shape (layouts may differ).
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch { expected: self.shape, actual: other.shape });
        }
        let mut max = 0f32;
        for n in 0..self.shape.n {
            for c in 0..self.shape.c {
                for h in 0..self.shape.h {
                    for w in 0..self.shape.w {
                        let d = (self.get(n, c, h, w) - other.get(n, c, h, w)).abs();
                        if d > max {
                            max = d;
                        }
                    }
                }
            }
        }
        Ok(max)
    }

    /// Whether all elements are within `tol` of another tensor's.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        matches!(self.max_abs_diff(other), Ok(d) if d <= tol)
    }

    /// Iterate elements in logical `(n, c, h, w)` order with coordinates.
    pub fn iter_logical(&self) -> impl Iterator<Item = ((usize, usize, usize, usize), f32)> + '_ {
        let shape = self.shape;
        (0..shape.n).flat_map(move |n| {
            (0..shape.c).flat_map(move |c| {
                (0..shape.h).flat_map(move |h| {
                    (0..shape.w).map(move |w| ((n, c, h, w), self.get(n, c, h, w)))
                })
            })
        })
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({} in {}, {} elements)", self.shape, self.layout, self.shape.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord_tensor(layout: Layout) -> Tensor {
        Tensor::from_fn(Shape::new(2, 3, 4, 5), layout, |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f32
        })
    }

    #[test]
    fn get_set_roundtrip_all_layouts() {
        for layout in Layout::all() {
            let mut t = Tensor::zeros(Shape::new(2, 3, 4, 5), layout);
            t.set(1, 2, 3, 4, 42.0);
            assert_eq!(t.get(1, 2, 3, 4), 42.0);
            assert_eq!(t.as_slice().iter().filter(|&&v| v == 42.0).count(), 1);
        }
    }

    #[test]
    fn from_fn_places_values_by_logical_coords() {
        for layout in [Layout::NCHW, Layout::CHWN, Layout::NHWC] {
            let t = coord_tensor(layout);
            assert_eq!(t.get(1, 2, 3, 4), 1234.0);
            assert_eq!(t.get(0, 0, 0, 0), 0.0);
        }
    }

    #[test]
    fn nchw_buffer_order_is_w_fastest() {
        let t = coord_tensor(Layout::NCHW);
        // First five elements walk W.
        assert_eq!(&t.as_slice()[..5], &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn chwn_buffer_order_is_n_fastest() {
        let t = coord_tensor(Layout::CHWN);
        // First two elements walk N.
        assert_eq!(&t.as_slice()[..2], &[0.0, 1000.0]);
    }

    #[test]
    fn to_layout_preserves_logical_values() {
        let t = coord_tensor(Layout::NCHW);
        for layout in Layout::all() {
            let u = t.to_layout(layout);
            assert_eq!(u.layout(), layout);
            assert!(t.approx_eq(&u, 0.0), "relayout to {layout} changed values");
        }
    }

    #[test]
    fn from_vec_validates_length() {
        let shape = Shape::new(1, 1, 2, 2);
        assert!(Tensor::from_vec(shape, Layout::NCHW, vec![0.0; 4]).is_ok());
        let err = Tensor::from_vec(shape, Layout::NCHW, vec![0.0; 5]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 4, actual: 5 });
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let shape = Shape::new(2, 2, 2, 2);
        let a = Tensor::random(shape, Layout::NCHW, 7);
        let b = Tensor::random(shape, Layout::NCHW, 7);
        let c = Tensor::random(shape, Layout::NCHW, 8);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Tensor::zeros(Shape::new(1, 1, 2, 2), Layout::NCHW);
        let b = Tensor::zeros(Shape::new(1, 1, 2, 3), Layout::NCHW);
        assert!(a.max_abs_diff(&b).is_err());
    }

    #[test]
    fn iter_logical_visits_every_element_once() {
        let t = coord_tensor(Layout::CHWN);
        let items: Vec<_> = t.iter_logical().collect();
        assert_eq!(items.len(), t.shape().len());
        assert_eq!(items[0], ((0, 0, 0, 0), 0.0));
        let ((n, c, h, w), v) = *items.last().unwrap();
        assert_eq!((n, c, h, w), (1, 2, 3, 4));
        assert_eq!(v, 1234.0);
    }
}
