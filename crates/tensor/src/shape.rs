//! Layout-independent tensor extents.

use crate::Dim;
use std::fmt;

/// The logical extents of a 4D tensor, independent of its memory layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Batch size.
    pub n: usize,
    /// Number of channels / feature maps.
    pub c: usize,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
}

impl Shape {
    /// Create a shape from `(n, c, h, w)` extents.
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape { n, c, h, w }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Whether the tensor holds no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes assuming `f32` elements.
    pub const fn bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f32>()
    }

    /// Extent along a logical dimension.
    #[inline]
    pub const fn extent(&self, dim: Dim) -> usize {
        match dim {
            Dim::N => self.n,
            Dim::C => self.c,
            Dim::H => self.h,
            Dim::W => self.w,
        }
    }

    /// Extents in canonical `[N, C, H, W]` order.
    pub const fn extents(&self) -> [usize; 4] {
        [self.n, self.c, self.h, self.w]
    }

    /// Shape with one extent replaced.
    pub fn with_extent(mut self, dim: Dim, value: usize) -> Self {
        match dim {
            Dim::N => self.n = value,
            Dim::C => self.c = value,
            Dim::H => self.h = value,
            Dim::W => self.w = value,
        }
        self
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{} (NxCxHxW)", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_bytes() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.bytes(), 480);
        assert!(!s.is_empty());
        assert!(Shape::new(0, 3, 4, 5).is_empty());
    }

    #[test]
    fn extent_lookup() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.extent(Dim::N), 2);
        assert_eq!(s.extent(Dim::C), 3);
        assert_eq!(s.extent(Dim::H), 4);
        assert_eq!(s.extent(Dim::W), 5);
        assert_eq!(s.extents(), [2, 3, 4, 5]);
    }

    #[test]
    fn with_extent_replaces_one() {
        let s = Shape::new(2, 3, 4, 5).with_extent(Dim::C, 7);
        assert_eq!(s, Shape::new(2, 7, 4, 5));
    }
}
