//! Layout transformation (functional implementations).
//!
//! These are the CPU counterparts of the paper's §IV.C transformation
//! kernels. The GPU access-pattern models of the same kernels — the naive
//! 4D transpose, the flattened + shared-memory-tiled version, and the
//! `float2`-vectorized version — live in `memcnn_kernels::transform`; this
//! module provides the semantics they are tested against.

use crate::{Layout, Tensor};
use rayon::prelude::*;

/// Transform a tensor into `dst_layout`, element by element, walking the
/// *destination* in linear order so writes are sequential (the analogue of
/// coalesced global stores).
pub fn relayout(src: &Tensor, dst_layout: Layout) -> Tensor {
    let shape = src.shape();
    let src_strides = src.strides();
    let src_data = src.as_slice();
    let mut out = vec![0.0f32; shape.len()];

    // Walk destination offsets in order; for each, find the logical coords
    // and read from the source.
    out.iter_mut().enumerate().for_each(|(off, slot)| {
        let (n, c, h, w) = dst_layout.coords(shape, off);
        *slot = src_data[Layout::offset_with_strides(&src_strides, n, c, h, w)];
    });

    Tensor::from_vec(shape, dst_layout, out).expect("length matches shape by construction")
}

/// Rayon-parallel version of [`relayout`]; chunks of the destination buffer
/// are filled independently.
pub fn relayout_parallel(src: &Tensor, dst_layout: Layout) -> Tensor {
    let shape = src.shape();
    let src_strides = src.strides();
    let src_data = src.as_slice();
    let mut out = vec![0.0f32; shape.len()];

    const CHUNK: usize = 4096;
    out.par_chunks_mut(CHUNK).enumerate().for_each(|(chunk_idx, chunk)| {
        let base = chunk_idx * CHUNK;
        for (i, slot) in chunk.iter_mut().enumerate() {
            let (n, c, h, w) = dst_layout.coords(shape, base + i);
            *slot = src_data[Layout::offset_with_strides(&src_strides, n, c, h, w)];
        }
    });

    Tensor::from_vec(shape, dst_layout, out).expect("length matches shape by construction")
}

/// Specialised fast path for the pair of layouts the paper's optimized
/// kernel targets: `CHWN -> NCHW` (and the reverse), exploiting the §IV.C
/// observation that after flattening `C,H,W` the operation is a plain 2D
/// transpose `[CHW][N] -> [N][CHW]`. Blocked to stay cache-resident, and
/// parallelised over destination row blocks.
pub fn relayout_2d_transpose(src: &Tensor, dst_layout: Layout) -> Tensor {
    assert!(
        src.layout().is_2d_transpose_of(&dst_layout),
        "relayout_2d_transpose requires a flattenable layout pair, got {} -> {}",
        src.layout(),
        dst_layout
    );
    let shape = src.shape();
    // The "moving" dimension travels between the outermost and innermost
    // position; the other three keep their relative order and flatten into
    // one. Rows/cols describe the flattened source matrix [rows][cols].
    let moving = if src.layout().innermost() != dst_layout.innermost() {
        // Exactly one of the two innermost dims is the mover; it is the one
        // that sits at the opposite extreme in the other layout.
        if dst_layout.position_of(src.layout().innermost()) == 0 {
            src.layout().innermost()
        } else {
            dst_layout.innermost()
        }
    } else {
        unreachable!("is_2d_transpose_of guarantees the innermost dims differ")
    };
    let (rows, cols) = if src.layout().innermost() == moving {
        (shape.len() / shape.extent(moving), shape.extent(moving))
    } else {
        (shape.extent(moving), shape.len() / shape.extent(moving))
    };
    let src_data = src.as_slice();
    let mut out = vec![0.0f32; shape.len()];

    const B: usize = 64;
    // Destination is [cols][rows]; parallelise over destination row blocks.
    out.par_chunks_mut(rows * B.min(cols)).enumerate().for_each(|(blk, chunk)| {
        let c0 = blk * B.min(cols);
        let c1 = (c0 + B.min(cols)).min(cols);
        for r0 in (0..rows).step_by(B) {
            let r1 = (r0 + B).min(rows);
            for c in c0..c1 {
                let dst_row = &mut chunk[(c - c0) * rows..(c - c0) * rows + rows];
                for r in r0..r1 {
                    dst_row[r] = src_data[r * cols + c];
                }
            }
        }
    });

    Tensor::from_vec(shape, dst_layout, out).expect("length matches shape by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn coord_tensor(layout: Layout) -> Tensor {
        Tensor::from_fn(Shape::new(4, 3, 5, 2), layout, |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f32
        })
    }

    #[test]
    fn relayout_matches_logical_values_for_all_pairs() {
        for src_layout in Layout::all() {
            let t = coord_tensor(src_layout);
            for dst_layout in [Layout::NCHW, Layout::CHWN, Layout::NHWC, Layout::HWCN] {
                let u = relayout(&t, dst_layout);
                assert!(t.approx_eq(&u, 0.0), "{src_layout} -> {dst_layout}");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let t = coord_tensor(Layout::CHWN);
        for dst_layout in Layout::all() {
            let a = relayout(&t, dst_layout);
            let b = relayout_parallel(&t, dst_layout);
            assert_eq!(a.as_slice(), b.as_slice(), "-> {dst_layout}");
        }
    }

    #[test]
    fn transpose_fast_path_matches_reference_chwn_to_nchw() {
        let t = coord_tensor(Layout::CHWN);
        let reference = relayout(&t, Layout::NCHW);
        let fast = relayout_2d_transpose(&t, Layout::NCHW);
        assert_eq!(reference.as_slice(), fast.as_slice());
    }

    #[test]
    fn transpose_fast_path_matches_reference_nchw_to_chwn() {
        let t = coord_tensor(Layout::NCHW);
        let reference = relayout(&t, Layout::CHWN);
        let fast = relayout_2d_transpose(&t, Layout::CHWN);
        assert_eq!(reference.as_slice(), fast.as_slice());
    }

    #[test]
    #[should_panic(expected = "flattenable layout pair")]
    fn transpose_fast_path_rejects_non_transpose_pairs() {
        let t = coord_tensor(Layout::NCHW);
        let _ = relayout_2d_transpose(&t, Layout::NHWC);
    }

    #[test]
    fn relayout_roundtrip_is_identity() {
        let t = coord_tensor(Layout::NCHW);
        let there = relayout(&t, Layout::CHWN);
        let back = relayout(&there, Layout::NCHW);
        assert_eq!(t.as_slice(), back.as_slice());
    }
}
