//! Error type for tensor operations.

use crate::Shape;
use std::fmt;

/// Errors produced by tensor construction and layout operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TensorError {
    /// A layout description was not a permutation of `N, C, H, W`.
    InvalidLayout(String),
    /// Two tensors that must agree in shape did not.
    ShapeMismatch {
        /// Shape that was expected.
        expected: Shape,
        /// Shape that was provided.
        actual: Shape,
    },
    /// A raw buffer's length did not match the shape it was paired with.
    LengthMismatch {
        /// Number of elements required by the shape.
        expected: usize,
        /// Number of elements provided.
        actual: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::InvalidLayout(msg) => write!(f, "invalid layout: {msg}"),
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "buffer length mismatch: expected {expected} elements, got {actual}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            expected: Shape::new(1, 2, 3, 4),
            actual: Shape::new(4, 3, 2, 1),
        };
        let msg = err.to_string();
        assert!(msg.contains("shape mismatch"));
        assert!(msg.contains("1x2x3x4"));
    }
}
