//! The four logical dimensions of a CNN tensor.

use std::fmt;

/// A logical dimension of a 4D CNN tensor.
///
/// The paper's notation (§II.A): `N` is the number of images in the batch,
/// `C` the number of feature maps (channels), `H` the image height and `W`
/// the image width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dim {
    /// Batch dimension (number of images).
    N,
    /// Channel dimension (number of feature maps).
    C,
    /// Image height.
    H,
    /// Image width.
    W,
}

impl Dim {
    /// All four dimensions in canonical `N, C, H, W` order.
    pub const ALL: [Dim; 4] = [Dim::N, Dim::C, Dim::H, Dim::W];

    /// Canonical index of this dimension (`N`=0, `C`=1, `H`=2, `W`=3).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Dim::N => 0,
            Dim::C => 1,
            Dim::H => 2,
            Dim::W => 3,
        }
    }

    /// The single-letter name of this dimension.
    pub const fn letter(self) -> char {
        match self {
            Dim::N => 'N',
            Dim::C => 'C',
            Dim::H => 'H',
            Dim::W => 'W',
        }
    }

    /// Parse a dimension from its single-letter name (case-insensitive).
    pub fn from_letter(ch: char) -> Option<Dim> {
        match ch.to_ascii_uppercase() {
            'N' => Some(Dim::N),
            'C' => Some(Dim::C),
            'H' => Some(Dim::H),
            'W' => Some(Dim::W),
            _ => None,
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_canonical() {
        for (i, d) in Dim::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn letter_roundtrip() {
        for d in Dim::ALL {
            assert_eq!(Dim::from_letter(d.letter()), Some(d));
            assert_eq!(Dim::from_letter(d.letter().to_ascii_lowercase()), Some(d));
        }
        assert_eq!(Dim::from_letter('x'), None);
    }

    #[test]
    fn display_matches_letter() {
        assert_eq!(Dim::N.to_string(), "N");
        assert_eq!(Dim::W.to_string(), "W");
    }
}
