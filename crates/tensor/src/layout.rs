//! Data layouts: the 24 possible dimension orders of a 4D tensor.

use crate::{Dim, Shape, TensorError};
use std::fmt;
use std::str::FromStr;

/// A data layout: a permutation of the four logical dimensions, written from
/// the **outermost** (largest stride) to the **innermost** (unit stride)
/// dimension.
///
/// `Layout::NCHW` therefore means that elements consecutive along `W` are
/// adjacent in memory, consecutive elements along `H` are `W` apart,
/// along `C` are `H*W` apart, and along `N` are `C*H*W` apart — exactly the
/// convention of the paper (§II.A) and of Caffe/cuDNN. `Layout::CHWN` is the
/// cuda-convnet convention where the batch dimension is innermost, which is
/// what makes warp accesses along `N` coalesce.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Layout {
    /// Dimension order, outermost first.
    order: [Dim; 4],
}

impl Layout {
    /// Caffe / cuDNN layout: batch outermost, width innermost.
    pub const NCHW: Layout = Layout { order: [Dim::N, Dim::C, Dim::H, Dim::W] };
    /// cuda-convnet layout: batch innermost (coalesced along `N`).
    pub const CHWN: Layout = Layout { order: [Dim::C, Dim::H, Dim::W, Dim::N] };
    /// Channels-last layout supported by cuDNN (`TensorFlow` default).
    pub const NHWC: Layout = Layout { order: [Dim::N, Dim::H, Dim::W, Dim::C] };
    /// Variant discussed in §IV.A: same coalescing along `N` as `CHWN`.
    pub const HWCN: Layout = Layout { order: [Dim::H, Dim::W, Dim::C, Dim::N] };

    /// Build a layout from an explicit dimension order (outermost first).
    ///
    /// Returns an error unless `order` is a permutation of all four
    /// dimensions.
    pub fn new(order: [Dim; 4]) -> Result<Layout, TensorError> {
        let mut seen = [false; 4];
        for d in order {
            if seen[d.index()] {
                return Err(TensorError::InvalidLayout(format!(
                    "dimension {d} appears more than once"
                )));
            }
            seen[d.index()] = true;
        }
        Ok(Layout { order })
    }

    /// All 24 layouts, in lexicographic order of their names.
    pub fn all() -> Vec<Layout> {
        let mut layouts = Vec::with_capacity(24);
        let dims = Dim::ALL;
        for a in 0..4 {
            for b in 0..4 {
                if b == a {
                    continue;
                }
                for c in 0..4 {
                    if c == a || c == b {
                        continue;
                    }
                    let d = 6 - a - b - c;
                    layouts.push(Layout { order: [dims[a], dims[b], dims[c], dims[d]] });
                }
            }
        }
        layouts
    }

    /// Dimension order, outermost first.
    #[inline]
    pub const fn order(&self) -> [Dim; 4] {
        self.order
    }

    /// The innermost (unit-stride) dimension.
    #[inline]
    pub const fn innermost(&self) -> Dim {
        self.order[3]
    }

    /// The outermost (largest-stride) dimension.
    #[inline]
    pub const fn outermost(&self) -> Dim {
        self.order[0]
    }

    /// Position of `dim` in the order (0 = outermost, 3 = innermost).
    #[inline]
    pub fn position_of(&self, dim: Dim) -> usize {
        self.order.iter().position(|&d| d == dim).expect("layout is a permutation of all dims")
    }

    /// Element stride of each logical dimension for a given shape, indexed
    /// by [`Dim::index`] (i.e. `strides[0]` is the stride of `N`).
    pub fn strides(&self, shape: Shape) -> [usize; 4] {
        let mut strides = [0usize; 4];
        let mut stride = 1usize;
        for &dim in self.order.iter().rev() {
            strides[dim.index()] = stride;
            stride *= shape.extent(dim);
        }
        strides
    }

    /// Element stride of a single dimension for a given shape.
    #[inline]
    pub fn stride_of(&self, dim: Dim, shape: Shape) -> usize {
        self.strides(shape)[dim.index()]
    }

    /// Linear element offset of logical coordinates `(n, c, h, w)`.
    #[inline]
    pub fn offset(&self, shape: Shape, n: usize, c: usize, h: usize, w: usize) -> usize {
        let s = self.strides(shape);
        n * s[0] + c * s[1] + h * s[2] + w * s[3]
    }

    /// Linear element offset computed from precomputed strides (hot path).
    #[inline]
    pub fn offset_with_strides(
        strides: &[usize; 4],
        n: usize,
        c: usize,
        h: usize,
        w: usize,
    ) -> usize {
        n * strides[0] + c * strides[1] + h * strides[2] + w * strides[3]
    }

    /// Inverse of [`Layout::offset`]: recover `(n, c, h, w)` from a linear
    /// element offset.
    pub fn coords(&self, shape: Shape, mut offset: usize) -> (usize, usize, usize, usize) {
        let mut coords = [0usize; 4];
        for &dim in self.order.iter().rev() {
            let extent = shape.extent(dim);
            coords[dim.index()] = offset % extent;
            offset /= extent;
        }
        (coords[0], coords[1], coords[2], coords[3])
    }

    /// The four-letter name, e.g. `"NCHW"`.
    pub fn name(&self) -> String {
        self.order.iter().map(|d| d.letter()).collect()
    }

    /// Whether two layouts place dimensions consecutively such that they can
    /// be treated as a 2D transpose after flattening (the paper's §IV.C
    /// observation: `NCHW` vs `CHWN` keep `C`, `H`, `W` in the same relative
    /// order, so the transform is `[C*H*W][N] -> [N][C*H*W]`).
    pub fn is_2d_transpose_of(&self, other: &Layout) -> bool {
        // True iff deleting one common "moving" dimension from both orders
        // leaves identical sequences, and that dimension moves between the
        // extreme positions.
        for moving in Dim::ALL {
            let strip = |l: &Layout| -> Vec<Dim> {
                l.order.iter().copied().filter(|&d| d != moving).collect()
            };
            if strip(self) == strip(other) {
                let a = self.position_of(moving);
                let b = other.position_of(moving);
                if (a == 0 && b == 3) || (a == 3 && b == 0) {
                    return true;
                }
            }
        }
        false
    }
}

impl fmt::Debug for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Layout({})", self.name())
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl FromStr for Layout {
    type Err = TensorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 4 {
            return Err(TensorError::InvalidLayout(format!(
                "layout name must have 4 letters, got {s:?}"
            )));
        }
        let mut order = [Dim::N; 4];
        for (i, ch) in s.chars().enumerate() {
            order[i] = Dim::from_letter(ch).ok_or_else(|| {
                TensorError::InvalidLayout(format!("invalid dimension letter {ch:?} in {s:?}"))
            })?;
        }
        Layout::new(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_constants_have_expected_orders() {
        assert_eq!(Layout::NCHW.name(), "NCHW");
        assert_eq!(Layout::CHWN.name(), "CHWN");
        assert_eq!(Layout::NHWC.name(), "NHWC");
        assert_eq!(Layout::HWCN.name(), "HWCN");
        assert_eq!(Layout::NCHW.innermost(), Dim::W);
        assert_eq!(Layout::CHWN.innermost(), Dim::N);
    }

    #[test]
    fn all_returns_24_distinct_layouts() {
        let all = Layout::all();
        assert_eq!(all.len(), 24);
        let names: std::collections::HashSet<String> = all.iter().map(|l| l.name()).collect();
        assert_eq!(names.len(), 24);
        assert!(names.contains("NCHW"));
        assert!(names.contains("CHWN"));
    }

    #[test]
    fn new_rejects_repeated_dims() {
        assert!(Layout::new([Dim::N, Dim::N, Dim::H, Dim::W]).is_err());
    }

    #[test]
    fn nchw_strides_match_paper_definition() {
        // Paper §II.A: in NCHW, W is unit stride, H has stride W, C has
        // stride H*W, N has stride C*H*W.
        let shape = Shape::new(128, 96, 27, 31);
        let s = Layout::NCHW.strides(shape);
        assert_eq!(s[Dim::W.index()], 1);
        assert_eq!(s[Dim::H.index()], 31);
        assert_eq!(s[Dim::C.index()], 27 * 31);
        assert_eq!(s[Dim::N.index()], 96 * 27 * 31);
    }

    #[test]
    fn chwn_strides_put_batch_innermost() {
        let shape = Shape::new(128, 96, 27, 31);
        let s = Layout::CHWN.strides(shape);
        assert_eq!(s[Dim::N.index()], 1);
        assert_eq!(s[Dim::W.index()], 128);
        assert_eq!(s[Dim::H.index()], 31 * 128);
        assert_eq!(s[Dim::C.index()], 27 * 31 * 128);
    }

    #[test]
    fn offset_coords_roundtrip() {
        let shape = Shape::new(3, 5, 7, 2);
        for layout in Layout::all() {
            let mut seen = vec![false; shape.len()];
            for n in 0..shape.n {
                for c in 0..shape.c {
                    for h in 0..shape.h {
                        for w in 0..shape.w {
                            let off = layout.offset(shape, n, c, h, w);
                            assert!(!seen[off], "offset collision in {layout}");
                            seen[off] = true;
                            assert_eq!(layout.coords(shape, off), (n, c, h, w));
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&b| b), "offsets not surjective in {layout}");
        }
    }

    #[test]
    fn name_parse_roundtrip() {
        for layout in Layout::all() {
            let parsed: Layout = layout.name().parse().unwrap();
            assert_eq!(parsed, layout);
        }
        assert!("NCH".parse::<Layout>().is_err());
        assert!("NCHX".parse::<Layout>().is_err());
        assert!("NNHW".parse::<Layout>().is_err());
    }

    #[test]
    fn nchw_chwn_is_2d_transpose() {
        assert!(Layout::NCHW.is_2d_transpose_of(&Layout::CHWN));
        assert!(Layout::CHWN.is_2d_transpose_of(&Layout::NCHW));
        // NHWC keeps N outermost but moves C: relative order of H, W, C
        // differs from NCHW's C, H, W, so it is not a flat 2D transpose.
        assert!(!Layout::NCHW.is_2d_transpose_of(&Layout::NHWC));
        assert!(!Layout::NCHW.is_2d_transpose_of(&Layout::NCHW));
    }

    #[test]
    fn position_of_is_inverse_of_order() {
        for layout in Layout::all() {
            for (pos, d) in layout.order().iter().enumerate() {
                assert_eq!(layout.position_of(*d), pos);
            }
        }
    }
}
