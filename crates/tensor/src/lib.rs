//! 4D tensors with first-class data layouts.
//!
//! Deep CNN frameworks store activations and weights as 4-dimensional arrays
//! over the logical dimensions `N` (batch), `C` (channels / feature maps),
//! `H` (image height) and `W` (image width). The SC'16 paper this workspace
//! reproduces ("Optimizing Memory Efficiency for Deep Convolutional Neural
//! Networks on GPUs", Li et al.) shows that the *order* in which those four
//! dimensions are laid out in linear memory — the **data layout** — is a
//! first-order performance concern on GPUs, and that no single layout suits
//! every layer of a network.
//!
//! This crate provides the data model the rest of the workspace builds on:
//!
//! - [`Dim`]: the four logical dimensions.
//! - [`Shape`]: logical extents, layout-independent.
//! - [`Layout`]: one of the 24 dimension orders, with stride math. The two
//!   orders that matter in practice, [`Layout::NCHW`] (Caffe/cuDNN) and
//!   [`Layout::CHWN`] (cuda-convnet), get named constants, but all 24 are
//!   supported so layout studies can sweep the full space.
//! - [`Tensor`]: an owned `f32` tensor carrying its shape and layout, with
//!   layout-aware indexing and conversions.
//! - [`relayout`]: reference and rayon-parallel layout transformations (the
//!   *functional* counterpart of the paper's fast transformation kernels;
//!   the GPU-side access-pattern models live in `memcnn-kernels`).
//!
//! # Example
//!
//! ```
//! use memcnn_tensor::{Dim, Layout, Shape, Tensor};
//!
//! let shape = Shape::new(128, 16, 14, 14);
//! let t = Tensor::random(shape, Layout::NCHW, 42);
//!
//! // NCHW: width is unit-stride; CHWN: the batch is.
//! assert_eq!(t.stride_of(Dim::W), 1);
//! let u = t.to_layout(Layout::CHWN);
//! assert_eq!(u.stride_of(Dim::N), 1);
//!
//! // Layouts change memory order, never values.
//! assert!(t.approx_eq(&u, 0.0));
//! assert_eq!(t.get(3, 1, 4, 1), u.get(3, 1, 4, 1));
//! ```

#![warn(missing_docs)]

mod dim;
mod error;
mod layout;
pub mod relayout;
mod shape;
mod tensor;

pub use dim::Dim;
pub use error::TensorError;
pub use layout::Layout;
pub use shape::Shape;
pub use tensor::Tensor;
