//! The dynamic-batching policy and batch-size buckets.
//!
//! A batch launches at `max(gpu_free, min(T_full, T_deadline))`: as soon
//! as the device is free *and* either the queue holds a full batch or the
//! oldest queued request has waited `max_queue_delay`. The launched batch
//! is then rounded up to a small set of batch-size buckets (powers of two
//! by default) so the plan cache compiles one layout plan per bucket
//! instead of one per distinct batch size.

use serde::Serialize;

/// Dynamic-batching policy knobs.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct BatchPolicy {
    /// Maximum images per launched batch — also the largest bucket, and
    /// the `N` the largest layout plan is compiled at.
    pub max_batch_images: usize,
    /// Longest the oldest queued request may wait before its batch
    /// launches part-full, seconds.
    pub max_queue_delay: f64,
}

impl BatchPolicy {
    /// A policy with the given knobs.
    pub fn new(max_batch_images: usize, max_queue_delay: f64) -> BatchPolicy {
        BatchPolicy { max_batch_images, max_queue_delay }
    }
}

/// Round a launched batch's image count up to its bucket: the next power
/// of two, clamped to `[1, max]`. Plans are compiled at the bucket's `N`
/// (short batches are padded), so a handful of buckets covers every batch
/// size the policy can produce.
pub fn bucket_for(images: usize, max: usize) -> usize {
    images.max(1).next_power_of_two().min(max.max(1))
}

/// All buckets a policy can produce, ascending (powers of two up to and
/// including the clamp at `max_batch_images`).
pub fn buckets(policy: &BatchPolicy) -> Vec<usize> {
    let max = policy.max_batch_images.max(1);
    let mut out = Vec::new();
    let mut b = 1usize;
    while b < max {
        out.push(b);
        b *= 2;
    }
    out.push(max);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two_clamped() {
        assert_eq!(bucket_for(1, 256), 1);
        assert_eq!(bucket_for(3, 256), 4);
        assert_eq!(bucket_for(64, 256), 64);
        assert_eq!(bucket_for(65, 256), 128);
        assert_eq!(bucket_for(200, 256), 256);
        // Clamp: the top bucket is max_batch_images itself, power of two
        // or not.
        assert_eq!(bucket_for(97, 100), 100);
        assert_eq!(bucket_for(0, 8), 1);
    }

    #[test]
    fn bucket_covers_the_batch_unless_clamped() {
        for images in 1..=256usize {
            let b = bucket_for(images, 256);
            assert!(b >= images, "bucket {b} < batch {images}");
            assert!(b <= 256);
        }
    }

    #[test]
    fn bucket_list_matches_bucket_for() {
        let p = BatchPolicy::new(256, 0.01);
        assert_eq!(buckets(&p), vec![1, 2, 4, 8, 16, 32, 64, 128, 256]);
        let odd = BatchPolicy::new(100, 0.01);
        assert_eq!(buckets(&odd), vec![1, 2, 4, 8, 16, 32, 64, 100]);
        for images in 1..=100usize {
            assert!(buckets(&odd).contains(&bucket_for(images, 100)));
        }
    }
}
