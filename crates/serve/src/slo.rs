//! The SLO-aware single-device serving loop: per-tenant lanes,
//! deadline-driven batch commit, and weighted-fair slot arbitration.
//!
//! [`serve`](crate::server::serve) dispatches here when the config
//! declares tenants (unless `MEMCNN_SLO_DISABLE=1` forces the
//! class-blind loop as the equivalence oracle). The loop keeps the
//! single-device server's event arithmetic — the same
//! `max(gpu_free, min(T_full, T_deadline))` window rule
//! ([`window_launch`]), the same greedy FIFO [`form`], the same
//! launch-attempt [`launch_ladder`](crate::server::launch_ladder) — but
//! splits the queue into one lane per tenant:
//!
//! - **Deadline-aware commit**: each lane's window grows under its
//!   class's commit budget ([`crate::tenant::TenantClass::commit_budget`]) instead of
//!   the uniform policy delay, so interactive batches commit early
//!   (possibly part-full) while best-effort lanes hold up to 4x the
//!   delay to fill larger buckets — which, through the per-bucket plan
//!   cache, is also a layout decision (the paper's `Nt` thresholds).
//! - **Weighted-fair tiebreak**: when two lanes' launches tie exactly
//!   for the device slot, the larger fairness credit wins
//!   ([`lane_beats`]); credits settle after every commit
//!   ([`settle_credits`]), so a saturating interactive tenant cannot
//!   starve best-effort lanes indefinitely (the starvation bound pinned
//!   in `tests/slo.rs`).
//! - **Admission control**: a deterministic per-tenant token bucket on
//!   the arrival clock ([`Admission`]) rejects arrivals past the
//!   tenant's rate limit before they queue; rejections keep the 0.0
//!   latency sentinel and their own accounting column.
//!
//! Everything stays a pure function of `(engine config, network,
//! ServeConfig)`: tenant attribution hashes `(seed, id)` without
//! touching the workload RNG, lane selection and credits are plain
//! arithmetic in commit order, and the report is bit-identical across
//! `MEMCNN_THREADS`.

use crate::batch::bucket_for;
use crate::fleet::window_launch;
use crate::metrics::latency_stats;
use crate::plan_cache::PlanCache;
use crate::policy::FaultStats;
use crate::server::{
    fault_span, form, launch_ladder, BatchRecord, BucketStats, LadderEnd, Outcome, ServeConfig,
    ServeReport,
};
use crate::tenant::{
    fairness_of, lane_beats, settle_credits, tenant_tags, Admission, SloReport, TenantReport,
};
use crate::workload::{self, Request};
use memcnn_core::{Engine, EngineError, Network};
use memcnn_metrics::{GaugeId, Recorder};
use memcnn_trace as trace;
use memcnn_trace::perf;
use std::collections::BTreeSet;

/// One lane's cached arbitration key: the tentative launch
/// [`window_launch`] computed under the state fingerprint alongside it.
/// The cache hit condition exploits the window rule's shape — the launch
/// starts from `max(gpu_free, oldest)`, so while the device clock stays
/// at or below the lane's oldest pending arrival the result does not
/// depend on `gpu_free` at all, and an unchanged `(next, emax)` pair
/// pins the rest of the inputs (the admitted queue itself is immutable
/// once routed). Exact-`f64`-bits equality everywhere keeps the cached
/// selection byte-identical to a fresh scan; debug builds assert it.
struct LaneKey {
    next: usize,
    emax: usize,
    gpu_free: f64,
    launch: f64,
}

impl LaneKey {
    /// Whether the cached launch is still exact for the current state.
    fn valid(&self, next: usize, emax: usize, gpu_free: f64, oldest: f64) -> bool {
        self.next == next
            && self.emax == emax
            && (self.gpu_free.to_bits() == gpu_free.to_bits()
                || (self.gpu_free <= oldest && gpu_free <= oldest))
    }
}

/// One tenant's FIFO lane: the routed queue and the served prefix.
pub(crate) struct Lane {
    pub(crate) queue: Vec<Request>,
    pub(crate) next: usize,
}

impl Lane {
    pub(crate) fn new() -> Lane {
        Lane { queue: Vec::new(), next: 0 }
    }

    /// Requests routed but not yet served or shed.
    pub(crate) fn pending(&self) -> &[Request] {
        &self.queue[self.next..]
    }

    pub(crate) fn has_pending(&self) -> bool {
        self.next < self.queue.len()
    }
}

/// Whether committing `(launch, images)` displaced a tentative larger
/// batch on `lane`: the lane's own batch — formed from requests that
/// had arrived by `launch` — would have launched later with more
/// images. Only arrived work counts: the fleet routes exactly the
/// `arrival <= launch` prefix before any commit (the route-first rule),
/// while the single-device loop holds the whole admitted stream, so
/// this shared cutoff is what makes both paths count identically.
pub(crate) fn lane_preempts(
    lane: &Lane,
    budget: f64,
    gpu_free: f64,
    emax: usize,
    launch: f64,
    images: usize,
) -> bool {
    let end = lane.queue.partition_point(|r| r.arrival <= launch);
    if end <= lane.next {
        return false;
    }
    let view = &lane.queue[..end];
    let l2 = window_launch(view, lane.next, gpu_free, emax, budget);
    let (_, imgs2, _) = form(view, lane.next, l2, emax);
    l2 > launch && imgs2 > images
}

/// Whether `MEMCNN_SLO_DISABLE` forces the class-blind scheduler even
/// when tenants are configured — the equivalence oracle: tenant tags
/// never touch the RNG, so a disabled run is byte-identical to the same
/// config with no tenants at all. Read on every call (like
/// `MEMCNN_FLEET_SEQUENTIAL`, not once-locked) so tests and the bench
/// can pin both schedulers in one process.
pub(crate) fn slo_disabled() -> bool {
    slo_disable_from(std::env::var("MEMCNN_SLO_DISABLE").ok().as_deref())
}

/// Parse a `MEMCNN_SLO_DISABLE` value, warning on stderr and keeping the
/// SLO-aware scheduler when it is present but not a recognized boolean.
/// Pure so the fallback is unit-testable; the `Once` guarantees the
/// warning fires at most once per process.
fn slo_disable_from(raw: Option<&str>) -> bool {
    match raw {
        None => false,
        Some("1") | Some("true") => true,
        Some("0") | Some("false") => false,
        Some(v) => {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "memcnn: ignoring malformed MEMCNN_SLO_DISABLE={v:?} \
                     (want 1/0/true/false); keeping the SLO-aware scheduler"
                );
            });
            false
        }
    }
}

/// Assemble the per-tenant accounting section from independently
/// tallied components (shared by the single-device and fleet loops).
/// `in_flight` comes from residual lane depths — 0 for drained runs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn slo_report(
    tenants: &[crate::tenant::TenantSpec],
    latencies: &[f64],
    tags: &[u32],
    admitted: &[u64],
    rejected: &[u64],
    completed: &[u64],
    shed: &[u64],
    in_flight: &[u64],
    images: &[u64],
    violations: &[u64],
    early_commits: u64,
    preemptions: u64,
    failed_over: &[u64],
    in_transit: &[u64],
    device_seconds: f64,
) -> SloReport {
    let nt = tenants.len();
    let mut lat_by: Vec<Vec<f64>> = vec![Vec::new(); nt];
    for (i, &l) in latencies.iter().enumerate() {
        if l > 0.0 {
            lat_by[tags[i] as usize].push(l);
        }
    }
    let reports: Vec<TenantReport> = (0..nt)
        .map(|t| TenantReport {
            name: tenants[t].name.clone(),
            class: tenants[t].class,
            weight: tenants[t].weight,
            admitted: admitted[t],
            rejected: rejected[t],
            completed: completed[t],
            shed: shed[t],
            in_flight: in_flight[t],
            images: images[t],
            violations: violations[t],
            failed_over: failed_over[t],
            failed_over_in_transit: in_transit[t],
            latency: latency_stats(&lat_by[t]),
            weighted_share: if tenants[t].weight > 0.0 {
                images[t] as f64 / tenants[t].weight
            } else {
                0.0
            },
        })
        .collect();
    let slo = SloReport {
        fairness: fairness_of(&reports),
        violations: violations.iter().sum(),
        rejected: rejected.iter().sum(),
        early_commits,
        preemptions,
        device_seconds,
        failed_over: failed_over.iter().sum(),
        failed_over_in_transit: in_transit.iter().sum(),
        tenants: reports,
    };
    perf::add("slo.commit.early", slo.early_commits);
    perf::add("slo.preempt", slo.preemptions);
    perf::add("slo.reject", slo.rejected);
    perf::add("slo.violation", slo.violations);
    debug_assert!(slo.balanced(), "per-tenant accounting out of balance");
    slo
}

/// Run the SLO-aware serving simulation to completion. Called by
/// [`serve`](crate::server::serve) when `cfg.tenants` is non-empty;
/// deterministic like the class-blind loop — same inputs give a
/// bit-identical [`ServeReport`] (now carrying `Some(SloReport)`),
/// independent of `MEMCNN_THREADS`.
pub(crate) fn serve_tenants(
    engine: &Engine,
    net: &Network,
    cfg: &ServeConfig,
) -> Result<ServeReport, EngineError> {
    let requests = workload::generate(&cfg.workload);
    perf::add("serve.requests", requests.len() as u64);
    let tenants = &cfg.tenants;
    let nt = tenants.len();
    let tags = tenant_tags(cfg.workload.seed, requests.len(), tenants);
    let max = cfg.policy.max_batch_images.max(1);
    let fplan = cfg.faults.filter(|p| !p.is_noop());
    let pol = cfg.fault_policy;
    let delay = cfg.policy.max_queue_delay;
    let budgets: Vec<f64> = tenants.iter().map(|t| t.class.commit_budget(delay)).collect();
    let ranks: Vec<u8> = tenants.iter().map(|t| t.class.rank()).collect();
    let p99s: Vec<Option<f64>> = tenants.iter().map(|t| t.class.p99_budget()).collect();

    // Admission on the arrival clock, before anything queues: the token
    // bucket is a pure function of the (deterministic) arrival sequence,
    // so the lane contents are replayable from the seed.
    let mut admission = Admission::new(tenants);
    let mut admitted = vec![0u64; nt];
    let mut rejected = vec![0u64; nt];
    let mut lanes: Vec<Lane> = (0..nt).map(|_| Lane::new()).collect();
    for (i, r) in requests.iter().enumerate() {
        let t = tags[i] as usize;
        admitted[t] += 1;
        if admission.admit(t, r.arrival) {
            lanes[t].queue.push(*r);
        } else {
            rejected[t] += 1;
            fault_span(r.arrival, 0.0, || {
                (
                    format!("reject request {}", r.id),
                    vec![
                        (trace::intern("reason").into(), trace::intern("admission").into()),
                        (trace::intern("tenant").into(), trace::intern(&tenants[t].name).into()),
                    ],
                )
            });
        }
    }

    let mut cache = PlanCache::new(engine, net, cfg.mechanism);
    let mut latencies = vec![0.0f64; requests.len()];
    let mut batches: Vec<BatchRecord> = Vec::new();
    let mut stats = FaultStats::default();
    let mut shed_requests = 0usize;
    let mut shed_by = vec![0u64; nt];
    let mut plan_ooms = 0u64;
    let mut gpu_free = 0.0f64;
    let mut launches: u64 = 0;
    let mut plan_cap = max;
    let mut pin: Option<usize> = None;
    let mut clean_streak: u64 = 0;
    let mut rec = Recorder::default();
    // Resolve every recorder handle once: per-sample emission becomes an
    // index push, with no name lookup or `format!` on the commit path.
    // Unused registrations drop out of the finished timeline, so the
    // serialized output is unchanged.
    let id_shed_total = rec.gauge_id("shed.total");
    let id_queue_depth = rec.gauge_id("queue.depth");
    let id_batch_images = rec.gauge_id("batch.images");
    let id_batch_bucket = rec.gauge_id("batch.bucket");
    let id_util = rec.gauge_id("util");
    let id_hit_rate = rec.gauge_id("plan_cache.hit_rate");
    let id_degraded = rec.gauge_id("degraded");
    let id_violations = rec.gauge_id("slo.violations");
    let tenant_keys: Vec<_> = tenants.iter().map(|t| rec.latency_key(&t.name)).collect();
    let tenant_violation_ids: Vec<Option<GaugeId>> = tenants
        .iter()
        .map(|t| {
            t.class.p99_budget().map(|_| rec.gauge_id(&format!("tenant.{}.violations", t.name)))
        })
        .collect();
    let mut seen_buckets: BTreeSet<usize> = BTreeSet::new();
    let mut cache_lookups = 0u64;
    let mut cache_hits = 0u64;
    let mut busy = 0.0f64;
    // SLO accounting: fairness credits plus per-tenant tallies. Each
    // component is tallied independently (completions at batch done,
    // sheds at the shed sites, rejections above) so the balance check is
    // a real invariant.
    let mut credits = vec![0.0f64; nt];
    let mut completed = vec![0u64; nt];
    let mut images_by = vec![0u64; nt];
    let mut violations = vec![0u64; nt];
    let mut early = 0u64;
    let mut preempts = 0u64;
    // Cached per-lane arbitration keys: a lane recomputes its tentative
    // launch only when its own `(next, emax)` fingerprint changed or the
    // device clock moved past its oldest pending arrival (see
    // [`LaneKey`]). Commits touch one lane; the others' keys survive.
    let mut lane_keys: Vec<Option<LaneKey>> = (0..nt).map(|_| None).collect();

    loop {
        // Deadline-based load shedding, per lane at the device clock —
        // the single-device rule applied to every head-of-line.
        if let Some(deadline) = pol.shed_deadline {
            for (t, lane) in lanes.iter_mut().enumerate() {
                while lane.has_pending() && gpu_free - lane.queue[lane.next].arrival > deadline {
                    let r = &lane.queue[lane.next];
                    fault_span(gpu_free, 0.0, || {
                        (
                            format!("shed request {}", r.id),
                            vec![
                                (trace::intern("reason").into(), trace::intern("deadline").into()),
                                (
                                    trace::intern("tenant").into(),
                                    trace::intern(&tenants[t].name).into(),
                                ),
                            ],
                        )
                    });
                    shed_requests += 1;
                    shed_by[t] += 1;
                    lane.next += 1;
                    rec.gauge_at(id_shed_total, gpu_free, shed_requests as f64);
                }
            }
        }

        let emax = plan_cap.min(pin.unwrap_or(plan_cap)).max(1);
        // Lane arbitration: earliest launch under each lane's own commit
        // budget; exact launch ties break by fairness credit, then class
        // rank, then lane order (deterministic keep-first). Launches come
        // from the incrementally settled [`LaneKey`] cache; credits and
        // ranks are read fresh (they are O(1) lookups and change on every
        // settle).
        let mut best: Option<(f64, usize)> = None;
        for (t, lane) in lanes.iter().enumerate() {
            if !lane.has_pending() {
                continue;
            }
            let oldest = lane.queue[lane.next].arrival;
            let launch = match &lane_keys[t] {
                Some(k) if k.valid(lane.next, emax, gpu_free, oldest) => k.launch,
                _ => {
                    let fresh = window_launch(&lane.queue, lane.next, gpu_free, emax, budgets[t]);
                    lane_keys[t] = Some(LaneKey { next: lane.next, emax, gpu_free, launch: fresh });
                    fresh
                }
            };
            debug_assert_eq!(
                launch.to_bits(),
                window_launch(&lane.queue, lane.next, gpu_free, emax, budgets[t]).to_bits(),
                "lane-key cache diverged from a fresh window_launch"
            );
            let take = match best {
                None => true,
                Some((bl, bt)) => {
                    lane_beats((launch, credits[t], ranks[t]), (bl, credits[bt], ranks[bt]))
                }
            };
            if take {
                best = Some((launch, t));
            }
        }
        let Some((launch, t)) = best else { break };
        let (j_end, images, full) = form(&lanes[t].queue, lanes[t].next, launch, emax);
        debug_assert!(j_end > lanes[t].next, "a committed batch serves at least one request");
        let bucket = bucket_for(images, emax);
        // Early commit: the class budget (tighter than the policy delay)
        // fired before the batch filled — the deadline-aware rule
        // launched a part-full batch to protect the budget. Computed
        // here, applied only if the plan resolves below, so a plan-OOM
        // re-selection is not double-counted.
        let early_hit = !full
            && budgets[t] < delay
            && launch == lanes[t].queue[lanes[t].next].arrival + budgets[t];
        // Preemption: this lane won the slot from a lane whose tentative
        // batch would have launched later with more images — the
        // large-bucket launch the deadline rule displaced.
        let mut preempt_hit = false;
        for (u, other) in lanes.iter().enumerate() {
            if u != t && lane_preempts(other, budgets[u], gpu_free, emax, launch, images) {
                preempt_hit = true;
                break;
            }
        }
        cache_lookups += 1;
        if !seen_buckets.insert(bucket) {
            cache_hits += 1;
        }
        let plan = match cache.get(bucket) {
            Ok(plan) => plan,
            Err(err @ EngineError::PlanOom { .. }) => {
                if bucket <= 1 {
                    return Err(err);
                }
                plan_ooms += 1;
                fault_span(launch, 0.0, || {
                    (
                        format!("plan OOM at bucket {bucket}"),
                        vec![(
                            trace::intern("new_cap").into(),
                            trace::intern(&(bucket / 2).to_string()).into(),
                        )],
                    )
                });
                plan_cap = (bucket / 2).max(1);
                continue;
            }
            Err(err) => return Err(err),
        };
        let service = plan.total_time();
        if early_hit {
            early += 1;
        }
        if preempt_hit {
            preempts += 1;
        }

        let LadderEnd { outcome, attempts: attempt, throttles } = launch_ladder(
            engine,
            plan,
            fplan.as_ref(),
            &mut launches,
            &mut stats,
            &pol,
            bucket,
            launch,
            None,
        )?;

        match outcome {
            Outcome::Done { done } => {
                let reqs = j_end - lanes[t].next;
                {
                    let lane = &mut lanes[t];
                    for r in &lane.queue[lane.next..j_end] {
                        let latency = done - r.arrival;
                        latencies[r.id as usize] = latency;
                        rec.observe_latency(latency);
                        rec.observe_latency_keyed_at(tenant_keys[t], latency);
                        completed[t] += 1;
                        images_by[t] += r.images as u64;
                        if p99s[t].is_some_and(|b| latency > b) {
                            violations[t] += 1;
                        }
                    }
                    lane.next = j_end;
                }
                // Queue pressure left behind, across every lane.
                let depth: usize = lanes
                    .iter()
                    .map(|l| l.pending().iter().filter(|r| r.arrival <= launch).count())
                    .sum();
                {
                    let idx = batches.len();
                    let tenant = &tenants[t].name;
                    trace::record_span(|| trace::SpanEvent {
                        name: format!("batch {idx} (N={bucket})"),
                        track: trace::Track::Serve,
                        ts_us: launch * 1e6,
                        dur_us: service * 1e6,
                        args: vec![
                            (trace::intern("tenant").into(), trace::intern(tenant).into()),
                            (
                                trace::intern("requests").into(),
                                trace::intern(&reqs.to_string()).into(),
                            ),
                            (
                                trace::intern("images").into(),
                                trace::intern(&images.to_string()).into(),
                            ),
                            (
                                trace::intern("bucket").into(),
                                trace::intern(&bucket.to_string()).into(),
                            ),
                        ],
                    });
                }
                batches.push(BatchRecord {
                    launch,
                    done,
                    requests: reqs,
                    images,
                    bucket,
                    queue_depth: depth,
                    attempts: attempt,
                    throttled: throttles,
                });
                if pin.is_some() {
                    if attempt == 0 && throttles == 0 {
                        clean_streak += 1;
                        if clean_streak >= pol.recovery_batches {
                            stats.degraded_exits += 1;
                            fault_span(done, 0.0, || {
                                (
                                    "leave degraded mode".to_string(),
                                    vec![(
                                        trace::intern("clean_batches").into(),
                                        trace::intern(&clean_streak.to_string()).into(),
                                    )],
                                )
                            });
                            pin = None;
                            clean_streak = 0;
                        }
                    } else {
                        clean_streak = 0;
                    }
                }
                busy += done - launch;
                rec.gauge_at(id_queue_depth, done, depth as f64);
                rec.gauge_at(id_batch_images, done, images as f64);
                rec.gauge_at(id_batch_bucket, done, bucket as f64);
                rec.gauge_at(id_util, done, if done > 0.0 { busy / done } else { 0.0 });
                rec.gauge_at(id_hit_rate, done, cache_hits as f64 / cache_lookups as f64);
                rec.gauge_at(id_degraded, done, if pin.is_some() { 1.0 } else { 0.0 });
                rec.gauge_at(id_shed_total, done, shed_requests as f64);
                rec.gauge_at(id_violations, done, violations.iter().sum::<u64>() as f64);
                for (u, id) in tenant_violation_ids.iter().enumerate() {
                    if let Some(id) = *id {
                        rec.gauge_at(id, done, violations[u] as f64);
                    }
                }
                rec.sample_window(done);
                gpu_free = done;
                settle_credits(&mut credits, tenants, |u| lanes[u].has_pending(), t, images);
            }
            Outcome::Shed { at } => {
                let lane = &mut lanes[t];
                let batch_shed = j_end - lane.next;
                shed_requests += batch_shed;
                shed_by[t] += batch_shed as u64;
                lane.next = j_end;
                busy += at - launch;
                rec.gauge_at(id_shed_total, at, shed_requests as f64);
                rec.gauge_at(id_util, at, if at > 0.0 { busy / at } else { 0.0 });
                gpu_free = at;
                settle_credits(&mut credits, tenants, |u| lanes[u].has_pending(), t, images);
            }
            Outcome::Downshift { at } => {
                if pin.is_none() {
                    stats.degraded_entries += 1;
                }
                pin = Some((bucket / 2).max(1));
                clean_streak = 0;
                busy += at - launch;
                rec.gauge_at(id_degraded, at, 1.0);
                gpu_free = at;
            }
        }
    }
    perf::add("serve.batches", batches.len() as u64);
    perf::add("serve.shed", shed_requests as u64);
    perf::add("serve.plan.oom", plan_ooms);
    perf::add("fault.injected", stats.injected);
    perf::add("fault.retried", stats.retried);
    perf::add("fault.degraded", stats.degraded);
    perf::add("fault.shed", stats.shed);
    perf::add("serve.degraded.enter", stats.degraded_entries);
    perf::add("serve.degraded.exit", stats.degraded_exits);
    debug_assert!(stats.balanced(), "fault accounting out of balance: {stats:?}");

    let mut buckets: Vec<BucketStats> = Vec::new();
    for (&bucket, plan) in cache.plans() {
        let hits: Vec<&BatchRecord> = batches.iter().filter(|b| b.bucket == bucket).collect();
        let images: usize = hits.iter().map(|b| b.images).sum();
        buckets.push(BucketStats {
            bucket,
            batches: hits.len(),
            images,
            fill: if hits.is_empty() { 0.0 } else { images as f64 / (hits.len() * bucket) as f64 },
            conv_layouts: plan.conv_layout_signature(),
            transforms: plan.transform_count(),
            service_time: plan.total_time(),
        });
    }

    let in_flight: Vec<u64> = lanes.iter().map(|l| (l.queue.len() - l.next) as u64).collect();
    let slo = slo_report(
        tenants,
        &latencies,
        &tags,
        &admitted,
        &rejected,
        &completed,
        &shed_by,
        &in_flight,
        &images_by,
        &violations,
        early,
        preempts,
        // No device lifecycle on the single-device path: nothing fails
        // over, and `busy` is the one device's occupied seconds.
        &vec![0u64; nt],
        &vec![0u64; nt],
        busy,
    );

    let timeline = rec.finish();
    timeline.emit_trace_counters(trace::Track::Serve);

    Ok(ServeReport {
        network: net.name.clone(),
        config: cfg.clone(),
        requests: requests.len(),
        images: batches.iter().map(|b| b.images).sum(),
        makespan: gpu_free,
        latencies,
        batches,
        buckets,
        shed_requests,
        faults: stats,
        timeline,
        slo: Some(slo),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchPolicy;
    use crate::tenant::TenantSpec;
    use crate::workload::{Arrival, Phase, WorkloadConfig};
    use memcnn_core::{LayoutThresholds, NetworkBuilder};
    use memcnn_gpusim::DeviceConfig;
    use memcnn_tensor::Shape;

    fn tiny_engine() -> Engine {
        Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
    }

    fn tiny_net() -> Network {
        NetworkBuilder::new("tiny-slo", Shape::new(1, 4, 16, 16))
            .conv("CV", 8, 3, 1, 1)
            .max_pool("PL", 2, 2)
            .build()
            .unwrap()
    }

    fn mix() -> Vec<TenantSpec> {
        vec![
            TenantSpec::interactive("chat", 0.02, 1.0),
            TenantSpec::standard("web", 1.0),
            TenantSpec::best_effort("batch", 1.0),
        ]
    }

    #[test]
    fn disable_knob_parses_and_malformed_falls_back() {
        assert!(!slo_disable_from(None));
        assert!(slo_disable_from(Some("1")));
        assert!(slo_disable_from(Some("true")));
        assert!(!slo_disable_from(Some("0")));
        assert!(!slo_disable_from(Some("false")));
        // Malformed values warn once on stderr and keep the SLO-aware
        // scheduler (the MEMCNN_FLEET_SEQUENTIAL fallback convention).
        assert!(!slo_disable_from(Some("yes")));
        assert!(!slo_disable_from(Some("")));
        assert!(!slo_disable_from(Some(" 1 ")));
    }

    #[test]
    fn tenant_run_serves_everything_with_balanced_accounting() {
        let engine = tiny_engine();
        let net = tiny_net();
        let cfg = ServeConfig::new(
            WorkloadConfig {
                phases: vec![Phase { arrival: Arrival::Poisson { rate: 400.0 }, duration: 0.2 }],
                images_min: 1,
                images_max: 4,
                seed: 5,
            },
            BatchPolicy::new(32, 0.005),
        )
        .with_tenants(mix());
        let report = serve_tenants(&engine, &net, &cfg).unwrap();
        assert!(report.requests > 0);
        assert!(report.latencies.iter().all(|&l| l > 0.0));
        let slo = report.slo.as_ref().unwrap();
        assert!(slo.balanced());
        assert_eq!(slo.tenants.len(), 3);
        assert_eq!(slo.rejected, 0);
        assert_eq!(slo.tenants.iter().map(|t| t.admitted).sum::<u64>(), report.requests as u64);
        assert_eq!(slo.tenants.iter().map(|t| t.completed).sum::<u64>(), report.requests as u64);
        // Keyed histograms landed per tenant, and every tenant served.
        for t in &slo.tenants {
            assert!(t.completed > 0, "tenant {} starved", t.name);
            assert_eq!(report.timeline.keyed_hist(&t.name).map(|h| h.count()), Some(t.completed));
        }
        // Fairness is finite when nobody starved.
        assert!(slo.fairness.ratio >= 1.0);
        // Replays bit-identically.
        let again = serve_tenants(&engine, &net, &cfg).unwrap();
        let bits =
            |r: &ServeReport| -> Vec<u64> { r.latencies.iter().map(|l| l.to_bits()).collect() };
        assert_eq!(bits(&report), bits(&again));
    }

    #[test]
    fn rate_limited_tenant_rejects_and_stays_balanced() {
        let engine = tiny_engine();
        let net = tiny_net();
        let tenants = vec![
            TenantSpec::interactive("chat", 0.02, 1.0),
            TenantSpec::best_effort("batch", 1.0).with_rate_limit(20.0),
        ];
        let cfg = ServeConfig::new(
            WorkloadConfig {
                phases: vec![Phase { arrival: Arrival::Poisson { rate: 800.0 }, duration: 0.2 }],
                images_min: 1,
                images_max: 4,
                seed: 7,
            },
            BatchPolicy::new(32, 0.005),
        )
        .with_tenants(tenants);
        let report = serve_tenants(&engine, &net, &cfg).unwrap();
        let slo = report.slo.as_ref().unwrap();
        assert!(slo.balanced());
        assert!(slo.rejected > 0, "the 20 req/s cap must reject under ~400 req/s of traffic");
        let capped = &slo.tenants[1];
        assert!(capped.rejected > 0 && capped.completed > 0);
        // Rejected requests keep the 0.0 sentinel and are excluded from
        // the latency summary.
        assert_eq!(
            report.latency().count as u64,
            slo.tenants.iter().map(|t| t.completed).sum::<u64>()
        );
        assert_eq!(
            report.latencies.iter().filter(|&&l| l == 0.0).count() as u64,
            slo.rejected,
            "only rejected requests may hold the sentinel in a shed-free run"
        );
    }

    #[test]
    fn interactive_budget_commits_earlier_than_class_blind() {
        // A tight interactive budget must cut that tenant's p99 below
        // the class-blind run's, and the early-commit counter must see
        // the deadline rule fire.
        let engine = tiny_engine();
        let net = tiny_net();
        let wl = WorkloadConfig {
            phases: vec![Phase { arrival: Arrival::Poisson { rate: 300.0 }, duration: 0.3 }],
            images_min: 1,
            images_max: 4,
            seed: 11,
        };
        let policy = BatchPolicy::new(64, 0.02);
        let tenants = vec![
            TenantSpec::interactive("chat", 0.008, 1.0),
            TenantSpec::best_effort("batch", 1.0),
        ];
        let aware = serve_tenants(
            &engine,
            &net,
            &ServeConfig::new(wl.clone(), policy).with_tenants(tenants.clone()),
        )
        .unwrap();
        let blind = crate::server::serve(&engine, &net, &ServeConfig::new(wl, policy)).unwrap();
        let slo = aware.slo.as_ref().unwrap();
        assert!(slo.early_commits > 0, "the 4 ms interactive budget must fire early commits");
        let chat_p99 = slo.tenants[0].latency.p99;
        assert!(
            chat_p99 < blind.latency().p99,
            "interactive p99 {chat_p99} must beat class-blind {}",
            blind.latency().p99
        );
    }
}
