//! Device-lifecycle health: whole-device fault tolerance for the fleet.
//!
//! PR 4's fault model injects *kernel-level* faults inside a healthy
//! device; this module models the device itself dying. A seeded
//! [`DeviceFaultPlan`](memcnn_gpusim::DeviceFaultPlan) expands — purely,
//! on the simulated stream clock — into crash / hang / planned-drain
//! events, and each fleet device runs the lifecycle state machine
//!
//! ```text
//! Healthy → Draining → Down → Warming → Healthy
//!     \________________↗
//!      (crash / hang)
//! ```
//!
//! - **Crash**: the device halts instantly. Its queued (uncommitted)
//!   requests fail over to the transit buffer and re-place onto healthy
//!   devices, re-admitted through the existing deadline/shed ladder.
//! - **Hang**: like a crash, but the repair clock starts only once the
//!   device's in-flight work would have drained (`max(t, gpu_free)`).
//! - **Drain**: a planned decommission — the device serves out its
//!   queue (placement stops routing to it), then goes `Down`.
//! - **Down → Warming**: after `repair` simulated seconds a warm spare
//!   comes up. Its per-(device, network, bucket)
//!   [`PlanCache`](crate::plan_cache::PlanCache) is reset cold, and
//!   because plan compiles charge *zero* simulated time, the healer
//!   charges the spin-up explicitly: `gpu_free` advances past the
//!   warmup window, which is what makes recovery visible as a latency
//!   bump in the timeline.
//! - **Warming → Healthy**: after `warmup` seconds the device takes new
//!   placements again.
//!
//! **Determinism.** Health transitions are evaluated only at routing
//! points (every arrival, in arrival order) plus one flush when routing
//! exhausts — call sites the sequential and parallel fleet loops reach
//! with bit-identical state (the route-first rule guarantees both loops
//! have applied exactly the commits launching before each arrival).
//! Between routing points, commits are bounded by the device's next
//! crash/hang time (`DeviceState::halt`), so no batch is ever committed
//! past a pending failure in either loop. The result: fleet reports
//! replay byte-identically across `MEMCNN_THREADS` and vs
//! `MEMCNN_FLEET_SEQUENTIAL=1` with device faults on (pinned by
//! `tests/failover.rs`).
//!
//! The extended balance invariant this layer maintains, per tenant and
//! in aggregate:
//!
//! ```text
//! admitted == completed + shed + rejected + in_flight + failed_over_in_transit
//! ```
//!
//! `failed_over_in_transit` is the transit-buffer residual — always 0
//! for drained runs (the flush re-places or sheds every transiting
//! request), but nonzero mid-run while no healthy target exists.

use memcnn_gpusim::{DeviceFault, DeviceFaultKind};
use serde::Serialize;
use std::collections::VecDeque;

/// Lifecycle state of one fleet device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum HealthState {
    /// Serving and taking new placements.
    Healthy,
    /// Serving out its queue; placement routes around it.
    Draining,
    /// Dead: committing nothing until the repair clock expires.
    Down,
    /// Repaired spare charging its cold-cache warmup; parked work
    /// serves once the warmup window closes, new placements wait for
    /// `Healthy`.
    Warming,
}

impl HealthState {
    /// Numeric encoding for the `devK.health` gauge: 0 = Healthy,
    /// 1 = Draining, 2 = Down, 3 = Warming.
    pub fn gauge(self) -> f64 {
        match self {
            HealthState::Healthy => 0.0,
            HealthState::Draining => 1.0,
            HealthState::Down => 2.0,
            HealthState::Warming => 3.0,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Draining => write!(f, "draining"),
            HealthState::Down => write!(f, "down"),
            HealthState::Warming => write!(f, "warming"),
        }
    }
}

/// One device's lifecycle bookkeeping: its state, its time-ordered
/// slice of the expanded fault plan, and the clocks of the current
/// drain / repair / warmup window.
pub(crate) struct DeviceHealth {
    /// Current lifecycle state.
    pub state: HealthState,
    /// Remaining fault events for this device, ascending by time.
    pub events: VecDeque<DeviceFault>,
    /// When the drain that put the device in `Draining` fired.
    pub fault_t: f64,
    /// Simulated time the current `Down` window ends.
    pub down_until: f64,
    /// Simulated time the current `Warming` window ends.
    pub warm_until: f64,
}

impl DeviceHealth {
    pub fn new(events: VecDeque<DeviceFault>) -> DeviceHealth {
        DeviceHealth {
            state: HealthState::Healthy,
            events,
            fault_t: 0.0,
            down_until: 0.0,
            warm_until: 0.0,
        }
    }

    /// The device's commit horizon: the next pending crash or hang.
    /// Batches launching at or past it must not commit before the event
    /// is processed (drains do not halt — a draining device keeps
    /// serving).
    pub fn halt(&self) -> f64 {
        self.events
            .iter()
            .find(|e| matches!(e.kind, DeviceFaultKind::Crash | DeviceFaultKind::Hang))
            .map_or(f64::INFINITY, |e| e.t)
    }
}

/// Fleet-wide health state for one run: per-device machines, the
/// failover transit buffer, and the recovery tallies that become the
/// report's [`HealthReport`] and the `fleet.*` perf counters.
pub(crate) struct HealthRun {
    /// Per-device lifecycle machines, engine order.
    pub devs: Vec<DeviceHealth>,
    /// `Down` duration, simulated seconds (from the plan).
    pub repair: f64,
    /// `Warming` duration, simulated seconds (from the plan).
    pub warmup: f64,
    /// Failed-over requests awaiting a healthy placement target.
    pub transit: Vec<crate::workload::Request>,
    /// Requests that ever failed over, per tenant (cumulative — a
    /// request crossing two crashes counts twice; *not* part of the
    /// balance identity).
    pub failed_over: Vec<u64>,
    /// Requests failed over *from* each device (cumulative).
    pub dev_failed_over: Vec<u64>,
    /// Transit requests shed at the flush because no non-`Down` device
    /// remained, per tenant (these *are* part of the shed totals).
    pub transit_shed: Vec<u64>,
    /// Transit requests re-placed onto a healthy device.
    pub requeued: u64,
    /// `* → Down` transitions.
    pub downs: u64,
    /// `Warming → Healthy` transitions.
    pub ups: u64,
    /// Cached plans invalidated by heals (each must recompile cold on
    /// the warmed device).
    pub warm_compiles: u64,
    /// Whether the routing-exhausted flush has run.
    pub flushed: bool,
    /// Last emitted `fleet.devices.healthy` sample (gauges emit on
    /// change only).
    pub last_healthy: Option<usize>,
    /// Last emitted `fleet.failover.backlog` sample.
    pub last_backlog: Option<usize>,
}

impl HealthRun {
    /// Devices currently `Healthy`.
    pub fn healthy(&self) -> usize {
        self.devs.iter().filter(|d| d.state == HealthState::Healthy).count()
    }
}

/// The health section of a [`FleetReport`](crate::fleet::FleetReport):
/// recovery tallies for a run with a live `DeviceFaultPlan`. Omitted
/// (`None`) when no plan is configured, the plan is a no-op, or
/// `MEMCNN_HEALTH_DISABLE=1` — keeping those reports byte-identical to
/// the pre-health wire format.
#[derive(Clone, Debug, Serialize)]
pub struct HealthReport {
    /// `* → Down` transitions across the fleet.
    pub downs: u64,
    /// `Warming → Healthy` recoveries.
    pub ups: u64,
    /// Failed-over requests re-placed onto a healthy device.
    pub requeued: u64,
    /// Cached plans invalidated by heals (recompiled cold on demand).
    pub warm_compiles: u64,
    /// Requests that ever failed over (cumulative; not in the balance
    /// identity — a request can fail over more than once).
    pub failed_over: u64,
    /// Requests still in the transit buffer at the end of the run
    /// (0 for drained runs; the balance identity's new term).
    pub failed_over_in_transit: u64,
    /// Transit requests shed because no non-`Down` device remained.
    pub transit_shed: u64,
    /// Requests failed over from each device, engine order.
    pub device_failed_over: Vec<u64>,
    /// Final lifecycle state per device, engine order.
    pub states: Vec<HealthState>,
}

/// Whether `MEMCNN_HEALTH_DISABLE` forces the health layer off even
/// when a `DeviceFaultPlan` is configured — the escape hatch and the
/// no-op oracle: a disabled run must replay the plan-free schedule
/// field for field (only the config echo differs). Read on every call
/// (like `MEMCNN_SLO_DISABLE`, not once-locked) so tests can pin both
/// modes in one process.
pub(crate) fn health_disabled() -> bool {
    health_disable_from(std::env::var("MEMCNN_HEALTH_DISABLE").ok().as_deref())
}

/// Parse a `MEMCNN_HEALTH_DISABLE` value, warning on stderr and keeping
/// the health layer active when it is present but not a recognized
/// boolean. Pure so the fallback is unit-testable; the `Once`
/// guarantees the warning fires at most once per process.
fn health_disable_from(raw: Option<&str>) -> bool {
    match raw {
        None => false,
        Some("1") | Some("true") => true,
        Some("0") | Some("false") => false,
        Some(v) => {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "memcnn: ignoring malformed MEMCNN_HEALTH_DISABLE={v:?} \
                     (want 1/0/true/false); keeping the health layer active"
                );
            });
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disable_knob_parses_and_malformed_falls_back() {
        assert!(!health_disable_from(None));
        assert!(health_disable_from(Some("1")));
        assert!(health_disable_from(Some("true")));
        assert!(!health_disable_from(Some("0")));
        assert!(!health_disable_from(Some("false")));
        // Malformed values warn once on stderr and keep the health
        // layer active (the MEMCNN_FLEET_SEQUENTIAL fallback convention).
        assert!(!health_disable_from(Some("yes")));
        assert!(!health_disable_from(Some("")));
        assert!(!health_disable_from(Some(" 1 ")));
    }

    #[test]
    fn halt_is_the_next_crash_or_hang_never_a_drain() {
        let mk = |kind, t| DeviceFault { t, device: 0, kind };
        let dh = DeviceHealth::new(VecDeque::from(vec![
            mk(DeviceFaultKind::Drain, 0.1),
            mk(DeviceFaultKind::Hang, 0.3),
            mk(DeviceFaultKind::Crash, 0.5),
        ]));
        assert_eq!(dh.halt(), 0.3, "drains never halt commits");
        let quiet = DeviceHealth::new(VecDeque::new());
        assert_eq!(quiet.halt(), f64::INFINITY);
        assert_eq!(quiet.state, HealthState::Healthy);
    }

    #[test]
    fn gauge_encoding_is_stable() {
        assert_eq!(HealthState::Healthy.gauge(), 0.0);
        assert_eq!(HealthState::Draining.gauge(), 1.0);
        assert_eq!(HealthState::Down.gauge(), 2.0);
        assert_eq!(HealthState::Warming.gauge(), 3.0);
        assert_eq!(HealthState::Warming.to_string(), "warming");
    }
}
