//! The per-bucket plan cache: first use of a batch-size bucket compiles
//! the network at that `N` through [`Engine::plan`] (layout DP + mechanism
//! selection, accelerated by the simulation cache's prewarms); every later
//! batch in the bucket reuses the compiled plan. Hits and misses go to the
//! global perf registry (`serve.plan.hit` / `serve.plan.miss`), and each
//! compile bumps `engine.plan.compile` inside the engine — together they
//! prove repeat buckets never re-run the layout DP.
//!
//! For the fleet's batched cold-start compilation there is a *staged*
//! side-slot: [`PlanCache::compile_detached`] compiles a bucket without
//! touching the hit/miss discipline, [`PlanCache::stage`] parks the
//! result, and the next [`PlanCache::get`] for that bucket consumes it —
//! still counted as the miss it would have been. Staged results that are
//! never asked for are dropped with the cache, so speculative prewarms
//! cannot perturb counters or report contents.

use memcnn_core::{Engine, EngineError, Mechanism, Network, Plan};
use memcnn_trace::perf;
use std::collections::BTreeMap;

/// Compiled plans keyed by batch-size bucket, for one network under one
/// mechanism on one engine.
pub struct PlanCache<'e> {
    engine: &'e Engine,
    mech: Mechanism,
    template: Network,
    plans: BTreeMap<usize, Plan>,
    /// Detached-compile results awaiting their first [`PlanCache::get`];
    /// never read by [`PlanCache::plans`] or the report rollups.
    staged: BTreeMap<usize, Result<Plan, EngineError>>,
}

impl<'e> PlanCache<'e> {
    /// Empty cache for `net` (any batch size; it is re-batched per bucket)
    /// under `mech`.
    pub fn new(engine: &'e Engine, net: &Network, mech: Mechanism) -> PlanCache<'e> {
        PlanCache {
            engine,
            mech,
            template: net.clone(),
            plans: BTreeMap::new(),
            staged: BTreeMap::new(),
        }
    }

    /// The plan for `bucket`, compiling it on first use. Plan failures are
    /// classified through [`EngineError::plan`] so callers can tell
    /// degradable plan-time OOM from structural infeasibility.
    pub fn get(&mut self, bucket: usize) -> Result<&Plan, EngineError> {
        if self.plans.contains_key(&bucket) {
            perf::incr("serve.plan.hit");
        } else {
            perf::incr("serve.plan.miss");
            // A staged detached compile stands in for the inline compile
            // this miss would have run — same result, same error, same
            // counter sequence.
            let plan = match self.staged.remove(&bucket) {
                Some(staged) => staged?,
                None => self
                    .engine
                    .plan_at(&self.template, self.mech, bucket)
                    .map_err(|e| EngineError::plan(bucket, e))?,
            };
            self.plans.insert(bucket, plan);
        }
        self.plans
            .get(&bucket)
            .ok_or_else(|| EngineError::Fatal(format!("plan cache lost bucket {bucket}")))
    }

    /// Compile `bucket` without consulting or updating the cache and
    /// without touching the hit/miss counters (the engine still counts
    /// the compile itself). Safe to call from worker threads; pair with
    /// [`PlanCache::stage`] on the orchestrator.
    pub fn compile_detached(&self, bucket: usize) -> Result<Plan, EngineError> {
        self.engine
            .plan_at(&self.template, self.mech, bucket)
            .map_err(|e| EngineError::plan(bucket, e))
    }

    /// Park a detached compile's result for `bucket`; the next
    /// [`PlanCache::get`] for the bucket consumes it instead of compiling
    /// inline. A no-op once the bucket is properly cached.
    pub fn stage(&mut self, bucket: usize, result: Result<Plan, EngineError>) {
        if !self.plans.contains_key(&bucket) {
            self.staged.insert(bucket, result);
        }
    }

    /// Whether `bucket` has a compiled plan (staged results don't count).
    pub fn contains(&self, bucket: usize) -> bool {
        self.plans.contains_key(&bucket)
    }

    /// Whether a staged result is parked for `bucket`.
    pub fn has_staged(&self, bucket: usize) -> bool {
        self.staged.contains_key(&bucket)
    }

    /// Compile every bucket in `buckets` up front (e.g. to move all plan
    /// compiles before the event loop). Counted as misses, not hits.
    pub fn prewarm(&mut self, buckets: &[usize]) -> Result<(), EngineError> {
        for &b in buckets {
            if !self.plans.contains_key(&b) {
                perf::incr("serve.plan.miss");
                let plan = self
                    .engine
                    .plan_at(&self.template, self.mech, b)
                    .map_err(|e| EngineError::plan(b, e))?;
                self.plans.insert(b, plan);
            }
        }
        Ok(())
    }

    /// Drop every compiled and staged plan, leaving the cache as freshly
    /// constructed. The fleet's healer calls this when a replacement
    /// device warms up: its per-(device, network, bucket) cache starts
    /// cold and every discarded plan (the return value) must be
    /// recompiled on demand.
    pub fn reset(&mut self) -> usize {
        let dropped = self.plans.len();
        self.plans.clear();
        self.staged.clear();
        dropped
    }

    /// All compiled plans, ascending by bucket.
    pub fn plans(&self) -> &BTreeMap<usize, Plan> {
        &self.plans
    }

    /// Number of compiled buckets.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_core::{LayoutThresholds, NetworkBuilder};
    use memcnn_gpusim::DeviceConfig;
    use memcnn_tensor::Shape;

    #[test]
    fn first_use_compiles_and_repeats_reuse() {
        let engine =
            Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper());
        let net = NetworkBuilder::new("pc", Shape::new(8, 4, 12, 12))
            .conv("CV", 8, 3, 1, 1)
            .build()
            .unwrap();
        let mut cache = PlanCache::new(&engine, &net, Mechanism::Opt);
        assert!(cache.is_empty());
        let compiles0 = perf::get("engine.plan.compile");
        let t1 = cache.get(16).unwrap().total_time();
        let after_first = perf::get("engine.plan.compile");
        assert!(after_first > compiles0, "first use must compile");
        let t2 = cache.get(16).unwrap().total_time();
        assert_eq!(perf::get("engine.plan.compile"), after_first, "repeat must not compile");
        assert_eq!(t1.to_bits(), t2.to_bits());
        assert_eq!(cache.len(), 1);
        // A different bucket compiles a different plan at its own N.
        assert_eq!(cache.get(64).unwrap().batch, 64);
        assert_eq!(cache.len(), 2);
    }
}
