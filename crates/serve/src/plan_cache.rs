//! The per-bucket plan cache: first use of a batch-size bucket compiles
//! the network at that `N` through [`Engine::plan`] (layout DP + mechanism
//! selection, accelerated by the simulation cache's prewarms); every later
//! batch in the bucket reuses the compiled plan. Hits and misses go to the
//! global perf registry (`serve.plan.hit` / `serve.plan.miss`), and each
//! compile bumps `engine.plan.compile` inside the engine — together they
//! prove repeat buckets never re-run the layout DP.

use memcnn_core::{Engine, EngineError, Mechanism, Network, Plan};
use memcnn_trace::perf;
use std::collections::BTreeMap;

/// Compiled plans keyed by batch-size bucket, for one network under one
/// mechanism on one engine.
pub struct PlanCache<'e> {
    engine: &'e Engine,
    mech: Mechanism,
    template: Network,
    plans: BTreeMap<usize, Plan>,
}

impl<'e> PlanCache<'e> {
    /// Empty cache for `net` (any batch size; it is re-batched per bucket)
    /// under `mech`.
    pub fn new(engine: &'e Engine, net: &Network, mech: Mechanism) -> PlanCache<'e> {
        PlanCache { engine, mech, template: net.clone(), plans: BTreeMap::new() }
    }

    /// The plan for `bucket`, compiling it on first use. Plan failures are
    /// classified through [`EngineError::plan`] so callers can tell
    /// degradable plan-time OOM from structural infeasibility.
    pub fn get(&mut self, bucket: usize) -> Result<&Plan, EngineError> {
        if self.plans.contains_key(&bucket) {
            perf::incr("serve.plan.hit");
        } else {
            perf::incr("serve.plan.miss");
            let plan = self
                .engine
                .plan_at(&self.template, self.mech, bucket)
                .map_err(|e| EngineError::plan(bucket, e))?;
            self.plans.insert(bucket, plan);
        }
        self.plans
            .get(&bucket)
            .ok_or_else(|| EngineError::Fatal(format!("plan cache lost bucket {bucket}")))
    }

    /// Compile every bucket in `buckets` up front (e.g. to move all plan
    /// compiles before the event loop). Counted as misses, not hits.
    pub fn prewarm(&mut self, buckets: &[usize]) -> Result<(), EngineError> {
        for &b in buckets {
            if !self.plans.contains_key(&b) {
                perf::incr("serve.plan.miss");
                let plan = self
                    .engine
                    .plan_at(&self.template, self.mech, b)
                    .map_err(|e| EngineError::plan(b, e))?;
                self.plans.insert(b, plan);
            }
        }
        Ok(())
    }

    /// All compiled plans, ascending by bucket.
    pub fn plans(&self) -> &BTreeMap<usize, Plan> {
        &self.plans
    }

    /// Number of compiled buckets.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_core::{LayoutThresholds, NetworkBuilder};
    use memcnn_gpusim::DeviceConfig;
    use memcnn_tensor::Shape;

    #[test]
    fn first_use_compiles_and_repeats_reuse() {
        let engine =
            Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper());
        let net = NetworkBuilder::new("pc", Shape::new(8, 4, 12, 12))
            .conv("CV", 8, 3, 1, 1)
            .build()
            .unwrap();
        let mut cache = PlanCache::new(&engine, &net, Mechanism::Opt);
        assert!(cache.is_empty());
        let compiles0 = perf::get("engine.plan.compile");
        let t1 = cache.get(16).unwrap().total_time();
        let after_first = perf::get("engine.plan.compile");
        assert!(after_first > compiles0, "first use must compile");
        let t2 = cache.get(16).unwrap().total_time();
        assert_eq!(perf::get("engine.plan.compile"), after_first, "repeat must not compile");
        assert_eq!(t1.to_bits(), t2.to_bits());
        assert_eq!(cache.len(), 1);
        // A different bucket compiles a different plan at its own N.
        assert_eq!(cache.get(64).unwrap().batch, 64);
        assert_eq!(cache.len(), 2);
    }
}
