//! memcnn-serve: a deterministic discrete-event inference-serving
//! simulator with dynamic batching and batch-size-aware layout plans.
//!
//! The paper's central observation — the best data layout depends on the
//! batch size `N` — has a serving-side consequence: a server that batches
//! dynamically changes `N` from batch to batch, so the optimal layout
//! plan changes *while serving*. This crate closes that loop on top of
//! `memcnn-core`'s planner and the GPU simulator:
//!
//! 1. [`workload`] generates a seeded synthetic request stream (Poisson
//!    or uniform arrivals in phases, per-request image counts).
//! 2. [`batch`] forms batches under a `max_batch_images` /
//!    `max_queue_delay` policy and rounds them up to power-of-two
//!    buckets.
//! 3. [`plan_cache`] compiles one layout plan per bucket on first use
//!    (`Engine::plan_at`: layout DP + mechanism selection at that `N`)
//!    and reuses it for every later batch in the bucket — so the server
//!    observably flips between CHWN and NCHW plans as load changes.
//! 4. [`server`] advances a simulated clock through the event loop and
//!    reports p50/p95/p99 latency, throughput, queue depth, bucket
//!    occupancy, and plan-cache hits/misses (via `trace::perf`), plus a
//!    `Track::Serve` span per launched batch when tracing is active.
//!
//! Everything is a pure function of `(engine config, network,
//! ServeConfig)`: same inputs give bit-identical reports, independent of
//! `MEMCNN_THREADS`. That purity extends to fault injection: with a
//! seeded [`FaultPlan`](memcnn_gpusim::FaultPlan) in the config, [`serve`]
//! answers injected faults with [`policy`]'s degradation ladder (bounded
//! retry, OOM bucket downshift, deadline shedding, circuit-style degraded
//! mode) and still replays bit-identically.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod batch;
pub mod capacity;
pub mod metrics;
pub mod plan_cache;
pub mod policy;
pub mod server;
pub mod workload;

pub use batch::{bucket_for, buckets, BatchPolicy};
pub use capacity::{capacity_images_per_sec, feasible_max_batch};
pub use metrics::{latency_stats, percentile, LatencyStats};
pub use plan_cache::PlanCache;
pub use policy::{FaultPolicy, FaultStats};
pub use server::{serve, BatchRecord, BucketStats, ServeConfig, ServeReport};
pub use workload::{generate, Arrival, Phase, Request, WorkloadConfig};
