//! memcnn-serve: a deterministic discrete-event inference-serving
//! simulator with dynamic batching and batch-size-aware layout plans.
//!
//! The paper's central observation — the best data layout depends on the
//! batch size `N` — has a serving-side consequence: a server that batches
//! dynamically changes `N` from batch to batch, so the optimal layout
//! plan changes *while serving*. This crate closes that loop on top of
//! `memcnn-core`'s planner and the GPU simulator:
//!
//! 1. [`workload`] generates a seeded synthetic request stream (Poisson
//!    or uniform arrivals in phases, per-request image counts).
//! 2. [`batch`] forms batches under a `max_batch_images` /
//!    `max_queue_delay` policy and rounds them up to power-of-two
//!    buckets.
//! 3. [`plan_cache`] compiles one layout plan per bucket on first use
//!    (`Engine::plan_at`: layout DP + mechanism selection at that `N`)
//!    and reuses it for every later batch in the bucket — so the server
//!    observably flips between CHWN and NCHW plans as load changes.
//! 4. [`server`] advances a simulated clock through the event loop and
//!    reports p50/p95/p99 latency, throughput, queue depth, bucket
//!    occupancy, and plan-cache hits/misses (via `trace::perf`), plus a
//!    `Track::Serve` span per launched batch when tracing is active.
//!
//! Everything is a pure function of `(engine config, network,
//! ServeConfig)`: same inputs give bit-identical reports, independent of
//! `MEMCNN_THREADS`. That purity extends to fault injection: with a
//! seeded [`FaultPlan`](memcnn_gpusim::FaultPlan) in the config, [`serve`]
//! answers injected faults with [`policy`]'s degradation ladder (bounded
//! retry, OOM bucket downshift, deadline shedding, circuit-style degraded
//! mode) and still replays bit-identically.
//!
//! # Multi-device fleets
//!
//! [`fleet`] scales the same loop out to K simulated devices
//! (heterogeneous allowed — the same bucket compiles different layout
//! plans on devices with different `(Ct, Nt)` thresholds): one request
//! stream, per-(device, network, bucket) plan caches for cross-network
//! multiplexing, a pluggable [`placement`] policy per arrival
//! (round-robin, least-loaded, memory-aware), and an optional
//! [`adaptive`] estimator that re-derives `max_queue_delay` from the
//! observed inter-arrival EMA at workload phase boundaries. The fleet
//! event loop is single-threaded and bit-deterministic; a K = 1 fleet
//! reproduces [`serve`]'s report byte for byte.
//!
//! # Multi-tenant SLO scheduling
//!
//! [`tenant`] + [`slo`] add service classes on top of either loop:
//! tenants declared in the config ([`TenantSpec`] with
//! `Interactive{p99_budget}` / `Standard` / `BestEffort` classes and
//! arrival weights), deterministic per-request attribution that never
//! perturbs the seeded stream, token-bucket admission control,
//! deadline-aware batch commit (per-class queue-delay budgets), a
//! weighted-fair deficit tiebreak when classes contend for a device
//! slot, and per-tenant accounting with the
//! `admitted == completed + shed + rejected + in_flight` balance
//! invariant. `MEMCNN_SLO_DISABLE=1` forces the class-blind scheduler
//! as an exact equivalence oracle; with no tenants configured the
//! reports are byte-identical to the tenant-free builds.
//!
//! # Device failures & failover
//!
//! [`health`] adds whole-device fault tolerance to the fleet: a seeded
//! [`DeviceFaultPlan`](memcnn_gpusim::DeviceFaultPlan) drives each
//! device through `Healthy → Draining → Down → Warming → Healthy`,
//! queued work fails over and re-places onto healthy devices, warm
//! spares come back with cold plan caches (the recompilation cost is
//! charged on the simulated clock), and the balance invariant extends
//! to `admitted == completed + shed + rejected + in_flight +
//! failed_over_in_transit`. `MEMCNN_HEALTH_DISABLE=1` switches the
//! layer off as the no-op oracle; everything stays bit-deterministic
//! across `MEMCNN_THREADS` and vs `MEMCNN_FLEET_SEQUENTIAL=1`.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod adaptive;
pub mod batch;
pub mod capacity;
pub mod fleet;
pub mod health;
pub mod metrics;
pub mod placement;
pub mod plan_cache;
pub mod policy;
mod route_index;
pub mod server;
pub mod slo;
pub mod tenant;
pub mod workload;

pub use adaptive::AdaptivePolicy;
pub use batch::{bucket_for, buckets, BatchPolicy};
pub use capacity::{capacity_images_per_sec, feasible_max_batch};
pub use fleet::{serve_fleet, DeviceReport, FleetBatch, FleetConfig, FleetReport, NetworkBuckets};
pub use health::{HealthReport, HealthState};
pub use metrics::{
    latency_stats, latency_stats_served, latency_stats_sorted, percentile, LatencyStats,
};
pub use placement::{
    DeviceLoad, LeastLoaded, MemoryAware, Placement, PlacementCtx, PlacementPolicy, QueueWeighted,
    RoundRobin,
};
pub use plan_cache::PlanCache;
pub use policy::{FaultPolicy, FaultStats};
pub use server::{serve, BatchRecord, BucketStats, ServeConfig, ServeReport};
pub use tenant::{tenant_tags, SloFairness, SloReport, TenantClass, TenantReport, TenantSpec};
pub use workload::{generate, Arrival, Phase, Request, WorkloadConfig};
