//! Adaptive batching: re-estimate `max_queue_delay` from observed load.
//!
//! A fixed `max_queue_delay` is a bet about the arrival rate: too short
//! and quiet periods launch tiny batches in sub-optimal buckets; too
//! long and bursts queue pointlessly behind a full window. The
//! [`AdaptivePolicy`] closes the loop deterministically: the fleet
//! tracks an exponential moving average of inter-arrival gaps and, at
//! each workload *phase boundary* (never mid-phase, so one run's batch
//! boundaries cannot feed back into its own estimate), sets the delay to
//! the time `target_batch` arrivals take at the observed rate, clamped
//! to `[min_delay, max_delay]`. All inputs are simulated observations of
//! a seeded stream, so the estimator replays bit-identically.

use serde::Serialize;

/// Bounded EMA-driven `max_queue_delay` estimator.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct AdaptivePolicy {
    /// EMA smoothing factor in (0, 1]: weight of the newest gap.
    pub alpha: f64,
    /// Images the window should collect at the observed rate (the delay
    /// aims for `target_batch` arrivals per window).
    pub target_batch: f64,
    /// Lower clamp on the derived delay, seconds.
    pub min_delay: f64,
    /// Upper clamp on the derived delay, seconds.
    pub max_delay: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> AdaptivePolicy {
        AdaptivePolicy { alpha: 0.1, target_batch: 16.0, min_delay: 1e-4, max_delay: 0.05 }
    }
}

impl AdaptivePolicy {
    /// The delay for an observed mean inter-arrival gap: `target_batch *
    /// ema_gap`, clamped to `[min_delay, max_delay]`.
    pub fn delay(&self, ema_gap: f64) -> f64 {
        (self.target_batch * ema_gap).clamp(self.min_delay, self.max_delay)
    }

    /// Fold one observed gap into the EMA (`None` seeds it).
    pub fn update_ema(&self, ema: Option<f64>, gap: f64) -> f64 {
        match ema {
            None => gap,
            Some(e) => self.alpha * gap + (1.0 - self.alpha) * e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_tracks_rate_within_bounds() {
        let p = AdaptivePolicy { target_batch: 10.0, min_delay: 1e-3, max_delay: 0.02, alpha: 0.5 };
        // 1000 req/s -> 1 ms gaps -> 10 ms window.
        assert_eq!(p.delay(1e-3), 0.01);
        // Very fast arrivals clamp at min.
        assert_eq!(p.delay(1e-6), 1e-3);
        // Very slow arrivals clamp at max.
        assert_eq!(p.delay(1.0), 0.02);
    }

    #[test]
    fn ema_seeds_then_smooths() {
        let p = AdaptivePolicy { alpha: 0.25, ..AdaptivePolicy::default() };
        let e0 = p.update_ema(None, 4e-3);
        assert_eq!(e0, 4e-3);
        let e1 = p.update_ema(Some(e0), 8e-3);
        assert!((e1 - (0.25 * 8e-3 + 0.75 * 4e-3)).abs() < 1e-18);
    }
}
