//! An incrementally maintained tournament index over per-device
//! tentative-launch keys.
//!
//! The fleet event loop asks "which device owns the earliest launchable
//! batch?" before *every* route and commit. The straightforward answer
//! is a linear scan over all K devices, recomputing each device's best
//! lane from scratch — O(K · lanes) per event even though a single
//! event changes at most a handful of devices. This index caches each
//! device's best `(launch, network, tenant)` key and arranges the
//! winners in a complete binary tournament tree: a device whose state
//! changed is *marked* dirty, a refresh recomputes only dirty leaves
//! (O(log K) tree repair each), and the global winner is read off the
//! root in O(1).
//!
//! # Comparator = the scan's total order
//!
//! The linear scan the index replaces takes a device only on a strictly
//! smaller launch (`launch < best`), so ties go to the *lowest device
//! index*. The tree comparator is exactly that order — `(launch, d)`
//! with `f64` `==` launch ties broken by `d` — NOT `total_cmp`: IEEE
//! `==` treats `-0.0 == 0.0` as a tie (lowest device wins), which is
//! what the scan does, while `total_cmp` would order them and could
//! pick a different device. Equality of the comparator with the scan's
//! order is what makes the index swap report-byte-invisible; the
//! debug-build cross-check in `fleet::global_best` and the randomized
//! equivalence tests below pin it.
//!
//! The index does not know how keys are computed: `refresh` takes a
//! closure so the fleet can evaluate `device_best` against its own
//! state (and so this module is testable in isolation).

/// Sentinel for "no candidate" slots in the tree (empty leaves past K,
/// and subtrees with no launchable device).
const EMPTY: u32 = u32::MAX;

/// The tournament index. See the module docs for the maintenance
/// protocol: `mark` what changed, `refresh` before reading, `best` for
/// the winner.
pub(crate) struct RouteIndex {
    /// Cached per-device key: the device's earliest launchable
    /// `(launch, network, tenant)`, `None` when it has nothing
    /// launchable (blocked, idle, or halt-horizoned).
    cached: Vec<Option<(f64, usize, usize)>>,
    /// Devices whose cached key is stale.
    dirty: Vec<bool>,
    /// The stale devices, each listed once (drives the refresh).
    queue: Vec<usize>,
    /// Everything is stale (cheaper than K marks at barriers and
    /// phase-boundary delay changes).
    all_dirty: bool,
    /// Winner device per tree node; `tree[1]` is the root, leaf `d`
    /// lives at `base + d`.
    tree: Vec<u32>,
    base: usize,
    k: usize,
}

impl RouteIndex {
    /// An index over `k` devices with every key stale (the first
    /// `refresh` computes them all).
    pub(crate) fn new(k: usize) -> RouteIndex {
        let base = k.next_power_of_two().max(1);
        RouteIndex {
            cached: vec![None; k],
            dirty: vec![false; k],
            queue: Vec::with_capacity(k),
            all_dirty: true,
            tree: vec![EMPTY; 2 * base],
            base,
            k,
        }
    }

    /// Mark device `d`'s cached key stale (its queue, clock, health, or
    /// degradation state changed since the last refresh).
    pub(crate) fn mark(&mut self, d: usize) {
        if !self.all_dirty && !self.dirty[d] {
            self.dirty[d] = true;
            self.queue.push(d);
        }
    }

    /// Mark every device stale (barrier steps, delay changes, drain
    /// flushes — anything that may have moved state fleet-wide).
    pub(crate) fn mark_all(&mut self) {
        self.all_dirty = true;
        for f in &mut self.dirty {
            *f = false;
        }
        self.queue.clear();
    }

    /// Recompute every stale key via `key_of` and repair the tree.
    /// O(K) after `mark_all`, O(dirty · log K) otherwise.
    pub(crate) fn refresh<F>(&mut self, mut key_of: F)
    where
        F: FnMut(usize) -> Option<(f64, usize, usize)>,
    {
        if self.all_dirty {
            for d in 0..self.k {
                self.cached[d] = key_of(d);
                self.tree[self.base + d] = if self.cached[d].is_some() { d as u32 } else { EMPTY };
            }
            for v in (1..self.base).rev() {
                self.tree[v] = self.winner(self.tree[2 * v], self.tree[2 * v + 1]);
            }
            self.all_dirty = false;
            return;
        }
        while let Some(d) = self.queue.pop() {
            self.dirty[d] = false;
            self.cached[d] = key_of(d);
            let mut v = self.base + d;
            self.tree[v] = if self.cached[d].is_some() { d as u32 } else { EMPTY };
            v /= 2;
            // Repair all the way to the root: an unchanged winner can
            // still carry a changed key upward (the winning device
            // itself was the one refreshed), so no early exit.
            while v >= 1 {
                self.tree[v] = self.winner(self.tree[2 * v], self.tree[2 * v + 1]);
                v /= 2;
            }
        }
    }

    /// The fleet-wide earliest launchable batch, `(launch, d, n, t)` —
    /// the exact selection the linear device-major scan makes. Panics
    /// in debug builds if called with stale keys.
    pub(crate) fn best(&self) -> Option<(f64, usize, usize, usize)> {
        debug_assert!(
            !self.all_dirty && self.queue.is_empty(),
            "RouteIndex::best called before refresh"
        );
        let d = self.tree[1];
        if d == EMPTY {
            return None;
        }
        let (launch, n, t) = self.cached[d as usize].expect("tree winner has a key");
        Some((launch, d as usize, n, t))
    }

    /// Tournament comparator: lower `(launch, device)` wins, with IEEE
    /// `==` launch ties going to the lower device index — the linear
    /// scan's strict-`<` first-wins order (see module docs).
    fn winner(&self, a: u32, b: u32) -> u32 {
        let key = |x: u32| {
            if x == EMPTY {
                None
            } else {
                self.cached[x as usize].map(|(l, _, _)| l)
            }
        };
        match (key(a), key(b)) {
            (None, _) => b,
            (Some(_), None) => a,
            (Some(la), Some(lb)) => {
                if la < lb || (la == lb && a < b) {
                    a
                } else {
                    b
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The retained reference: the linear strict-`<` scan over the same
    /// keys.
    fn linear_best(keys: &[Option<(f64, usize, usize)>]) -> Option<(f64, usize, usize, usize)> {
        let mut best: Option<(f64, usize, usize, usize)> = None;
        for (d, key) in keys.iter().enumerate() {
            if let Some((launch, n, t)) = *key {
                if best.is_none_or(|(bl, _, _, _)| launch < bl) {
                    best = Some((launch, d, n, t));
                }
            }
        }
        best
    }

    /// Deterministic xorshift so the property test needs no rand dep.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn launch(&mut self) -> f64 {
            // A coarse grid so exact launch ties actually happen, plus
            // signed zeros to pin the IEEE `==` tie behaviour.
            match self.next() % 8 {
                0 => 0.0,
                1 => -0.0,
                r => (r % 5) as f64 * 0.25,
            }
        }
    }

    #[test]
    fn randomized_states_match_the_linear_scan() {
        // Property test (issue satellite): across fleet sizes, randomized
        // per-device keys, and randomized incremental updates, the index
        // picks exactly the linear scan's (device, network, tenant).
        for k in [1usize, 2, 3, 5, 8, 13, 64] {
            let mut rng = Rng(0x9E3779B97F4A7C15 ^ (k as u64) << 32 | 1);
            let mut keys: Vec<Option<(f64, usize, usize)>> = vec![None; k];
            let mut idx = RouteIndex::new(k);
            for round in 0..200 {
                // Mutate a random subset (sometimes everything).
                if round % 17 == 0 {
                    for key in keys.iter_mut() {
                        *key = (!rng.next().is_multiple_of(4)).then(|| {
                            (rng.launch(), (rng.next() % 3) as usize, (rng.next() % 2) as usize)
                        });
                    }
                    idx.mark_all();
                } else {
                    for _ in 0..(rng.next() % 4 + 1) {
                        let d = (rng.next() as usize) % k;
                        keys[d] = (!rng.next().is_multiple_of(4)).then(|| {
                            (rng.launch(), (rng.next() % 3) as usize, (rng.next() % 2) as usize)
                        });
                        idx.mark(d);
                    }
                }
                idx.refresh(|d| keys[d]);
                assert_eq!(idx.best(), linear_best(&keys), "k={k} round={round}");
            }
        }
    }

    #[test]
    fn exact_ties_go_to_the_lowest_device_index() {
        let mut idx = RouteIndex::new(4);
        let keys = [Some((1.5, 0, 0)), Some((1.5, 1, 0)), Some((0.5, 2, 0)), Some((0.5, 3, 0))];
        idx.refresh(|d| keys[d]);
        assert_eq!(idx.best(), Some((0.5, 2, 2, 0)), "tie between devices 2 and 3 picks 2");
        // Signed zero is an IEEE tie, not an ordered pair: -0.0 on a
        // higher device must NOT beat +0.0 on a lower one.
        let zeros = [Some((0.0, 7, 0)), Some((-0.0, 9, 0)), None, None];
        let mut idx = RouteIndex::new(4);
        idx.refresh(|d| zeros[d]);
        let best = idx.best();
        assert_eq!(best, linear_best(&zeros));
        assert_eq!(best.map(|(_, d, _, _)| d), Some(0));
    }

    #[test]
    fn marks_refresh_only_what_changed() {
        let mut calls: Vec<usize> = Vec::new();
        let mut idx = RouteIndex::new(8);
        idx.refresh(|d| {
            calls.push(d);
            Some((d as f64, 0, 0))
        });
        assert_eq!(calls.len(), 8, "initial refresh computes every key");
        calls.clear();
        idx.mark(3);
        idx.mark(3); // duplicate marks collapse
        idx.mark(6);
        idx.refresh(|d| {
            calls.push(d);
            Some(if d == 3 { (-1.0, 1, 0) } else { (d as f64, 0, 0) })
        });
        calls.sort_unstable();
        assert_eq!(calls, vec![3, 6], "only dirty leaves recompute");
        assert_eq!(idx.best(), Some((-1.0, 3, 1, 0)));
        // An empty refresh is free and the root stays valid.
        idx.refresh(|_| unreachable!("nothing is dirty"));
        assert_eq!(idx.best(), Some((-1.0, 3, 1, 0)));
    }
}
