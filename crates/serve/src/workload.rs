//! Seeded synthetic request streams: the open-loop arrival side of the
//! serving simulation. Every stream is a pure function of its
//! [`WorkloadConfig`] (the RNG is seeded and consumed in a fixed order),
//! so the same config always produces the same requests — the foundation
//! of the server's bit-identical determinism guarantee.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Arrival process of one workload phase.
#[derive(Clone, Copy, Debug)]
pub enum Arrival {
    /// Poisson arrivals at `rate` requests/second (i.i.d. exponential
    /// inter-arrival gaps) — the standard open-loop serving model.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate: f64,
    },
    /// Evenly spaced arrivals at `rate` requests/second (zero jitter;
    /// useful for reasoning about batcher edge cases).
    Uniform {
        /// Arrival rate, requests per second.
        rate: f64,
    },
}

impl Arrival {
    fn rate(&self) -> f64 {
        match *self {
            Arrival::Poisson { rate } | Arrival::Uniform { rate } => rate,
        }
    }
}

// Manual impl: the vendored serde derive handles unit enums only.
impl Serialize for Arrival {
    fn serialize_json(&self, out: &mut String) {
        let (process, rate) = match *self {
            Arrival::Poisson { rate } => ("poisson", rate),
            Arrival::Uniform { rate } => ("uniform", rate),
        };
        out.push_str("{\"process\":");
        process.serialize_json(out);
        out.push_str(",\"rate\":");
        rate.serialize_json(out);
        out.push('}');
    }
}

/// One phase of the workload: an arrival process held for `duration`
/// seconds. Chaining phases at different rates makes the effective batch
/// size — and therefore the optimal layout plan — change over one run.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Phase {
    /// The arrival process during this phase.
    pub arrival: Arrival,
    /// Phase length, seconds of simulated time.
    pub duration: f64,
}

/// A complete workload description.
#[derive(Clone, Debug, Serialize)]
pub struct WorkloadConfig {
    /// Phases, played back to back starting at t = 0.
    pub phases: Vec<Phase>,
    /// Smallest per-request image count (>= 1).
    pub images_min: usize,
    /// Largest per-request image count (>= `images_min`).
    pub images_max: usize,
    /// RNG seed; same seed + config = same stream, bit for bit.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Single-phase Poisson workload of single-image requests.
    pub fn poisson(rate: f64, duration: f64, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            phases: vec![Phase { arrival: Arrival::Poisson { rate }, duration }],
            images_min: 1,
            images_max: 1,
            seed,
        }
    }

    /// Total simulated duration across phases, seconds.
    pub fn duration(&self) -> f64 {
        self.phases.iter().map(|p| p.duration).sum()
    }
}

/// One inference request: `images` images arriving together at `arrival`.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Request {
    /// Stable id (generation order == arrival order).
    pub id: u64,
    /// Arrival time, seconds from stream start.
    pub arrival: f64,
    /// Number of images the request carries.
    pub images: usize,
}

/// Generate the request stream for `cfg`. Arrival times are strictly
/// increasing; phases with a non-positive rate contribute nothing.
pub fn generate(cfg: &WorkloadConfig) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (lo, hi) = (cfg.images_min.max(1), cfg.images_max.max(cfg.images_min.max(1)));
    let mut out = Vec::new();
    let mut phase_start = 0.0f64;
    for ph in &cfg.phases {
        let end = phase_start + ph.duration;
        let rate = ph.arrival.rate();
        if rate > 0.0 && ph.duration > 0.0 {
            let mut t = phase_start;
            loop {
                let gap = match ph.arrival {
                    Arrival::Poisson { rate } => {
                        let u: f64 = rng.gen_range(0.0f64..1.0);
                        -(1.0 - u).ln() / rate
                    }
                    Arrival::Uniform { rate } => 1.0 / rate,
                };
                t += gap;
                if t >= end {
                    break;
                }
                let images = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                out.push(Request { id: out.len() as u64, arrival: t, images });
            }
        }
        phase_start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = WorkloadConfig {
            phases: vec![
                Phase { arrival: Arrival::Poisson { rate: 500.0 }, duration: 0.5 },
                Phase { arrival: Arrival::Uniform { rate: 100.0 }, duration: 0.5 },
            ],
            images_min: 1,
            images_max: 4,
            seed: 42,
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival.to_bits(), y.arrival.to_bits());
            assert_eq!(x.images, y.images);
        }
        let c = generate(&WorkloadConfig { seed: 43, ..cfg });
        assert_ne!(
            a.iter().map(|r| r.arrival.to_bits()).collect::<Vec<_>>(),
            c.iter().map(|r| r.arrival.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn arrivals_are_sorted_and_bounded() {
        let cfg = WorkloadConfig {
            phases: vec![
                Phase { arrival: Arrival::Poisson { rate: 2000.0 }, duration: 0.25 },
                Phase { arrival: Arrival::Poisson { rate: 50.0 }, duration: 0.25 },
            ],
            images_min: 2,
            images_max: 8,
            seed: 7,
        };
        let reqs = generate(&cfg);
        for w in reqs.windows(2) {
            assert!(w[0].arrival < w[1].arrival);
        }
        for r in &reqs {
            assert!(r.arrival > 0.0 && r.arrival < 0.5);
            assert!((2..=8).contains(&r.images));
        }
        // The fast phase dominates the count.
        let fast = reqs.iter().filter(|r| r.arrival < 0.25).count();
        assert!(fast > reqs.len() / 2);
    }

    #[test]
    fn uniform_rate_yields_expected_count() {
        let cfg = WorkloadConfig {
            phases: vec![Phase { arrival: Arrival::Uniform { rate: 100.0 }, duration: 1.0 }],
            images_min: 1,
            images_max: 1,
            seed: 0,
        };
        let reqs = generate(&cfg);
        // Gaps of 10 ms over 1 s -> 99 arrivals strictly inside (0, 1).
        assert_eq!(reqs.len(), 99);
        assert_eq!(reqs.last().unwrap().id, 98);
    }

    #[test]
    fn zero_rate_phase_contributes_nothing() {
        let cfg = WorkloadConfig {
            phases: vec![
                Phase { arrival: Arrival::Poisson { rate: 0.0 }, duration: 1.0 },
                Phase { arrival: Arrival::Uniform { rate: 10.0 }, duration: 1.0 },
            ],
            images_min: 1,
            images_max: 1,
            seed: 1,
        };
        let reqs = generate(&cfg);
        assert!(!reqs.is_empty());
        assert!(reqs.iter().all(|r| r.arrival >= 1.0), "first phase must be silent");
    }
}
