//! Multi-device fleet serving: one request stream, K simulated devices,
//! cross-network multiplexing, and load-aware placement.
//!
//! The fleet generalizes [`serve`](crate::server::serve) along three
//! axes while keeping its discrete-event core intact:
//!
//! - **K devices** (heterogeneous allowed): each device is an
//!   independent engine with its own `gpu_free` clock, fault stream,
//!   and degradation state. The same bucket legitimately compiles
//!   *different* layout plans on a Titan-Black-class and a
//!   Titan-X-class device — their `(Ct, Nt)` thresholds differ — so
//!   plan caches are per-(device, network, bucket).
//! - **Placement** ([`PlacementPolicy`]): every arrival routes through
//!   a pluggable, deterministic policy with a per-device load snapshot.
//! - **Adaptive batching** ([`AdaptivePolicy`]): at workload phase
//!   boundaries the fleet re-derives `max_queue_delay` from the
//!   observed inter-arrival EMA (bounded, seeded — still bit-exact).
//!
//! The event loop is *logically* sequential — one global interleaving
//! of routes and commits — but executes in parallel between routing
//! barriers. Routing is a strict barrier: arrivals are placed one by
//! one until the next unrouted arrival is strictly later than every
//! tentative launch. Between barriers each device's commits touch only
//! that device's queues, clock, and fault stream, so active devices
//! step concurrently on the vendored rayon stand-in, each worker
//! recording under a `trace::fork()` shard that merges in device-index
//! order. Order-sensitive global effects (latency writes, recorder
//! gauges, shed totals, plan-cache hit bookkeeping) are deferred as
//! per-event [`Op`] lists and replayed at the barrier in the exact
//! order the sequential loop would have produced them (a greedy k-way
//! merge of per-device event queues — see `DESIGN.md` §14). Cold
//! buckets predicted at a barrier compile in one batched fan-out
//! ([`PlanCache::stage`]) instead of serially on first launch. The
//! result is a pure function of `(engine configs, networks,
//! FleetConfig)`: bit-identical across `MEMCNN_THREADS` and to the
//! retained sequential loop (`MEMCNN_FLEET_SEQUENTIAL=1`).
//!
//! **Exactness anchor**: with K = 1 and one network, every branch below
//! reduces to the single-device loop's arithmetic on the same values in
//! the same order, and `tests/fleet.rs` asserts the resulting report is
//! byte-identical to [`serve`](crate::server::serve)'s.

use crate::adaptive::AdaptivePolicy;
use crate::batch::{bucket_for, buckets, BatchPolicy};
use crate::capacity::feasible_max_batch;
use crate::health::{DeviceHealth, HealthReport, HealthRun, HealthState};
use crate::metrics::{latency_stats_served, LatencyStats};
use crate::placement::{DeviceLoad, Placement, PlacementCtx, PlacementPolicy};
use crate::plan_cache::PlanCache;
use crate::policy::{FaultPolicy, FaultStats};
use crate::route_index::RouteIndex;
use crate::server::{
    fault_span, form, launch_ladder, BatchRecord, BucketStats, LadderEnd, Outcome,
};
use crate::slo::Lane;
use crate::tenant::{lane_beats, settle_credits, tenant_tags, Admission, SloReport, TenantSpec};
use crate::workload::{self, Request, WorkloadConfig};
use memcnn_core::{Engine, EngineError, Mechanism, Network, Plan};
use memcnn_gpusim::{DeviceFaultKind, DeviceFaultPlan, FaultPlan};
use memcnn_metrics::{GaugeId, KeyId, MetricsTimeline, Recorder};
use memcnn_trace as trace;
use memcnn_trace::perf;
use serde::Serialize;
use std::collections::{BTreeSet, VecDeque};

/// Hot-path counters, resolved through the perf registry's lock exactly
/// once per process (every later bump is one relaxed atomic add).
static BARRIERS: perf::CachedCounter = perf::CachedCounter::new("fleet.barrier.count");
static PARALLEL_STEPS: perf::CachedCounter = perf::CachedCounter::new("fleet.step.parallel");
static BATCH_COMPILES: perf::CachedCounter = perf::CachedCounter::new("fleet.plan.batch_compile");
/// Orchestrator event tallies behind the fleet bench's events/sec
/// figure: one `fleet.route.count` per routed arrival, one
/// `fleet.commit.count` per committed batch (plan-OOM cap halvings are
/// re-selections, not commits).
static ROUTES: perf::CachedCounter = perf::CachedCounter::new("fleet.route.count");
static COMMITS: perf::CachedCounter = perf::CachedCounter::new("fleet.commit.count");

/// Everything a fleet run needs besides the engines and the networks.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// The synthetic request stream (one stream for the whole fleet;
    /// request `id % networks` selects the target network).
    pub workload: WorkloadConfig,
    /// The dynamic-batching policy (its `max_queue_delay` is the
    /// starting delay; [`FleetConfig::adaptive`] may re-derive it at
    /// phase boundaries).
    pub policy: BatchPolicy,
    /// Adaptive `max_queue_delay` re-estimation; `None` keeps the
    /// configured delay for the whole run.
    pub adaptive: Option<AdaptivePolicy>,
    /// Which device each arrival routes to.
    pub placement: Placement,
    /// Mechanism plans are compiled under.
    pub mechanism: Mechanism,
    /// Seeded fault injection, shared by every device (each device
    /// rolls its own launch-index stream, so timelines stay replayable).
    pub faults: Option<FaultPlan>,
    /// How each device responds to faults and queue pressure.
    pub fault_policy: FaultPolicy,
    /// SLO tenants. Empty (the default) keeps the class-blind loop and
    /// a report byte-identical to the pre-tenant one; non-empty turns on
    /// per-tenant lanes, deadline-aware commit, admission control, and
    /// the weighted-fair tiebreak (unless `MEMCNN_SLO_DISABLE=1`).
    pub tenants: Vec<TenantSpec>,
    /// Whole-device lifecycle faults (crash / hang / drain, plus the
    /// repair/warmup healer). `None` — or a no-op plan, or
    /// `MEMCNN_HEALTH_DISABLE=1` — keeps the health layer off and the
    /// report byte-identical to the pre-health one.
    pub device_faults: Option<DeviceFaultPlan>,
}

// Manual impl: `tenants` is omitted when empty and `device_faults` when
// `None` so default configs serialize to the exact bytes the derived
// impl produced before those fields existed (the report byte-identity
// pins in `tests/slo.rs` and `tests/failover.rs`).
impl Serialize for FleetConfig {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"workload\":");
        self.workload.serialize_json(out);
        out.push_str(",\"policy\":");
        self.policy.serialize_json(out);
        out.push_str(",\"adaptive\":");
        self.adaptive.serialize_json(out);
        out.push_str(",\"placement\":");
        self.placement.serialize_json(out);
        out.push_str(",\"mechanism\":");
        self.mechanism.serialize_json(out);
        out.push_str(",\"faults\":");
        self.faults.serialize_json(out);
        out.push_str(",\"fault_policy\":");
        self.fault_policy.serialize_json(out);
        if !self.tenants.is_empty() {
            out.push_str(",\"tenants\":");
            self.tenants.serialize_json(out);
        }
        if let Some(df) = &self.device_faults {
            out.push_str(",\"device_faults\":");
            df.serialize_json(out);
        }
        out.push('}');
    }
}

impl FleetConfig {
    /// `Opt`-mechanism, fault-free, fixed-delay config.
    pub fn new(workload: WorkloadConfig, policy: BatchPolicy, placement: Placement) -> FleetConfig {
        FleetConfig {
            workload,
            policy,
            adaptive: None,
            placement,
            mechanism: Mechanism::Opt,
            faults: None,
            fault_policy: FaultPolicy::default(),
            tenants: Vec::new(),
            device_faults: None,
        }
    }

    /// The same config with SLO tenants declared.
    pub fn with_tenants(mut self, tenants: Vec<TenantSpec>) -> FleetConfig {
        self.tenants = tenants;
        self
    }

    /// The same config with whole-device lifecycle faults enabled.
    pub fn with_device_faults(mut self, plan: DeviceFaultPlan) -> FleetConfig {
        self.device_faults = Some(plan);
        self
    }

    /// The same config with fault injection enabled.
    pub fn with_faults(mut self, faults: FaultPlan, policy: FaultPolicy) -> FleetConfig {
        self.faults = Some(faults);
        self.fault_policy = policy;
        self
    }

    /// The same config with adaptive delay estimation enabled.
    pub fn with_adaptive(mut self, adaptive: AdaptivePolicy) -> FleetConfig {
        self.adaptive = Some(adaptive);
        self
    }
}

/// One completed batch on one device, tagged with its network.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FleetBatch {
    /// The batch record (same shape as the single-device server's).
    pub record: BatchRecord,
    /// Index of the network the batch executed.
    pub network: u32,
}

/// Per-network bucket rollup on one device.
#[derive(Clone, Debug, Serialize)]
pub struct NetworkBuckets {
    /// Network name.
    pub network: String,
    /// Per-bucket aggregates, ascending by bucket (every compiled
    /// bucket appears, batches or not — mirroring the single-device
    /// report).
    pub buckets: Vec<BucketStats>,
}

/// One device's share of a finished fleet run.
#[derive(Clone, Debug, Serialize)]
pub struct DeviceReport {
    /// Device name (from the engine's device config).
    pub device: String,
    /// Requests routed to the device (served + shed).
    pub requests: usize,
    /// Images the device served.
    pub images: usize,
    /// The device's last activity (its `gpu_free` at drain), seconds.
    pub makespan: f64,
    /// Every completed batch, in launch order.
    pub batches: Vec<FleetBatch>,
    /// Per-network bucket rollups (entry per network the device
    /// compiled plans for).
    pub networks: Vec<NetworkBuckets>,
    /// Requests dropped on this device.
    pub shed_requests: usize,
    /// Fault accounting for this device (balanced per device).
    pub faults: FaultStats,
}

/// A finished fleet run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// The config the run used.
    pub config: FleetConfig,
    /// Network names, in `nets` order (request `id % len` routes here).
    pub networks: Vec<String>,
    /// Requests generated by the workload (served + shed).
    pub requests: usize,
    /// Per-request latency in request-id order; shed and
    /// admission-rejected requests keep the 0.0 sentinel. The
    /// determinism tests compare this bit for bit.
    pub latencies: Vec<f64>,
    /// Device each request routed to, in request-id order
    /// (`u32::MAX` for requests admission control rejected — they never
    /// reached placement).
    pub placements: Vec<u32>,
    /// Per-device reports, in engine order.
    pub devices: Vec<DeviceReport>,
    /// Completion of the last batch anywhere, seconds.
    pub makespan: f64,
    /// Requests dropped across the fleet.
    pub shed_requests: usize,
    /// Fleet-aggregate fault accounting (the sum over devices; balanced
    /// because each device is).
    pub faults: FaultStats,
    /// Gauge timelines on the simulated clock: per-device series are
    /// prefixed `dev{d}.` (`dev0.util`, `dev1.queue.images`, ...);
    /// fleet-wide series are unprefixed. Samples are taken at routing
    /// and commit boundaries, timestamped so every series — and the
    /// whole track — is monotonically non-decreasing in time.
    pub timeline: MetricsTimeline,
    /// Per-tenant accounting, fairness, and SLO violations; `None` for
    /// class-blind runs (no tenants, or `MEMCNN_SLO_DISABLE=1`).
    pub slo: Option<SloReport>,
    /// Device-lifecycle recovery tallies; `None` when no live
    /// `DeviceFaultPlan` (none configured, a no-op plan, or
    /// `MEMCNN_HEALTH_DISABLE=1`).
    pub health: Option<HealthReport>,
}

// Manual impl: `slo` and `health` are omitted when `None` so class-blind
// and fault-free reports keep the exact pre-feature byte layouts.
impl Serialize for FleetReport {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"config\":");
        self.config.serialize_json(out);
        out.push_str(",\"networks\":");
        self.networks.serialize_json(out);
        out.push_str(",\"requests\":");
        self.requests.serialize_json(out);
        out.push_str(",\"latencies\":");
        self.latencies.serialize_json(out);
        out.push_str(",\"placements\":");
        self.placements.serialize_json(out);
        out.push_str(",\"devices\":");
        self.devices.serialize_json(out);
        out.push_str(",\"makespan\":");
        self.makespan.serialize_json(out);
        out.push_str(",\"shed_requests\":");
        self.shed_requests.serialize_json(out);
        out.push_str(",\"faults\":");
        self.faults.serialize_json(out);
        out.push_str(",\"timeline\":");
        self.timeline.serialize_json(out);
        if let Some(slo) = &self.slo {
            out.push_str(",\"slo\":");
            slo.serialize_json(out);
        }
        if let Some(health) = &self.health {
            out.push_str(",\"health\":");
            health.serialize_json(out);
        }
        out.push('}');
    }
}

impl FleetReport {
    /// Images served across the fleet.
    pub fn images(&self) -> usize {
        self.devices.iter().map(|d| d.images).sum()
    }

    /// Latency summary over served requests (the 0.0 sentinels of shed
    /// and admission-rejected requests are excluded — neither has a
    /// latency). Sorts into a reused thread-local scratch buffer instead
    /// of cloning the latency vector per report.
    pub fn latency(&self) -> LatencyStats {
        latency_stats_served(&self.latencies)
    }

    /// Served images per second of fleet makespan.
    pub fn throughput_images_per_sec(&self) -> f64 {
        if self.makespan > 0.0 {
            self.images() as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Fraction of generated requests that were shed, in [0, 1].
    pub fn shed_rate(&self) -> f64 {
        if self.requests > 0 {
            self.shed_requests as f64 / self.requests as f64
        } else {
            0.0
        }
    }
}

/// Per-(device, network) serving state: the plan cache and the routed
/// per-tenant lanes with the single-device loop's degradation state.
/// Class-blind runs have exactly one lane, so the lane loop reduces
/// structurally to the old single-queue arithmetic; the plan cache and
/// the degradation state (cap, pin, streak) stay per-pair — lanes share
/// a device and a network, hence a memory budget and a plan.
struct PairState<'e> {
    cache: PlanCache<'e>,
    lanes: Vec<Lane>,
    plan_cap: usize,
    pin: Option<usize>,
    clean_streak: u64,
}

impl PairState<'_> {
    fn has_pending(&self) -> bool {
        self.lanes.iter().any(Lane::has_pending)
    }

    fn pending_requests(&self) -> usize {
        self.lanes.iter().map(|l| l.pending().len()).sum()
    }

    fn pending_images(&self) -> usize {
        self.lanes.iter().flat_map(|l| l.pending()).map(|r| r.images).sum()
    }

    /// Pending requests that had arrived by `launch` (the queue-depth
    /// observable at a commit).
    fn pending_arrived(&self, launch: f64) -> usize {
        self.lanes.iter().map(|l| l.pending().iter().filter(|r| r.arrival <= launch).count()).sum()
    }

    fn emax(&self) -> usize {
        self.plan_cap.min(self.pin.unwrap_or(self.plan_cap)).max(1)
    }
}

/// Per-device clock, fault stream, and accumulators.
struct DeviceState {
    gpu_free: f64,
    launches: u64,
    stats: FaultStats,
    shed: usize,
    plan_ooms: u64,
    batches: Vec<FleetBatch>,
    /// Simulated seconds the device spent occupied (attempts, backoffs,
    /// and completed service) — the numerator of its utilization gauge.
    busy: f64,
    /// Fairness deficit credit per tenant (device-local, so the
    /// sequential and parallel paths settle identical values in commit
    /// order). One entry per lane; a single 0.0 on class-blind runs.
    credits: Vec<f64>,
    /// Requests shed per tenant on this device (batch sheds plus
    /// overdue-deadline sheds). One entry per lane.
    shed_by_tenant: Vec<u64>,
    /// Batches this device committed early to protect a class budget.
    early: u64,
    /// Commits that won the device slot from a lane whose tentative
    /// batch would have launched later with more images.
    preempt: u64,
    /// Commit horizon from the health layer: the device's next pending
    /// crash/hang time. Batches launching at or past it must wait for
    /// the event to be processed at a routing point — in *both* loops,
    /// which is what keeps device deaths replay-identical. `INFINITY`
    /// without a fault plan.
    halt: f64,
    /// `true` while the device is `Down`: it commits nothing, and
    /// placement only reaches it through the all-down fallback.
    blocked: bool,
    /// Pending (routed, unserved, unshed) requests across every pair and
    /// lane on this device — maintained incrementally at each queue
    /// mutation so a placement load snapshot is O(1) instead of a walk
    /// over every pair's pending slice. Always equals
    /// `Σ pairs[d][*].pending_requests()` (debug-asserted in `load_of`).
    queued_requests: usize,
    /// Pending images across the device (companion to
    /// `queued_requests`; raw request sizes, not bucket-clamped).
    queued_images: usize,
    /// Recycled `Op` buffers: the parallel barrier replay returns each
    /// drained event's buffer here so steady-state stepping allocates no
    /// fresh `Vec<Op>` per commit.
    spare_ops: Vec<Vec<Op>>,
}

impl DeviceState {
    /// Account `count` pending requests totalling `images` leaving the
    /// device's queues (served, shed, or failed over).
    fn drop_queued(&mut self, count: usize, images: usize) {
        debug_assert!(self.queued_requests >= count && self.queued_images >= images);
        self.queued_requests -= count;
        self.queued_images -= images;
    }

    /// Account one request routed onto the device.
    fn push_queued(&mut self, images: usize) {
        self.queued_requests += 1;
        self.queued_images += images;
    }
}

/// The single-device window-growth rule on one pair's queue: launch at
/// `max(gpu_free, min(T_full, T_deadline))`, growing the admission
/// window arrival by arrival. Identical arithmetic to the single-device
/// loop (that is what the K = 1 byte-identity test pins down).
pub(crate) fn window_launch(
    queue: &[Request],
    next: usize,
    gpu_free: f64,
    emax: usize,
    delay: f64,
) -> f64 {
    let oldest = queue[next].arrival;
    let deadline = oldest + delay;
    let mut launch = gpu_free.max(oldest);
    loop {
        let (j_after, _, full) = form(queue, next, launch, emax);
        if full || launch >= deadline {
            break;
        }
        match queue.get(j_after) {
            Some(r) if r.arrival <= deadline => launch = r.arrival,
            _ => {
                launch = deadline;
                break;
            }
        }
    }
    launch
}

/// Deadline-based shedding of one lane's overdue queue prefix, against
/// the device's current `gpu_free` (the single-device rule: only
/// head-of-line requests shed; requests behind a fresh head wait their
/// turn). Shed requests keep the 0.0 latency sentinel. Returns how many
/// requests it shed (the caller keeps the fleet-wide running total for
/// the timeline).
fn shed_overdue(
    lane: &mut Lane,
    dev: &mut DeviceState,
    d: usize,
    t: usize,
    deadline: Option<f64>,
) -> usize {
    let Some(deadline) = deadline else { return 0 };
    let mut shed = 0usize;
    while lane.has_pending() && dev.gpu_free - lane.queue[lane.next].arrival > deadline {
        let r = &lane.queue[lane.next];
        fault_span(dev.gpu_free, 0.0, || {
            (
                format!("shed request {}", r.id),
                vec![
                    (trace::intern("reason").into(), trace::intern("deadline").into()),
                    (trace::intern("device").into(), trace::intern(&d.to_string()).into()),
                ],
            )
        });
        dev.drop_queued(1, r.images);
        dev.shed += 1;
        dev.shed_by_tenant[t] += 1;
        lane.next += 1;
        shed += 1;
    }
    shed
}

/// One order-sensitive global side effect of a commit. Device steps are
/// otherwise independent between routing barriers; everything that
/// touches shared state — the latency vector, the recorder (whose
/// sliding window and running-counter gauges are order-sensitive), the
/// fleet-wide shed total, and the plan-cache hit bookkeeping — funnels
/// through this enum so the parallel path can defer it and replay it in
/// the sequential merge order.
enum Op {
    /// A plan-cache lookup on pair `(d, n)` for `bucket` (the
    /// `seen_plans` hit/lookup bookkeeping behind the hit-rate gauge).
    Lookup { d: usize, n: usize, bucket: usize },
    /// Request `id` finished with `latency` (latency vector write plus
    /// the recorder's histogram observation).
    Served { id: u64, latency: f64 },
    /// The gauge block at the end of a successful commit.
    DoneGauges { d: usize, launch: f64, depth: usize, util: f64, degraded: bool },
    /// The gauge block after a batch was shed mid-ladder; `batch_shed`
    /// joins the fleet total *before* the `shed.total` sample.
    ShedGauges { d: usize, launch: f64, batch_shed: usize, util: f64 },
    /// The degraded gauge after an OOM downshift.
    DownshiftGauge { d: usize, launch: f64 },
    /// Head-of-line requests shed by the post-commit deadline check.
    OverdueShed { count: usize },
}

/// Per-tenant global accounting for SLO runs: the attribution table
/// plus the tallies only the globally ordered `Op::Served` replay can
/// settle deterministically (completions, served images, violations,
/// keyed latency histograms).
struct GlobalsSlo {
    /// `tenant_of[id]` — the request's tenant (from [`tenant_tags`]).
    tenant_of: Vec<u32>,
    /// `images_of[id]` — the request's image count (for per-tenant
    /// served-images tallies without re-walking the request list).
    images_of: Vec<u64>,
    /// Pre-registered per-tenant latency-histogram handles (config
    /// order) — the replay's keyed observation is an index, not a
    /// string lookup.
    latency_keys: Vec<KeyId>,
    /// Per-tenant p99 budget (`None` for classes without one).
    p99: Vec<Option<f64>>,
    /// Pre-registered `tenant.{name}.violations` series, `None` for
    /// budget-less classes (which never emit the series).
    violation_ids: Vec<Option<GaugeId>>,
    completed: Vec<u64>,
    images: Vec<u64>,
    violations: Vec<u64>,
}

/// Pre-registered recorder handles for every gauge series the fleet hot
/// paths emit. Registration is free when a series stays empty
/// ([`Recorder::finish`] drops sample-less slots), so resolving them all
/// up front cannot perturb the serialized timeline — it only removes the
/// per-sample `format!("dev{d}...")` allocation and name lookup.
struct FleetGaugeIds {
    dev_depth: Vec<GaugeId>,
    dev_util: Vec<GaugeId>,
    dev_degraded: Vec<GaugeId>,
    dev_queue_images: Vec<GaugeId>,
    dev_health: Vec<GaugeId>,
    plan_hit_rate: GaugeId,
    shed_total: GaugeId,
    queue_images: GaugeId,
    slo_violations: GaugeId,
    devices_healthy: GaugeId,
    failover_backlog: GaugeId,
}

impl FleetGaugeIds {
    fn new(rec: &mut Recorder, k: usize) -> FleetGaugeIds {
        let per_dev = |rec: &mut Recorder, suffix: &str| -> Vec<GaugeId> {
            (0..k).map(|d| rec.gauge_id(&format!("dev{d}.{suffix}"))).collect()
        };
        FleetGaugeIds {
            dev_depth: per_dev(rec, "queue.depth"),
            dev_util: per_dev(rec, "util"),
            dev_degraded: per_dev(rec, "degraded"),
            dev_queue_images: per_dev(rec, "queue.images"),
            dev_health: per_dev(rec, "health"),
            plan_hit_rate: rec.gauge_id("plan_cache.hit_rate"),
            shed_total: rec.gauge_id("shed.total"),
            queue_images: rec.gauge_id("queue.images"),
            slo_violations: rec.gauge_id("slo.violations"),
            devices_healthy: rec.gauge_id("fleet.devices.healthy"),
            failover_backlog: rec.gauge_id("fleet.failover.backlog"),
        }
    }
}

/// The shared mutable state every [`Op`] replays into. The sequential
/// path applies ops as they happen; the parallel path applies the same
/// ops in the same order at the barrier.
struct Globals {
    latencies: Vec<f64>,
    placements: Vec<u32>,
    rec: Recorder,
    ids: FleetGaugeIds,
    seen_plans: BTreeSet<(usize, usize, usize)>,
    cache_lookups: u64,
    cache_hits: u64,
    fleet_shed: usize,
    /// `Some` only on SLO runs; `None` keeps every apply branch below
    /// byte-identical to the pre-tenant replay.
    slo: Option<GlobalsSlo>,
}

impl Globals {
    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Lookup { d, n, bucket } => {
                self.cache_lookups += 1;
                if !self.seen_plans.insert((d, n, bucket)) {
                    self.cache_hits += 1;
                }
            }
            Op::Served { id, latency } => {
                self.latencies[id as usize] = latency;
                self.rec.observe_latency(latency);
                if let Some(s) = self.slo.as_mut() {
                    let t = s.tenant_of[id as usize] as usize;
                    s.completed[t] += 1;
                    s.images[t] += s.images_of[id as usize];
                    if s.p99[t].is_some_and(|b| latency > b) {
                        s.violations[t] += 1;
                    }
                    self.rec.observe_latency_keyed_at(s.latency_keys[t], latency);
                }
            }
            Op::DoneGauges { d, launch, depth, util, degraded } => {
                self.rec.gauge_at(self.ids.dev_depth[d], launch, depth as f64);
                self.rec.gauge_at(self.ids.dev_util[d], launch, util);
                self.rec.gauge_at(
                    self.ids.dev_degraded[d],
                    launch,
                    if degraded { 1.0 } else { 0.0 },
                );
                self.rec.gauge_at(
                    self.ids.plan_hit_rate,
                    launch,
                    self.cache_hits as f64 / self.cache_lookups as f64,
                );
                self.rec.gauge_at(self.ids.shed_total, launch, self.fleet_shed as f64);
                if let Some(s) = &self.slo {
                    let total: u64 = s.violations.iter().sum();
                    self.rec.gauge_at(self.ids.slo_violations, launch, total as f64);
                    for (t, id) in s.violation_ids.iter().enumerate() {
                        if let Some(id) = *id {
                            self.rec.gauge_at(id, launch, s.violations[t] as f64);
                        }
                    }
                }
                self.rec.sample_window(launch);
            }
            Op::ShedGauges { d, launch, batch_shed, util } => {
                self.fleet_shed += batch_shed;
                self.rec.gauge_at(self.ids.shed_total, launch, self.fleet_shed as f64);
                self.rec.gauge_at(self.ids.dev_util[d], launch, util);
            }
            Op::DownshiftGauge { d, launch } => {
                self.rec.gauge_at(self.ids.dev_degraded[d], launch, 1.0);
            }
            Op::OverdueShed { count } => self.fleet_shed += count,
        }
    }
}

/// Where a commit sends its global effects: straight into [`Globals`]
/// (sequential path) or into a per-event buffer for barrier replay
/// (parallel path).
trait EffectSink {
    fn emit(&mut self, op: Op);
}

impl EffectSink for Globals {
    fn emit(&mut self, op: Op) {
        self.apply(&op);
    }
}

impl EffectSink for Vec<Op> {
    fn emit(&mut self, op: Op) {
        self.push(op);
    }
}

/// The SLO slice of a [`StepCtx`]: per-tenant commit budgets derived
/// from the step's frozen delay, class ranks, and the tenant specs (for
/// names and fairness weights).
struct SloStepCtx<'a> {
    budgets: Vec<f64>,
    ranks: Vec<u8>,
    tenants: &'a [TenantSpec],
}

/// Read-only inputs shared by every commit between two routing barriers
/// (the effective delay is frozen during a step phase — it only changes
/// when an arrival crosses a workload phase boundary, which is routing;
/// the per-class budgets in `slo` are re-derived from it then too).
struct StepCtx<'a, 'e> {
    engines: &'a [&'e Engine],
    nets: &'a [Network],
    delay: f64,
    pol: FaultPolicy,
    fplan: Option<FaultPlan>,
    slo: Option<SloStepCtx<'a>>,
}

impl StepCtx<'_, '_> {
    /// The commit budget lane `t` grows its window under: the tenant's
    /// class budget on SLO runs, the uniform policy delay otherwise.
    fn lane_delay(&self, t: usize) -> f64 {
        self.slo.as_ref().map_or(self.delay, |s| s.budgets[t])
    }
}

/// Earliest launchable lane on one device: networks in ascending order,
/// lanes within each pair in tenant order. Class-blind runs take strict
/// `<` (first-wins on ties — with one lane per pair this is exactly the
/// pre-tenant per-device scan); SLO runs break exact launch ties by
/// fairness credit, then class rank, then iteration order.
fn device_best(
    ctx: &StepCtx,
    pairs_d: &[PairState],
    dev: &DeviceState,
) -> Option<(f64, usize, usize)> {
    if dev.blocked {
        return None; // a Down device commits nothing
    }
    let mut best: Option<(f64, usize, usize)> = None;
    for (n, pair) in pairs_d.iter().enumerate() {
        for (t, lane) in pair.lanes.iter().enumerate() {
            if !lane.has_pending() {
                continue;
            }
            let launch =
                window_launch(&lane.queue, lane.next, dev.gpu_free, pair.emax(), ctx.lane_delay(t));
            let take = match (&ctx.slo, best) {
                (_, None) => true,
                (None, Some((bl, _, _))) => launch < bl,
                (Some(s), Some((bl, _, bt))) => lane_beats(
                    (launch, dev.credits[t], s.ranks[t]),
                    (bl, dev.credits[bt], s.ranks[bt]),
                ),
            };
            if take {
                best = Some((launch, n, t));
            }
        }
    }
    // The selection minimizes launch, so if the winner is at or past the
    // device's halt horizon (its next crash/hang), every lane is — the
    // device commits nothing until the event fires at a routing point.
    best.filter(|&(launch, _, _)| launch < dev.halt)
}

/// Commit the earliest launchable batch on lane `(d, n, t)`: the
/// single-device loop body, verbatim, on this lane's queue and this
/// device's clock. Returns `Ok(true)` when a batch committed and
/// `Ok(false)` when a plan-time OOM halved the pair's cap instead (the
/// caller re-selects; the sequential loop's `continue`).
fn commit_pair<S: EffectSink>(
    ctx: &StepCtx,
    pairs_d: &mut [PairState],
    dev: &mut DeviceState,
    d: usize,
    n: usize,
    t: usize,
    sink: &mut S,
) -> Result<bool, EngineError> {
    let emax = pairs_d[n].emax();
    let lane = &pairs_d[n].lanes[t];
    let launch = window_launch(&lane.queue, lane.next, dev.gpu_free, emax, ctx.lane_delay(t));
    let (j_end, images, full) = form(&lane.queue, lane.next, launch, emax);
    debug_assert!(j_end > lane.next, "a committed batch serves at least one request");
    let bucket = bucket_for(images, emax);
    // SLO observability on this selection, computed before the cache
    // borrow and applied only if the plan resolves (so a plan-OOM
    // re-selection is not double-counted).
    let mut early_hit = false;
    let mut preempt_hit = false;
    if let Some(s) = &ctx.slo {
        // Early commit: the class budget (tighter than the policy delay)
        // fired before the batch filled.
        early_hit = !full
            && s.budgets[t] < ctx.delay
            && launch == lane.queue[lane.next].arrival + s.budgets[t];
        // Preemption: this lane won the slot from a lane whose tentative
        // batch (over work arrived by `launch`) would have launched
        // later with more images.
        'scan: for pair2 in pairs_d.iter() {
            for (t2, lane2) in pair2.lanes.iter().enumerate() {
                if t2 != t
                    && crate::slo::lane_preempts(
                        lane2,
                        s.budgets[t2],
                        dev.gpu_free,
                        pair2.emax(),
                        launch,
                        images,
                    )
                {
                    preempt_hit = true;
                    break 'scan;
                }
            }
        }
    }
    sink.emit(Op::Lookup { d, n, bucket });
    let plan = match pairs_d[n].cache.get(bucket) {
        Ok(plan) => plan,
        Err(err @ EngineError::PlanOom { .. }) => {
            if bucket <= 1 {
                return Err(err);
            }
            dev.plan_ooms += 1;
            fault_span(launch, 0.0, || {
                (
                    format!("plan OOM at bucket {bucket}"),
                    vec![
                        (trace::intern("new_cap").into(), (bucket / 2).to_string().into()),
                        (trace::intern("device").into(), trace::intern(&d.to_string()).into()),
                    ],
                )
            });
            pairs_d[n].plan_cap = (bucket / 2).max(1);
            return Ok(false);
        }
        Err(err) => return Err(err),
    };
    let service = plan.total_time();
    if early_hit {
        dev.early += 1;
    }
    if preempt_hit {
        dev.preempt += 1;
    }

    let LadderEnd { outcome, attempts: attempt, throttles } = launch_ladder(
        ctx.engines[d],
        plan,
        ctx.fplan.as_ref(),
        &mut dev.launches,
        &mut dev.stats,
        &ctx.pol,
        bucket,
        launch,
        Some(d),
    )?;

    match outcome {
        Outcome::Done { done } => {
            let reqs = {
                let lane = &mut pairs_d[n].lanes[t];
                let mut taken_images = 0usize;
                for r in &lane.queue[lane.next..j_end] {
                    sink.emit(Op::Served { id: r.id, latency: done - r.arrival });
                    taken_images += r.images;
                }
                let reqs = j_end - lane.next;
                lane.next = j_end;
                dev.drop_queued(reqs, taken_images);
                reqs
            };
            // Queue pressure left on the device: routed requests of
            // *any* network that had arrived by launch, not taken.
            let depth: usize = pairs_d.iter().map(|p| p.pending_arrived(launch)).sum();
            {
                let idx = dev.batches.len();
                let net_name = &ctx.nets[n].name;
                trace::record_span(|| trace::SpanEvent {
                    name: format!("batch {idx} (N={bucket})"),
                    track: trace::Track::Fleet,
                    ts_us: launch * 1e6,
                    dur_us: service * 1e6,
                    args: {
                        let mut args = vec![
                            (trace::intern("device").into(), trace::intern(&d.to_string()).into()),
                            (trace::intern("network").into(), trace::intern(net_name).into()),
                            (trace::intern("requests").into(), reqs.to_string().into()),
                            (trace::intern("images").into(), images.to_string().into()),
                            (trace::intern("bucket").into(), bucket.to_string().into()),
                        ];
                        if let Some(s) = &ctx.slo {
                            args.push((
                                trace::intern("tenant").into(),
                                trace::intern(&s.tenants[t].name).into(),
                            ));
                        }
                        args
                    },
                });
            }
            dev.batches.push(FleetBatch {
                record: BatchRecord {
                    launch,
                    done,
                    requests: reqs,
                    images,
                    bucket,
                    queue_depth: depth,
                    attempts: attempt,
                    throttled: throttles,
                },
                network: n as u32,
            });
            let pair = &mut pairs_d[n];
            if pair.pin.is_some() {
                if attempt == 0 && throttles == 0 {
                    pair.clean_streak += 1;
                    if pair.clean_streak >= ctx.pol.recovery_batches {
                        dev.stats.degraded_exits += 1;
                        let streak = pair.clean_streak;
                        fault_span(done, 0.0, || {
                            (
                                "leave degraded mode".to_string(),
                                vec![
                                    (
                                        trace::intern("clean_batches").into(),
                                        streak.to_string().into(),
                                    ),
                                    (
                                        trace::intern("device").into(),
                                        trace::intern(&d.to_string()).into(),
                                    ),
                                ],
                            )
                        });
                        pair.pin = None;
                        pair.clean_streak = 0;
                    }
                } else {
                    pair.clean_streak = 0;
                }
            }
            dev.busy += done - launch;
            dev.gpu_free = done;
            let degraded = pairs_d.iter().any(|p| p.pin.is_some());
            let util = if done > 0.0 { dev.busy / done } else { 0.0 };
            sink.emit(Op::DoneGauges { d, launch, depth, util, degraded });
            if let Some(s) = &ctx.slo {
                settle_credits(
                    &mut dev.credits,
                    s.tenants,
                    |u| pairs_d.iter().any(|p| p.lanes[u].has_pending()),
                    t,
                    images,
                );
            }
        }
        Outcome::Shed { at } => {
            let lane = &mut pairs_d[n].lanes[t];
            let batch_shed = j_end - lane.next;
            let shed_images: usize = lane.queue[lane.next..j_end].iter().map(|r| r.images).sum();
            dev.shed += batch_shed;
            dev.shed_by_tenant[t] += batch_shed as u64;
            lane.next = j_end;
            dev.drop_queued(batch_shed, shed_images);
            dev.busy += at - launch;
            dev.gpu_free = at;
            let util = if at > 0.0 { dev.busy / at } else { 0.0 };
            sink.emit(Op::ShedGauges { d, launch, batch_shed, util });
            if let Some(s) = &ctx.slo {
                settle_credits(
                    &mut dev.credits,
                    s.tenants,
                    |u| pairs_d.iter().any(|p| p.lanes[u].has_pending()),
                    t,
                    images,
                );
            }
        }
        Outcome::Downshift { at } => {
            let pair = &mut pairs_d[n];
            if pair.pin.is_none() {
                dev.stats.degraded_entries += 1;
            }
            pair.pin = Some((bucket / 2).max(1));
            pair.clean_streak = 0;
            dev.busy += at - launch;
            dev.gpu_free = at;
            sink.emit(Op::DownshiftGauge { d, launch });
        }
    }
    // `gpu_free` moved: every network's queue on this device gets
    // the single-device loop's top-of-iteration overdue check.
    let mut overdue = 0usize;
    for pair in pairs_d.iter_mut() {
        for (t2, lane) in pair.lanes.iter_mut().enumerate() {
            overdue += shed_overdue(lane, dev, d, t2, ctx.pol.shed_deadline);
        }
    }
    if overdue > 0 {
        sink.emit(Op::OverdueShed { count: overdue });
    }
    COMMITS.incr();
    Ok(true)
}

/// One device's committed batch (possibly a plan-OOM compound: the cap
/// halvings plus the commit that followed them), keyed for the barrier
/// merge by the launch of its *first* pair selection.
struct DeviceEvent {
    key: f64,
    ops: Vec<Op>,
}

/// Step one device through every batch it commits before `t_next` (all
/// of them when `t_next` is `None`): the sequential loop restricted to
/// one device, emitting one [`DeviceEvent`] per commit. A plan-OOM
/// re-selection stays inside the event that opened it — the sequential
/// loop provably re-selects the same pair immediately, so the compound
/// occupies a single slot in the global order, keyed by its first
/// selection (whose launch may *exceed* the post-halving commit's).
fn step_device(
    ctx: &StepCtx,
    pairs_d: &mut [PairState],
    dev: &mut DeviceState,
    d: usize,
    t_next: Option<f64>,
) -> Result<Vec<DeviceEvent>, EngineError> {
    let mut events = Vec::new();
    let mut open: Option<DeviceEvent> = None;
    loop {
        // Local best: the shared per-device scan (same strict `<`
        // tie-break over ascending network index as the sequential
        // loop's device-major global scan; lane tie-breaks on SLO runs).
        let Some((launch, n, t)) = device_best(ctx, pairs_d, dev) else {
            debug_assert!(open.is_none(), "plan-OOM compound left open with no pending work");
            break;
        };
        // The barrier condition: commit strictly before the next
        // unrouted arrival (the route-first rule routes on ties). A
        // compound never straddles it — post-halving launches only
        // shrink — so an open compound always finishes its commit.
        if open.is_none() && t_next.is_some_and(|tb| launch >= tb) {
            break;
        }
        let mut ev = open.take().unwrap_or_else(|| DeviceEvent {
            key: launch,
            // Reuse a buffer the last barrier replay returned (the
            // replay clears before recycling), so steady-state stepping
            // allocates no per-commit `Vec<Op>`.
            ops: dev.spare_ops.pop().unwrap_or_default(),
        });
        if commit_pair(ctx, pairs_d, dev, d, n, t, &mut ev.ops)? {
            events.push(ev);
        } else {
            open = Some(ev);
        }
    }
    Ok(events)
}

/// Whether `MEMCNN_FLEET_SEQUENTIAL` forces the legacy single-threaded
/// event loop. Read on every call (unlike `MEMCNN_THREADS` it is not
/// once-locked, so tests can pin both paths in one process); the result
/// is bit-identical either way — the knob exists as the byte-identity
/// control and an escape hatch.
fn sequential_requested() -> bool {
    sequential_from(std::env::var("MEMCNN_FLEET_SEQUENTIAL").ok().as_deref())
}

/// Parse a `MEMCNN_FLEET_SEQUENTIAL` value, warning on stderr and
/// falling back to the parallel path when it is present but not a
/// recognized boolean. Pure so the fallback is unit-testable; the
/// `Once` guarantees the warning fires at most once per process.
fn sequential_from(raw: Option<&str>) -> bool {
    match raw {
        None => false,
        Some("1") | Some("true") => true,
        Some("0") | Some("false") => false,
        Some(v) => {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "memcnn: ignoring malformed MEMCNN_FLEET_SEQUENTIAL={v:?} \
                     (want 1/0/true/false); using the parallel path"
                );
            });
            false
        }
    }
}

/// Whether `MEMCNN_FLEET_LINEAR` forces the pre-index hot path: the
/// O(K) linear `global_best` scan plus the pair-walking placement load
/// snapshot. The selections are identical by construction (the index's
/// comparator is the scan's total order — `tests/fleet.rs` pins report
/// byte-identity); the knob exists as the regression-gate baseline for
/// the fleet bench's orchestrator events/sec figure and as an escape
/// hatch.
fn linear_requested() -> bool {
    linear_from(std::env::var("MEMCNN_FLEET_LINEAR").ok().as_deref())
}

/// Parse a `MEMCNN_FLEET_LINEAR` value, warning on stderr and falling
/// back to the indexed path when it is present but not a recognized
/// boolean (the `MEMCNN_FLEET_SEQUENTIAL` fallback convention).
fn linear_from(raw: Option<&str>) -> bool {
    match raw {
        None => false,
        Some("1") | Some("true") => true,
        Some("0") | Some("false") => false,
        Some(v) => {
            static WARN: std::sync::Once = std::sync::Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "memcnn: ignoring malformed MEMCNN_FLEET_LINEAR={v:?} \
                     (want 1/0/true/false); using the indexed router"
                );
            });
            false
        }
    }
}

/// Adaptive-delay state: the effective delay, the inter-arrival EMA,
/// and the workload's phase-start boundaries (the only points the
/// delay may change, so batching cannot feed back into the estimate
/// mid-phase).
struct DelayState {
    policy_delay: f64,
    ema: Option<f64>,
    last_arrival: Option<f64>,
    phase_bounds: Vec<f64>,
    next_bound: usize,
}

/// Per-run SLO state owned by the router: the request→tenant table,
/// the admission controller (token buckets advance on the arrival
/// clock, which the router walks in order), and the admission tallies.
struct SloRun {
    tags: Vec<u32>,
    admission: Admission,
    admitted: Vec<u64>,
    rejected: Vec<u64>,
}

/// The in-flight state of one fleet run, shared by the sequential and
/// parallel drivers so both execute the identical per-event arithmetic.
struct FleetRun<'e, 'a> {
    engines: &'a [&'e Engine],
    nets: &'a [Network],
    cfg: &'a FleetConfig,
    requests: Vec<Request>,
    caps: Vec<Vec<usize>>,
    pairs: Vec<Vec<PairState<'e>>>,
    devs: Vec<DeviceState>,
    placer: Box<dyn PlacementPolicy>,
    g: Globals,
    delay: DelayState,
    next_arrival: usize,
    pol: FaultPolicy,
    fplan: Option<FaultPlan>,
    max: usize,
    k: usize,
    nn: usize,
    /// `Some` only on SLO runs (tenants configured and not disabled).
    slo_run: Option<SloRun>,
    /// `Some` only with a live device-fault plan (configured, non-noop,
    /// and not disabled via `MEMCNN_HEALTH_DISABLE`).
    health: Option<HealthRun>,
    /// The tournament index behind [`FleetRun::global_best`]: cached
    /// per-device tentative-launch keys, refreshed only for devices
    /// marked dirty since the last query (every mutation site marks —
    /// routes, commits, sheds, health transitions, failovers, delay
    /// changes).
    index: RouteIndex,
    /// `MEMCNN_FLEET_LINEAR=1`: bypass the index (see
    /// [`linear_requested`]).
    linear: bool,
    /// Recycled placement-snapshot buffer (`route_one` and
    /// `requeue_transit` fill it per arrival instead of allocating).
    loads_buf: Vec<DeviceLoad>,
}

impl<'e, 'a> FleetRun<'e, 'a> {
    /// Freeze the step inputs for the current effective delay. Rebuilt
    /// whenever routing may have changed the delay; borrows only the
    /// run's `'a` inputs so the caller can keep mutating the run state.
    fn step_ctx(&self) -> StepCtx<'a, 'e> {
        let cfg = self.cfg;
        StepCtx {
            engines: self.engines,
            nets: self.nets,
            delay: self.delay.policy_delay,
            pol: self.pol,
            fplan: self.fplan,
            slo: self.slo_run.as_ref().map(|_| SloStepCtx {
                budgets: cfg
                    .tenants
                    .iter()
                    .map(|t| t.class.commit_budget(self.delay.policy_delay))
                    .collect(),
                ranks: cfg.tenants.iter().map(|t| t.class.rank()).collect(),
                tenants: &cfg.tenants,
            }),
        }
    }

    /// Earliest launchable batch across all devices: each device's
    /// [`device_best`] lane, then strict `<` across devices in index
    /// order — exactly the flat device-major scan's tie behaviour.
    ///
    /// Served from the incrementally maintained [`RouteIndex`]: only
    /// devices whose state changed since the last query recompute their
    /// key (O(dirty · log K)), and the winner reads off the tree root.
    /// The index's comparator *is* the linear scan's total order, so
    /// the selection — and therefore every report byte — is identical;
    /// debug builds re-run the scan and assert it.
    fn global_best(&mut self, ctx: &StepCtx) -> Option<(f64, usize, usize, usize)> {
        if self.linear {
            return self.global_best_linear(ctx);
        }
        let (pairs, devs) = (&self.pairs, &self.devs);
        self.index.refresh(|d| device_best(ctx, &pairs[d], &devs[d]));
        let best = self.index.best();
        debug_assert_eq!(
            best.map(|(l, d, n, t)| (l.to_bits(), d, n, t)),
            self.global_best_linear(ctx).map(|(l, d, n, t)| (l.to_bits(), d, n, t)),
            "route index diverged from the linear scan"
        );
        best
    }

    /// The retained reference scan (`MEMCNN_FLEET_LINEAR=1`, the
    /// debug-build cross-check, and the equivalence tests).
    fn global_best_linear(&self, ctx: &StepCtx) -> Option<(f64, usize, usize, usize)> {
        let mut best: Option<(f64, usize, usize, usize)> = None;
        for (d, dev) in self.devs.iter().enumerate() {
            if let Some((launch, n, t)) = device_best(ctx, &self.pairs[d], dev) {
                if best.is_none_or(|(bl, _, _, _)| launch < bl) {
                    best = Some((launch, d, n, t));
                }
            }
        }
        best
    }

    /// Route-first rule: every request with arrival <= the committed
    /// launch must be routed before the commit, because the window
    /// admits exactly the requests that have arrived by `launch`
    /// (`arrival <= launch` — hence the inclusive comparison against
    /// the tentative best).
    fn should_route(&self, best: Option<(f64, usize, usize, usize)>) -> bool {
        self.next_arrival < self.requests.len()
            && best.is_none_or(|(bl, _, _, _)| self.requests[self.next_arrival].arrival <= bl)
    }

    /// Route the next arrival: health transitions, phase-boundary delay
    /// updates, the EMA, placement, and the arrival-timestamped queue
    /// gauges.
    fn route_one(&mut self) {
        ROUTES.incr();
        let r = self.requests[self.next_arrival];
        // Device lifecycle first: every fault event at or before this
        // arrival fires now, in both loops at the identical state point
        // (the route-first rule has applied exactly the commits
        // launching before `r.arrival` in each).
        self.advance_health(r.arrival);
        // Phase boundaries crossed by this arrival re-derive the
        // delay from the EMA observed so far. A delay change shifts
        // every device's tentative launch, so the whole index is stale.
        while self.delay.next_bound < self.delay.phase_bounds.len()
            && r.arrival >= self.delay.phase_bounds[self.delay.next_bound]
        {
            if let (Some(ad), Some(e)) = (&self.cfg.adaptive, self.delay.ema) {
                let fresh = ad.delay(e);
                if fresh != self.delay.policy_delay {
                    self.delay.policy_delay = fresh;
                    self.index.mark_all();
                }
            }
            self.delay.next_bound += 1;
        }
        if let Some(ad) = &self.cfg.adaptive {
            if let Some(last) = self.delay.last_arrival {
                self.delay.ema = Some(ad.update_ema(self.delay.ema, r.arrival - last));
            }
            self.delay.last_arrival = Some(r.arrival);
        }
        let n = (r.id as usize) % self.nn;
        // SLO admission: a rejected arrival never reaches placement —
        // it keeps the `u32::MAX` placement sentinel and 0.0 latency.
        let mut lt = 0usize;
        if let Some(slo) = self.slo_run.as_mut() {
            let t = slo.tags[r.id as usize] as usize;
            slo.admitted[t] += 1;
            if !slo.admission.admit(t, r.arrival) {
                slo.rejected[t] += 1;
                self.g.placements[r.id as usize] = u32::MAX;
                let cfg = self.cfg;
                fault_span(r.arrival, 0.0, || {
                    (
                        format!("reject request {}", r.id),
                        vec![
                            (trace::intern("reason").into(), trace::intern("admission").into()),
                            (
                                trace::intern("tenant").into(),
                                trace::intern(&cfg.tenants[t].name).into(),
                            ),
                        ],
                    )
                });
                self.next_arrival += 1;
                return;
            }
            lt = t;
        }
        // Placement snapshot into the recycled buffer: one counter read
        // per device instead of a fresh Vec walking every lane queue.
        let mut loads = std::mem::take(&mut self.loads_buf);
        loads.clear();
        loads.extend((0..self.k).map(|d| self.load_of(d, n)));
        let d = self.place_on(r.arrival, r.images, n, &loads);
        self.g.placements[r.id as usize] = d as u32;
        self.pairs[d][n].lanes[lt].queue.push(r);
        self.devs[d].push_queued(r.images);
        {
            let pair = &mut self.pairs[d][n];
            for (t2, lane) in pair.lanes.iter_mut().enumerate() {
                self.g.fleet_shed +=
                    shed_overdue(lane, &mut self.devs[d], d, t2, self.pol.shed_deadline);
            }
        }
        self.index.mark(d);
        // Queue-pressure gauges at the arrival: the routed device's
        // backlog (post-shed, via the maintained counter) plus the fleet
        // total (other devices' loads are their pre-route snapshots,
        // unchanged).
        let dev_images = self.devs[d].queued_images;
        debug_assert_eq!(
            dev_images,
            self.pairs[d].iter().map(|p| p.pending_images()).sum::<usize>(),
            "queued-images counter diverged from the lane queues"
        );
        let total_images: usize = dev_images
            + loads.iter().filter(|l| l.device != d).map(|l| l.queued_images).sum::<usize>();
        self.g.rec.gauge_at(self.g.ids.dev_queue_images[d], r.arrival, dev_images as f64);
        self.g.rec.gauge_at(self.g.ids.queue_images, r.arrival, total_images as f64);
        self.loads_buf = loads;
        self.next_arrival += 1;
    }

    /// Load snapshot of device `d` for network `n`'s placement call —
    /// O(1) off the incrementally maintained queue counters (the linear
    /// fallback walks the lane queues like the pre-index code did).
    fn load_of(&self, d: usize, n: usize) -> DeviceLoad {
        let (queued_requests, queued_images) = if self.linear {
            let mut reqs = 0usize;
            let mut imgs = 0usize;
            for p in &self.pairs[d] {
                reqs += p.pending_requests();
                imgs += p.pending_images();
            }
            (reqs, imgs)
        } else {
            (self.devs[d].queued_requests, self.devs[d].queued_images)
        };
        debug_assert_eq!(
            (queued_requests, queued_images),
            (
                self.pairs[d].iter().map(|p| p.pending_requests()).sum(),
                self.pairs[d].iter().map(|p| p.pending_images()).sum()
            ),
            "queue counters diverged from the lane queues"
        );
        DeviceLoad {
            device: d,
            gpu_free: self.devs[d].gpu_free,
            queued_requests,
            queued_images,
            feasible_cap: self.caps[d][n],
        }
    }

    /// Place one arrival, honouring device health: candidates are the
    /// `Healthy` devices, falling back to `Warming`, then `Draining`,
    /// then the full fleet (everything `Down` — the request queues on a
    /// dead device and the flush re-routes or sheds it). Health-free
    /// runs pass the full load list straight through, which keeps the
    /// policy's internal state evolution — hence every placement —
    /// byte-identical to the pre-health fleet.
    fn place_on(&mut self, now: f64, images: usize, n: usize, loads: &[DeviceLoad]) -> usize {
        let eligible: Vec<DeviceLoad> = match &self.health {
            None => Vec::new(),
            Some(h) => {
                let of = |s: HealthState| -> Vec<DeviceLoad> {
                    loads.iter().filter(|l| h.devs[l.device].state == s).copied().collect()
                };
                let mut c = of(HealthState::Healthy);
                if c.is_empty() {
                    c = of(HealthState::Warming);
                }
                if c.is_empty() {
                    c = of(HealthState::Draining);
                }
                c
            }
        };
        let devices: &[DeviceLoad] = if eligible.is_empty() { loads } else { &eligible };
        self.placer
            .place(&PlacementCtx { now, images, network: n, max_batch: self.max, devices })
            .min(self.k - 1)
    }

    /// The tenant lane a request routes to (lane 0 on class-blind runs).
    fn lane_of(&self, id: u64) -> usize {
        self.slo_run.as_ref().map_or(0, |s| s.tags[id as usize] as usize)
    }

    /// Fire every device-fault event due by `now` and drain the transit
    /// buffer. Called at every routing point — where both loops hold
    /// bit-identical state — and nowhere else.
    fn advance_health(&mut self, now: f64) {
        let Some(mut h) = self.health.take() else { return };
        for d in 0..self.k {
            self.advance_device(&mut h, d, now);
        }
        self.drain_transit(&mut h, now);
        let healthy = h.healthy();
        if h.last_healthy != Some(healthy) {
            h.last_healthy = Some(healthy);
            self.g.rec.gauge_at(self.g.ids.devices_healthy, now, healthy as f64);
        }
        let backlog = h.transit.len();
        if h.last_backlog != Some(backlog) {
            h.last_backlog = Some(backlog);
            self.g.rec.gauge_at(self.g.ids.failover_backlog, now, backlog as f64);
        }
        self.health = Some(h);
    }

    /// Step device `d`'s lifecycle machine up to `now`, firing due plan
    /// events and timer-driven transitions until it settles.
    fn advance_device(&mut self, h: &mut HealthRun, d: usize, now: f64) {
        loop {
            let due = h.devs[d].events.front().filter(|e| e.t <= now).copied();
            match h.devs[d].state {
                HealthState::Healthy | HealthState::Draining => {
                    if let Some(ev) = due {
                        h.devs[d].events.pop_front();
                        match ev.kind {
                            DeviceFaultKind::Crash | DeviceFaultKind::Hang => {
                                self.fail_over(h, d);
                                // A hang holds its in-flight work hostage:
                                // repair starts only once the device would
                                // have gone idle. A crash repairs from the
                                // event itself.
                                let base = if ev.kind == DeviceFaultKind::Crash {
                                    ev.t
                                } else {
                                    ev.t.max(self.devs[d].gpu_free)
                                };
                                h.devs[d].down_until = base + h.repair;
                                h.devs[d].state = HealthState::Down;
                                self.devs[d].blocked = true;
                                h.downs += 1;
                                fault_span(ev.t, 0.0, || {
                                    (
                                        format!("device {d} {}", ev.kind),
                                        vec![(
                                            trace::intern("device").into(),
                                            trace::intern(&d.to_string()).into(),
                                        )],
                                    )
                                });
                                self.g.rec.gauge_at(
                                    self.g.ids.dev_health[d],
                                    now,
                                    HealthState::Down.gauge(),
                                );
                            }
                            DeviceFaultKind::Drain => {
                                // A duplicate drain while already
                                // draining is a no-op.
                                if h.devs[d].state == HealthState::Healthy {
                                    h.devs[d].state = HealthState::Draining;
                                    h.devs[d].fault_t = ev.t;
                                    fault_span(ev.t, 0.0, || {
                                        (
                                            format!("device {d} drain"),
                                            vec![(
                                                trace::intern("device").into(),
                                                trace::intern(&d.to_string()).into(),
                                            )],
                                        )
                                    });
                                    self.g.rec.gauge_at(
                                        self.g.ids.dev_health[d],
                                        now,
                                        HealthState::Draining.gauge(),
                                    );
                                }
                            }
                        }
                        self.devs[d].halt = h.devs[d].halt();
                        self.index.mark(d);
                        continue;
                    }
                    if h.devs[d].state == HealthState::Draining
                        && !self.pairs[d].iter().any(PairState::has_pending)
                    {
                        // Served out: the decommission completes. The
                        // repair clock starts once both the drain order
                        // and the last committed batch are behind us.
                        h.devs[d].down_until =
                            h.devs[d].fault_t.max(self.devs[d].gpu_free) + h.repair;
                        h.devs[d].state = HealthState::Down;
                        self.devs[d].blocked = true;
                        h.downs += 1;
                        self.index.mark(d);
                        self.g.rec.gauge_at(
                            self.g.ids.dev_health[d],
                            now,
                            HealthState::Down.gauge(),
                        );
                        continue;
                    }
                    break;
                }
                HealthState::Down => {
                    if due.is_some() {
                        // Events landing on a dead device are spent.
                        h.devs[d].events.pop_front();
                        self.devs[d].halt = h.devs[d].halt();
                        self.index.mark(d);
                        continue;
                    }
                    if now >= h.devs[d].down_until {
                        // Heal: a warm spare comes up with cold plan
                        // caches. Compiles charge zero simulated time,
                        // so the warmup window is charged explicitly on
                        // the device clock — that is the recovery
                        // latency bump the timeline shows.
                        let warm_until = h.devs[d].down_until + h.warmup;
                        h.devs[d].warm_until = warm_until;
                        h.devs[d].state = HealthState::Warming;
                        for pair in &mut self.pairs[d] {
                            h.warm_compiles += pair.cache.reset() as u64;
                            pair.plan_cap = self.max;
                            pair.pin = None;
                            pair.clean_streak = 0;
                        }
                        self.devs[d].gpu_free = self.devs[d].gpu_free.max(warm_until);
                        self.devs[d].blocked = false;
                        self.index.mark(d);
                        self.g.rec.gauge_at(
                            self.g.ids.dev_health[d],
                            now,
                            HealthState::Warming.gauge(),
                        );
                        continue;
                    }
                    break;
                }
                HealthState::Warming => {
                    if due.is_some() {
                        h.devs[d].events.pop_front();
                        self.devs[d].halt = h.devs[d].halt();
                        self.index.mark(d);
                        continue;
                    }
                    if now >= h.devs[d].warm_until {
                        // Warming -> Healthy touches only the lifecycle
                        // record, not the routing state — no index mark.
                        h.devs[d].state = HealthState::Healthy;
                        h.ups += 1;
                        self.g.rec.gauge_at(
                            self.g.ids.dev_health[d],
                            now,
                            HealthState::Healthy.gauge(),
                        );
                        continue;
                    }
                    break;
                }
            }
        }
    }

    /// Move device `d`'s queued (uncommitted) requests into the transit
    /// buffer. In-flight work is already settled — commits never
    /// straddle the device's halt horizon.
    fn fail_over(&mut self, h: &mut HealthRun, d: usize) {
        let mut moved_reqs = 0usize;
        let mut moved_images = 0usize;
        for pair in &mut self.pairs[d] {
            for (t, lane) in pair.lanes.iter_mut().enumerate() {
                if lane.has_pending() {
                    let moved = lane.queue.split_off(lane.next);
                    h.failed_over[t] += moved.len() as u64;
                    h.dev_failed_over[d] += moved.len() as u64;
                    moved_reqs += moved.len();
                    moved_images += moved.iter().map(|r| r.images).sum::<usize>();
                    h.transit.extend(moved);
                }
            }
        }
        self.devs[d].drop_queued(moved_reqs, moved_images);
        self.index.mark(d);
    }

    /// Re-place transiting requests onto the candidate devices (their
    /// [`DeviceLoad`] snapshots), preserving each request's original
    /// arrival so the deadline/shed ladder still applies. Returns how
    /// many it re-placed.
    fn requeue_transit(&mut self, h: &mut HealthRun, now: f64, candidates: &[usize]) -> u64 {
        let transit = std::mem::take(&mut h.transit);
        let mut requeued = 0u64;
        for r in transit {
            let n = (r.id as usize) % self.nn;
            let mut loads = std::mem::take(&mut self.loads_buf);
            loads.clear();
            loads.extend(candidates.iter().map(|&d| self.load_of(d, n)));
            let d = self
                .placer
                .place(&PlacementCtx {
                    now,
                    images: r.images,
                    network: n,
                    max_batch: self.max,
                    devices: &loads,
                })
                .min(self.k - 1);
            self.loads_buf = loads;
            let t = self.lane_of(r.id);
            self.g.placements[r.id as usize] = d as u32;
            self.pairs[d][n].lanes[t].queue.push(r);
            self.devs[d].push_queued(r.images);
            self.index.mark(d);
            requeued += 1;
        }
        requeued
    }

    /// Re-place the transit buffer onto `Healthy` devices, if any.
    fn drain_transit(&mut self, h: &mut HealthRun, now: f64) {
        if h.transit.is_empty() {
            return;
        }
        let healthy: Vec<usize> =
            (0..self.k).filter(|&d| h.devs[d].state == HealthState::Healthy).collect();
        if healthy.is_empty() {
            return;
        }
        h.requeued += self.requeue_transit(h, now, &healthy);
    }

    /// The routing-exhausted flush: once the last arrival has routed,
    /// no further routing point will fire health events — so fail over
    /// whatever is still queued on `Down` devices and settle the transit
    /// buffer (re-place onto any non-`Down` device, shed if the whole
    /// fleet is dead). Runs at the identical state point in both loops:
    /// immediately after the final route, before the next commit.
    /// Returns whether it ran (the sequential loop re-evaluates its
    /// global best afterwards).
    fn drain_flush(&mut self) -> bool {
        let Some(mut h) = self.health.take() else { return false };
        if h.flushed {
            self.health = Some(h);
            return false;
        }
        h.flushed = true;
        let now = self.requests.last().map_or(0.0, |r| r.arrival);
        for d in 0..self.k {
            // Zero-request runs never reach a routing point; fire any
            // events due by `now` here (with arrivals, the last routing
            // point already consumed them). Events scheduled after the
            // last arrival are void — the stream has ended and the
            // fleet drains unharassed; clearing them also releases the
            // commit-halt horizon so pending work can serve out.
            self.advance_device(&mut h, d, now);
            h.devs[d].events.clear();
            self.devs[d].halt = f64::INFINITY;
        }
        // Halt horizons just moved fleet-wide (and the failover below
        // may touch every device): one bulk invalidation.
        self.index.mark_all();
        for d in 0..self.k {
            if h.devs[d].state == HealthState::Down {
                self.fail_over(&mut h, d);
            }
        }
        if !h.transit.is_empty() {
            let alive: Vec<usize> =
                (0..self.k).filter(|&d| h.devs[d].state != HealthState::Down).collect();
            if alive.is_empty() {
                // The whole fleet is dead: shed, keeping the 0.0
                // latency sentinel and the last placement.
                let transit = std::mem::take(&mut h.transit);
                for r in transit {
                    let t = self.lane_of(r.id);
                    h.transit_shed[t] += 1;
                    self.g.fleet_shed += 1;
                    fault_span(now, 0.0, || {
                        (
                            format!("shed request {}", r.id),
                            vec![(
                                trace::intern("reason").into(),
                                trace::intern("failover").into(),
                            )],
                        )
                    });
                }
            } else {
                h.requeued += self.requeue_transit(&mut h, now, &alive);
                // Un-block the re-placement targets' commit path: a
                // Warming/Draining device serves out what the flush
                // hands it.
                for &d in &alive {
                    self.devs[d].blocked = false;
                }
            }
        }
        self.health = Some(h);
        true
    }

    /// The legacy single-threaded loop: alternate between routing the
    /// next arrival and committing the global-best batch, whichever
    /// comes first on the simulated clock.
    fn run_sequential(&mut self) -> Result<(), EngineError> {
        loop {
            let ctx = self.step_ctx();
            let best = self.global_best(&ctx);
            if self.should_route(best) {
                self.route_one();
                continue;
            }
            // Routing exhausted: settle the health layer (fail over
            // dead devices' queues, clear halt horizons) before the
            // remaining commits drain the fleet. State point:
            // immediately after the last route, before the next commit
            // — the same point the parallel loop flushes at.
            if self.next_arrival >= self.requests.len() && self.drain_flush() {
                continue;
            }
            let Some((_, d, n, t)) = best else { break };
            commit_pair(&ctx, &mut self.pairs[d], &mut self.devs[d], d, n, t, &mut self.g)?;
            self.index.mark(d);
        }
        Ok(())
    }

    /// The barrier-stepped parallel loop: route every arrival up to the
    /// barrier, batch-compile predicted cold buckets, step active
    /// devices concurrently, then replay their deferred effects in the
    /// sequential merge order.
    fn run_parallel(&mut self) -> Result<(), EngineError> {
        loop {
            // Routing barrier: place arrivals until the next one is
            // strictly later than every tentative launch. This is the
            // exact run of consecutive routes the sequential loop
            // performs between two commits.
            loop {
                let ctx = self.step_ctx();
                let best = self.global_best(&ctx);
                if !self.should_route(best) {
                    break;
                }
                self.route_one();
            }
            let t_next = self.requests.get(self.next_arrival).map(|r| r.arrival);
            if t_next.is_none() {
                // Same state point as the sequential flush: the last
                // arrival just routed and nothing has committed since.
                self.drain_flush();
            }
            let active: Vec<usize> = (0..self.k)
                .filter(|&d| !self.devs[d].blocked && self.pairs[d].iter().any(|p| p.has_pending()))
                .collect();
            if active.is_empty() {
                // Nothing pending and nothing routable: the run is
                // drained (the route loop would otherwise have routed).
                debug_assert!(t_next.is_none(), "arrivals remain but none were routed");
                break;
            }
            BARRIERS.incr();
            self.batch_compile(t_next);
            if active.len() >= 2 {
                PARALLEL_STEPS.incr();
            }

            let ctx = self.step_ctx();
            let mut tasks: Vec<(usize, &mut Vec<PairState>, &mut DeviceState)> =
                Vec::with_capacity(active.len());
            for (d, (pairs_d, dev)) in self.pairs.iter_mut().zip(self.devs.iter_mut()).enumerate() {
                if active.binary_search(&d).is_ok() {
                    tasks.push((d, pairs_d, dev));
                }
            }
            let fork = trace::fork();
            let results = rayon::scope_map(tasks, |(d, pairs_d, dev)| {
                let _w = fork.attach(d);
                step_device(&ctx, pairs_d, dev, d, t_next)
            });
            fork.merge();

            // Greedy k-way head merge: at every point a queue's head key
            // equals that device's then-current local best, so popping
            // the `(key, device)` minimum replays the sequential loop's
            // global selection exactly. A flat sort would NOT — plan-OOM
            // compounds make per-device key sequences non-monotone.
            let mut queues: Vec<(usize, VecDeque<DeviceEvent>)> = Vec::with_capacity(active.len());
            for (&d, res) in active.iter().zip(results) {
                queues.push((d, VecDeque::from(res?)));
                // The barrier stepped every active device's queues and
                // clock; their cached launch keys are stale.
                self.index.mark(d);
            }
            loop {
                let mut pick: Option<(f64, usize, usize)> = None;
                for (i, (d, q)) in queues.iter().enumerate() {
                    if let Some(head) = q.front() {
                        if pick.is_none_or(|(bk, bd, _)| (head.key, *d) < (bk, bd)) {
                            pick = Some((head.key, *d, i));
                        }
                    }
                }
                let Some((_, _, i)) = pick else { break };
                let mut ev = queues[i].1.pop_front().expect("picked head exists");
                for op in &ev.ops {
                    self.g.apply(op);
                }
                // Recycle the replayed event's op buffer into the
                // device's spare pool for the next barrier.
                ev.ops.clear();
                self.devs[queues[i].0].spare_ops.push(ev.ops);
            }
        }
        Ok(())
    }

    /// Speculatively compile the cold buckets this barrier's first
    /// commits would hit: predict each pending pair's next bucket,
    /// dedup identical (engine, network, bucket) compiles (homogeneous
    /// fleets share engines, hence plans), and stage the results so the
    /// in-step `get` consumes them as the misses they would have been.
    /// A single distinct compile runs inline on the orchestrator to
    /// keep the engine's internal probe fan-out (workers suppress
    /// nested parallelism); two or more fan out across the pool.
    /// Mispredictions waste a compile but are report- and
    /// counter-invisible: staged results only surface through `get`.
    fn batch_compile(&mut self, t_next: Option<f64>) {
        let ctx = self.step_ctx();
        let mut compiles: Vec<(usize, usize, usize)> = Vec::new();
        let mut waiters: Vec<Vec<(usize, usize)>> = Vec::new();
        for (d, pairs_d) in self.pairs.iter().enumerate() {
            if self.devs[d].blocked {
                continue; // a Down device commits nothing this step
            }
            for (n, pair) in pairs_d.iter().enumerate() {
                let emax = pair.emax();
                for (lt, lane) in pair.lanes.iter().enumerate() {
                    if !lane.has_pending() {
                        continue;
                    }
                    let launch = window_launch(
                        &lane.queue,
                        lane.next,
                        self.devs[d].gpu_free,
                        emax,
                        ctx.lane_delay(lt),
                    );
                    if t_next.is_some_and(|t| launch >= t) || launch >= self.devs[d].halt {
                        continue; // won't commit this step
                    }
                    let (_, images, _) = form(&lane.queue, lane.next, launch, emax);
                    let bucket = bucket_for(images, emax);
                    if pair.cache.contains(bucket) || pair.cache.has_staged(bucket) {
                        continue;
                    }
                    let dup = compiles.iter().position(|&(cd, cn, cb)| {
                        cn == n && cb == bucket && std::ptr::eq(self.engines[cd], self.engines[d])
                    });
                    match dup {
                        Some(i) => {
                            if !waiters[i].contains(&(d, n)) {
                                waiters[i].push((d, n));
                            }
                        }
                        None => {
                            compiles.push((d, n, bucket));
                            waiters.push(vec![(d, n)]);
                        }
                    }
                }
            }
        }
        if compiles.is_empty() {
            return;
        }
        BATCH_COMPILES.add(compiles.len() as u64);
        let results: Vec<Result<Plan, EngineError>> = if compiles.len() == 1 {
            let (d, n, b) = compiles[0];
            vec![self.pairs[d][n].cache.compile_detached(b)]
        } else {
            let pairs = &self.pairs;
            let jobs: Vec<(usize, (usize, usize, usize))> =
                compiles.iter().copied().enumerate().collect();
            let fork = trace::fork();
            let out = rayon::scope_map(jobs, |(i, (d, n, b))| {
                let _w = fork.attach(i);
                pairs[d][n].cache.compile_detached(b)
            });
            fork.merge();
            out
        };
        for ((&(_, _, b), ws), result) in compiles.iter().zip(&waiters).zip(results) {
            for &(d, n) in ws {
                self.pairs[d][n].cache.stage(b, result.clone());
            }
        }
    }
}

/// Run the fleet simulation to completion (every generated request is
/// served or shed). Deterministic: same engine configs + networks +
/// `cfg` give a bit-identical [`FleetReport`] — latencies, placements,
/// batch records, fault statistics, and metrics timelines — independent
/// of `MEMCNN_THREADS` and of the `MEMCNN_FLEET_SEQUENTIAL` escape
/// hatch (the retained single-threaded loop).
///
/// `engines[d]` is device `d`; pass the same `&Engine` K times for a
/// homogeneous fleet (they share the engine's simulation warmup, and
/// the parallel path's batched cold-start compilation compiles each
/// shared (network, bucket) plan once). Request `id % nets.len()`
/// selects the request's network, so several networks multiplex across
/// one fleet — and, through per-(device, network) plan caches, across
/// one device.
pub fn serve_fleet(
    engines: &[&Engine],
    nets: &[Network],
    cfg: &FleetConfig,
) -> Result<FleetReport, EngineError> {
    if engines.is_empty() {
        return Err(EngineError::Fatal("fleet needs at least one device".to_string()));
    }
    if nets.is_empty() {
        return Err(EngineError::Fatal("fleet needs at least one network".to_string()));
    }
    let k = engines.len();
    let nn = nets.len();
    let requests = workload::generate(&cfg.workload);
    perf::add("serve.requests", requests.len() as u64);
    let max = cfg.policy.max_batch_images.max(1);
    let fplan = cfg.faults.filter(|p| !p.is_noop());
    let pol = cfg.fault_policy;
    let dplan = if crate::health::health_disabled() {
        None
    } else {
        cfg.device_faults.clone().filter(|p| !p.is_noop())
    };

    // MemoryAware needs each (device, network)'s feasible batch cap up
    // front; the other policies never read it, so they skip the probe
    // compiles entirely (keeping K = 1 byte-identity with `serve`).
    let bucket_list = buckets(&cfg.policy);
    let caps: Vec<Vec<usize>> = (0..k)
        .map(|d| {
            (0..nn)
                .map(|n| {
                    if cfg.placement == Placement::MemoryAware {
                        let descending: Vec<usize> = bucket_list.iter().rev().copied().collect();
                        feasible_max_batch(engines[d], &nets[n], cfg.mechanism, &descending)
                            .map_or(0, |(cap, _)| cap)
                    } else {
                        max
                    }
                })
                .collect()
        })
        .collect();

    // One lane per tenant when SLO scheduling is active; a single lane
    // otherwise, which makes every lane loop below reduce structurally
    // to the pre-tenant arithmetic (the byte-identity tests pin this).
    let slo_active = !cfg.tenants.is_empty() && !crate::slo::slo_disabled();
    let nlanes = if slo_active { cfg.tenants.len() } else { 1 };
    let tags: Vec<u32> = if slo_active {
        tenant_tags(cfg.workload.seed, requests.len(), &cfg.tenants)
    } else {
        Vec::new()
    };

    // Expand the device-fault plan once, purely, over the stream's
    // horizon (the last arrival): events after it are unreachable — no
    // routing point ever fires them — so bounding the expansion keeps
    // the run finite without changing behaviour.
    let health = dplan.as_ref().map(|p| {
        let horizon = requests.last().map_or(0.0, |r| r.arrival);
        let events = p.events_for(k, horizon);
        let mut queues: Vec<VecDeque<memcnn_gpusim::DeviceFault>> =
            (0..k).map(|_| VecDeque::new()).collect();
        for ev in events {
            queues[ev.device as usize].push_back(ev);
        }
        HealthRun {
            devs: queues.into_iter().map(DeviceHealth::new).collect(),
            repair: p.repair.max(0.0),
            warmup: p.warmup.max(0.0),
            transit: Vec::new(),
            failed_over: vec![0; nlanes],
            dev_failed_over: vec![0; k],
            transit_shed: vec![0; nlanes],
            requeued: 0,
            downs: 0,
            ups: 0,
            warm_compiles: 0,
            flushed: false,
            last_healthy: None,
            last_backlog: None,
        }
    });

    let pairs: Vec<Vec<PairState>> = (0..k)
        .map(|d| {
            (0..nn)
                .map(|n| PairState {
                    cache: PlanCache::new(engines[d], &nets[n], cfg.mechanism),
                    lanes: (0..nlanes).map(|_| Lane::new()).collect(),
                    plan_cap: max,
                    pin: None,
                    clean_streak: 0,
                })
                .collect()
        })
        .collect();
    let devs: Vec<DeviceState> = (0..k)
        .map(|d| DeviceState {
            gpu_free: 0.0,
            launches: 0,
            stats: FaultStats::default(),
            shed: 0,
            plan_ooms: 0,
            batches: Vec::new(),
            busy: 0.0,
            credits: vec![0.0; nlanes],
            shed_by_tenant: vec![0; nlanes],
            early: 0,
            preempt: 0,
            halt: health.as_ref().map_or(f64::INFINITY, |h| h.devs[d].halt()),
            blocked: false,
            queued_requests: 0,
            queued_images: 0,
            spare_ops: Vec::new(),
        })
        .collect();

    // Timeline instrumentation. Routing samples are timestamped at the
    // arrival; commit samples at the committed launch. The route-first
    // rule guarantees both sequences interleave monotonically (every
    // arrival <= the next committed launch, and committed launches are
    // non-decreasing), so every counter track stays sorted in time.
    // Deadline sheds happen on a *device* clock that may run ahead of
    // the event frontier, so their totals are sampled at the next commit
    // rather than at shed time.
    // Resolve every gauge/latency-key handle once, up front: hot-path
    // samples become index pushes, and unused registrations vanish from
    // the finished timeline (empty slots are dropped), so this cannot
    // change a single output byte.
    let mut rec = Recorder::default();
    let ids = FleetGaugeIds::new(&mut rec, k);
    let slo_globals = slo_active.then(|| GlobalsSlo {
        tenant_of: tags.clone(),
        images_of: requests.iter().map(|r| r.images as u64).collect(),
        latency_keys: cfg.tenants.iter().map(|t| rec.latency_key(&t.name)).collect(),
        p99: cfg.tenants.iter().map(|t| t.class.p99_budget()).collect(),
        violation_ids: cfg
            .tenants
            .iter()
            .map(|t| {
                t.class.p99_budget().map(|_| rec.gauge_id(&format!("tenant.{}.violations", t.name)))
            })
            .collect(),
        completed: vec![0; nlanes],
        images: vec![0; nlanes],
        violations: vec![0; nlanes],
    });
    let g = Globals {
        latencies: vec![0.0f64; requests.len()],
        placements: vec![0u32; requests.len()],
        rec,
        ids,
        seen_plans: BTreeSet::new(),
        cache_lookups: 0,
        cache_hits: 0,
        fleet_shed: 0,
        slo: slo_globals,
    };
    let phase_bounds: Vec<f64> = {
        let mut t = 0.0f64;
        let mut bounds = Vec::new();
        for ph in &cfg.workload.phases {
            t += ph.duration;
            bounds.push(t);
        }
        bounds.pop(); // the end of the last phase is not a boundary
        bounds
    };
    let n_requests = requests.len();
    let mut run = FleetRun {
        engines,
        nets,
        cfg,
        requests,
        caps,
        pairs,
        devs,
        placer: cfg.placement.build(),
        g,
        delay: DelayState {
            policy_delay: cfg.policy.max_queue_delay,
            ema: None,
            last_arrival: None,
            phase_bounds,
            next_bound: 0,
        },
        next_arrival: 0,
        pol,
        fplan,
        max,
        k,
        nn,
        slo_run: slo_active.then(|| SloRun {
            tags: tags.clone(),
            admission: Admission::new(&cfg.tenants),
            admitted: vec![0; nlanes],
            rejected: vec![0; nlanes],
        }),
        health,
        index: RouteIndex::new(k),
        linear: linear_requested(),
        loads_buf: Vec::new(),
    };
    if sequential_requested() {
        run.run_sequential()?;
    } else {
        run.run_parallel()?;
    }
    let FleetRun { pairs, devs, g, slo_run, health, .. } = run;
    let Globals { latencies, placements, rec, slo: g_slo, .. } = g;

    // Aggregate accounting, mirroring the single-device counter names so
    // a K = 1 fleet bumps exactly what `serve` would.
    let mut agg = FaultStats::default();
    let mut shed_requests = 0usize;
    let mut plan_ooms = 0u64;
    let mut total_batches = 0usize;
    for dev in &devs {
        debug_assert!(dev.stats.balanced(), "device fault accounting out of balance");
        agg.injected += dev.stats.injected;
        agg.retried += dev.stats.retried;
        agg.degraded += dev.stats.degraded;
        agg.shed += dev.stats.shed;
        agg.throttled += dev.stats.throttled;
        agg.oom_downshifts += dev.stats.oom_downshifts;
        agg.degraded_entries += dev.stats.degraded_entries;
        agg.degraded_exits += dev.stats.degraded_exits;
        shed_requests += dev.shed;
        plan_ooms += dev.plan_ooms;
        total_batches += dev.batches.len();
    }
    // Transit sheds (failed-over requests with no live target) belong
    // to the fleet, not to any device; fold them into the total the
    // same way the routing loop already folded them into `fleet_shed`.
    if let Some(h) = &health {
        shed_requests += h.transit_shed.iter().sum::<u64>() as usize;
        perf::add("fleet.device.down", h.downs);
        perf::add("fleet.device.up", h.ups);
        perf::add("fleet.failover.requeued", h.requeued);
        perf::add("fleet.warm.compiles", h.warm_compiles);
    }
    perf::add("serve.batches", total_batches as u64);
    perf::add("serve.shed", shed_requests as u64);
    perf::add("serve.plan.oom", plan_ooms);
    perf::add("fault.injected", agg.injected);
    perf::add("fault.retried", agg.retried);
    perf::add("fault.degraded", agg.degraded);
    perf::add("fault.shed", agg.shed);
    perf::add("serve.degraded.enter", agg.degraded_entries);
    perf::add("serve.degraded.exit", agg.degraded_exits);
    debug_assert!(agg.balanced(), "fleet fault accounting out of balance: {agg:?}");

    let devices: Vec<DeviceReport> = devs
        .iter()
        .enumerate()
        .map(|(d, dev)| {
            let networks: Vec<NetworkBuckets> = (0..nn)
                .filter(|&n| !pairs[d][n].cache.is_empty())
                .map(|n| {
                    let hits: Vec<&BatchRecord> = dev
                        .batches
                        .iter()
                        .filter(|b| b.network as usize == n)
                        .map(|b| &b.record)
                        .collect();
                    let buckets = pairs[d][n]
                        .cache
                        .plans()
                        .iter()
                        .map(|(&bucket, plan)| {
                            let in_bucket: Vec<&&BatchRecord> =
                                hits.iter().filter(|b| b.bucket == bucket).collect();
                            let images: usize = in_bucket.iter().map(|b| b.images).sum();
                            BucketStats {
                                bucket,
                                batches: in_bucket.len(),
                                images,
                                fill: if in_bucket.is_empty() {
                                    0.0
                                } else {
                                    images as f64 / (in_bucket.len() * bucket) as f64
                                },
                                conv_layouts: plan.conv_layout_signature(),
                                transforms: plan.transform_count(),
                                service_time: plan.total_time(),
                            }
                        })
                        .collect();
                    NetworkBuckets { network: nets[n].name.clone(), buckets }
                })
                .collect();
            DeviceReport {
                device: engines[d].device().name.clone(),
                requests: pairs[d]
                    .iter()
                    .map(|p| p.lanes.iter().map(|l| l.queue.len()).sum::<usize>())
                    .sum(),
                images: dev.batches.iter().map(|b| b.record.images).sum(),
                makespan: dev.gpu_free,
                batches: dev.batches.clone(),
                networks,
                shed_requests: dev.shed,
                faults: dev.stats,
            }
        })
        .collect();

    let makespan = devs.iter().map(|d| d.gpu_free).fold(0.0f64, f64::max);

    // Per-tenant SLO rollup: admission tallies from the router, served
    // tallies from the globally ordered replay, sheds and scheduler
    // counters from the devices, residual lane depths as in-flight.
    let slo = match (slo_run, g_slo) {
        (Some(sr), Some(gs)) => {
            let nt = cfg.tenants.len();
            let mut shed_by = vec![0u64; nt];
            let mut early = 0u64;
            let mut preempt = 0u64;
            for dev in &devs {
                for (t, shed) in shed_by.iter_mut().enumerate() {
                    *shed += dev.shed_by_tenant[t];
                }
                early += dev.early;
                preempt += dev.preempt;
            }
            let mut in_flight = vec![0u64; nt];
            for pairs_d in &pairs {
                for pair in pairs_d {
                    for (t, lane) in pair.lanes.iter().enumerate() {
                        in_flight[t] += lane.pending().len() as u64;
                    }
                }
            }
            // Failover accounting: transit sheds join the tenant's shed
            // tally (they are terminal), the transit-buffer residual is
            // the balance identity's new term, and the cumulative
            // failed-over counts ride along for observability.
            let mut failed_over = vec![0u64; nt];
            let mut in_transit = vec![0u64; nt];
            if let Some(h) = &health {
                for (s, &ts) in shed_by.iter_mut().zip(&h.transit_shed) {
                    *s += ts;
                }
                failed_over.copy_from_slice(&h.failed_over[..nt]);
                for r in &h.transit {
                    in_transit[sr.tags[r.id as usize] as usize] += 1;
                }
            }
            let device_seconds: f64 = devs.iter().map(|d| d.busy).sum();
            Some(crate::slo::slo_report(
                &cfg.tenants,
                &latencies,
                &sr.tags,
                &sr.admitted,
                &sr.rejected,
                &gs.completed,
                &shed_by,
                &in_flight,
                &gs.images,
                &gs.violations,
                early,
                preempt,
                &failed_over,
                &in_transit,
                device_seconds,
            ))
        }
        _ => None,
    };

    let health_report = health.map(|h| HealthReport {
        downs: h.downs,
        ups: h.ups,
        requeued: h.requeued,
        warm_compiles: h.warm_compiles,
        failed_over: h.failed_over.iter().sum(),
        failed_over_in_transit: h.transit.len() as u64,
        transit_shed: h.transit_shed.iter().sum(),
        device_failed_over: h.dev_failed_over,
        states: h.devs.iter().map(|d| d.state).collect(),
    });

    let timeline = rec.finish();
    // Mirror the timeline onto the Perfetto counter tracks (a no-op when
    // tracing is inactive).
    timeline.emit_trace_counters(trace::Track::Fleet);
    Ok(FleetReport {
        config: cfg.clone(),
        networks: nets.iter().map(|n| n.name.clone()).collect(),
        requests: n_requests,
        latencies,
        placements,
        devices,
        makespan,
        shed_requests,
        faults: agg,
        timeline,
        slo,
        health: health_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Arrival, Phase};
    use memcnn_core::{LayoutThresholds, NetworkBuilder};
    use memcnn_gpusim::DeviceConfig;
    use memcnn_tensor::Shape;

    fn tiny_engine() -> Engine {
        Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
    }

    fn tiny_net(name: &str) -> Network {
        NetworkBuilder::new(name, Shape::new(1, 4, 16, 16))
            .conv("CV", 8, 3, 1, 1)
            .max_pool("PL", 2, 2)
            .build()
            .unwrap()
    }

    fn workload(rate: f64, duration: f64, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            phases: vec![Phase { arrival: Arrival::Poisson { rate }, duration }],
            images_min: 1,
            images_max: 4,
            seed,
        }
    }

    #[test]
    fn every_request_is_served_across_devices() {
        let e = tiny_engine();
        let net = tiny_net("fleet-tiny");
        let cfg = FleetConfig::new(
            workload(800.0, 0.2, 11),
            BatchPolicy::new(32, 0.004),
            Placement::LeastLoaded,
        );
        let report = serve_fleet(&[&e, &e], std::slice::from_ref(&net), &cfg).unwrap();
        assert!(report.requests > 0);
        assert_eq!(report.latencies.len(), report.requests);
        assert!(report.latencies.iter().all(|&l| l > 0.0));
        assert_eq!(report.shed_requests, 0);
        assert_eq!(report.placements.len(), report.requests);
        assert!(report.placements.iter().all(|&p| p < 2));
        // Both devices took work under least-loaded at this load.
        assert!(report.devices.iter().all(|d| !d.batches.is_empty()));
        assert_eq!(report.devices.iter().map(|d| d.requests).sum::<usize>(), report.requests);
        assert_eq!(report.images(), report.devices.iter().map(|d| d.images).sum::<usize>());
        // Per-device batches never overlap on that device.
        for dev in &report.devices {
            for w in dev.batches.windows(2) {
                assert!(w[0].record.done <= w[1].record.launch + 1e-12);
            }
        }
    }

    #[test]
    fn two_networks_multiplex_on_one_device() {
        let e = tiny_engine();
        let nets = [tiny_net("net-a"), tiny_net("net-b")];
        let cfg = FleetConfig::new(
            workload(600.0, 0.2, 3),
            BatchPolicy::new(16, 0.003),
            Placement::RoundRobin,
        );
        let report = serve_fleet(&[&e], &nets, &cfg).unwrap();
        assert_eq!(report.networks, vec!["net-a".to_string(), "net-b".to_string()]);
        let dev = &report.devices[0];
        let served: Vec<u32> = dev.batches.iter().map(|b| b.network).collect();
        assert!(served.contains(&0) && served.contains(&1), "both networks must serve");
        assert_eq!(dev.networks.len(), 2, "one bucket rollup per network");
        assert!(report.latencies.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn adaptive_delay_changes_at_phase_boundaries_only() {
        let e = tiny_engine();
        let net = tiny_net("fleet-adaptive");
        let base = BatchPolicy::new(32, 0.02);
        let wl = WorkloadConfig {
            phases: vec![
                Phase { arrival: Arrival::Poisson { rate: 200.0 }, duration: 0.2 },
                Phase { arrival: Arrival::Poisson { rate: 3000.0 }, duration: 0.1 },
            ],
            images_min: 1,
            images_max: 2,
            seed: 17,
        };
        let fixed = FleetConfig::new(wl.clone(), base, Placement::LeastLoaded);
        // Phase 1 runs on the configured 20 ms delay in both configs (the
        // estimator only acts at boundaries). At the boundary the EMA gap
        // is ~5 ms (200 req/s), so the adaptive delay clamps to 4 ms —
        // during the 3000 req/s burst the fixed config fills 32-image
        // windows in ~7 ms while the adaptive one launches at 4 ms.
        let adaptive = fixed.clone().with_adaptive(AdaptivePolicy {
            alpha: 0.2,
            target_batch: 8.0,
            min_delay: 5e-4,
            max_delay: 0.004,
        });
        let a = serve_fleet(&[&e], std::slice::from_ref(&net), &fixed).unwrap();
        let b = serve_fleet(&[&e], std::slice::from_ref(&net), &adaptive).unwrap();
        assert_eq!(a.requests, b.requests);
        // Re-running the adaptive config replays bit-identically.
        let b2 = serve_fleet(&[&e], std::slice::from_ref(&net), &adaptive).unwrap();
        let bits =
            |r: &FleetReport| -> Vec<u64> { r.latencies.iter().map(|l| l.to_bits()).collect() };
        assert_eq!(bits(&b), bits(&b2));
        // The estimator actually changed behavior across the run.
        assert_ne!(bits(&a), bits(&b), "adaptive delay must alter the burst phase");
    }

    #[test]
    fn memory_aware_runs_on_heterogeneous_fleet() {
        let black = tiny_engine();
        let x = Engine::new(DeviceConfig::titan_x(), LayoutThresholds::titan_black_paper());
        let net = tiny_net("fleet-hetero");
        let cfg = FleetConfig::new(
            workload(700.0, 0.15, 5),
            BatchPolicy::new(32, 0.004),
            Placement::MemoryAware,
        );
        let report = serve_fleet(&[&black, &x], std::slice::from_ref(&net), &cfg).unwrap();
        assert!(report.latencies.iter().all(|&l| l > 0.0));
        assert_eq!(report.devices.len(), 2);
        assert_ne!(report.devices[0].device, report.devices[1].device);
    }

    #[test]
    fn empty_inputs_are_typed_errors() {
        let e = tiny_engine();
        let net = tiny_net("fleet-empty");
        let cfg = FleetConfig::new(
            workload(10.0, 0.01, 1),
            BatchPolicy::new(8, 0.001),
            Placement::RoundRobin,
        );
        assert!(serve_fleet(&[], std::slice::from_ref(&net), &cfg).is_err());
        assert!(serve_fleet(&[&e], &[], &cfg).is_err());
    }

    #[test]
    fn sequential_knob_parses_and_malformed_falls_back() {
        assert!(!sequential_from(None));
        assert!(sequential_from(Some("1")));
        assert!(sequential_from(Some("true")));
        assert!(!sequential_from(Some("0")));
        assert!(!sequential_from(Some("false")));
        // Malformed values warn once on stderr and keep the parallel
        // path (mirroring MEMCNN_THREADS' fallback convention).
        assert!(!sequential_from(Some("yes")));
        assert!(!sequential_from(Some("")));
        assert!(!sequential_from(Some(" 1 ")));
    }
}
