//! Deterministic latency/throughput summaries. Percentiles use the
//! nearest-rank method over an explicitly sorted copy, so two runs with
//! bit-identical latency vectors summarize bit-identically.

use serde::Serialize;

/// Summary of a latency sample, seconds.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in [0, 100]).
/// Empty input yields 0.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summarize a latency sample (any order; a sorted copy is made once and
/// reused for every percentile).
pub fn latency_stats(latencies: &[f64]) -> LatencyStats {
    if latencies.is_empty() {
        return LatencyStats::default();
    }
    let mut sorted = latencies.to_vec();
    // total_cmp is a total order, so no panic path even on NaN input.
    sorted.sort_by(f64::total_cmp);
    latency_stats_sorted(&sorted)
}

/// Summarize the *served* latencies of a sample that may contain shed/
/// rejected sentinels (`<= 0`), sorting into a thread-local scratch
/// buffer instead of cloning the vector per call. Bit-identical to
/// filtering positives into a fresh `Vec` and calling [`latency_stats`].
pub fn latency_stats_served(latencies: &[f64]) -> LatencyStats {
    thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        buf.extend(latencies.iter().copied().filter(|&l| l > 0.0));
        buf.sort_by(f64::total_cmp);
        latency_stats_sorted(&buf)
    })
}

/// Summarize an *already ascending-sorted* latency sample without
/// re-sorting. Callers that compute several summaries from one report
/// sort once and reuse the slice; results are bit-identical to
/// [`latency_stats`] on the unsorted input.
pub fn latency_stats_sorted(sorted: &[f64]) -> LatencyStats {
    if sorted.is_empty() {
        return LatencyStats::default();
    }
    debug_assert!(sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()), "input must be sorted");
    LatencyStats {
        count: sorted.len(),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50: percentile(sorted, 50.0),
        p95: percentile(sorted, 95.0),
        p99: percentile(sorted, 99.0),
        max: sorted[sorted.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Small samples: ceil(0.5 * 3) = 2nd of three.
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 50.0), 2.0);
    }

    #[test]
    fn presorted_stats_match_the_sorting_path_bit_for_bit() {
        let raw = [0.004, 0.001, 0.003, 0.002, 0.009, 0.0055];
        let mut sorted = raw.to_vec();
        sorted.sort_by(f64::total_cmp);
        let a = latency_stats(&raw);
        let b = latency_stats_sorted(&sorted);
        assert_eq!(a.count, b.count);
        for (x, y) in
            [(a.mean, b.mean), (a.p50, b.p50), (a.p95, b.p95), (a.p99, b.p99), (a.max, b.max)]
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(latency_stats_sorted(&[]).count, 0);
    }

    #[test]
    fn served_stats_skip_sentinels_without_cloning_semantics_changes() {
        let mixed = [0.004, 0.0, 0.001, -1.0, 0.003, 0.0];
        let served: Vec<f64> = mixed.iter().copied().filter(|&l| l > 0.0).collect();
        let a = latency_stats_served(&mixed);
        let b = latency_stats(&served);
        assert_eq!(a.count, b.count);
        for (x, y) in
            [(a.mean, b.mean), (a.p50, b.p50), (a.p95, b.p95), (a.p99, b.p99), (a.max, b.max)]
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // All-sentinel and empty inputs degrade to the zero summary, and
        // the scratch buffer resets between calls.
        assert_eq!(latency_stats_served(&[0.0, -2.0]).count, 0);
        assert_eq!(latency_stats_served(&mixed).count, 3);
    }

    #[test]
    fn stats_are_order_independent() {
        let a = latency_stats(&[3.0, 1.0, 2.0, 4.0]);
        let b = latency_stats(&[4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a.p50.to_bits(), b.p50.to_bits());
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.max, 4.0);
        assert_eq!(a.count, 4);
    }
}
