//! OOM-aware capacity planning, promoted from the bench binary into the
//! library: pick the largest batch-size cap whose bucket actually plans on
//! the device. Deep networks can exhaust simulated device memory at large
//! `N` (the paper's CV5/CV6 FFT "execution failures" take the same path),
//! and a serving policy must not promise buckets it cannot compile.

use memcnn_core::{Engine, EngineError, Mechanism, Network, Plan};

/// Largest `max_batch_images` from `candidates` (try them descending)
/// whose top bucket plans successfully. Batch sizes whose plans fail with
/// a degradable error ([`EngineError::PlanOom`]) or a structural one
/// ([`EngineError::PlanInfeasible`]) are skipped; `None` means no
/// candidate fits.
pub fn feasible_max_batch(
    engine: &Engine,
    net: &Network,
    mech: Mechanism,
    candidates: &[usize],
) -> Option<(usize, Plan)> {
    for &max in candidates {
        match engine.plan_at(net, mech, max).map_err(|e| EngineError::plan(max, e)) {
            Ok(plan) => return Some((max, plan)),
            Err(_) => continue,
        }
    }
    None
}

/// Saturation throughput implied by the top bucket's plan, images/second.
pub fn capacity_images_per_sec(max_batch: usize, top_plan: &Plan) -> f64 {
    max_batch as f64 / top_plan.total_time()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_core::{LayoutThresholds, NetworkBuilder};
    use memcnn_gpusim::DeviceConfig;
    use memcnn_tensor::Shape;

    #[test]
    fn picks_the_first_candidate_that_plans() {
        let engine =
            Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper());
        let net = NetworkBuilder::new("cap", Shape::new(1, 4, 12, 12))
            .conv("CV", 8, 3, 1, 1)
            .build()
            .unwrap();
        let (max, plan) =
            feasible_max_batch(&engine, &net, Mechanism::Opt, &[64, 32]).expect("tiny net fits");
        assert_eq!(max, 64);
        assert_eq!(plan.batch, 64);
        assert!(capacity_images_per_sec(max, &plan) > 0.0);
        assert!(feasible_max_batch(&engine, &net, Mechanism::Opt, &[]).is_none());
    }
}
