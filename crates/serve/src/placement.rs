//! Placement policies: which device a routed request joins.
//!
//! The fleet's event loop routes every arrival through a
//! [`PlacementPolicy`] with a snapshot of per-device load
//! ([`DeviceLoad`]). Policies are deterministic — same snapshot, same
//! answer — so the whole fleet run stays a pure function of its config.
//!
//! Three implementations ship:
//!
//! - [`RoundRobin`]: rotate through devices, ignoring load. The baseline
//!   the bench compares against.
//! - [`LeastLoaded`]: the device that frees up earliest (ties broken by
//!   queued images, then index). Under bursty phases this shields a hot
//!   device by spilling to idle ones — but see [`QueueWeighted`] for its
//!   convoy defect.
//! - [`QueueWeighted`]: rank by queued images first, free time second.
//!   `gpu_free` only moves when a batch *commits*, so between commits
//!   `LeastLoaded` sends every burst arrival to the same
//!   momentarily-earliest device (a convoy); queued images update on
//!   every routed arrival, so ranking them first spreads a burst across
//!   the fleet immediately.
//! - [`MemoryAware`]: like `LeastLoaded`, but first drop devices whose
//!   [`feasible_max_batch`](crate::capacity::feasible_max_batch) cap is
//!   below the request's natural bucket — on a heterogeneous fleet the
//!   small-memory device would downshift (or plan-OOM) batches the big
//!   one runs natively.

use crate::batch::bucket_for;
use serde::Serialize;

/// Load snapshot of one device at routing time.
#[derive(Clone, Copy, Debug)]
pub struct DeviceLoad {
    /// Device index in the fleet.
    pub device: usize,
    /// When the device's GPU frees up (simulated seconds).
    pub gpu_free: f64,
    /// Requests routed to the device and not yet launched.
    pub queued_requests: usize,
    /// Images those requests carry.
    pub queued_images: usize,
    /// Largest bucket the device can compile for the request's network
    /// (`0`: none — plan-time OOM at every candidate bucket).
    pub feasible_cap: usize,
}

/// Everything a placement decision may read.
#[derive(Clone, Copy, Debug)]
pub struct PlacementCtx<'a> {
    /// The request's arrival time.
    pub now: f64,
    /// Images the request carries.
    pub images: usize,
    /// Index of the network the request targets.
    pub network: usize,
    /// The batching policy's image cap.
    pub max_batch: usize,
    /// Candidate load snapshots. Usually the whole fleet in device
    /// order, but the health layer passes only the eligible (e.g.
    /// `Healthy`) devices — so entries carry their own
    /// [`DeviceLoad::device`] id and `devices[i].device == i` must not
    /// be assumed.
    pub devices: &'a [DeviceLoad],
}

/// A deterministic routing decision. `place` returns the chosen
/// [`DeviceLoad::device`] id from the candidate slice; implementations
/// may keep internal state (e.g. a round-robin cursor) but must not
/// consult any source of nondeterminism.
pub trait PlacementPolicy {
    /// Choose a device for one request.
    fn place(&mut self, ctx: &PlacementCtx) -> usize;
    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// Rotate through devices in index order, ignoring load.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin {
    counter: usize,
}

impl PlacementPolicy for RoundRobin {
    fn place(&mut self, ctx: &PlacementCtx) -> usize {
        // Return the candidate's device id, not the slice index: the
        // fleet's health layer passes a filtered candidate slice when
        // some devices are not Healthy (identical on the full fleet,
        // where `devices[i].device == i`).
        let d = self.counter % ctx.devices.len().max(1);
        self.counter = self.counter.wrapping_add(1);
        ctx.devices.get(d).map_or(d, |l| l.device)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Pick the least-loaded candidate from `devices`: earliest effective
/// free time (`max(gpu_free, now)` — an idle device is "free now", not
/// "free in the past"), then fewest queued images, then lowest index.
fn least_loaded_of(devices: &[DeviceLoad], now: f64) -> usize {
    let mut best = 0usize;
    for (i, d) in devices.iter().enumerate() {
        if i == 0 {
            best = 0;
            continue;
        }
        let b = &devices[best];
        let key = (d.gpu_free.max(now), d.queued_images);
        let best_key = (b.gpu_free.max(now), b.queued_images);
        if key.0.total_cmp(&best_key.0).is_lt()
            || (key.0.total_cmp(&best_key.0).is_eq() && key.1 < best_key.1)
        {
            best = i;
        }
    }
    devices[best].device
}

/// Route to the device that frees up earliest.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn place(&mut self, ctx: &PlacementCtx) -> usize {
        least_loaded_of(ctx.devices, ctx.now)
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Route by queue pressure first: fewest queued images, then earliest
/// effective free time, then lowest index.
///
/// This is the burst-convoy fix for [`LeastLoaded`]: that policy's
/// primary key (`max(gpu_free, now)`) is frozen between batch commits,
/// so a burst arriving while the fleet is quiet convoys onto one device
/// (its queued-images tiebreaker only matters on *exact* free-time ties,
/// which vanish once clocks diverge). Queued images grow on every routed
/// arrival, so using them as the primary key spreads a burst round-robin
/// across equally-pressured devices and the per-device queue timelines
/// stay flat instead of spiking on one device.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueWeighted;

impl PlacementPolicy for QueueWeighted {
    fn place(&mut self, ctx: &PlacementCtx) -> usize {
        let mut best = 0usize;
        for (i, d) in ctx.devices.iter().enumerate() {
            if i == 0 {
                continue;
            }
            let b = &ctx.devices[best];
            let free = d.gpu_free.max(ctx.now);
            let best_free = b.gpu_free.max(ctx.now);
            if d.queued_images < b.queued_images
                || (d.queued_images == b.queued_images && free.total_cmp(&best_free).is_lt())
            {
                best = i;
            }
        }
        ctx.devices[best].device
    }

    fn name(&self) -> &'static str {
        "queue-weighted"
    }
}

/// Route like [`LeastLoaded`], but skip devices whose feasible batch cap
/// is below the request's natural bucket. When every device is capped
/// (or none can compile anything), fall back to the full candidate set —
/// the serving loop's own downshift ladder then absorbs the mismatch.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryAware;

impl PlacementPolicy for MemoryAware {
    fn place(&mut self, ctx: &PlacementCtx) -> usize {
        let natural = bucket_for(ctx.images, ctx.max_batch.max(1));
        let fit: Vec<DeviceLoad> =
            ctx.devices.iter().filter(|d| d.feasible_cap >= natural).copied().collect();
        if fit.is_empty() {
            least_loaded_of(ctx.devices, ctx.now)
        } else {
            least_loaded_of(&fit, ctx.now)
        }
    }

    fn name(&self) -> &'static str {
        "memory-aware"
    }
}

/// Serializable selector for the shipped policies (configs carry this;
/// [`Placement::build`] instantiates the live state).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Placement {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`QueueWeighted`].
    QueueWeighted,
    /// [`MemoryAware`].
    MemoryAware,
}

impl Placement {
    /// Instantiate the policy's live state.
    pub fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            Placement::RoundRobin => Box::new(RoundRobin::default()),
            Placement::LeastLoaded => Box::new(LeastLoaded),
            Placement::QueueWeighted => Box::new(QueueWeighted),
            Placement::MemoryAware => Box::new(MemoryAware),
        }
    }

    /// Short policy name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::LeastLoaded => "least-loaded",
            Placement::QueueWeighted => "queue-weighted",
            Placement::MemoryAware => "memory-aware",
        }
    }

    /// Parse a policy from its [`Placement::name`] string (scenario TOML
    /// files reference policies by name).
    pub fn from_name(name: &str) -> Option<Placement> {
        match name {
            "round-robin" => Some(Placement::RoundRobin),
            "least-loaded" => Some(Placement::LeastLoaded),
            "queue-weighted" => Some(Placement::QueueWeighted),
            "memory-aware" => Some(Placement::MemoryAware),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(device: usize, gpu_free: f64, queued_images: usize, cap: usize) -> DeviceLoad {
        DeviceLoad {
            device,
            gpu_free,
            queued_requests: queued_images,
            queued_images,
            feasible_cap: cap,
        }
    }

    fn ctx<'a>(devices: &'a [DeviceLoad], now: f64, images: usize) -> PlacementCtx<'a> {
        PlacementCtx { now, images, network: 0, max_batch: 64, devices }
    }

    #[test]
    fn round_robin_cycles_in_index_order() {
        let devs = [load(0, 0.0, 0, 64), load(1, 0.0, 0, 64), load(2, 0.0, 0, 64)];
        let mut p = RoundRobin::default();
        let picks: Vec<usize> = (0..6).map(|_| p.place(&ctx(&devs, 0.0, 1))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_prefers_earliest_free_then_fewest_images_then_index() {
        let devs = [load(0, 5.0, 0, 64), load(1, 2.0, 9, 64), load(2, 2.0, 3, 64)];
        assert_eq!(LeastLoaded.place(&ctx(&devs, 1.0, 1)), 2);
        // Idle devices are "free now": past free times do not rank one
        // idle device above another.
        let idle = [load(0, 0.5, 2, 64), load(1, 0.1, 2, 64)];
        assert_eq!(LeastLoaded.place(&ctx(&idle, 1.0, 1)), 0);
    }

    #[test]
    fn memory_aware_skips_capped_devices_unless_all_are_capped() {
        // Request of 40 images -> natural bucket 64.
        let devs = [load(0, 0.0, 0, 32), load(1, 3.0, 5, 64)];
        assert_eq!(MemoryAware.place(&ctx(&devs, 0.0, 40)), 1);
        // Small request: both fit, earliest-free wins.
        assert_eq!(MemoryAware.place(&ctx(&devs, 0.0, 2)), 0);
        // All capped: fall back to the full set.
        let capped = [load(0, 4.0, 0, 16), load(1, 1.0, 0, 16)];
        assert_eq!(MemoryAware.place(&ctx(&capped, 0.0, 40)), 1);
    }

    #[test]
    fn queue_weighted_spreads_a_burst_that_convoys_under_least_loaded() {
        // A burst lands while device 1 is momentarily the earliest free.
        // Between commits gpu_free is frozen; only queued_images moves.
        let mut devs = [load(0, 0.20, 0, 64), load(1, 0.10, 0, 64)];
        let mut ll_picks = Vec::new();
        let mut qw_picks = Vec::new();
        for _ in 0..6 {
            ll_picks.push(LeastLoaded.place(&ctx(&devs, 0.05, 2)));
            let d = QueueWeighted.place(&ctx(&devs, 0.05, 2));
            qw_picks.push(d);
            devs[d].queued_images += 2; // the fleet updates this per arrival
            devs[d].queued_requests += 1;
        }
        // LeastLoaded convoys the whole burst onto device 1 (frozen key,
        // and its queued-images tiebreaker never fires once free times
        // differ); QueueWeighted alternates.
        assert_eq!(ll_picks, vec![1; 6]);
        assert_eq!(qw_picks, vec![1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn selector_builds_matching_policies() {
        for (sel, name) in [
            (Placement::RoundRobin, "round-robin"),
            (Placement::LeastLoaded, "least-loaded"),
            (Placement::QueueWeighted, "queue-weighted"),
            (Placement::MemoryAware, "memory-aware"),
        ] {
            assert_eq!(sel.name(), name);
            assert_eq!(sel.build().name(), name);
            assert_eq!(Placement::from_name(name), Some(sel));
        }
        assert_eq!(Placement::from_name("nope"), None);
    }
}
