//! The discrete-event serving loop: one simulated device draining an
//! open-loop request stream through the dynamic batcher and the per-bucket
//! plan cache.
//!
//! All time is simulated. A batch's service time is its bucket plan's
//! simulated forward time (`Plan::total_time` — layers plus inserted
//! layout transformations), and queueing delay falls out of the event
//! loop. The loop itself is single-threaded and touches the engine only
//! through `PlanCache`, whose plans are bit-identical across thread counts
//! (the PR-2 cache guarantee), so an entire run is a pure function of
//! `(engine config, network, ServeConfig)`.

use crate::batch::{bucket_for, BatchPolicy};
use crate::metrics::{latency_stats, LatencyStats};
use crate::plan_cache::PlanCache;
use crate::workload::{self, Request, WorkloadConfig};
use memcnn_core::{Engine, Mechanism, Network};
use memcnn_gpusim::SimError;
use memcnn_trace as trace;
use memcnn_trace::perf;
use serde::Serialize;

/// Everything a serving run needs besides the engine and the network.
#[derive(Clone, Debug, Serialize)]
pub struct ServeConfig {
    /// The synthetic request stream.
    pub workload: WorkloadConfig,
    /// The dynamic-batching policy.
    pub policy: BatchPolicy,
    /// Mechanism plans are compiled under (the paper's `Opt` by default).
    pub mechanism: Mechanism,
}

impl ServeConfig {
    /// `Opt`-mechanism config from a workload and policy.
    pub fn new(workload: WorkloadConfig, policy: BatchPolicy) -> ServeConfig {
        ServeConfig { workload, policy, mechanism: Mechanism::Opt }
    }
}

/// One launched batch.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct BatchRecord {
    /// Launch time (GPU start), seconds.
    pub launch: f64,
    /// Completion time, seconds.
    pub done: f64,
    /// Requests folded into the batch.
    pub requests: usize,
    /// Images in the batch (before bucket rounding).
    pub images: usize,
    /// Bucket the batch executed in (plan's `N`).
    pub bucket: usize,
    /// Arrived-but-unserved requests left behind at launch.
    pub queue_depth: usize,
}

/// Per-bucket aggregate of a finished run.
#[derive(Clone, Debug, Serialize)]
pub struct BucketStats {
    /// Bucket size (`N` its plan was compiled at).
    pub bucket: usize,
    /// Batches executed in this bucket.
    pub batches: usize,
    /// Total images those batches carried.
    pub images: usize,
    /// Mean fill: images per batch over bucket capacity, in (0, 1].
    pub fill: f64,
    /// The plan's convolution-layout signature (e.g. `CHWN` or
    /// `CHWN,NCHW,...`) — the paper-flavored observable: this string
    /// changes across buckets of the same network.
    pub conv_layouts: String,
    /// Layout transformations the plan inserts.
    pub transforms: usize,
    /// The plan's simulated service time, seconds.
    pub service_time: f64,
}

/// A finished serving run.
#[derive(Clone, Debug, Serialize)]
pub struct ServeReport {
    /// Network name.
    pub network: String,
    /// The config the run used.
    pub config: ServeConfig,
    /// Requests served (== generated requests).
    pub requests: usize,
    /// Images served.
    pub images: usize,
    /// Completion time of the last batch, seconds.
    pub makespan: f64,
    /// Per-request latency (completion - arrival), in request-id order —
    /// the determinism tests compare this vector bit for bit.
    pub latencies: Vec<f64>,
    /// Every launched batch, in launch order.
    pub batches: Vec<BatchRecord>,
    /// Per-bucket aggregates, ascending by bucket.
    pub buckets: Vec<BucketStats>,
}

impl ServeReport {
    /// Latency summary over all requests.
    pub fn latency(&self) -> LatencyStats {
        latency_stats(&self.latencies)
    }

    /// Served images per second of makespan.
    pub fn throughput_images_per_sec(&self) -> f64 {
        if self.makespan > 0.0 {
            self.images as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Served requests per second of makespan.
    pub fn throughput_requests_per_sec(&self) -> f64 {
        if self.makespan > 0.0 {
            self.requests as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Mean queue depth observed at batch launches.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches.iter().map(|b| b.queue_depth as f64).sum::<f64>() / self.batches.len() as f64
    }

    /// Distinct convolution-layout signatures across buckets — `> 1`
    /// means the server observably flipped plans as load changed.
    pub fn distinct_conv_signatures(&self) -> usize {
        let mut sigs: Vec<&str> = self.buckets.iter().map(|b| b.conv_layouts.as_str()).collect();
        sigs.sort_unstable();
        sigs.dedup();
        sigs.len()
    }
}

/// Greedy FIFO batch formation at time `launch`: take requests arrived by
/// `launch` (starting at `next`) while their images fit in `max`. Returns
/// `(end_index, images, full)`; `full` means the batch cannot grow even if
/// more requests were queued.
fn form(requests: &[Request], next: usize, launch: f64, max: usize) -> (usize, usize, bool) {
    let mut images = 0usize;
    let mut j = next;
    while j < requests.len() && requests[j].arrival <= launch {
        // A request larger than the whole batch is clamped rather than
        // rejected: it becomes a lone full batch.
        let imgs = requests[j].images.min(max);
        if images + imgs > max {
            return (j, images, true);
        }
        images += imgs;
        j += 1;
        if images == max {
            return (j, images, true);
        }
    }
    (j, images, false)
}

/// Run the serving simulation to completion (every generated request is
/// served). Deterministic: same engine config + network + `cfg` gives a
/// bit-identical [`ServeReport`], independent of `MEMCNN_THREADS`.
pub fn serve(engine: &Engine, net: &Network, cfg: &ServeConfig) -> Result<ServeReport, SimError> {
    let requests = workload::generate(&cfg.workload);
    perf::add("serve.requests", requests.len() as u64);
    let max = cfg.policy.max_batch_images.max(1);
    let mut cache = PlanCache::new(engine, net, cfg.mechanism);
    let mut latencies = vec![0.0f64; requests.len()];
    let mut batches: Vec<BatchRecord> = Vec::new();
    let mut gpu_free = 0.0f64;
    let mut next = 0usize;

    while next < requests.len() {
        let oldest = requests[next].arrival;
        let deadline = oldest + cfg.policy.max_queue_delay;
        // The batch launches at max(gpu_free, min(T_full, T_deadline)):
        // grow the admission window arrival by arrival until the batch is
        // full or the oldest request's deadline stops the wait.
        let mut launch = gpu_free.max(oldest);
        loop {
            let (j_after, _, full) = form(&requests, next, launch, max);
            if full || launch >= deadline {
                break;
            }
            match requests.get(j_after) {
                Some(r) if r.arrival <= deadline => launch = r.arrival,
                _ => {
                    launch = deadline;
                    break;
                }
            }
        }
        let (j_end, images, _) = form(&requests, next, launch, max);
        debug_assert!(j_end > next, "a batch always serves at least one request");
        let bucket = bucket_for(images, max);
        let service = cache.get(bucket)?.total_time();
        let done = launch + service;
        for r in &requests[next..j_end] {
            latencies[r.id as usize] = done - r.arrival;
        }
        // Queue pressure left behind: arrived by launch but not taken.
        let mut depth = 0usize;
        let mut k = j_end;
        while k < requests.len() && requests[k].arrival <= launch {
            depth += 1;
            k += 1;
        }
        {
            let (idx, reqs) = (batches.len(), j_end - next);
            trace::record_span(|| trace::SpanEvent {
                name: format!("batch {idx} (N={bucket})"),
                track: trace::Track::Serve,
                ts_us: launch * 1e6,
                dur_us: service * 1e6,
                args: vec![
                    ("requests".to_string(), reqs.to_string()),
                    ("images".to_string(), images.to_string()),
                    ("bucket".to_string(), bucket.to_string()),
                ],
            });
        }
        batches.push(BatchRecord {
            launch,
            done,
            requests: j_end - next,
            images,
            bucket,
            queue_depth: depth,
        });
        gpu_free = done;
        next = j_end;
    }
    perf::add("serve.batches", batches.len() as u64);

    // Per-bucket rollup against the compiled plans.
    let mut buckets: Vec<BucketStats> = Vec::new();
    for (&bucket, plan) in cache.plans() {
        let hits: Vec<&BatchRecord> = batches.iter().filter(|b| b.bucket == bucket).collect();
        let images: usize = hits.iter().map(|b| b.images).sum();
        buckets.push(BucketStats {
            bucket,
            batches: hits.len(),
            images,
            fill: if hits.is_empty() { 0.0 } else { images as f64 / (hits.len() * bucket) as f64 },
            conv_layouts: plan.conv_layout_signature(),
            transforms: plan.transform_count(),
            service_time: plan.total_time(),
        });
    }

    Ok(ServeReport {
        network: net.name.clone(),
        config: cfg.clone(),
        requests: requests.len(),
        images: requests.iter().map(|r| r.images.min(max)).sum(),
        makespan: gpu_free,
        latencies,
        batches,
        buckets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Arrival, Phase};
    use memcnn_core::{LayoutThresholds, NetworkBuilder};
    use memcnn_gpusim::DeviceConfig;
    use memcnn_tensor::Shape;

    fn tiny_engine() -> Engine {
        Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
    }

    fn tiny_net() -> Network {
        NetworkBuilder::new("tiny-serve", Shape::new(1, 4, 16, 16))
            .conv("CV", 8, 3, 1, 1)
            .max_pool("PL", 2, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn every_request_is_served_with_positive_latency() {
        let engine = tiny_engine();
        let net = tiny_net();
        let cfg = ServeConfig::new(
            WorkloadConfig {
                phases: vec![Phase { arrival: Arrival::Poisson { rate: 400.0 }, duration: 0.2 }],
                images_min: 1,
                images_max: 4,
                seed: 5,
            },
            BatchPolicy::new(32, 0.005),
        );
        let report = serve(&engine, &net, &cfg).unwrap();
        assert!(report.requests > 0);
        assert_eq!(report.latencies.len(), report.requests);
        assert!(report.latencies.iter().all(|&l| l > 0.0));
        assert_eq!(report.batches.iter().map(|b| b.requests).sum::<usize>(), report.requests);
        assert!(report.makespan > 0.0);
        let lat = report.latency();
        assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.p99 && lat.p99 <= lat.max);
    }

    #[test]
    fn batches_respect_policy_and_buckets_cover_batches() {
        let engine = tiny_engine();
        let net = tiny_net();
        let cfg = ServeConfig::new(
            WorkloadConfig {
                phases: vec![Phase { arrival: Arrival::Poisson { rate: 2000.0 }, duration: 0.1 }],
                images_min: 1,
                images_max: 3,
                seed: 9,
            },
            BatchPolicy::new(16, 0.002),
        );
        let report = serve(&engine, &net, &cfg).unwrap();
        for b in &report.batches {
            assert!(b.images <= 16);
            assert!(b.bucket >= b.images);
            assert!(b.done > b.launch);
        }
        // Batches never overlap on the single device.
        for w in report.batches.windows(2) {
            assert!(w[0].done <= w[1].launch + 1e-12);
        }
        // Every bucket used by a batch has stats and a compiled plan.
        for b in &report.batches {
            assert!(report.buckets.iter().any(|s| s.bucket == b.bucket));
        }
        for s in &report.buckets {
            assert!(s.fill > 0.0 && s.fill <= 1.0);
            assert!(!s.conv_layouts.is_empty());
        }
    }

    #[test]
    fn quiet_stream_launches_on_deadline_not_full() {
        // 10 req/s with a 1 ms delay cap: every batch is a single request
        // launched at its deadline (service time is far below the gap).
        let engine = tiny_engine();
        let net = tiny_net();
        let cfg = ServeConfig::new(
            WorkloadConfig {
                phases: vec![Phase { arrival: Arrival::Uniform { rate: 10.0 }, duration: 1.0 }],
                images_min: 1,
                images_max: 1,
                seed: 2,
            },
            BatchPolicy::new(64, 0.001),
        );
        let report = serve(&engine, &net, &cfg).unwrap();
        assert!(report.batches.iter().all(|b| b.requests == 1 && b.bucket == 1));
        for (b, r) in report.batches.iter().zip(&report.latencies) {
            // Latency = queue delay cap + service time.
            assert!((r - (0.001 + (b.done - b.launch))).abs() < 1e-9);
        }
    }
}
