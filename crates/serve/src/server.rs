//! The discrete-event serving loop: one simulated device draining an
//! open-loop request stream through the dynamic batcher and the per-bucket
//! plan cache.
//!
//! All time is simulated. A batch's service time is its bucket plan's
//! simulated forward time (`Plan::total_time` — layers plus inserted
//! layout transformations), and queueing delay falls out of the event
//! loop. The loop itself is single-threaded and touches the engine only
//! through `PlanCache`, whose plans are bit-identical across thread counts
//! (the PR-2 cache guarantee), so an entire run is a pure function of
//! `(engine config, network, ServeConfig)`.
//!
//! # Fault handling
//!
//! With a [`FaultPlan`] in the config, every batch launch rolls the plan
//! (through [`Engine::execute_attempt`]) and the loop answers faults with
//! the [`FaultPolicy`]'s degradation ladder instead of failing the run:
//! transients retry with deterministic backoff, execute-time OOM downshifts
//! the bucket and pins it (degraded mode) until a clean streak passes,
//! plan-time OOM permanently lowers the batch cap (the library home of the
//! bench's OOM-aware fallback), and hopeless work is shed — requests whose
//! queue wait exceeds the shed deadline, or batches whose retry budget ran
//! out. Every fault is accounted exactly once in [`FaultStats`]
//! (`injected == retried + degraded + shed`), mirrored to the global perf
//! registry (`fault.injected/retried/degraded/shed`, `serve.shed`,
//! `serve.degraded.enter/exit`, `serve.plan.oom`), and emitted as a span
//! on the `faults` Perfetto track. Because the fault stream is a pure
//! function of `(seed, launch key, launch index)` and the loop is
//! single-threaded, a faulted run replays bit-identically, independent of
//! `MEMCNN_THREADS`.

use crate::batch::{bucket_for, BatchPolicy};
use crate::metrics::{latency_stats_served, LatencyStats};
use crate::plan_cache::PlanCache;
use crate::policy::{FaultPolicy, FaultStats};
use crate::tenant::{SloReport, TenantSpec};
use crate::workload::{self, Request, WorkloadConfig};
use memcnn_core::{Engine, EngineError, Mechanism, Network, Plan};
use memcnn_gpusim::FaultPlan;
use memcnn_metrics::{MetricsTimeline, Recorder};
use memcnn_trace as trace;
use memcnn_trace::perf;
use serde::Serialize;
use std::collections::BTreeSet;

/// Everything a serving run needs besides the engine and the network.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The synthetic request stream.
    pub workload: WorkloadConfig,
    /// The dynamic-batching policy.
    pub policy: BatchPolicy,
    /// Mechanism plans are compiled under (the paper's `Opt` by default).
    pub mechanism: Mechanism,
    /// Seeded fault injection. `None` — or a plan with all-zero rates —
    /// leaves the run bit-identical to the fault-free loop.
    pub faults: Option<FaultPlan>,
    /// How the loop responds to faults and queue pressure.
    pub fault_policy: FaultPolicy,
    /// SLO tenants. Empty (the default) keeps the class-blind loop and
    /// a report byte-identical to the pre-tenant one; non-empty routes
    /// the run through the SLO-aware scheduler (`serve::slo`) unless
    /// `MEMCNN_SLO_DISABLE=1` forces the class-blind oracle.
    pub tenants: Vec<TenantSpec>,
}

// Manual impl: `tenants` is omitted when empty so default configs
// serialize to the exact bytes the derived impl produced before the
// field existed (the report byte-identity pin in `tests/slo.rs`).
impl Serialize for ServeConfig {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"workload\":");
        self.workload.serialize_json(out);
        out.push_str(",\"policy\":");
        self.policy.serialize_json(out);
        out.push_str(",\"mechanism\":");
        self.mechanism.serialize_json(out);
        out.push_str(",\"faults\":");
        self.faults.serialize_json(out);
        out.push_str(",\"fault_policy\":");
        self.fault_policy.serialize_json(out);
        if !self.tenants.is_empty() {
            out.push_str(",\"tenants\":");
            self.tenants.serialize_json(out);
        }
        out.push('}');
    }
}

impl ServeConfig {
    /// `Opt`-mechanism config from a workload and policy, fault-free.
    pub fn new(workload: WorkloadConfig, policy: BatchPolicy) -> ServeConfig {
        ServeConfig {
            workload,
            policy,
            mechanism: Mechanism::Opt,
            faults: None,
            fault_policy: FaultPolicy::default(),
            tenants: Vec::new(),
        }
    }

    /// The same config with fault injection enabled.
    pub fn with_faults(mut self, faults: FaultPlan, policy: FaultPolicy) -> ServeConfig {
        self.faults = Some(faults);
        self.fault_policy = policy;
        self
    }

    /// The same config with SLO tenants declared.
    pub fn with_tenants(mut self, tenants: Vec<TenantSpec>) -> ServeConfig {
        self.tenants = tenants;
        self
    }
}

/// One launched batch.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct BatchRecord {
    /// Launch time (GPU start of the first attempt), seconds.
    pub launch: f64,
    /// Completion time, seconds.
    pub done: f64,
    /// Requests folded into the batch.
    pub requests: usize,
    /// Images in the batch (before bucket rounding).
    pub images: usize,
    /// Bucket the batch executed in (plan's `N`).
    pub bucket: usize,
    /// Arrived-but-unserved requests left behind at launch.
    pub queue_depth: usize,
    /// Failed launch attempts before the one that completed (0: clean).
    pub attempts: u32,
    /// Throttle faults absorbed across the batch's attempts.
    pub throttled: u32,
}

/// Per-bucket aggregate of a finished run.
#[derive(Clone, Debug, Serialize)]
pub struct BucketStats {
    /// Bucket size (`N` its plan was compiled at).
    pub bucket: usize,
    /// Batches executed in this bucket.
    pub batches: usize,
    /// Total images those batches carried.
    pub images: usize,
    /// Mean fill: images per batch over bucket capacity, in (0, 1].
    pub fill: f64,
    /// The plan's convolution-layout signature (e.g. `CHWN` or
    /// `CHWN,NCHW,...`) — the paper-flavored observable: this string
    /// changes across buckets of the same network.
    pub conv_layouts: String,
    /// Layout transformations the plan inserts.
    pub transforms: usize,
    /// The plan's simulated service time, seconds.
    pub service_time: f64,
}

/// A finished serving run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Network name.
    pub network: String,
    /// The config the run used.
    pub config: ServeConfig,
    /// Requests generated by the workload (served + shed).
    pub requests: usize,
    /// Images actually served (shed requests excluded).
    pub images: usize,
    /// Completion time of the last batch, seconds.
    pub makespan: f64,
    /// Per-request latency (completion - arrival), in request-id order —
    /// the determinism tests compare this vector bit for bit. Shed
    /// requests keep the 0.0 sentinel (no request can complete with zero
    /// latency, so the encoding is unambiguous).
    pub latencies: Vec<f64>,
    /// Every *completed* batch, in launch order (shed batches never
    /// complete and are accounted in `faults`/`shed_requests` instead).
    pub batches: Vec<BatchRecord>,
    /// Per-bucket aggregates, ascending by bucket.
    pub buckets: Vec<BucketStats>,
    /// Requests dropped (deadline shedding plus fault shedding).
    pub shed_requests: usize,
    /// Fault accounting for the run (all zero when injection is off).
    pub faults: FaultStats,
    /// Gauge timelines sampled at the loop's event boundaries, plus the
    /// run's latency histogram. Every sample is a pure function of
    /// loop-local state on the simulated clock, so the timeline is
    /// bit-identical across `MEMCNN_THREADS` like the rest of the report.
    pub timeline: MetricsTimeline,
    /// Per-tenant accounting, fairness, and SLO violations; `None` for
    /// class-blind runs (no tenants, or `MEMCNN_SLO_DISABLE=1`).
    pub slo: Option<SloReport>,
}

// Manual impl: `slo` is omitted when `None` so class-blind reports keep
// the exact pre-tenant byte layout.
impl Serialize for ServeReport {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"network\":");
        self.network.serialize_json(out);
        out.push_str(",\"config\":");
        self.config.serialize_json(out);
        out.push_str(",\"requests\":");
        self.requests.serialize_json(out);
        out.push_str(",\"images\":");
        self.images.serialize_json(out);
        out.push_str(",\"makespan\":");
        self.makespan.serialize_json(out);
        out.push_str(",\"latencies\":");
        self.latencies.serialize_json(out);
        out.push_str(",\"batches\":");
        self.batches.serialize_json(out);
        out.push_str(",\"buckets\":");
        self.buckets.serialize_json(out);
        out.push_str(",\"shed_requests\":");
        self.shed_requests.serialize_json(out);
        out.push_str(",\"faults\":");
        self.faults.serialize_json(out);
        out.push_str(",\"timeline\":");
        self.timeline.serialize_json(out);
        if let Some(slo) = &self.slo {
            out.push_str(",\"slo\":");
            slo.serialize_json(out);
        }
        out.push('}');
    }
}

impl ServeReport {
    /// Latency summary over served requests (shed and admission-rejected
    /// requests — the 0.0 sentinels — are excluded; neither has a
    /// latency). Sorts into a reused thread-local scratch buffer instead
    /// of cloning the latency vector per report.
    pub fn latency(&self) -> LatencyStats {
        latency_stats_served(&self.latencies)
    }

    /// Served images per second of makespan.
    pub fn throughput_images_per_sec(&self) -> f64 {
        if self.makespan > 0.0 {
            self.images as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Served requests per second of makespan.
    pub fn throughput_requests_per_sec(&self) -> f64 {
        if self.makespan > 0.0 {
            (self.requests - self.shed_requests) as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Fraction of generated requests that were shed, in [0, 1].
    pub fn shed_rate(&self) -> f64 {
        if self.requests > 0 {
            self.shed_requests as f64 / self.requests as f64
        } else {
            0.0
        }
    }

    /// Mean queue depth observed at batch launches.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches.iter().map(|b| b.queue_depth as f64).sum::<f64>() / self.batches.len() as f64
    }

    /// Distinct convolution-layout signatures across buckets — `> 1`
    /// means the server observably flipped plans as load changed.
    pub fn distinct_conv_signatures(&self) -> usize {
        let mut sigs: Vec<&str> = self.buckets.iter().map(|b| b.conv_layouts.as_str()).collect();
        sigs.sort_unstable();
        sigs.dedup();
        sigs.len()
    }
}

/// Greedy FIFO batch formation at time `launch`: take requests arrived by
/// `launch` (starting at `next`) while their images fit in `max`. Returns
/// `(end_index, images, full)`; `full` means the batch cannot grow even if
/// more requests were queued.
pub(crate) fn form(
    requests: &[Request],
    next: usize,
    launch: f64,
    max: usize,
) -> (usize, usize, bool) {
    let mut images = 0usize;
    let mut j = next;
    while j < requests.len() && requests[j].arrival <= launch {
        // A request larger than the whole batch is clamped rather than
        // rejected: it becomes a lone full batch.
        let imgs = requests[j].images.min(max);
        if images + imgs > max {
            return (j, images, true);
        }
        images += imgs;
        j += 1;
        if images == max {
            return (j, images, true);
        }
    }
    (j, images, false)
}

/// Emit a span on the faults track. The name/args builder only runs when
/// tracing is active, so hot loops pay no `format!`/`Vec` churn on the
/// (overwhelmingly common) untraced path.
pub(crate) fn fault_span<F>(ts: f64, dur: f64, build: F)
where
    F: FnOnce() -> (String, Vec<(trace::ArgValue, trace::ArgValue)>),
{
    trace::record_span(|| {
        let (name, args) = build();
        trace::SpanEvent {
            name,
            track: trace::Track::Faults,
            ts_us: ts * 1e6,
            dur_us: dur * 1e6,
            args,
        }
    });
}

/// How one batch's launch-attempt loop ended. Shared by the
/// single-device, fleet, and SLO serving loops.
pub(crate) enum Outcome {
    /// The batch completed at `done`.
    Done { done: f64 },
    /// The batch was shed (retry exhaustion, or OOM at bucket 1); the
    /// device is busy until `at`.
    Shed { at: f64 },
    /// Execute-time OOM: re-form the batch at half the bucket; the device
    /// is busy until `at`.
    Downshift { at: f64 },
}

/// The finished ladder: how the batch ended, plus its retry/throttle
/// counts (the `BatchRecord` fields).
pub(crate) struct LadderEnd {
    pub(crate) outcome: Outcome,
    pub(crate) attempts: u32,
    pub(crate) throttles: u32,
}

/// The launch-attempt ladder, shared verbatim by every serving loop:
/// retry transients with deterministic backoff, downshift on execute-time
/// OOM (bucket > 1), shed at retry exhaustion or OOM at bucket 1. Each
/// attempt consumes one launch index from `launches` and accounts into
/// `stats` exactly as the PR 4 single-device loop did; `device` tags the
/// fault spans on fleet runs and is `None` on single-device ones (the
/// K = 1 byte-identity test pins the arithmetic either way).
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch_ladder(
    engine: &Engine,
    plan: &Plan,
    fplan: Option<&FaultPlan>,
    launches: &mut u64,
    stats: &mut FaultStats,
    pol: &FaultPolicy,
    bucket: usize,
    launch: f64,
    device: Option<usize>,
) -> Result<LadderEnd, EngineError> {
    let tag = |mut args: Vec<(trace::ArgValue, trace::ArgValue)>| {
        if let Some(d) = device {
            args.push(("device".into(), d.to_string().into()));
        }
        args
    };
    let mut launch_at = launch;
    let mut attempt: u32 = 0;
    let mut throttles: u32 = 0;
    let outcome = loop {
        let att = engine.execute_attempt(plan, fplan, *launches);
        *launches += 1;
        // Throttles are injected faults absorbed by degrading speed:
        // execution continued, slower. Counted immediately.
        stats.injected += att.throttled as u64;
        stats.degraded += att.throttled as u64;
        stats.throttled += att.throttled as u64;
        throttles += att.throttled;
        match att.error {
            None => break Outcome::Done { done: launch_at + att.time },
            Some(EngineError::Transient { layer, launch: idx, .. }) => {
                stats.injected += 1;
                if attempt < pol.max_retries {
                    attempt += 1;
                    stats.retried += 1;
                    let backoff = pol.backoff(attempt);
                    fault_span(launch_at + att.time, backoff, || {
                        (
                            format!("retry {attempt} after {layer}"),
                            tag(vec![("launch_index".into(), idx.to_string().into())]),
                        )
                    });
                    // The failed attempt's partial time is real device
                    // occupancy; the backoff is the policy's pause.
                    launch_at += att.time + backoff;
                } else {
                    stats.shed += 1;
                    fault_span(launch_at + att.time, 0.0, || {
                        (
                            format!("retries exhausted at {layer}"),
                            tag(vec![("attempts".into(), (attempt + 1).to_string().into())]),
                        )
                    });
                    break Outcome::Shed { at: launch_at + att.time };
                }
            }
            Some(EngineError::ExecOom { layer, .. }) => {
                stats.injected += 1;
                if bucket > 1 {
                    stats.degraded += 1;
                    stats.oom_downshifts += 1;
                    fault_span(launch_at + att.time, 0.0, || {
                        (
                            format!("OOM at {layer}: downshift {bucket} -> {}", bucket / 2),
                            tag(vec![("bucket".into(), bucket.to_string().into())]),
                        )
                    });
                    break Outcome::Downshift { at: launch_at + att.time };
                } else {
                    stats.shed += 1;
                    fault_span(launch_at + att.time, 0.0, || {
                        (format!("OOM at {layer} with bucket 1: shed"), tag(vec![]))
                    });
                    break Outcome::Shed { at: launch_at + att.time };
                }
            }
            Some(other) => return Err(other),
        }
    };
    Ok(LadderEnd { outcome, attempts: attempt, throttles })
}

/// Run the serving simulation to completion (every generated request is
/// served or shed). Deterministic: same engine config + network + `cfg`
/// gives a bit-identical [`ServeReport`] — latencies, batch records, and
/// fault statistics — independent of `MEMCNN_THREADS`.
///
/// Errors are typed and terminal: plan-time OOM that cannot downshift
/// further (bucket 1 does not fit) or a structurally infeasible plan.
/// Injected faults never surface as `Err` — they are retried, degraded,
/// or shed per `cfg.fault_policy`.
pub fn serve(
    engine: &Engine,
    net: &Network,
    cfg: &ServeConfig,
) -> Result<ServeReport, EngineError> {
    // Tenants route through the SLO-aware scheduler; the class-blind
    // loop below is byte-for-byte the pre-tenant server (also the
    // `MEMCNN_SLO_DISABLE=1` oracle when tenants are configured).
    if !cfg.tenants.is_empty() && !crate::slo::slo_disabled() {
        return crate::slo::serve_tenants(engine, net, cfg);
    }
    let requests = workload::generate(&cfg.workload);
    perf::add("serve.requests", requests.len() as u64);
    let max = cfg.policy.max_batch_images.max(1);
    let fplan = cfg.faults.filter(|p| !p.is_noop());
    let pol = cfg.fault_policy;
    let mut cache = PlanCache::new(engine, net, cfg.mechanism);
    let mut latencies = vec![0.0f64; requests.len()];
    let mut batches: Vec<BatchRecord> = Vec::new();
    let mut stats = FaultStats::default();
    let mut shed_requests = 0usize;
    let mut plan_ooms = 0u64;
    let mut gpu_free = 0.0f64;
    let mut next = 0usize;
    // Monotonic launch-attempt counter: the fault stream's index. Every
    // attempt (retries included) consumes one index, so retries roll
    // fresh faults and the whole timeline is replayable from the seed.
    let mut launches: u64 = 0;
    // Permanent batch cap learned from plan-time OOM (buckets the device
    // cannot even compile), and the circuit-breaker pin from execute-time
    // OOM (buckets it currently cannot run).
    let mut plan_cap = max;
    let mut pin: Option<usize> = None;
    let mut clean_streak: u64 = 0;
    // Timeline instrumentation: every gauge below reads loop-local state
    // at a simulated event boundary, so the timeline inherits the run's
    // thread-count independence. Plan-cache hit accounting is loop-local
    // too (a bucket seen before is a hit) — the *global* perf counters
    // also see prewarm traffic and would not be deterministic here.
    let mut rec = Recorder::default();
    let mut seen_buckets: BTreeSet<usize> = BTreeSet::new();
    let mut cache_lookups = 0u64;
    let mut cache_hits = 0u64;
    let mut busy = 0.0f64;

    while next < requests.len() {
        // Deadline-based load shedding: when the device frees up, drop
        // head-of-line requests that have already waited past the shed
        // deadline — serving them would only make everyone later.
        if let Some(deadline) = pol.shed_deadline {
            while next < requests.len() && gpu_free - requests[next].arrival > deadline {
                let r = &requests[next];
                fault_span(gpu_free, 0.0, || {
                    (format!("shed request {}", r.id), vec![("reason".into(), "deadline".into())])
                });
                shed_requests += 1;
                next += 1;
                rec.gauge("shed.total", gpu_free, shed_requests as f64);
            }
            if next >= requests.len() {
                break;
            }
        }

        let emax = plan_cap.min(pin.unwrap_or(plan_cap)).max(1);
        let oldest = requests[next].arrival;
        let deadline = oldest + cfg.policy.max_queue_delay;
        // The batch launches at max(gpu_free, min(T_full, T_deadline)):
        // grow the admission window arrival by arrival until the batch is
        // full or the oldest request's deadline stops the wait.
        let mut launch = gpu_free.max(oldest);
        loop {
            let (j_after, _, full) = form(&requests, next, launch, emax);
            if full || launch >= deadline {
                break;
            }
            match requests.get(j_after) {
                Some(r) if r.arrival <= deadline => launch = r.arrival,
                _ => {
                    launch = deadline;
                    break;
                }
            }
        }
        let (j_end, images, _) = form(&requests, next, launch, emax);
        debug_assert!(j_end > next, "a batch always serves at least one request");
        let bucket = bucket_for(images, emax);
        cache_lookups += 1;
        if !seen_buckets.insert(bucket) {
            cache_hits += 1;
        }
        let plan = match cache.get(bucket) {
            Ok(plan) => plan,
            Err(err @ EngineError::PlanOom { .. }) => {
                // The bucket does not even compile on this device: lower
                // the cap permanently and re-form (the library home of the
                // bench binary's OOM-aware max-batch fallback).
                if bucket <= 1 {
                    return Err(err);
                }
                plan_ooms += 1;
                fault_span(launch, 0.0, || {
                    (
                        format!("plan OOM at bucket {bucket}"),
                        vec![("new_cap".into(), (bucket / 2).to_string().into())],
                    )
                });
                plan_cap = (bucket / 2).max(1);
                continue;
            }
            Err(err) => return Err(err),
        };
        let service = plan.total_time();

        // Launch-attempt loop: retry transients with backoff, downshift on
        // OOM, shed at exhaustion. Each attempt consumes one launch index.
        let LadderEnd { outcome, attempts: attempt, throttles } = launch_ladder(
            engine,
            plan,
            fplan.as_ref(),
            &mut launches,
            &mut stats,
            &pol,
            bucket,
            launch,
            None,
        )?;

        match outcome {
            Outcome::Done { done } => {
                for r in &requests[next..j_end] {
                    latencies[r.id as usize] = done - r.arrival;
                    rec.observe_latency(done - r.arrival);
                }
                // Queue pressure left behind: arrived by launch, not taken.
                let mut depth = 0usize;
                let mut k = j_end;
                while k < requests.len() && requests[k].arrival <= launch {
                    depth += 1;
                    k += 1;
                }
                {
                    let (idx, reqs) = (batches.len(), j_end - next);
                    trace::record_span(|| trace::SpanEvent {
                        name: format!("batch {idx} (N={bucket})"),
                        track: trace::Track::Serve,
                        ts_us: launch * 1e6,
                        dur_us: service * 1e6,
                        args: vec![
                            ("requests".into(), reqs.to_string().into()),
                            ("images".into(), images.to_string().into()),
                            ("bucket".into(), bucket.to_string().into()),
                        ],
                    });
                }
                batches.push(BatchRecord {
                    launch,
                    done,
                    requests: j_end - next,
                    images,
                    bucket,
                    queue_depth: depth,
                    attempts: attempt,
                    throttled: throttles,
                });
                // Circuit breaker: a clean batch (no retries, no throttles)
                // extends the recovery streak; enough of them unpin the
                // bucket cap.
                if pin.is_some() {
                    if attempt == 0 && throttles == 0 {
                        clean_streak += 1;
                        if clean_streak >= pol.recovery_batches {
                            stats.degraded_exits += 1;
                            fault_span(done, 0.0, || {
                                (
                                    "leave degraded mode".to_string(),
                                    vec![("clean_batches".into(), clean_streak.to_string().into())],
                                )
                            });
                            pin = None;
                            clean_streak = 0;
                        }
                    } else {
                        clean_streak = 0;
                    }
                }
                busy += done - launch;
                rec.gauge("queue.depth", done, depth as f64);
                rec.gauge("batch.images", done, images as f64);
                rec.gauge("batch.bucket", done, bucket as f64);
                rec.gauge("util", done, if done > 0.0 { busy / done } else { 0.0 });
                rec.gauge("plan_cache.hit_rate", done, cache_hits as f64 / cache_lookups as f64);
                rec.gauge("degraded", done, if pin.is_some() { 1.0 } else { 0.0 });
                rec.gauge("shed.total", done, shed_requests as f64);
                rec.sample_window(done);
                gpu_free = done;
                next = j_end;
            }
            Outcome::Shed { at } => {
                // The batch's requests are dropped; their latencies keep
                // the 0.0 sentinel. The device time burned is real.
                shed_requests += j_end - next;
                busy += at - launch;
                rec.gauge("shed.total", at, shed_requests as f64);
                rec.gauge("util", at, if at > 0.0 { busy / at } else { 0.0 });
                gpu_free = at;
                next = j_end;
            }
            Outcome::Downshift { at } => {
                // Pin the halved bucket and re-form the same requests at
                // the smaller cap; entering degraded mode is counted once
                // per excursion (deeper downshifts just lower the pin).
                if pin.is_none() {
                    stats.degraded_entries += 1;
                }
                pin = Some((bucket / 2).max(1));
                clean_streak = 0;
                busy += at - launch;
                rec.gauge("degraded", at, 1.0);
                gpu_free = at;
            }
        }
    }
    perf::add("serve.batches", batches.len() as u64);
    perf::add("serve.shed", shed_requests as u64);
    perf::add("serve.plan.oom", plan_ooms);
    perf::add("fault.injected", stats.injected);
    perf::add("fault.retried", stats.retried);
    perf::add("fault.degraded", stats.degraded);
    perf::add("fault.shed", stats.shed);
    perf::add("serve.degraded.enter", stats.degraded_entries);
    perf::add("serve.degraded.exit", stats.degraded_exits);
    debug_assert!(stats.balanced(), "fault accounting out of balance: {stats:?}");

    // Per-bucket rollup against the compiled plans.
    let mut buckets: Vec<BucketStats> = Vec::new();
    for (&bucket, plan) in cache.plans() {
        let hits: Vec<&BatchRecord> = batches.iter().filter(|b| b.bucket == bucket).collect();
        let images: usize = hits.iter().map(|b| b.images).sum();
        buckets.push(BucketStats {
            bucket,
            batches: hits.len(),
            images,
            fill: if hits.is_empty() { 0.0 } else { images as f64 / (hits.len() * bucket) as f64 },
            conv_layouts: plan.conv_layout_signature(),
            transforms: plan.transform_count(),
            service_time: plan.total_time(),
        });
    }

    let timeline = rec.finish();
    // Mirror the timeline onto the Perfetto counter tracks (a no-op when
    // tracing is inactive).
    timeline.emit_trace_counters(trace::Track::Serve);

    Ok(ServeReport {
        network: net.name.clone(),
        config: cfg.clone(),
        requests: requests.len(),
        images: batches.iter().map(|b| b.images).sum(),
        makespan: gpu_free,
        latencies,
        batches,
        buckets,
        shed_requests,
        faults: stats,
        timeline,
        slo: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Arrival, Phase};
    use memcnn_core::{LayoutThresholds, NetworkBuilder};
    use memcnn_gpusim::DeviceConfig;
    use memcnn_tensor::Shape;

    fn tiny_engine() -> Engine {
        Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
    }

    fn tiny_net() -> Network {
        NetworkBuilder::new("tiny-serve", Shape::new(1, 4, 16, 16))
            .conv("CV", 8, 3, 1, 1)
            .max_pool("PL", 2, 2)
            .build()
            .unwrap()
    }

    #[test]
    fn every_request_is_served_with_positive_latency() {
        let engine = tiny_engine();
        let net = tiny_net();
        let cfg = ServeConfig::new(
            WorkloadConfig {
                phases: vec![Phase { arrival: Arrival::Poisson { rate: 400.0 }, duration: 0.2 }],
                images_min: 1,
                images_max: 4,
                seed: 5,
            },
            BatchPolicy::new(32, 0.005),
        );
        let report = serve(&engine, &net, &cfg).unwrap();
        assert!(report.requests > 0);
        assert_eq!(report.latencies.len(), report.requests);
        assert!(report.latencies.iter().all(|&l| l > 0.0));
        assert_eq!(report.batches.iter().map(|b| b.requests).sum::<usize>(), report.requests);
        assert!(report.makespan > 0.0);
        assert_eq!(report.shed_requests, 0);
        assert_eq!(report.faults, FaultStats::default());
        assert!(report.batches.iter().all(|b| b.attempts == 0 && b.throttled == 0));
        let lat = report.latency();
        assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.p99 && lat.p99 <= lat.max);
    }

    #[test]
    fn batches_respect_policy_and_buckets_cover_batches() {
        let engine = tiny_engine();
        let net = tiny_net();
        let cfg = ServeConfig::new(
            WorkloadConfig {
                phases: vec![Phase { arrival: Arrival::Poisson { rate: 2000.0 }, duration: 0.1 }],
                images_min: 1,
                images_max: 3,
                seed: 9,
            },
            BatchPolicy::new(16, 0.002),
        );
        let report = serve(&engine, &net, &cfg).unwrap();
        for b in &report.batches {
            assert!(b.images <= 16);
            assert!(b.bucket >= b.images);
            assert!(b.done > b.launch);
        }
        // Batches never overlap on the single device.
        for w in report.batches.windows(2) {
            assert!(w[0].done <= w[1].launch + 1e-12);
        }
        // Every bucket used by a batch has stats and a compiled plan.
        for b in &report.batches {
            assert!(report.buckets.iter().any(|s| s.bucket == b.bucket));
        }
        for s in &report.buckets {
            assert!(s.fill > 0.0 && s.fill <= 1.0);
            assert!(!s.conv_layouts.is_empty());
        }
    }

    #[test]
    fn quiet_stream_launches_on_deadline_not_full() {
        // 10 req/s with a 1 ms delay cap: every batch is a single request
        // launched at its deadline (service time is far below the gap).
        let engine = tiny_engine();
        let net = tiny_net();
        let cfg = ServeConfig::new(
            WorkloadConfig {
                phases: vec![Phase { arrival: Arrival::Uniform { rate: 10.0 }, duration: 1.0 }],
                images_min: 1,
                images_max: 1,
                seed: 2,
            },
            BatchPolicy::new(64, 0.001),
        );
        let report = serve(&engine, &net, &cfg).unwrap();
        assert!(report.batches.iter().all(|b| b.requests == 1 && b.bucket == 1));
        for (b, r) in report.batches.iter().zip(&report.latencies) {
            // Latency = queue delay cap + service time.
            assert!((r - (0.001 + (b.done - b.launch))).abs() < 1e-9);
        }
    }

    #[test]
    fn certain_transients_shed_everything_without_panicking() {
        // launch_failed = 1.0: every attempt of every batch fails, retries
        // exhaust, every request is shed — and the run still returns Ok
        // with balanced accounting.
        let engine = tiny_engine();
        let net = tiny_net();
        let cfg = ServeConfig::new(
            WorkloadConfig {
                phases: vec![Phase { arrival: Arrival::Uniform { rate: 100.0 }, duration: 0.1 }],
                images_min: 1,
                images_max: 2,
                seed: 3,
            },
            BatchPolicy::new(8, 0.002),
        )
        .with_faults(
            FaultPlan::new(7, 1.0, 0.0, 0.0),
            FaultPolicy { max_retries: 2, ..FaultPolicy::default() },
        );
        let report = serve(&engine, &net, &cfg).unwrap();
        assert_eq!(report.shed_requests, report.requests);
        assert!(report.batches.is_empty());
        assert!(report.latencies.iter().all(|&l| l == 0.0));
        assert!(report.faults.balanced());
        // Every batch tried 1 + max_retries times: 2 retried + 1 shed per
        // formed batch, all injected.
        assert_eq!(report.faults.injected, report.faults.retried + report.faults.shed);
        assert_eq!(report.faults.retried, 2 * report.faults.shed);
        assert_eq!(report.latency().count, 0);
    }

    #[test]
    fn certain_throttles_slow_everything_but_serve_everything() {
        let engine = tiny_engine();
        let net = tiny_net();
        let workload = WorkloadConfig {
            phases: vec![Phase { arrival: Arrival::Uniform { rate: 100.0 }, duration: 0.1 }],
            images_min: 1,
            images_max: 2,
            seed: 3,
        };
        let policy = BatchPolicy::new(8, 0.002);
        let clean = serve(&engine, &net, &ServeConfig::new(workload.clone(), policy)).unwrap();
        let cfg = ServeConfig::new(workload, policy).with_faults(
            FaultPlan::new(7, 0.0, 0.0, 1.0).with_throttle_factor(3.0),
            FaultPolicy::default(),
        );
        let throttled = serve(&engine, &net, &cfg).unwrap();
        assert_eq!(throttled.shed_requests, 0);
        assert_eq!(throttled.requests, clean.requests);
        assert!(throttled.faults.balanced());
        assert_eq!(throttled.faults.injected, throttled.faults.throttled);
        assert_eq!(throttled.faults.degraded, throttled.faults.throttled);
        assert!(throttled.faults.throttled > 0);
        // Everything served, just slower.
        assert!(throttled.makespan > clean.makespan);
        assert!(throttled.latency().mean > clean.latency().mean);
    }
}
