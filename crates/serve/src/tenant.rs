//! Multi-tenant SLO classes, deterministic tenant attribution, and
//! per-tenant accounting.
//!
//! A tenant is a named traffic source with a service class, an arrival
//! weight, and an optional admission rate limit. Tenants never perturb
//! the request stream itself: [`tenant_tags`] attributes each generated
//! request to a tenant with a splitmix64 hash of `(seed, request id)` and
//! a cumulative-weight pick — a pure function that touches no RNG state —
//! so the *arrivals* of a tenant-enabled run are bit-identical to the
//! tenant-free stream, and the class-blind oracle
//! (`MEMCNN_SLO_DISABLE=1`) is an exact equivalence, not an
//! approximation.
//!
//! Accounting follows the `FaultStats` discipline: every attributed
//! request ends in exactly one of `completed`, `shed`, `rejected`, or
//! `in_flight`, and [`TenantReport::balanced`] /
//! [`SloReport::balanced`] check the identity per tenant and in
//! aggregate. The components are tallied independently (completions from
//! the latency vector, sheds at the shed sites, rejections at admission,
//! in-flight from residual queues), so the balance is a real invariant,
//! not an arithmetic tautology.

use crate::metrics::LatencyStats;
use serde::Serialize;

/// Service class of a tenant: what the scheduler owes its requests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TenantClass {
    /// Latency-sensitive traffic with a p99 budget in seconds. The
    /// batcher commits this tenant's batches early — at half the budget
    /// if that is tighter than the policy delay — and served latencies
    /// above the budget count as SLO violations.
    Interactive {
        /// The p99 latency budget, seconds.
        p99_budget: f64,
    },
    /// Ordinary traffic: batched under the configured policy delay.
    Standard,
    /// Throughput traffic with no latency promise: the batcher may hold
    /// its batches up to 4x the policy delay to fill larger buckets;
    /// the fairness deficit counter still guarantees eventual service.
    BestEffort,
}

impl TenantClass {
    /// Scheduling rank: lower is more latency-sensitive (the last
    /// tiebreak when launches and fairness credits tie exactly).
    pub fn rank(&self) -> u8 {
        match self {
            TenantClass::Interactive { .. } => 0,
            TenantClass::Standard => 1,
            TenantClass::BestEffort => 2,
        }
    }

    /// The class's batch-commit budget given the policy's
    /// `max_queue_delay`: how long the oldest queued request of this
    /// class may wait before its batch launches part-full.
    pub fn commit_budget(&self, policy_delay: f64) -> f64 {
        match *self {
            TenantClass::Interactive { p99_budget } => policy_delay.min(0.5 * p99_budget),
            TenantClass::Standard => policy_delay,
            TenantClass::BestEffort => 4.0 * policy_delay,
        }
    }

    /// The p99 budget, for classes that promise one.
    pub fn p99_budget(&self) -> Option<f64> {
        match *self {
            TenantClass::Interactive { p99_budget } => Some(p99_budget),
            _ => None,
        }
    }

    /// Stable lowercase name (`interactive` / `standard` /
    /// `best-effort`) — the spelling scenario TOML files use.
    pub fn name(&self) -> &'static str {
        match self {
            TenantClass::Interactive { .. } => "interactive",
            TenantClass::Standard => "standard",
            TenantClass::BestEffort => "best-effort",
        }
    }
}

// Manual impl: the vendored serde derive handles unit enums only.
impl Serialize for TenantClass {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"kind\":");
        self.name().serialize_json(out);
        if let TenantClass::Interactive { p99_budget } = *self {
            out.push_str(",\"p99_budget\":");
            p99_budget.serialize_json(out);
        }
        out.push('}');
    }
}

/// One tenant's declaration in a `ServeConfig`/`FleetConfig`.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TenantSpec {
    /// Tenant name (stable key for metrics series and reports).
    pub name: String,
    /// Service class.
    pub class: TenantClass,
    /// Arrival weight: the fraction of the stream attributed to this
    /// tenant is `weight / sum(weights)`. Also the tenant's fair share
    /// in the deficit counter.
    pub weight: f64,
    /// Admission rate limit, requests per second (`None`: unlimited).
    /// Enforced by a deterministic token bucket on the arrival clock
    /// with a one-second burst allowance.
    pub rate_limit: Option<f64>,
}

impl TenantSpec {
    /// An interactive tenant with a p99 budget (seconds).
    pub fn interactive(name: &str, p99_budget: f64, weight: f64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            class: TenantClass::Interactive { p99_budget },
            weight,
            rate_limit: None,
        }
    }

    /// A standard-class tenant.
    pub fn standard(name: &str, weight: f64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            class: TenantClass::Standard,
            weight,
            rate_limit: None,
        }
    }

    /// A best-effort tenant.
    pub fn best_effort(name: &str, weight: f64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            class: TenantClass::BestEffort,
            weight,
            rate_limit: None,
        }
    }

    /// The same tenant with an admission rate limit (requests/second).
    pub fn with_rate_limit(mut self, rate: f64) -> TenantSpec {
        self.rate_limit = Some(rate);
        self
    }
}

/// splitmix64 finalizer over `(seed, id)` — the attribution hash.
fn mix(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Attribute `n` requests to tenants by weight: `tags[id]` is the tenant
/// index of request `id`. A pure function of `(seed, id, weights)` that
/// consumes no RNG state — the workload's own stream is untouched, so
/// arrivals are bit-identical with or without tenants configured.
pub fn tenant_tags(seed: u64, n: usize, tenants: &[TenantSpec]) -> Vec<u32> {
    if tenants.is_empty() {
        return vec![0; n];
    }
    let total: f64 = tenants.iter().map(|t| t.weight.max(0.0)).sum();
    if total <= 0.0 {
        return vec![0; n];
    }
    (0..n as u64)
        .map(|id| {
            // 53 uniform bits, exactly representable in f64.
            let u = (mix(seed, id) >> 11) as f64 / (1u64 << 53) as f64;
            let x = u * total;
            let mut acc = 0.0f64;
            for (t, spec) in tenants.iter().enumerate() {
                acc += spec.weight.max(0.0);
                if x < acc {
                    return t as u32;
                }
            }
            (tenants.len() - 1) as u32
        })
        .collect()
}

/// One tenant's share of a finished run. Every count is in requests
/// except `images`.
#[derive(Clone, Debug, Serialize)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Service class.
    pub class: TenantClass,
    /// Arrival weight.
    pub weight: f64,
    /// Requests the stream attributed to this tenant.
    pub admitted: u64,
    /// Requests refused by admission control (never queued).
    pub rejected: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests dropped after admission (deadline or fault shedding).
    pub shed: u64,
    /// Requests still queued when the run ended (0 for drained runs).
    pub in_flight: u64,
    /// Images the completed requests carried.
    pub images: u64,
    /// Served requests whose latency exceeded the class's p99 budget
    /// (always 0 for classes without one).
    pub violations: u64,
    /// Requests that ever failed over from a dead device (cumulative —
    /// a request can fail over more than once, so this is *not* part of
    /// the balance identity; 0 without a `DeviceFaultPlan`).
    pub failed_over: u64,
    /// Requests still in the failover transit buffer when the run
    /// ended (0 for drained runs — the flush re-places or sheds them).
    pub failed_over_in_transit: u64,
    /// Latency summary over this tenant's completed requests.
    pub latency: LatencyStats,
    /// Weighted share: completed images per unit weight. The fairness
    /// observable — equal weighted shares mean the deficit counter hit
    /// its target.
    pub weighted_share: f64,
}

impl TenantReport {
    /// The scheduling analogue of `FaultStats::balanced`: every
    /// attributed request is accounted exactly once. With device
    /// faults, requests mid-failover count through
    /// `failed_over_in_transit`.
    pub fn balanced(&self) -> bool {
        self.admitted
            == self.completed
                + self.shed
                + self.rejected
                + self.in_flight
                + self.failed_over_in_transit
    }
}

/// Fleet-level fairness over weighted shares.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SloFairness {
    /// Largest weighted share across tenants.
    pub share_max: f64,
    /// Smallest weighted share across tenants.
    pub share_min: f64,
    /// `share_max / share_min`; `-1.0` when some tenant completed
    /// nothing (the starved sentinel — a finite ratio means no tenant
    /// starved).
    pub ratio: f64,
}

/// The multi-tenant section of a finished report.
#[derive(Clone, Debug, Serialize)]
pub struct SloReport {
    /// Per-tenant accounting, in config order.
    pub tenants: Vec<TenantReport>,
    /// Max/min weighted share across tenants.
    pub fairness: SloFairness,
    /// SLO violations across tenants.
    pub violations: u64,
    /// Admission rejections across tenants.
    pub rejected: u64,
    /// Batches committed early to protect a class budget.
    pub early_commits: u64,
    /// Commits that won a device slot from a lane with a larger formed
    /// batch (the deadline-aware preemption counter).
    pub preemptions: u64,
    /// Simulated device-seconds of occupancy consumed across the fleet
    /// (attempts, backoffs, and completed service) — the denominator of
    /// the `slo.cost` metric.
    pub device_seconds: f64,
    /// Requests that ever failed over, summed over tenants (cumulative;
    /// not in the balance identity).
    pub failed_over: u64,
    /// Requests still in the failover transit buffer at the end of the
    /// run, summed over tenants (0 for drained runs).
    pub failed_over_in_transit: u64,
}

impl SloReport {
    /// Balance per tenant AND in aggregate (the extended identity:
    /// `admitted == completed + shed + rejected + in_flight +
    /// failed_over_in_transit`).
    pub fn balanced(&self) -> bool {
        let agg_ok = {
            let (mut adm, mut done, mut shed, mut rej, mut fly, mut transit) =
                (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
            for t in &self.tenants {
                adm += t.admitted;
                done += t.completed;
                shed += t.shed;
                rej += t.rejected;
                fly += t.in_flight;
                transit += t.failed_over_in_transit;
            }
            adm == done + shed + rej + fly + transit
        };
        agg_ok && self.tenants.iter().all(TenantReport::balanced)
    }

    /// The SLO-violation cost metric: device-seconds consumed per
    /// violation. A violation-free run reports the full device-seconds
    /// (cost of perfection); higher is better only when violations are
    /// also lower — benches report both.
    pub fn cost(&self) -> f64 {
        self.device_seconds / (self.violations.max(1)) as f64
    }
}

/// Compute the fairness summary from per-tenant weighted shares.
pub(crate) fn fairness_of(tenants: &[TenantReport]) -> SloFairness {
    let mut share_max = 0.0f64;
    let mut share_min = f64::INFINITY;
    for t in tenants {
        share_max = share_max.max(t.weighted_share);
        share_min = share_min.min(t.weighted_share);
    }
    if !share_min.is_finite() {
        share_min = 0.0;
    }
    let ratio = if share_min > 0.0 { share_max / share_min } else { -1.0 };
    SloFairness { share_max, share_min, ratio }
}

/// Settle the fairness deficit counters after a committed batch: every
/// tenant with pending work on the device earns `images` split by
/// weight, and the served tenant pays the full `images` — so a tenant
/// that keeps losing slots accumulates credit and eventually wins the
/// exactly-tied launch tiebreak (the starvation bound). `pending(u)`
/// reads the post-commit queue state; deterministic because it is pure
/// device-local arithmetic in commit order.
pub(crate) fn settle_credits<F: Fn(usize) -> bool>(
    credits: &mut [f64],
    tenants: &[TenantSpec],
    pending: F,
    served: usize,
    images: usize,
) {
    let w: f64 = tenants
        .iter()
        .enumerate()
        .filter(|&(u, _)| pending(u))
        .map(|(_, s)| s.weight.max(0.0))
        .sum();
    if w > 0.0 {
        for (u, spec) in tenants.iter().enumerate() {
            if pending(u) {
                credits[u] += images as f64 * spec.weight.max(0.0) / w;
            }
        }
    }
    credits[served] -= images as f64;
}

/// Whether a candidate lane `(launch, credit, class rank)` beats the
/// current best under the SLO tiebreak: earliest launch first, then —
/// on an exactly-equal launch — largest fairness credit, then the more
/// latency-sensitive class. Equal on all three keeps the incumbent
/// (deterministic first-wins iteration order).
pub(crate) fn lane_beats(cand: (f64, f64, u8), best: (f64, f64, u8)) -> bool {
    if cand.0 != best.0 {
        return cand.0 < best.0;
    }
    if cand.1 != best.1 {
        return cand.1 > best.1;
    }
    cand.2 < best.2
}

/// Deterministic per-tenant admission control: a token bucket on the
/// arrival clock with a one-second burst allowance. Tenants without a
/// rate limit always admit.
pub(crate) struct Admission {
    /// `(tokens, last refill time, rate)` per tenant; `rate <= 0` means
    /// unlimited.
    state: Vec<(f64, f64, f64)>,
}

impl Admission {
    pub(crate) fn new(tenants: &[TenantSpec]) -> Admission {
        Admission {
            state: tenants
                .iter()
                .map(|t| {
                    let rate = t.rate_limit.unwrap_or(0.0);
                    (rate.max(1.0), 0.0, rate)
                })
                .collect(),
        }
    }

    /// Admit or reject one arrival of tenant `t` at time `now`.
    pub(crate) fn admit(&mut self, t: usize, now: f64) -> bool {
        let (tokens, last, rate) = &mut self.state[t];
        if *rate <= 0.0 {
            return true;
        }
        let burst = rate.max(1.0);
        *tokens = (*tokens + (now - *last) * *rate).min(burst);
        *last = now;
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> Vec<TenantSpec> {
        vec![
            TenantSpec::interactive("chat", 0.05, 1.0),
            TenantSpec::standard("web", 2.0),
            TenantSpec::best_effort("batch", 1.0),
        ]
    }

    #[test]
    fn tags_are_pure_and_weight_proportional() {
        let tenants = three();
        let a = tenant_tags(42, 10_000, &tenants);
        let b = tenant_tags(42, 10_000, &tenants);
        assert_eq!(a, b, "attribution must be a pure function of (seed, id)");
        let c = tenant_tags(43, 10_000, &tenants);
        assert_ne!(a, c, "a different seed must shuffle the attribution");
        // Shares land near the 1:2:1 weights.
        let count = |tags: &[u32], t: u32| tags.iter().filter(|&&x| x == t).count() as f64;
        let n = a.len() as f64;
        assert!((count(&a, 0) / n - 0.25).abs() < 0.03);
        assert!((count(&a, 1) / n - 0.50).abs() < 0.03);
        assert!((count(&a, 2) / n - 0.25).abs() < 0.03);
        // A prefix of a longer run matches the shorter run exactly
        // (per-id hashing, no sequential RNG state).
        let long = tenant_tags(42, 20_000, &tenants);
        assert_eq!(&long[..10_000], &a[..]);
    }

    #[test]
    fn degenerate_tenant_lists_tag_zero() {
        assert_eq!(tenant_tags(1, 4, &[]), vec![0; 4]);
        let zero = vec![TenantSpec::standard("z", 0.0)];
        assert_eq!(tenant_tags(1, 4, &zero), vec![0; 4]);
    }

    #[test]
    fn commit_budgets_order_by_class() {
        let delay = 0.004;
        let int = TenantClass::Interactive { p99_budget: 0.002 };
        assert!((int.commit_budget(delay) - 0.001).abs() < 1e-12);
        // A roomy budget never loosens past the policy delay.
        let loose = TenantClass::Interactive { p99_budget: 1.0 };
        assert_eq!(loose.commit_budget(delay), delay);
        assert_eq!(TenantClass::Standard.commit_budget(delay), delay);
        assert!((TenantClass::BestEffort.commit_budget(delay) - 0.016).abs() < 1e-12);
        assert!(int.rank() < TenantClass::Standard.rank());
        assert!(TenantClass::Standard.rank() < TenantClass::BestEffort.rank());
    }

    #[test]
    fn admission_bucket_rejects_past_the_rate() {
        let tenants = vec![
            TenantSpec::standard("open", 1.0),
            TenantSpec::standard("capped", 1.0).with_rate_limit(10.0),
        ];
        let mut adm = Admission::new(&tenants);
        // Unlimited tenant admits everything.
        for i in 0..100 {
            assert!(adm.admit(0, i as f64 * 1e-4));
        }
        // The capped tenant admits its 10-token burst, then rejects a
        // tight volley, then recovers with the clock.
        let mut admitted = 0;
        for i in 0..100 {
            if adm.admit(1, i as f64 * 1e-4) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 10, "burst allowance is one second of rate");
        assert!(adm.admit(1, 10.0), "tokens must refill on the arrival clock");
    }

    #[test]
    fn balance_and_fairness_summaries() {
        let t = TenantReport {
            name: "chat".to_string(),
            class: TenantClass::Standard,
            weight: 1.0,
            admitted: 10,
            rejected: 2,
            completed: 7,
            shed: 1,
            in_flight: 0,
            images: 20,
            violations: 0,
            latency: LatencyStats::default(),
            weighted_share: 20.0,
            failed_over: 0,
            failed_over_in_transit: 0,
        };
        assert!(t.balanced());
        let mut bad = t.clone();
        bad.shed = 2;
        assert!(!bad.balanced());
        let starved = TenantReport { weighted_share: 0.0, completed: 0, admitted: 3, ..t.clone() };
        // Unbalanced starved row: 3 != 0 + 1 + 2 + 0 is false -> fix.
        let starved = TenantReport { shed: 1, rejected: 2, ..starved };
        assert!(starved.balanced());
        let f = fairness_of(&[t.clone(), starved]);
        assert_eq!(f.ratio, -1.0, "a tenant with nothing completed is the starved sentinel");
        let f2 = fairness_of(&[t.clone(), TenantReport { weighted_share: 10.0, ..t }]);
        assert!((f2.ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn class_serializes_with_budget_only_when_present() {
        let mut out = String::new();
        TenantClass::Interactive { p99_budget: 0.05 }.serialize_json(&mut out);
        assert_eq!(out, "{\"kind\":\"interactive\",\"p99_budget\":0.05}");
        let mut out = String::new();
        TenantClass::BestEffort.serialize_json(&mut out);
        assert_eq!(out, "{\"kind\":\"best-effort\"}");
    }
}
