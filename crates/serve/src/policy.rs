//! Degradation policies: what the server *does* about injected faults.
//!
//! The error taxonomy (`memcnn_core::EngineError`) classifies failures;
//! this module decides the response, one policy per class:
//!
//! - **transient launch failures** → bounded retry with deterministic
//!   exponential backoff ([`FaultPolicy::max_retries`],
//!   [`FaultPolicy::backoff_base`]); exhaustion sheds the batch.
//! - **execute-time OOM** → bucket downshift: the batch re-forms at half
//!   the bucket, and a circuit-style *degraded mode* pins that smaller
//!   bucket until [`FaultPolicy::recovery_batches`] consecutive clean
//!   batches pass (retrying the full size on every batch would thrash).
//! - **queue pressure** → deadline-based load shedding: requests whose
//!   wait already exceeds [`FaultPolicy::shed_deadline`] when the device
//!   frees up are dropped instead of served hopelessly late.
//!
//! Every decision is counted in [`FaultStats`], whose invariant — each
//! injected fault is accounted exactly once as retried, degraded, or shed
//! ([`FaultStats::balanced`]) — is what the chaos tests enforce.

use serde::Serialize;

/// Tunable fault-handling policy for a serving run.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FaultPolicy {
    /// Retries after the first failed attempt of a batch (so a batch
    /// launches at most `1 + max_retries` times). 0 sheds on first
    /// transient.
    pub max_retries: u32,
    /// Backoff before retry `k` (1-based): `backoff_base * 2^(k-1)`
    /// simulated seconds. Deterministic — no jitter, so replays are
    /// bit-identical.
    pub backoff_base: f64,
    /// Maximum time a request may wait in queue before it is shed instead
    /// of served (`None`: never shed on deadline). Checked when the device
    /// frees up, before batch formation.
    pub shed_deadline: Option<f64>,
    /// Consecutive clean batches (no retries, no throttles) required to
    /// leave degraded mode and unpin the bucket cap after an OOM
    /// downshift.
    pub recovery_batches: u64,
}

impl Default for FaultPolicy {
    fn default() -> FaultPolicy {
        FaultPolicy { max_retries: 3, backoff_base: 2e-4, shed_deadline: None, recovery_batches: 8 }
    }
}

impl FaultPolicy {
    /// Backoff charged before 1-based retry `k`: `backoff_base * 2^(k-1)`.
    pub fn backoff(&self, retry: u32) -> f64 {
        self.backoff_base * f64::powi(2.0, retry.saturating_sub(1) as i32)
    }
}

/// Fault accounting for one serving run. `injected` counts every fault the
/// plan fired; each is resolved exactly once as `retried` (a fresh launch
/// attempt), `degraded` (absorbed slower: a throttle, or an OOM bucket
/// downshift), or `shed` (the batch's requests were dropped).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Faults the plan fired during the run.
    pub injected: u64,
    /// Transient faults answered with a retry.
    pub retried: u64,
    /// Faults absorbed by degrading: throttles plus OOM downshifts.
    pub degraded: u64,
    /// Faults resolved by shedding the batch (retry exhaustion, or OOM at
    /// bucket 1 with nothing left to shrink).
    pub shed: u64,
    /// Throttle faults among `injected` (a subset of `degraded`).
    pub throttled: u64,
    /// OOM-triggered bucket downshifts (a subset of `degraded`).
    pub oom_downshifts: u64,
    /// Times the server entered degraded mode (pinned a smaller bucket).
    pub degraded_entries: u64,
    /// Times the server left degraded mode (clean-batch streak reached).
    pub degraded_exits: u64,
}

impl FaultStats {
    /// The counter-discipline invariant: every injected fault accounted
    /// exactly once. The chaos suite asserts this on every run.
    pub fn balanced(&self) -> bool {
        self.injected == self.retried + self.degraded + self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_per_retry() {
        let p = FaultPolicy { backoff_base: 1e-4, ..FaultPolicy::default() };
        assert_eq!(p.backoff(1), 1e-4);
        assert_eq!(p.backoff(2), 2e-4);
        assert_eq!(p.backoff(3), 4e-4);
    }

    #[test]
    fn balanced_checks_the_exact_identity() {
        let mut s =
            FaultStats { injected: 5, retried: 2, degraded: 2, shed: 1, ..Default::default() };
        assert!(s.balanced());
        s.injected += 1;
        assert!(!s.balanced());
    }
}
