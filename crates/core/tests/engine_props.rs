//! Engine-level properties: the profiled layout DP is genuinely optimal
//! over the {NCHW, CHWN} assignment space, and mechanism orderings hold.

use memcnn_core::{Engine, LayoutThresholds, Mechanism, Network, NetworkBuilder};
use memcnn_gpusim::DeviceConfig;
use memcnn_tensor::{Layout, Shape};

fn engine() -> Engine {
    Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
}

/// Brute-force the optimal mixed-layout cost of a conv/pool-only network
/// using the engine's public per-layer costing.
fn brute_force_best(e: &Engine, net: &Network) -> f64 {
    let layers = net.layers();
    let k = layers.len();
    let states = [Layout::NCHW, Layout::CHWN];
    let mut best = f64::INFINITY;
    for mask in 0..(1u32 << k) {
        let assignment: Vec<Layout> = (0..k).map(|i| states[(mask >> i) as usize & 1]).collect();
        let mut total = 0.0;
        let mut prev: Option<Layout> = None;
        for (layer, &layout) in layers.iter().zip(&assignment) {
            if let Some(p) = prev {
                total += e.transform_time(layer.input, p, layout).unwrap();
            }
            total += if let Some(cs) = layer.conv_shape() {
                e.conv_time(&cs, Mechanism::Opt, layout).unwrap().0
            } else if let Some(ps) = layer.pool_shape() {
                e.pool_time(&ps, Mechanism::Opt, layout).unwrap().0
            } else {
                unreachable!("conv/pool-only networks")
            };
            prev = Some(layout);
        }
        best = best.min(total);
    }
    best
}

fn check_dp_matches_brute_force(net: &Network) {
    let e = engine();
    let dp = e.simulate_network(net, Mechanism::Opt).unwrap().total_time();
    let bf = brute_force_best(&e, net);
    assert!((dp - bf).abs() / bf < 1e-9, "{}: DP {dp:.6e} vs brute force {bf:.6e}", net.name);
}

#[test]
fn dp_is_optimal_on_a_mixed_chain() {
    let net = NetworkBuilder::new("mix1", Shape::new(64, 3, 48, 48))
        .conv("cv1", 64, 5, 1, 0) // C=3 -> CHWN side
        .max_pool("pl1", 3, 2)
        .conv("cv2", 128, 3, 1, 1) // C=64, N=64 -> NCHW side
        .max_pool("pl2", 2, 2)
        .build()
        .unwrap();
    check_dp_matches_brute_force(&net);
}

#[test]
fn dp_is_optimal_when_everything_prefers_one_layout() {
    let net = NetworkBuilder::new("uniform", Shape::new(128, 16, 24, 24))
        .conv("cv1", 32, 3, 1, 1)
        .max_pool("pl1", 2, 2)
        .conv("cv2", 32, 3, 1, 1)
        .build()
        .unwrap();
    check_dp_matches_brute_force(&net);
    // And with N=128 the winning plan is all-CHWN with zero transforms.
    let e = engine();
    let r = e.simulate_network(&net, Mechanism::Opt).unwrap();
    assert_eq!(r.transform_count(), 0);
    assert!(r.layers.iter().all(|l| l.layout == "CHWN"));
}

#[test]
fn dp_is_optimal_on_an_alternating_preference_chain() {
    // Alternating small-C / large-C convs at N=32: the DP must weigh
    // transform costs against per-layer preferences.
    let net = NetworkBuilder::new("alt", Shape::new(32, 3, 32, 32))
        .conv("cv1", 256, 3, 1, 1) // C=3: CHWN preferred
        .conv("cv2", 64, 3, 1, 1) // C=256: NCHW preferred
        .conv("cv3", 256, 3, 1, 1) // C=64: borderline
        .build()
        .unwrap();
    check_dp_matches_brute_force(&net);
}

#[test]
fn cudnn_best_never_loses_to_other_cudnn_modes() {
    let e = engine();
    for net in [
        NetworkBuilder::new("n1", Shape::new(64, 16, 28, 28))
            .conv("cv", 64, 5, 1, 0)
            .max_pool("pl", 2, 2)
            .build()
            .unwrap(),
        NetworkBuilder::new("n2", Shape::new(32, 128, 56, 56))
            .conv("cv", 256, 3, 1, 1)
            .max_pool("pl", 2, 2)
            .build()
            .unwrap(),
    ] {
        let best = e.simulate_network(&net, Mechanism::CudnnBest).unwrap().total_time();
        for m in [Mechanism::CudnnMm, Mechanism::CudnnFft, Mechanism::CudnnFftTiling] {
            let t = e.simulate_network(&net, m).unwrap().total_time();
            assert!(best <= t * 1.0001, "{}: Best {best:.3e} vs {m} {t:.3e}", net.name);
        }
    }
}

#[test]
fn network_report_accounting_is_consistent() {
    let e = engine();
    let net = NetworkBuilder::new("acct", Shape::new(64, 3, 48, 48))
        .conv("cv1", 96, 5, 2, 0)
        .max_pool("pl1", 3, 2)
        .conv("cv2", 256, 3, 1, 1)
        .fc("fc", 10)
        .softmax("prob")
        .build()
        .unwrap();
    let r = e.simulate_network(&net, Mechanism::Opt).unwrap();
    let sum: f64 = r.layers.iter().map(|l| l.time + l.transform_before).sum();
    assert!((sum - r.total_time()).abs() < 1e-12);
    let tsum: f64 = r.layers.iter().map(|l| l.transform_before).sum();
    assert!((tsum - r.transform_time()).abs() < 1e-12);
    assert_eq!(r.layers.iter().filter(|l| l.transform_before > 0.0).count(), r.transform_count());
    // Display renders every layer.
    let text = r.to_string();
    for l in net.layers() {
        assert!(text.contains(&l.name), "missing {} in report display", l.name);
    }
}
