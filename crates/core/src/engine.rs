//! The execution engine: scores whole networks under each library
//! mechanism, assigning per-layer layouts and inserting transformation
//! kernels for the `Opt` mechanism — the integration §IV.D describes
//! ("by comparing the data layout fields of the current layer and the next
//! layer, if different, the transformation ... will be performed").

use crate::autotune::tune_pooling;
use crate::error::EngineError;
use crate::heuristic::{choose_layout, LayoutThresholds};
use crate::layer::{Layer, LayerSpec};
use crate::library::Mechanism;
use crate::net::Network;
use memcnn_gpusim::{
    simulate, simulate_sequence, DeviceConfig, Fault, FaultPlan, KernelSpec, SimError, SimOptions,
};
use memcnn_kernels::conv::direct_chwn::DirectConvChwn;
use memcnn_kernels::conv::fft_nchw::{FftConvMode, FftConvNchw};
use memcnn_kernels::conv::mm_nchw::MmConvNchw;
use memcnn_kernels::layers::{ElementwiseKernel, LrnKernel};
use memcnn_kernels::matmul::gemm_kernel;
use memcnn_kernels::pool::chwn::PoolChwn;
use memcnn_kernels::pool::nchw::{PoolNchwCaffe, PoolNchwCudnn};
use memcnn_kernels::softmax::{cudnn_pipeline, five_kernel_pipeline, SoftmaxFused};
use memcnn_kernels::transform::{TransformImpl, TransformKernel, VECTORIZE_MIN_N};
use memcnn_kernels::{ConvShape, PoolShape};
use memcnn_tensor::{Layout, Shape};
use memcnn_trace as trace;
use rayon::prelude::*;
use serde::Serialize;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// Which transformation kernels the `Opt` mechanism inserts — Fig 10's
/// `Opt+Naive Transform` vs `Opt+Optimized Transform` distinction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransformQuality {
    /// Fig 7a's naive 4D transpose.
    Naive,
    /// Fig 7b: tiled (Opt1), vectorized (Opt2) when `N >= 64`.
    Optimized,
}

/// How `Opt` assigns layouts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutPolicy {
    /// The §IV.A rule applied per conv layer; pooling prefers `CHWN`.
    Heuristic,
    /// Heuristic seeding refined by simulated profiling: a two-state
    /// dynamic program over the layer chain that charges transformation
    /// costs at every boundary (the §IV.D "one-time profiling ... to fine
    /// tune the data layout settings automatically").
    Profiled,
}

/// Per-layer entry of a network report.
#[derive(Clone, Debug, Serialize)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Layout the layer ran in.
    pub layout: String,
    /// Implementation used (e.g. `direct-chwn`, `mm`, `fft`, `fused`).
    pub impl_name: String,
    /// Simulated forward time, seconds.
    pub time: f64,
    /// Simulated backward time, seconds (0 in forward-only reports).
    pub backward_time: f64,
    /// Time of the layout transformation inserted *before* this layer
    /// (0 when none).
    pub transform_before: f64,
    /// Whether an FFT mode failed and fell back to MM (§VI.C).
    pub fell_back: bool,
}

/// Simulated execution of a network under one mechanism.
#[derive(Clone, Debug, Serialize)]
pub struct NetworkReport {
    /// Network name.
    pub network: String,
    /// Mechanism label.
    pub mechanism: String,
    /// Per-layer details.
    pub layers: Vec<LayerReport>,
}

impl NetworkReport {
    /// Total time including transformations and any backward pass.
    pub fn total_time(&self) -> f64 {
        self.layers.iter().map(|l| l.time + l.backward_time + l.transform_before).sum()
    }

    /// Total backward-pass time (0 for forward-only reports).
    pub fn backward_time(&self) -> f64 {
        self.layers.iter().map(|l| l.backward_time).sum()
    }

    /// Total time spent in layout transformations.
    pub fn transform_time(&self) -> f64 {
        self.layers.iter().map(|l| l.transform_before).sum()
    }

    /// Number of transformations inserted.
    pub fn transform_count(&self) -> usize {
        self.layers.iter().filter(|l| l.transform_before > 0.0).count()
    }

    /// Find a layer's report by name.
    pub fn layer(&self, name: &str) -> Option<&LayerReport> {
        self.layers.iter().find(|l| l.name == name)
    }
}

impl fmt::Display for NetworkReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} under {}: {:.3} ms total ({} transforms, {:.3} ms)",
            self.network,
            self.mechanism,
            self.total_time() * 1e3,
            self.transform_count(),
            self.transform_time() * 1e3
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "  {:<8} {:<6} {:<16} {:>9.3} ms{}{}{}",
                l.name,
                l.layout,
                l.impl_name,
                l.time * 1e3,
                if l.backward_time > 0.0 {
                    format!("  (+{:.3} ms bwd)", l.backward_time * 1e3)
                } else {
                    String::new()
                },
                if l.transform_before > 0.0 {
                    format!("  (+{:.3} ms transform)", l.transform_before * 1e3)
                } else {
                    String::new()
                },
                if l.fell_back { "  [FFT fell back to MM]" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// One layer of a compiled [`Plan`]: the planned layout, implementation
/// and simulated times, replayable without re-running selection.
#[derive(Clone, Debug)]
pub struct PlannedLayer {
    /// Layer name.
    pub name: String,
    /// Working layout the plan assigns the layer.
    pub layout: Layout,
    /// Whether the layer is sensitive to the 4D layout (FC/softmax end the
    /// layout-constrained region and report `-`).
    pub layout_sensitive: bool,
    /// Whether the layer is a convolution (the layers the `(Ct, Nt)`
    /// heuristic actually decides; pooling always prefers CHWN).
    pub is_conv: bool,
    /// Chosen implementation (e.g. `direct-chwn`, `mm`, `fft`).
    pub impl_name: String,
    /// Simulated forward time, seconds.
    pub time: f64,
    /// Layout transformation inserted before this layer, seconds (0: none).
    pub transform_before: f64,
    /// Source layout of that transformation, when one is inserted.
    pub transform_from: Option<Layout>,
    /// Whether an FFT mode failed and fell back to MM.
    pub fell_back: bool,
}

/// A compiled network plan: the output of layout assignment (heuristic or
/// DP) plus per-layer implementation selection at one batch size. Produced
/// once by [`Engine::plan`] and replayed any number of times by
/// [`Engine::execute`] — the split that lets callers (serving, benches,
/// functional execution) stop re-planning implicitly on every run.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Network name.
    pub network: String,
    /// Batch size (`N`) the plan was compiled at.
    pub batch: usize,
    /// Mechanism it was compiled under.
    pub mechanism: Mechanism,
    /// Per-layer decisions in network order.
    pub layers: Vec<PlannedLayer>,
}

impl Plan {
    /// Total simulated forward time including transformations, seconds.
    pub fn total_time(&self) -> f64 {
        self.layers.iter().map(|l| l.time + l.transform_before).sum()
    }

    /// The per-layer layout assignment, in network order (the vector
    /// [`crate::exec::run_network`] takes).
    pub fn layouts(&self) -> Vec<Layout> {
        self.layers.iter().map(|l| l.layout).collect()
    }

    /// Layout of a named layer, if it exists and is layout-sensitive.
    pub fn layout_of(&self, name: &str) -> Option<Layout> {
        self.layers.iter().find(|l| l.name == name && l.layout_sensitive).map(|l| l.layout)
    }

    /// Compact signature of the convolution-layer layout decisions, e.g.
    /// `"CHWN"` when uniform or `"CHWN,NCHW,NCHW"` in layer order — the
    /// string the serving tables print per batch-size bucket.
    pub fn conv_layout_signature(&self) -> String {
        let convs: Vec<String> =
            self.layers.iter().filter(|l| l.is_conv).map(|l| l.layout.name()).collect();
        if !convs.is_empty() && convs.iter().all(|c| *c == convs[0]) {
            convs[0].clone()
        } else {
            convs.join(",")
        }
    }

    /// Number of layout transformations the plan inserts.
    pub fn transform_count(&self) -> usize {
        self.layers.iter().filter(|l| l.transform_before > 0.0).count()
    }

    /// Stable fault-roll identity of one planned layer's launch:
    /// `network/N{batch}/layer/impl`. Fault plans key on this (plus the
    /// launch index), so the same plan replayed at the same index always
    /// rolls the same fault, while distinct buckets of the same network
    /// fault independently.
    pub fn launch_key(&self, layer: &PlannedLayer) -> String {
        format!("{}/N{}/{}/{}", self.network, self.batch, layer.name, layer.impl_name)
    }
}

/// Outcome of one fault-aware launch attempt of a [`Plan`]
/// ([`Engine::execute_attempt`]). Not a `Result`: a failing attempt still
/// made progress — simulated time elapsed, throttles were absorbed — and
/// retry policies must charge that progress before rolling again.
#[derive(Clone, Debug)]
pub struct LaunchAttempt {
    /// Simulated time the attempt consumed (up to the faulting layer when
    /// `error` is set; the full plan time otherwise).
    pub time: f64,
    /// Throttle faults absorbed during the attempt (execution continued,
    /// stretched by the throttle factor).
    pub throttled: u32,
    /// The fault that stopped the attempt, if one did.
    pub error: Option<EngineError>,
}

/// The engine: a device, simulation options, thresholds and caches.
///
/// `Engine` is `Sync`: its only interior mutability is a `Mutex`-guarded
/// autotune cache, so one engine can be shared by reference across rayon
/// workers (the candidate fan-out below does exactly that).
pub struct Engine {
    device: DeviceConfig,
    opts: SimOptions,
    thresholds: LayoutThresholds,
    transform_quality: TransformQuality,
    layout_policy: LayoutPolicy,
    pool_tune_cache: Mutex<HashMap<PoolShape, (usize, usize)>>,
}

impl Engine {
    /// Engine with explicit thresholds (use
    /// [`crate::heuristic::derive_thresholds`] for the profiled ones).
    pub fn new(device: DeviceConfig, thresholds: LayoutThresholds) -> Engine {
        Engine {
            device,
            opts: SimOptions::default(),
            thresholds,
            transform_quality: TransformQuality::Optimized,
            layout_policy: LayoutPolicy::Profiled,
            pool_tune_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Override the transformation quality (Fig 10 ablation).
    pub fn with_transform_quality(mut self, q: TransformQuality) -> Engine {
        self.transform_quality = q;
        self
    }

    /// Override the layout policy.
    pub fn with_layout_policy(mut self, p: LayoutPolicy) -> Engine {
        self.layout_policy = p;
        self
    }

    /// Override simulation options.
    pub fn with_sim_options(mut self, opts: SimOptions) -> Engine {
        self.opts = opts;
        self
    }

    /// The device this engine scores on.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// The thresholds in use.
    pub fn thresholds(&self) -> &LayoutThresholds {
        &self.thresholds
    }

    fn sim(&self, k: &dyn KernelSpec) -> Result<f64, SimError> {
        Ok(simulate(&self.device, k, &self.opts)?.time())
    }

    /// Whether speculative parallel probing can help *and* cannot be
    /// observed: it needs the simulation cache (the sequential re-read must
    /// hit) and more than one worker thread. Under an active trace the
    /// workers record into per-worker collectors (`trace::fork`) whose
    /// records merge back tagged `Scope::Worker`, so the orchestrator's
    /// own deterministic records are untouched and fan-out stays on.
    fn parallel_probes_enabled(&self) -> bool {
        self.opts.use_cache && rayon::max_threads() > 1
    }

    /// Fan the NCHW convolution candidates (mm, fft, fft-tiling) out across
    /// rayon workers, priming the simulation cache. Results — including
    /// errors, which are never cached — are discarded; the caller re-runs
    /// the same probes sequentially and reads hits, so candidate selection
    /// and the final report are bit-identical to the sequential path.
    fn prewarm_conv_candidates(&self, shape: &ConvShape) {
        if !self.parallel_probes_enabled() {
            return;
        }
        trace::perf::add("engine.probe.fanout", 3);
        let fork = trace::fork();
        (0..3usize).into_par_iter().for_each(|i| {
            let _w = fork.attach(i);
            let _ = match i {
                0 => MmConvNchw::new(*shape).simulate(&self.device, &self.opts).is_ok(),
                1 => FftConvNchw::new(*shape, FftConvMode::Full)
                    .ok()
                    .and_then(|p| p.simulate(&self.device, &self.opts).ok())
                    .is_some(),
                _ => FftConvNchw::new(*shape, FftConvMode::Tiled)
                    .ok()
                    .and_then(|p| p.simulate(&self.device, &self.opts).ok())
                    .is_some(),
            };
        });
        fork.merge();
    }

    fn sim_seq(&self, ks: &[Box<dyn KernelSpec + Send>]) -> Result<f64, SimError> {
        let refs: Vec<&dyn KernelSpec> = ks.iter().map(|k| k.as_ref() as _).collect();
        Ok(simulate_sequence(&self.device, &refs, &self.opts)?.time())
    }

    /// Time of a convolution under a specific implementation family,
    /// with FFT fallback to MM. Returns `(time, impl name, fell_back)`.
    pub fn conv_time(
        &self,
        shape: &ConvShape,
        mech: Mechanism,
        layout: Layout,
    ) -> Result<(f64, &'static str, bool), SimError> {
        if layout == Layout::CHWN {
            let _c = trace::scope(trace::Scope::Candidate("direct-chwn".to_string()));
            return Ok((self.sim(&DirectConvChwn::new(*shape))?, "direct-chwn", false));
        }
        let mm = || -> Result<f64, SimError> {
            let _c = trace::scope(trace::Scope::Candidate("mm".to_string()));
            Ok(MmConvNchw::new(*shape).simulate(&self.device, &self.opts)?.time())
        };
        let fft = |mode: FftConvMode| -> Option<f64> {
            let label = match mode {
                FftConvMode::Full => "fft",
                FftConvMode::Tiled => "fft-tiling",
            };
            let _c = trace::scope(trace::Scope::Candidate(label.to_string()));
            FftConvNchw::new(*shape, mode)
                .ok()
                .and_then(|p| p.simulate(&self.device, &self.opts).ok())
                .map(|r| r.time())
        };
        match mech {
            Mechanism::CudnnFft => match fft(FftConvMode::Full) {
                Some(t) => Ok((t, "fft", false)),
                None => Ok((mm()?, "mm", true)),
            },
            Mechanism::CudnnFftTiling => match fft(FftConvMode::Tiled) {
                Some(t) => Ok((t, "fft-tiling", false)),
                None => Ok((mm()?, "mm", true)),
            },
            Mechanism::CudnnBest | Mechanism::Opt => {
                self.prewarm_conv_candidates(shape);
                let mut best = (mm()?, "mm");
                if let Some(t) = fft(FftConvMode::Full) {
                    if t < best.0 {
                        best = (t, "fft");
                    }
                }
                if let Some(t) = fft(FftConvMode::Tiled) {
                    if t < best.0 {
                        best = (t, "fft-tiling");
                    }
                }
                Ok((best.0, best.1, false))
            }
            _ => Ok((mm()?, "mm", false)),
        }
    }

    /// Time of a pooling layer under a mechanism/layout.
    pub fn pool_time(
        &self,
        shape: &PoolShape,
        mech: Mechanism,
        layout: Layout,
    ) -> Result<(f64, &'static str), SimError> {
        let cand = |name: &'static str| trace::scope(trace::Scope::Candidate(name.to_string()));
        match (mech, layout) {
            (Mechanism::Opt, Layout::CHWN) => {
                let (ux, uy) = self.tuned_pool_factors(shape);
                let _c = cand("pool-chwn-opt");
                Ok((self.sim(&PoolChwn::coarsened(*shape, ux, uy))?, "pool-chwn-opt"))
            }
            (_, Layout::CHWN) => {
                let _c = cand("pool-chwn");
                Ok((self.sim(&PoolChwn::new(*shape))?, "pool-chwn"))
            }
            (Mechanism::Caffe, _) => {
                let _c = cand("pool-caffe");
                Ok((self.sim(&PoolNchwCaffe::new(*shape))?, "pool-caffe"))
            }
            (Mechanism::Opt, _) => {
                // Opt in NCHW uses the better of the two NCHW baselines.
                let caffe = {
                    let _c = cand("pool-caffe");
                    self.sim(&PoolNchwCaffe::new(*shape))?
                };
                let cudnn = {
                    let _c = cand("pool-cudnn");
                    self.sim(&PoolNchwCudnn::new(*shape))?
                };
                Ok(if caffe <= cudnn { (caffe, "pool-caffe") } else { (cudnn, "pool-cudnn") })
            }
            _ => {
                let _c = cand("pool-cudnn");
                Ok((self.sim(&PoolNchwCudnn::new(*shape))?, "pool-cudnn"))
            }
        }
    }

    /// Lock the autotune cache, surviving poisoning: the map holds plain
    /// `(usize, usize)` pairs inserted atomically, so a panicking worker
    /// cannot leave a torn entry — recovering the guard is always safe and
    /// keeps this path panic-free.
    fn pool_tune_lock(&self) -> std::sync::MutexGuard<'_, HashMap<PoolShape, (usize, usize)>> {
        self.pool_tune_cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tuned_pool_factors(&self, shape: &PoolShape) -> (usize, usize) {
        if let Some(&f) = self.pool_tune_lock().get(shape) {
            return f;
        }
        // The lock is *not* held while tuning: concurrent workers may race
        // to tune the same shape, but the tuner is deterministic (and its
        // simulations hit the cache), so duplicate inserts agree.
        let _a = trace::scope(trace::Scope::Autotune);
        trace::perf::incr("engine.autotune.pool");
        let r = tune_pooling(&self.device, shape, &self.opts);
        self.pool_tune_lock().insert(*shape, (r.ux, r.uy));
        (r.ux, r.uy)
    }

    /// Time of a layout transformation of `shape` between two layouts.
    pub fn transform_time(&self, shape: Shape, from: Layout, to: Layout) -> Result<f64, SimError> {
        if from == to {
            return Ok(0.0);
        }
        let _t = trace::scope(trace::Scope::Transform);
        let imp = match self.transform_quality {
            TransformQuality::Naive => TransformImpl::Naive,
            TransformQuality::Optimized => {
                if shape.n >= VECTORIZE_MIN_N {
                    TransformImpl::Opt2
                } else {
                    TransformImpl::Opt1
                }
            }
        };
        self.sim(&TransformKernel::new(shape, from, to, imp))
    }

    /// Time of one layer in a given layout under a mechanism.
    fn layer_time(
        &self,
        layer: &Layer,
        mech: Mechanism,
        layout: Layout,
    ) -> Result<(f64, String, bool), SimError> {
        match &layer.spec {
            LayerSpec::Conv { .. } => {
                let shape = layer
                    .conv_shape()
                    .expect("invariant: matched LayerSpec::Conv, so conv_shape() is Some");
                let (t, name, fb) = self.conv_time(&shape, mech, layout)?;
                Ok((t, name.to_string(), fb))
            }
            LayerSpec::Pool { .. } => {
                let shape = layer
                    .pool_shape()
                    .expect("invariant: matched LayerSpec::Pool, so pool_shape() is Some");
                let (t, name) = self.pool_time(&shape, mech, layout)?;
                Ok((t, name.to_string(), false))
            }
            LayerSpec::Softmax => {
                let shape = layer
                    .softmax_shape()
                    .expect("invariant: matched LayerSpec::Softmax, so softmax_shape() is Some");
                let name = match mech {
                    Mechanism::Opt => "softmax-fused",
                    Mechanism::CudaConvnet | Mechanism::Caffe => "softmax-5k",
                    _ => "softmax-cudnn",
                };
                let _c = trace::scope(trace::Scope::Candidate(name.to_string()));
                let t = match mech {
                    Mechanism::Opt => self.sim(&SoftmaxFused::new(shape))?,
                    Mechanism::CudaConvnet | Mechanism::Caffe => {
                        self.sim_seq(&five_kernel_pipeline(shape))?
                    }
                    _ => self.sim_seq(&cudnn_pipeline(shape))?,
                };
                Ok((t, name.to_string(), false))
            }
            LayerSpec::ReLU => {
                let _c = trace::scope(trace::Scope::Candidate("relu".to_string()));
                let t = self.sim(&ElementwiseKernel::new("relu", layer.input.len() as u64, 1))?;
                Ok((t, "relu".to_string(), false))
            }
            LayerSpec::Lrn { size } => {
                let _c = trace::scope(trace::Scope::Candidate("lrn".to_string()));
                let t = self.sim(&LrnKernel::new(layer.input.len() as u64, *size as u64))?;
                Ok((t, "lrn".to_string(), false))
            }
            LayerSpec::Fc { outputs } => {
                let _c = trace::scope(trace::Scope::Candidate("fc-gemm".to_string()));
                let inputs = layer.input.c * layer.input.h * layer.input.w;
                let t = self.sim(&gemm_kernel(*outputs, inputs, layer.input.n))?;
                Ok((t, "fc-gemm".to_string(), false))
            }
        }
    }

    /// Assign per-layer layouts for the `Opt` mechanism.
    fn opt_layouts(&self, net: &Network) -> Result<Vec<Layout>, SimError> {
        let _plan = trace::scope(trace::Scope::Plan);
        let layers = net.layers();
        let mut heuristic: Vec<Layout> = Vec::with_capacity(layers.len());
        let mut carried = Layout::NCHW;
        for l in layers {
            let layout = match &l.spec {
                LayerSpec::Conv { .. } => {
                    let shape = l
                        .conv_shape()
                        .expect("invariant: matched LayerSpec::Conv, so conv_shape() is Some");
                    let chosen = choose_layout(&shape, &self.thresholds);
                    let th = &self.thresholds;
                    trace::record_decision(|| trace::Decision {
                        layer: l.name.clone(),
                        layout: chosen.name(),
                        policy: "heuristic".to_string(),
                        reason: if chosen == Layout::CHWN {
                            format!(
                                "C={} < Ct={} or N={} >= Nt={}",
                                shape.ci, th.ct, shape.n, th.nt
                            )
                        } else {
                            format!(
                                "C={} >= Ct={} and N={} < Nt={}",
                                shape.ci, th.ct, shape.n, th.nt
                            )
                        },
                    });
                    chosen
                }
                // §IV.B: pooling always prefers CHWN.
                LayerSpec::Pool { .. } => {
                    trace::record_decision(|| trace::Decision {
                        layer: l.name.clone(),
                        layout: Layout::CHWN.name(),
                        policy: "heuristic".to_string(),
                        reason: "pooling prefers CHWN (fully coalesced, no Cin reduction)"
                            .to_string(),
                    });
                    Layout::CHWN
                }
                // Layout-neutral layers (ReLU, LRN, FC, softmax) inherit
                // the running layout so they never force a transform.
                _ => carried,
            };
            carried = layout;
            heuristic.push(layout);
        }
        if self.layout_policy == LayoutPolicy::Heuristic {
            return Ok(heuristic);
        }

        // Profiled: dynamic program over {NCHW, CHWN} charging layer times
        // and boundary transformations.
        let states = [Layout::NCHW, Layout::CHWN];
        let n = layers.len();
        if n == 0 {
            return Ok(vec![]);
        }

        // Fan the DP's whole probe set — every (layer, state) time plus
        // both boundary transforms of every sensitive layer — out across
        // rayon workers, priming the simulation cache. Outcomes are
        // discarded (errors included: they are never cached, so the DP
        // below re-derives them deterministically); the sequential DP then
        // reads hits and produces the exact costs a cold run would.
        if self.parallel_probes_enabled() {
            enum Job<'a> {
                Time(&'a Layer, Layout),
                Transform(Shape, Layout, Layout),
            }
            let mut jobs: Vec<Job> = Vec::with_capacity(4 * n);
            for layer in layers {
                if layer.layout_sensitive() {
                    jobs.push(Job::Time(layer, Layout::NCHW));
                    jobs.push(Job::Time(layer, Layout::CHWN));
                    jobs.push(Job::Transform(layer.input, Layout::NCHW, Layout::CHWN));
                    jobs.push(Job::Transform(layer.input, Layout::CHWN, Layout::NCHW));
                } else {
                    jobs.push(Job::Time(layer, Layout::NCHW));
                }
            }
            trace::perf::add("engine.probe.fanout", jobs.len() as u64);
            let fork = trace::fork();
            jobs.par_iter().enumerate().for_each(|(ji, job)| {
                let _w = fork.attach(ji);
                let _ = match job {
                    Job::Time(layer, layout) => {
                        self.layer_time(layer, Mechanism::Opt, *layout).map(|_| ()).is_ok()
                    }
                    Job::Transform(shape, from, to) => {
                        self.transform_time(*shape, *from, *to).is_ok()
                    }
                };
            });
            fork.merge();
        }
        let mut cost = vec![[f64::INFINITY; 2]; n];
        let mut parent = vec![[0usize; 2]; n];
        for (i, layer) in layers.iter().enumerate() {
            for (s, &layout) in states.iter().enumerate() {
                // Layout-insensitive layers cost the same either way.
                let t = if layer.layout_sensitive() {
                    self.layer_time(layer, Mechanism::Opt, layout)?.0
                } else {
                    self.layer_time(layer, Mechanism::Opt, Layout::NCHW)?.0
                };
                if i == 0 {
                    cost[0][s] = t;
                    continue;
                }
                for (p, &prev_layout) in states.iter().enumerate() {
                    // Transformation happens on this layer's input tensor.
                    // FC/softmax flatten their input, so entering them
                    // never needs a transform.
                    let tr = if layer.layout_sensitive() {
                        self.transform_time(layer.input, prev_layout, layout)?
                    } else if prev_layout == layout {
                        0.0
                    } else {
                        // Collapse insensitive layers onto the previous
                        // state to avoid phantom transforms.
                        f64::INFINITY
                    };
                    let c = cost[i - 1][p] + tr + t;
                    if c < cost[i][s] {
                        cost[i][s] = c;
                        parent[i][s] = p;
                    }
                }
            }
        }
        // Trace back the cheaper terminal state.
        let mut s = if cost[n - 1][0] <= cost[n - 1][1] { 0 } else { 1 };
        let mut layouts = vec![Layout::NCHW; n];
        for i in (0..n).rev() {
            layouts[i] = states[s];
            s = parent[i][s];
        }
        for (i, layer) in layers.iter().enumerate() {
            if layer.layout_sensitive() && layouts[i] != heuristic[i] {
                trace::record_decision(|| trace::Decision {
                    layer: layer.name.clone(),
                    layout: layouts[i].name(),
                    policy: "profiled".to_string(),
                    reason: format!(
                        "DP override: heuristic chose {}, but {} is cheaper once \
                         boundary transformations are charged",
                        heuristic[i].name(),
                        layouts[i].name()
                    ),
                });
            }
        }
        Ok(layouts)
    }

    /// Backward-pass time of one layer under a mechanism/layout. The first
    /// layer's data gradient is skipped (nothing upstream consumes it), as
    /// real frameworks do.
    fn layer_backward_time(
        &self,
        layer: &Layer,
        mech: Mechanism,
        layout: Layout,
        is_first: bool,
    ) -> Result<f64, SimError> {
        use memcnn_kernels::backward as bwd;
        match &layer.spec {
            LayerSpec::Conv { .. } => {
                let shape = layer
                    .conv_shape()
                    .expect("invariant: matched LayerSpec::Conv, so conv_shape() is Some");
                // Data gradient: a convolution on the transposed shape,
                // using the same implementation selection as the forward
                // pass (cuDNN's BwdData has MM and FFT algorithms too).
                let t_data = if is_first {
                    0.0
                } else {
                    self.conv_time(&bwd::backward_data_shape(&shape), mech, layout)?.0
                };
                // Weight gradient: a GEMM-shaped reduction; FFT-capable
                // mechanisms also have an FFT BwdFilter with forward-like
                // cost, so take the better of the two.
                let mut t_w = self.sim(&bwd::weight_grad_gemm(&shape))?;
                if matches!(
                    mech,
                    Mechanism::Opt
                        | Mechanism::CudnnBest
                        | Mechanism::CudnnFft
                        | Mechanism::CudnnFftTiling
                ) {
                    t_w = t_w.min(self.conv_time(&shape, mech, layout)?.0);
                }
                Ok(t_data + t_w)
            }
            LayerSpec::Pool { .. } => {
                let shape = layer
                    .pool_shape()
                    .expect("invariant: matched LayerSpec::Pool, so pool_shape() is Some");
                self.sim(bwd::pool_backward_spec(&shape, layout).as_ref())
            }
            LayerSpec::ReLU => {
                self.sim(&bwd::elementwise_backward("relu", layer.input.len() as u64, 2))
            }
            LayerSpec::Lrn { size } => self.sim(&bwd::elementwise_backward(
                "lrn",
                layer.input.len() as u64,
                3 * *size as u64 + 10,
            )),
            LayerSpec::Fc { outputs } => {
                let inputs = layer.input.c * layer.input.h * layer.input.w;
                // dW = dY x X^T and dX = W^T x dY.
                let dw = gemm_kernel(*outputs, layer.input.n, inputs);
                let dx = gemm_kernel(inputs, *outputs, layer.input.n);
                let _ = mech;
                Ok(self.sim(&dw)? + if is_first { 0.0 } else { self.sim(&dx)? })
            }
            LayerSpec::Softmax => {
                self.sim(&bwd::elementwise_backward("softmax-xent", layer.input.len() as u64, 2))
            }
        }
    }

    /// Simulate a training step (forward + backward) — the configuration
    /// the paper's §IV.D "complete forward-backward profiling" measures.
    /// Transformation costs are charged twice (activations travel both
    /// directions through each layout boundary).
    pub fn simulate_network_training(
        &self,
        net: &Network,
        mech: Mechanism,
    ) -> Result<NetworkReport, SimError> {
        let mut report = self.simulate_network(net, mech)?;
        let forward_end = report.total_time();
        let layouts: Vec<Layout> = report
            .layers
            .iter()
            .map(|l| if l.layout == "CHWN" { Layout::CHWN } else { Layout::NCHW })
            .collect();
        // Prime the backward-pass simulations in parallel before the
        // sequential, trace-ordered accumulation below reads them as hits.
        if self.parallel_probes_enabled() {
            let layers = net.layers();
            trace::perf::add("engine.probe.fanout", layers.len() as u64);
            let fork = trace::fork();
            (0..layers.len()).into_par_iter().for_each(|i| {
                let _w = fork.attach(i);
                let _ = self.layer_backward_time(&layers[i], mech, layouts[i], i == 0).is_ok();
            });
            fork.merge();
        }
        {
            let _net_scope = trace::scope(trace::Scope::Network(net.name.clone()));
            let _bwd_scope = trace::scope(trace::Scope::Backward);
            for (i, (layer, &layout)) in net.layers().iter().zip(&layouts).enumerate() {
                let bwd = {
                    let _layer_scope = trace::scope(trace::Scope::Layer(layer.name.clone()));
                    self.layer_backward_time(layer, mech, layout, i == 0)?
                };
                let entry = &mut report.layers[i];
                entry.backward_time = bwd;
                entry.transform_before *= 2.0;
            }
        }
        // Backward timeline: gradients flow last layer to first, with the
        // doubled transformation's second half charged on the way back.
        let mut clock = forward_end;
        for entry in report.layers.iter().rev() {
            if entry.backward_time > 0.0 {
                let ts = clock;
                trace::record_span(|| trace::SpanEvent {
                    name: format!("{} (bwd)", entry.name),
                    track: trace::Track::Backward,
                    ts_us: ts * 1e6,
                    dur_us: entry.backward_time * 1e6,
                    args: vec![("layout".into(), entry.layout.clone().into())],
                });
                clock += entry.backward_time;
            }
            let bwd_transform = entry.transform_before / 2.0;
            if bwd_transform > 0.0 {
                let ts = clock;
                trace::record_span(|| trace::SpanEvent {
                    name: "transform (bwd)".to_string(),
                    track: trace::Track::Transforms,
                    ts_us: ts * 1e6,
                    dur_us: bwd_transform * 1e6,
                    args: vec![
                        ("layer".into(), entry.name.clone().into()),
                        ("phase".into(), "backward".into()),
                    ],
                });
                clock += bwd_transform;
            }
        }
        Ok(report)
    }

    /// Compile `net` under `mech` into a reusable [`Plan`]: layout
    /// assignment (heuristic or the profiling DP), per-layer implementation
    /// selection, and boundary-transformation costing. This is the
    /// expensive half of [`Engine::simulate_network`]; the plan replays
    /// through [`Engine::execute`] without touching the simulator again.
    /// Every compile bumps the `engine.plan.compile` perf counter, so plan
    /// caches can prove they never re-run the DP for a cached entry.
    pub fn plan(&self, net: &Network, mech: Mechanism) -> Result<Plan, SimError> {
        let _net_scope = trace::scope(trace::Scope::Network(net.name.clone()));
        trace::perf::incr("engine.plan.compile");
        let layouts: Vec<Layout> = match mech.fixed_layout() {
            Some(l) => vec![l; net.layers().len()],
            None => self.opt_layouts(net)?,
        };
        // Prime the per-layer simulations in parallel (all hits afterwards;
        // a no-op when probing is off or everything is already cached).
        if self.parallel_probes_enabled() {
            let layers = net.layers();
            trace::perf::add("engine.probe.fanout", layers.len() as u64);
            let fork = trace::fork();
            (0..layers.len()).into_par_iter().for_each(|i| {
                let _w = fork.attach(i);
                let _ = self.layer_time(&layers[i], mech, layouts[i]).is_ok();
            });
            fork.merge();
        }
        let mut planned = Vec::with_capacity(net.layers().len());
        let mut prev_layout: Option<Layout> = None;
        for (layer, &layout) in net.layers().iter().zip(&layouts) {
            let _layer_scope = trace::scope(trace::Scope::Layer(layer.name.clone()));
            let transform_before = match prev_layout {
                Some(p) if layer.layout_sensitive() && mech == Mechanism::Opt => {
                    self.transform_time(layer.input, p, layout)?
                }
                _ => 0.0,
            };
            let (time, impl_name, fell_back) = self.layer_time(layer, mech, layout)?;
            planned.push(PlannedLayer {
                name: layer.name.clone(),
                layout,
                layout_sensitive: layer.layout_sensitive(),
                is_conv: matches!(layer.spec, LayerSpec::Conv { .. }),
                impl_name,
                time,
                transform_before,
                transform_from: if transform_before > 0.0 { prev_layout } else { None },
                fell_back,
            });
            if layer.layout_sensitive() {
                prev_layout = Some(layout);
            }
        }
        Ok(Plan { network: net.name.clone(), batch: net.input.n, mechanism: mech, layers: planned })
    }

    /// Compile a plan for the same architecture at batch size `n` — the
    /// serving path, where the optimal layouts are a function of the
    /// effective batch (`C < Ct || N >= Nt`), so each batch-size bucket
    /// compiles its own plan.
    pub fn plan_at(&self, net: &Network, mech: Mechanism, n: usize) -> Result<Plan, SimError> {
        let rebatched = net
            .with_batch(n)
            .map_err(|e| SimError::Unlaunchable(format!("cannot rebatch network: {e}")))?;
        self.plan(&rebatched, mech)
    }

    /// Replay a compiled [`Plan`] into a [`NetworkReport`], emitting the
    /// timeline trace spans. Pure bookkeeping: no simulation runs, so
    /// executing a plan twice is free and bit-identical.
    pub fn execute(&self, plan: &Plan) -> NetworkReport {
        let mut reports = Vec::with_capacity(plan.layers.len());
        // Simulated-time cursor driving the trace timeline: spans are
        // laid back-to-back, so per-track timestamps are monotonic and
        // non-overlapping by construction.
        let mut clock = 0.0f64;
        for pl in &plan.layers {
            // `transform_from` is Some whenever `transform_before > 0`
            // (set together at plan time); matching on it instead of
            // unwrapping keeps this path panic-free on a hand-built plan.
            if let (true, Some(from)) = (pl.transform_before > 0.0, pl.transform_from) {
                let ts = clock;
                trace::record_span(|| trace::SpanEvent {
                    name: format!("transform {}->{}", from.name(), pl.layout.name()),
                    track: trace::Track::Transforms,
                    ts_us: ts * 1e6,
                    dur_us: pl.transform_before * 1e6,
                    args: vec![("layer".into(), pl.name.clone().into())],
                });
            }
            clock += pl.transform_before;
            {
                let ts = clock;
                let imp = pl.impl_name.clone();
                trace::record_span(|| trace::SpanEvent {
                    name: pl.name.clone(),
                    track: trace::Track::Layers,
                    ts_us: ts * 1e6,
                    dur_us: pl.time * 1e6,
                    args: vec![
                        ("impl".into(), imp.into()),
                        ("layout".into(), pl.layout.name().into()),
                        ("fell_back".into(), pl.fell_back.to_string().into()),
                    ],
                });
            }
            clock += pl.time;
            reports.push(LayerReport {
                name: pl.name.clone(),
                layout: if pl.layout_sensitive { pl.layout.name() } else { "-".to_string() },
                impl_name: pl.impl_name.clone(),
                time: pl.time,
                backward_time: 0.0,
                transform_before: pl.transform_before,
                fell_back: pl.fell_back,
            });
        }
        NetworkReport {
            network: plan.network.clone(),
            mechanism: plan.mechanism.label().to_string(),
            layers: reports,
        }
    }

    /// Execute one *launch attempt* of a plan under a fault plan: the
    /// fault-aware counterpart of [`Engine::execute`], returning a
    /// [`LaunchAttempt`] rather than a `Result` so partial progress — time
    /// elapsed before a mid-plan fault, throttles absorbed along the way —
    /// survives a failing attempt (a retry policy charges that time; a
    /// `Result` would throw it away).
    ///
    /// Each planned layer rolls the fault plan once at
    /// ([`Plan::launch_key`], `launch_index`); the caller supplies the
    /// index from its launch-attempt counter so retries roll fresh.
    /// Throttles stretch the layer (and its preceding transform) by the
    /// fault's factor and execution continues; launch failures and OOM
    /// stop the attempt at that layer with the elapsed time kept.
    ///
    /// With no plan — or a [`FaultPlan::is_noop`] plan — the attempt
    /// returns exactly [`Plan::total_time`], bit for bit: zero-fault
    /// injection is indistinguishable from no injection.
    pub fn execute_attempt(
        &self,
        plan: &Plan,
        faults: Option<&FaultPlan>,
        launch_index: u64,
    ) -> LaunchAttempt {
        let Some(fp) = faults.filter(|p| !p.is_noop()) else {
            return LaunchAttempt { time: plan.total_time(), throttled: 0, error: None };
        };
        let mut time = 0.0f64;
        let mut throttled = 0u32;
        for pl in &plan.layers {
            match fp.roll(&plan.launch_key(pl), launch_index) {
                None => time += pl.transform_before + pl.time,
                Some(Fault::Throttled { factor }) => {
                    throttled += 1;
                    time += (pl.transform_before + pl.time) * factor;
                }
                Some(fault @ Fault::LaunchFailed) => {
                    return LaunchAttempt {
                        time,
                        throttled,
                        error: Some(EngineError::Transient {
                            layer: pl.name.clone(),
                            launch: launch_index,
                            fault,
                        }),
                    };
                }
                Some(Fault::DeviceOom) => {
                    return LaunchAttempt {
                        time,
                        throttled,
                        error: Some(EngineError::ExecOom {
                            layer: pl.name.clone(),
                            launch: launch_index,
                        }),
                    };
                }
            }
        }
        LaunchAttempt { time, throttled, error: None }
    }

    /// [`Engine::execute_attempt`] as a typed `Result`: the attempt's time
    /// on success, its [`EngineError`] on any injected failure. For
    /// callers that don't charge partial progress (tests, one-shot runs);
    /// composes with [`crate::error::with_retries`].
    pub fn try_execute(
        &self,
        plan: &Plan,
        faults: Option<&FaultPlan>,
        launch_index: u64,
    ) -> Result<f64, EngineError> {
        let att = self.execute_attempt(plan, faults, launch_index);
        match att.error {
            None => Ok(att.time),
            Some(e) => Err(e),
        }
    }

    /// Simulate a whole network under a mechanism, producing the per-layer
    /// report (the Fig 14/15 generator). Thin wrapper over
    /// [`Engine::plan`] + [`Engine::execute`]; callers that re-run the
    /// same network should plan once and execute the plan instead.
    pub fn simulate_network(
        &self,
        net: &Network,
        mech: Mechanism,
    ) -> Result<NetworkReport, SimError> {
        Ok(self.execute(&self.plan(net, mech)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkBuilder;

    fn engine() -> Engine {
        Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
    }

    fn lenet_like() -> Network {
        NetworkBuilder::new("lenet-like", Shape::new(128, 1, 28, 28))
            .conv("CV1", 16, 5, 1, 2)
            .max_pool("PL1", 2, 2)
            .conv("CV2", 16, 5, 1, 2)
            .max_pool("PL2", 2, 2)
            .fc("fc", 10)
            .softmax("prob")
            .build()
            .unwrap()
    }

    #[test]
    fn every_mechanism_simulates_lenet() {
        let e = engine();
        let net = lenet_like();
        for m in Mechanism::ALL {
            let r = e.simulate_network(&net, m).unwrap();
            assert_eq!(r.layers.len(), 6, "{m}");
            assert!(r.total_time() > 0.0, "{m}");
        }
    }

    #[test]
    fn opt_beats_fixed_layout_mechanisms_on_lenet() {
        // Fig 14: for LeNet, Opt >> cuDNN (5.61x over cuDNN-MM) and at
        // least matches cuda-convnet.
        let e = engine();
        let net = lenet_like();
        let opt = e.simulate_network(&net, Mechanism::Opt).unwrap().total_time();
        let mm = e.simulate_network(&net, Mechanism::CudnnMm).unwrap().total_time();
        let convnet = e.simulate_network(&net, Mechanism::CudaConvnet).unwrap().total_time();
        assert!(opt < mm, "opt {:.3}ms vs mm {:.3}ms", opt * 1e3, mm * 1e3);
        assert!(opt <= convnet * 1.001, "opt {:.3}ms vs convnet {:.3}ms", opt * 1e3, convnet * 1e3);
    }

    #[test]
    fn fixed_layout_mechanisms_have_no_transforms() {
        let e = engine();
        let net = lenet_like();
        for m in [Mechanism::CudaConvnet, Mechanism::CudnnMm, Mechanism::Caffe] {
            let r = e.simulate_network(&net, m).unwrap();
            assert_eq!(r.transform_count(), 0, "{m}");
        }
    }

    #[test]
    fn opt_layouts_match_heuristic_on_uniform_networks() {
        // LeNet: all convs have N=128 -> everything CHWN, zero transforms.
        let e = engine();
        let r = e.simulate_network(&lenet_like(), Mechanism::Opt).unwrap();
        assert_eq!(r.transform_count(), 0);
        for l in &r.layers {
            if l.layout != "-" {
                assert_eq!(l.layout, "CHWN", "{}", l.name);
            }
        }
    }

    #[test]
    fn mixed_network_inserts_transforms() {
        // An AlexNet-like tail: N=64 with large C prefers NCHW for convs,
        // CHWN for pooling only if the transforms pay for themselves.
        let e = engine();
        let net = NetworkBuilder::new("mixed", Shape::new(64, 3, 64, 64))
            .conv("CV1", 96, 5, 2, 0)
            .max_pool("PL1", 3, 2)
            .conv("CV2", 256, 3, 1, 1)
            .max_pool("PL2", 3, 2)
            .fc("fc", 100)
            .softmax("prob")
            .build()
            .unwrap();
        let r = e.simulate_network(&net, Mechanism::Opt).unwrap();
        // CV1 has C=3 < Ct: CHWN. CV2 has C=96, N=64: NCHW. At least one
        // boundary must transform.
        assert_eq!(r.layer("CV1").unwrap().layout, "CHWN");
        assert_eq!(r.layer("CV2").unwrap().layout, "NCHW");
        assert!(r.transform_count() >= 1);
        // And the DP must still beat both fixed-layout baselines.
        let convnet = e.simulate_network(&net, Mechanism::CudaConvnet).unwrap().total_time();
        let mm = e.simulate_network(&net, Mechanism::CudnnMm).unwrap().total_time();
        assert!(r.total_time() <= convnet.min(mm) * 1.001);
    }

    #[test]
    fn naive_transform_quality_is_slower() {
        let e = engine();
        let naive = Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
            .with_transform_quality(TransformQuality::Naive);
        let shape = Shape::new(128, 16, 14, 14);
        let fast = e.transform_time(shape, Layout::CHWN, Layout::NCHW).unwrap();
        let slow = naive.transform_time(shape, Layout::CHWN, Layout::NCHW).unwrap();
        assert!(slow > fast, "naive {slow:.2e} vs opt {fast:.2e}");
        assert_eq!(e.transform_time(shape, Layout::NCHW, Layout::NCHW).unwrap(), 0.0);
    }

    #[test]
    fn fft_mechanism_falls_back_on_strided_conv() {
        // ZFNet CV5 (stride 2): cuDNN-FFT must fall back to MM.
        let e = engine();
        let net = NetworkBuilder::new("zf-head", Shape::new(64, 3, 224, 224))
            .conv("CV5", 96, 3, 2, 0)
            .build()
            .unwrap();
        let r = e.simulate_network(&net, Mechanism::CudnnFft).unwrap();
        assert!(r.layers[0].fell_back);
        assert_eq!(r.layers[0].impl_name, "mm");
    }

    #[test]
    fn plan_then_execute_matches_simulate_network() {
        let e = engine();
        let net = lenet_like();
        for m in [Mechanism::Opt, Mechanism::CudnnMm, Mechanism::CudaConvnet] {
            let direct = e.simulate_network(&net, m).unwrap();
            let plan = e.plan(&net, m).unwrap();
            assert_eq!(plan.batch, 128);
            assert!((plan.total_time() - direct.total_time()).abs() == 0.0, "{m}");
            let replayed = e.execute(&plan);
            assert_eq!(replayed.layers.len(), direct.layers.len());
            for (a, b) in direct.layers.iter().zip(&replayed.layers) {
                assert_eq!(a.time, b.time, "{m} {}", a.name);
                assert_eq!(a.layout, b.layout, "{m} {}", a.name);
                assert_eq!(a.impl_name, b.impl_name, "{m} {}", a.name);
                assert_eq!(a.transform_before, b.transform_before, "{m} {}", a.name);
            }
        }
    }

    #[test]
    fn plan_at_rebatches_and_layouts_track_n() {
        // The heuristic (Ct=32, Nt=128): C=96 convs flip NCHW -> CHWN when
        // the plan's batch size crosses Nt.
        let e = Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
            .with_layout_policy(LayoutPolicy::Heuristic);
        let net = NetworkBuilder::new("bucketed", Shape::new(1, 96, 28, 28))
            .conv("CV", 128, 3, 1, 1)
            .build()
            .unwrap();
        let small = e.plan_at(&net, Mechanism::Opt, 32).unwrap();
        let large = e.plan_at(&net, Mechanism::Opt, 256).unwrap();
        assert_eq!(small.batch, 32);
        assert_eq!(large.batch, 256);
        assert_eq!(small.layout_of("CV"), Some(Layout::NCHW));
        assert_eq!(large.layout_of("CV"), Some(Layout::CHWN));
        assert_eq!(small.conv_layout_signature(), "NCHW");
        assert_eq!(large.conv_layout_signature(), "CHWN");
    }

    #[test]
    fn heuristic_policy_matches_rule_exactly() {
        let e = Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper())
            .with_layout_policy(LayoutPolicy::Heuristic);
        let net = NetworkBuilder::new("n", Shape::new(64, 128, 28, 28))
            .conv("CV", 256, 3, 1, 1)
            .max_pool("PL", 3, 2)
            .build()
            .unwrap();
        let r = e.simulate_network(&net, Mechanism::Opt).unwrap();
        assert_eq!(r.layer("CV").unwrap().layout, "NCHW"); // C=128 >= 32, N=64 < 128
        assert_eq!(r.layer("PL").unwrap().layout, "CHWN"); // pooling rule
    }
}
