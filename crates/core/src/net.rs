//! Network descriptions: an ordered stack of layers with resolved shapes,
//! the analogue of a Caffe prototxt (§IV.D: "each CNN has a configuration
//! file that defines a network structure by specifying a stack of various
//! layers").

use crate::layer::{Layer, LayerSpec};
use memcnn_kernels::pool::PoolOp;
use memcnn_tensor::Shape;
use std::fmt;

/// Errors from network construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// A layer cannot be applied to the running shape.
    BadShape(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadShape(m) => write!(f, "bad layer shape: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A feed-forward CNN: named layers with resolved shapes.
#[derive(Clone, Debug)]
pub struct Network {
    /// Network name (e.g. `"AlexNet"`).
    pub name: String,
    /// Shape of the input batch.
    pub input: Shape,
    layers: Vec<Layer>,
}

impl Network {
    /// The layers in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Output shape of the whole network.
    pub fn output(&self) -> Shape {
        self.layers.last().map(|l| l.output).unwrap_or(self.input)
    }

    /// The same architecture at a different batch size: every layer spec is
    /// replayed through the builder with `n` images, re-resolving shapes.
    /// Spatial dims are independent of `N`, so any network that builds at
    /// one batch size builds at all of them; the `Result` only guards
    /// against `n == 0` style misuse.
    pub fn with_batch(&self, n: usize) -> Result<Network, NetError> {
        if n == 0 {
            return Err(NetError::BadShape(format!("{}: batch size must be >= 1", self.name)));
        }
        let mut b = NetworkBuilder::new(
            self.name.clone(),
            Shape::new(n, self.input.c, self.input.h, self.input.w),
        );
        for l in &self.layers {
            b = b.push(&l.name, l.spec.clone());
        }
        b.build()
    }
}

/// Builder that tracks the running shape and resolves each layer.
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    name: String,
    input: Shape,
    current: Shape,
    layers: Vec<Layer>,
    error: Option<NetError>,
}

impl NetworkBuilder {
    /// Start a network taking `input`-shaped batches.
    pub fn new(name: impl Into<String>, input: Shape) -> NetworkBuilder {
        NetworkBuilder { name: name.into(), input, current: input, layers: Vec::new(), error: None }
    }

    fn push(mut self, name: &str, spec: LayerSpec) -> Self {
        if self.error.is_some() {
            return self;
        }
        let input = self.current;
        let output = match &spec {
            LayerSpec::Conv { co, f, stride, pad } => {
                let padded = input.h + 2 * pad;
                if *f > padded || *f > input.w + 2 * pad || *stride == 0 {
                    self.error = Some(NetError::BadShape(format!(
                        "{name}: filter {f} (stride {stride}) does not fit {input}"
                    )));
                    return self;
                }
                Shape::new(
                    input.n,
                    *co,
                    (input.h + 2 * pad - f) / stride + 1,
                    (input.w + 2 * pad - f) / stride + 1,
                )
            }
            LayerSpec::Pool { window, stride, .. } => {
                if *window > input.h || *window > input.w || *stride == 0 {
                    self.error = Some(NetError::BadShape(format!(
                        "{name}: window {window} does not fit {input}"
                    )));
                    return self;
                }
                // Ceil-mode output sizing, matching the evaluated
                // frameworks (see `Layer::pool_shape`).
                Shape::new(
                    input.n,
                    input.c,
                    (input.h - window).div_ceil(*stride) + 1,
                    (input.w - window).div_ceil(*stride) + 1,
                )
            }
            LayerSpec::Lrn { .. } | LayerSpec::ReLU => input,
            LayerSpec::Fc { outputs } => Shape::new(input.n, *outputs, 1, 1),
            LayerSpec::Softmax => {
                if input.h != 1 || input.w != 1 {
                    self.error = Some(NetError::BadShape(format!(
                        "{name}: softmax needs flat input (C x 1 x 1), got {input}"
                    )));
                    return self;
                }
                input
            }
        };
        self.layers.push(Layer { name: name.to_string(), spec, input, output });
        self.current = output;
        self
    }

    /// Add a convolution.
    pub fn conv(self, name: &str, co: usize, f: usize, stride: usize, pad: usize) -> Self {
        self.push(name, LayerSpec::Conv { co, f, stride, pad })
    }

    /// Add a max-pooling layer.
    pub fn max_pool(self, name: &str, window: usize, stride: usize) -> Self {
        self.push(name, LayerSpec::Pool { window, stride, op: PoolOp::Max })
    }

    /// Add an average-pooling layer.
    pub fn avg_pool(self, name: &str, window: usize, stride: usize) -> Self {
        self.push(name, LayerSpec::Pool { window, stride, op: PoolOp::Avg })
    }

    /// Add a local response normalization layer.
    pub fn lrn(self, name: &str, size: usize) -> Self {
        self.push(name, LayerSpec::Lrn { size })
    }

    /// Add a ReLU activation.
    pub fn relu(self, name: &str) -> Self {
        self.push(name, LayerSpec::ReLU)
    }

    /// Add a fully-connected layer.
    pub fn fc(self, name: &str, outputs: usize) -> Self {
        self.push(name, LayerSpec::Fc { outputs })
    }

    /// Add the final softmax classifier.
    pub fn softmax(self, name: &str) -> Self {
        self.push(name, LayerSpec::Softmax)
    }

    /// Finish, returning the network or the first shape error.
    pub fn build(self) -> Result<Network, NetError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(Network { name: self.name, input: self.input, layers: self.layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_shapes_resolve() {
        // LeNet per Table 1: CONV1 28->24, POOL1 24->12 ... with the paper's
        // layer dims (CONV2 at 14 implies pooling first in their variant;
        // here we just verify the builder math).
        let net = NetworkBuilder::new("lenet-ish", Shape::new(128, 1, 28, 28))
            .conv("CV1", 16, 5, 1, 2)
            .max_pool("PL1", 2, 2)
            .conv("CV2", 16, 5, 1, 2)
            .max_pool("PL2", 2, 2)
            .fc("fc", 10)
            .softmax("prob")
            .build()
            .unwrap();
        assert_eq!(net.layers().len(), 6);
        assert_eq!(net.layers()[0].output, Shape::new(128, 16, 28, 28));
        assert_eq!(net.layers()[1].output, Shape::new(128, 16, 14, 14));
        assert_eq!(net.layers()[3].output, Shape::new(128, 16, 7, 7));
        assert_eq!(net.output(), Shape::new(128, 10, 1, 1));
    }

    #[test]
    fn oversized_filter_is_rejected() {
        let err = NetworkBuilder::new("bad", Shape::new(1, 1, 4, 4))
            .conv("CV1", 8, 5, 1, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, NetError::BadShape(_)));
    }

    #[test]
    fn softmax_requires_flat_input() {
        let err =
            NetworkBuilder::new("bad", Shape::new(1, 3, 8, 8)).softmax("prob").build().unwrap_err();
        assert!(matches!(err, NetError::BadShape(_)));
    }

    #[test]
    fn error_is_sticky_through_later_layers() {
        let err = NetworkBuilder::new("bad", Shape::new(1, 1, 4, 4))
            .conv("CV1", 8, 5, 1, 0)
            .relu("r")
            .fc("fc", 10)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("CV1"));
    }

    #[test]
    fn with_batch_rescales_every_layer_shape() {
        let net = NetworkBuilder::new("rebatch", Shape::new(128, 3, 24, 24))
            .conv("CV", 64, 5, 1, 2)
            .max_pool("PL", 3, 2)
            .fc("fc", 10)
            .softmax("prob")
            .build()
            .unwrap();
        let small = net.with_batch(16).unwrap();
        assert_eq!(small.input, Shape::new(16, 3, 24, 24));
        assert_eq!(small.layers().len(), net.layers().len());
        for (a, b) in net.layers().iter().zip(small.layers()) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(b.input.n, 16, "{}", b.name);
            // Only N changes: C/H/W are batch-independent.
            assert_eq!((a.input.c, a.input.h, a.input.w), (b.input.c, b.input.h, b.input.w));
        }
        assert!(net.with_batch(0).is_err());
    }

    #[test]
    fn empty_network_output_is_input() {
        let net = NetworkBuilder::new("empty", Shape::new(2, 3, 4, 4)).build().unwrap();
        assert_eq!(net.output(), net.input);
    }
}
