//! The data-layout selection heuristic — §IV.A.
//!
//! "For a given convolutional configuration, (1) if the value of C is
//! smaller than a threshold Ct, CHWN will be preferred ... (2) if N is
//! greater than or equal to a threshold Nt, the CHWN data layout is still
//! the better choice ... For the rest of the configurations, NCHW is the
//! preferred choice. ... the thresholds (Ct and Nt) can vary [per GPU] ...
//! for each GPU architecture, we only need one-time profiling to determine
//! the thresholds."
//!
//! [`derive_thresholds`] performs that one-time profiling on the simulated
//! device: the same N- and C-sweeps as the paper's Fig 4.

use memcnn_gpusim::{simulate, DeviceConfig, SimError, SimOptions};
use memcnn_kernels::conv::direct_chwn::DirectConvChwn;
use memcnn_kernels::conv::fft_nchw::{FftConvMode, FftConvNchw};
use memcnn_kernels::conv::mm_nchw::MmConvNchw;
use memcnn_kernels::ConvShape;
use memcnn_tensor::Layout;
use serde::Serialize;

/// Per-device layout thresholds `(Ct, Nt)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct LayoutThresholds {
    /// Channel threshold: `C < Ct` prefers `CHWN`.
    pub ct: usize,
    /// Batch threshold: `N >= Nt` prefers `CHWN`.
    pub nt: usize,
}

impl LayoutThresholds {
    /// The paper's Titan Black values (§IV.A).
    pub fn titan_black_paper() -> LayoutThresholds {
        LayoutThresholds { ct: 32, nt: 128 }
    }

    /// The paper's Titan X values (§IV.A).
    pub fn titan_x_paper() -> LayoutThresholds {
        LayoutThresholds { ct: 128, nt: 64 }
    }
}

/// The §IV.A selection rule.
///
/// ```
/// use memcnn_core::{choose_layout, LayoutThresholds};
/// use memcnn_kernels::ConvShape;
/// use memcnn_tensor::Layout;
///
/// let th = LayoutThresholds::titan_black_paper(); // (Ct, Nt) = (32, 128)
/// // LeNet CONV1: C = 1 < Ct -> CHWN.
/// assert_eq!(choose_layout(&ConvShape::table1(128, 16, 28, 5, 1, 1), &th), Layout::CHWN);
/// // ZFNet CONV7: C = 256, N = 64 -> NCHW.
/// assert_eq!(choose_layout(&ConvShape::table1(64, 384, 13, 3, 256, 1), &th), Layout::NCHW);
/// ```
pub fn choose_layout(shape: &ConvShape, th: &LayoutThresholds) -> Layout {
    if shape.ci < th.ct || shape.n >= th.nt {
        Layout::CHWN
    } else {
        Layout::NCHW
    }
}

/// Best simulated time for a convolution in the `CHWN` layout (direct
/// convolution — the preferred implementation for that layout, §IV.D).
pub fn time_chwn(
    device: &DeviceConfig,
    shape: &ConvShape,
    opts: &SimOptions,
) -> Result<f64, SimError> {
    Ok(simulate(device, &DirectConvChwn::new(*shape), opts)?.time())
}

/// Simulated time for a convolution in the `NCHW` layout under cuDNN's
/// default matrix-multiplication method — the comparison the paper's Fig 4
/// sweeps and threshold profiling use ("Here we use cuDNN to denote its
/// default MM method").
pub fn time_nchw_mm(
    device: &DeviceConfig,
    shape: &ConvShape,
    opts: &SimOptions,
) -> Result<f64, SimError> {
    Ok(MmConvNchw::new(*shape).simulate(device, opts)?.time())
}

/// Best simulated time for a convolution in the `NCHW` layout (the best of
/// MM, FFT and FFT-tiling, as cuDNN-Best would pick).
pub fn time_nchw(
    device: &DeviceConfig,
    shape: &ConvShape,
    opts: &SimOptions,
) -> Result<f64, SimError> {
    let mut best = time_nchw_mm(device, shape, opts)?;
    for mode in [FftConvMode::Full, FftConvMode::Tiled] {
        if let Ok(p) = FftConvNchw::new(*shape, mode) {
            if let Ok(r) = p.simulate(device, opts) {
                best = best.min(r.time());
            }
        }
    }
    Ok(best)
}

/// The profiling shape family used for threshold derivation: CONV7 from
/// Table 1 (the layer the paper's Fig 4 sweeps), with `N` and `C` varied.
fn probe_shape(n: usize, c: usize) -> ConvShape {
    ConvShape::table1(n, 384, 13, 3, c, 1)
}

/// One-time profiling: sweep `C` (at moderate `N`) to find `Ct`, and `N`
/// (at large `C`) to find `Nt`, exactly as Fig 4 does on hardware.
pub fn derive_thresholds(
    device: &DeviceConfig,
    opts: &SimOptions,
) -> Result<LayoutThresholds, SimError> {
    // Ct: smallest C at which NCHW wins with N fixed at 64.
    let c_sweep = [16usize, 32, 64, 128, 256];
    let mut ct = *c_sweep.last().unwrap() * 2; // "never": CHWN always wins
    for &c in &c_sweep {
        let s = probe_shape(64, c);
        if time_nchw_mm(device, &s, opts)? < time_chwn(device, &s, opts)? {
            ct = c;
            break;
        }
    }
    // Nt: smallest N at which CHWN wins back with C fixed at 256.
    let n_sweep = [32usize, 64, 128, 256];
    let mut nt = *n_sweep.last().unwrap() * 2;
    for &n in &n_sweep {
        let s = probe_shape(n, 256);
        if time_chwn(device, &s, opts)? < time_nchw_mm(device, &s, opts)? {
            nt = n;
            break;
        }
    }
    Ok(LayoutThresholds { ct, nt })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_matches_paper_examples_on_titan_black() {
        let th = LayoutThresholds::titan_black_paper();
        // §VI.A: "For the layers including CONV1, CONV2, CONV3, and CONV4,
        // CHWN is the best layout as the value of N is 128."
        assert_eq!(choose_layout(&ConvShape::table1(128, 16, 28, 5, 1, 1), &th), Layout::CHWN);
        assert_eq!(choose_layout(&ConvShape::table1(128, 64, 12, 5, 64, 1), &th), Layout::CHWN);
        // "For the layers including CONV5 and CONV9, the number of input
        // feature channels is less than 16. Thus, CHWN is still the best."
        assert_eq!(choose_layout(&ConvShape::table1(64, 96, 224, 3, 3, 2), &th), Layout::CHWN);
        assert_eq!(choose_layout(&ConvShape::table1(32, 64, 224, 3, 3, 1), &th), Layout::CHWN);
        // "For the rest layers ... NCHW achieves higher performance":
        // CONV6-8, CONV10-12 (N in {32, 64}, C >= 96).
        for s in [
            ConvShape::table1(64, 256, 55, 5, 96, 2),
            ConvShape::table1(64, 384, 13, 3, 256, 1),
            ConvShape::table1(32, 256, 56, 3, 128, 1),
            ConvShape::table1(32, 512, 14, 3, 512, 1),
        ] {
            assert_eq!(choose_layout(&s, &th), Layout::NCHW, "{s}");
        }
    }

    #[test]
    fn titan_x_thresholds_flip_conv6() {
        // On Titan X (Ct=128): CONV6 (C=96 < 128) switches to CHWN.
        let s = ConvShape::table1(64, 256, 55, 5, 96, 2);
        assert_eq!(choose_layout(&s, &LayoutThresholds::titan_black_paper()), Layout::NCHW);
        assert_eq!(choose_layout(&s, &LayoutThresholds::titan_x_paper()), Layout::CHWN);
    }

    #[test]
    fn derived_thresholds_are_in_paper_range_on_titan_black() {
        let d = DeviceConfig::titan_black();
        let th = derive_thresholds(&d, &SimOptions::default()).unwrap();
        // The paper derives (32, 128); accept the derivation landing within
        // one sweep step.
        assert!(th.ct >= 16 && th.ct <= 64, "ct = {}", th.ct);
        assert!(th.nt >= 64 && th.nt <= 256, "nt = {}", th.nt);
    }
}

#[cfg(test)]
mod debug_sweeps {
    use super::*;

    #[test]
    #[ignore]
    fn print_fig4_sweeps() {
        let d = DeviceConfig::titan_black();
        let o = SimOptions::default();
        println!("-- Fig 4a: N sweep (CONV7, C=256) GFLOPS --");
        for n in [1usize, 3, 16, 32, 64, 128, 256, 384, 512] {
            let s = probe_shape(n, 256);
            let gf = |t: f64| s.flops() as f64 / t / 1e9;
            let tc = time_chwn(&d, &s, &o).unwrap();
            let tn = time_nchw_mm(&d, &s, &o).unwrap();
            println!("N={n:4}  chwn {:7.0}  nchw {:7.0}", gf(tc), gf(tn));
        }
        println!("-- Fig 4b: C sweep (CONV7, N=64) GFLOPS --");
        for c in [16usize, 32, 64, 128, 256] {
            let s = probe_shape(64, c);
            let gf = |t: f64| s.flops() as f64 / t / 1e9;
            let tc = time_chwn(&d, &s, &o).unwrap();
            let tn = time_nchw_mm(&d, &s, &o).unwrap();
            println!("C={c:4}  chwn {:7.0}  nchw {:7.0}", gf(tc), gf(tn));
        }
        let th = derive_thresholds(&d, &o).unwrap();
        println!("derived thresholds: Ct={} Nt={}", th.ct, th.nt);
    }
}
