//! Layer specifications: the vocabulary networks are described in.

use memcnn_kernels::pool::PoolOp;
use memcnn_kernels::{ConvShape, PoolShape, SoftmaxShape};
use memcnn_tensor::Shape;
use std::fmt;

/// Parameters of one network layer (shapes are attached at build time by
/// [`crate::net::Network`] from the running input shape).
#[derive(Clone, Debug, PartialEq)]
pub enum LayerSpec {
    /// Convolution with `co` filters of `f x f`, given stride and padding.
    Conv {
        /// Output feature maps.
        co: usize,
        /// Filter edge.
        f: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Pooling with a square window.
    Pool {
        /// Window edge.
        window: usize,
        /// Stride.
        stride: usize,
        /// Max or average.
        op: PoolOp,
    },
    /// Local response normalization across channels.
    Lrn {
        /// Window size (channels).
        size: usize,
    },
    /// Rectified linear activation.
    ReLU,
    /// Fully-connected layer with `outputs` neurons (flattens its input).
    Fc {
        /// Output neurons.
        outputs: usize,
    },
    /// Final classifier over `categories` (input must already be flat, i.e.
    /// `C = categories`, `H = W = 1`).
    Softmax,
}

/// A layer with its resolved input/output shapes.
#[derive(Clone, Debug)]
pub struct Layer {
    /// Display name, e.g. `"CV1"`, `"PL2"`, `"fc6"`.
    pub name: String,
    /// The specification.
    pub spec: LayerSpec,
    /// Resolved input shape.
    pub input: Shape,
    /// Resolved output shape.
    pub output: Shape,
}

impl Layer {
    /// The convolution shape, when this is a conv layer.
    pub fn conv_shape(&self) -> Option<ConvShape> {
        match self.spec {
            LayerSpec::Conv { co, f, stride, pad } => Some(ConvShape {
                n: self.input.n,
                ci: self.input.c,
                h: self.input.h,
                w: self.input.w,
                co,
                fh: f,
                fw: f,
                stride,
                pad,
            }),
            _ => None,
        }
    }

    /// The pooling shape, when this is a pooling layer.
    pub fn pool_shape(&self) -> Option<PoolShape> {
        match self.spec {
            LayerSpec::Pool { window, stride, .. } => Some(PoolShape {
                n: self.input.n,
                c: self.input.c,
                h: self.input.h,
                w: self.input.w,
                window,
                stride,
                // The evaluated frameworks size pooling outputs in ceil
                // mode (cuda-convnet/Caffe), which Table 1's layer chains
                // (Cifar 24 -> 12, ZFNet 110 -> 55) rely on.
                ceil_mode: true,
            }),
            _ => None,
        }
    }

    /// The softmax shape, when this is a classifier layer.
    pub fn softmax_shape(&self) -> Option<SoftmaxShape> {
        match self.spec {
            LayerSpec::Softmax => Some(SoftmaxShape::new(self.input.n, self.input.c)),
            _ => None,
        }
    }

    /// Whether the layer is sensitive to the 4D data layout. FC flattens
    /// its input and softmax works on a 2D matrix, so they end the
    /// layout-constrained region of a network.
    pub fn layout_sensitive(&self) -> bool {
        !matches!(self.spec, LayerSpec::Fc { .. } | LayerSpec::Softmax)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:?} {} -> {}", self.name, self.spec, self.input, self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_resolution() {
        let l = Layer {
            name: "CV1".into(),
            spec: LayerSpec::Conv { co: 16, f: 5, stride: 1, pad: 0 },
            input: Shape::new(128, 1, 28, 28),
            output: Shape::new(128, 16, 24, 24),
        };
        let cs = l.conv_shape().unwrap();
        assert_eq!(cs.co, 16);
        assert_eq!(cs.ci, 1);
        assert_eq!(cs.out_h(), 24);
        assert!(l.pool_shape().is_none());
        assert!(l.layout_sensitive());
    }

    #[test]
    fn softmax_is_layout_insensitive() {
        let l = Layer {
            name: "prob".into(),
            spec: LayerSpec::Softmax,
            input: Shape::new(128, 10, 1, 1),
            output: Shape::new(128, 10, 1, 1),
        };
        assert!(!l.layout_sensitive());
        assert_eq!(l.softmax_shape().unwrap(), SoftmaxShape::new(128, 10));
    }
}
