//! A prototxt-like network description format.
//!
//! §IV.D: "In the deep learning frameworks such as Caffe or Cuda-convnet,
//! each CNN has a configuration file that defines a network structure by
//! specifying a stack of various layers." This module provides that
//! configuration-file path: a small line-oriented format parsed into a
//! [`Network`].
//!
//! ```text
//! # comment
//! name: LeNet
//! input: 128 1 28 28          # N C H W
//! conv CV1 co=16 f=5 stride=1 pad=2
//! relu relu1
//! pool PL1 window=2 stride=2 op=max
//! conv CV2 co=16 f=5 stride=1 pad=2
//! pool PL2 window=2 stride=2 op=max
//! fc ip1 outputs=128
//! fc ip2 outputs=10
//! softmax prob
//! lrn norm1 size=5            # also supported
//! ```

use crate::net::{NetError, Network, NetworkBuilder};
use memcnn_tensor::Shape;
use std::collections::HashMap;
use std::fmt;

/// Errors from parsing a network description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed line with its 1-based line number.
    Syntax(usize, String),
    /// Header (`name:`/`input:`) missing or misplaced.
    Header(String),
    /// Shape-inference failure from the builder.
    Net(NetError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax(line, msg) => write!(f, "line {line}: {msg}"),
            ParseError::Header(msg) => write!(f, "header: {msg}"),
            ParseError::Net(e) => write!(f, "network: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<NetError> for ParseError {
    fn from(e: NetError) -> Self {
        ParseError::Net(e)
    }
}

fn parse_args(line_no: usize, parts: &[&str]) -> Result<HashMap<String, String>, ParseError> {
    let mut map = HashMap::new();
    for p in parts {
        let (k, v) = p
            .split_once('=')
            .ok_or_else(|| ParseError::Syntax(line_no, format!("expected key=value, got {p:?}")))?;
        map.insert(k.to_string(), v.to_string());
    }
    Ok(map)
}

fn req_usize(
    line_no: usize,
    args: &HashMap<String, String>,
    key: &str,
) -> Result<usize, ParseError> {
    args.get(key)
        .ok_or_else(|| ParseError::Syntax(line_no, format!("missing {key}=")))?
        .parse()
        .map_err(|_| ParseError::Syntax(line_no, format!("{key} must be a number")))
}

fn opt_usize(
    line_no: usize,
    args: &HashMap<String, String>,
    key: &str,
    default: usize,
) -> Result<usize, ParseError> {
    match args.get(key) {
        None => Ok(default),
        Some(v) => {
            v.parse().map_err(|_| ParseError::Syntax(line_no, format!("{key} must be a number")))
        }
    }
}

/// Parse a network description (see module docs for the format).
///
/// ```
/// let net = memcnn_core::parse_network("
///     name: tiny
///     input: 32 3 24 24
///     conv c1 co=16 f=3 pad=1
///     relu r1
///     pool p1 window=2
///     fc out outputs=10
///     softmax prob
/// ").unwrap();
/// assert_eq!(net.layers().len(), 5);
/// assert_eq!(net.output(), memcnn_tensor::Shape::new(32, 10, 1, 1));
/// ```
pub fn parse_network(text: &str) -> Result<Network, ParseError> {
    let mut name: Option<String> = None;
    let mut builder: Option<NetworkBuilder> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("name:") {
            name = Some(rest.trim().to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("input:") {
            let dims: Vec<usize> = rest
                .split_whitespace()
                .map(|d| {
                    d.parse().map_err(|_| {
                        ParseError::Syntax(line_no, format!("bad input dimension {d:?}"))
                    })
                })
                .collect::<Result<_, _>>()?;
            let [n, c, h, w] = dims.as_slice() else {
                return Err(ParseError::Syntax(line_no, "input: wants N C H W".into()));
            };
            let net_name = name
                .clone()
                .ok_or_else(|| ParseError::Header("name: must precede input:".into()))?;
            builder = Some(NetworkBuilder::new(net_name, Shape::new(*n, *c, *h, *w)));
            continue;
        }
        let b = builder
            .take()
            .ok_or_else(|| ParseError::Header("input: must precede layers".into()))?;
        let mut parts = line.split_whitespace();
        let kind = parts.next().expect("non-empty line");
        let lname =
            parts.next().ok_or_else(|| ParseError::Syntax(line_no, "layer needs a name".into()))?;
        let rest: Vec<&str> = parts.collect();
        let args = parse_args(line_no, &rest)?;
        builder = Some(match kind {
            "conv" => b.conv(
                lname,
                req_usize(line_no, &args, "co")?,
                req_usize(line_no, &args, "f")?,
                opt_usize(line_no, &args, "stride", 1)?,
                opt_usize(line_no, &args, "pad", 0)?,
            ),
            "pool" => {
                let window = req_usize(line_no, &args, "window")?;
                let stride = opt_usize(line_no, &args, "stride", window)?;
                match args.get("op").map(String::as_str).unwrap_or("max") {
                    "max" => b.max_pool(lname, window, stride),
                    "avg" => b.avg_pool(lname, window, stride),
                    other => {
                        return Err(ParseError::Syntax(
                            line_no,
                            format!("op must be max or avg, got {other:?}"),
                        ))
                    }
                }
            }
            "relu" => b.relu(lname),
            "lrn" => b.lrn(lname, opt_usize(line_no, &args, "size", 5)?),
            "fc" => b.fc(lname, req_usize(line_no, &args, "outputs")?),
            "softmax" => b.softmax(lname),
            other => {
                return Err(ParseError::Syntax(line_no, format!("unknown layer kind {other:?}")))
            }
        });
    }
    builder
        .ok_or_else(|| ParseError::Header("no input: line found".into()))?
        .build()
        .map_err(ParseError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerSpec;

    const LENET: &str = "
        # LeNet as a config file
        name: LeNet
        input: 128 1 28 28
        conv CV1 co=16 f=5 stride=1 pad=2
        relu relu1
        pool PL1 window=2 stride=2 op=max
        conv CV2 co=16 f=5 pad=2        # stride defaults to 1
        pool PL2 window=2               # stride defaults to window
        fc ip1 outputs=128
        fc ip2 outputs=10
        softmax prob
    ";

    #[test]
    fn parses_lenet() {
        let net = parse_network(LENET).unwrap();
        assert_eq!(net.name, "LeNet");
        assert_eq!(net.layers().len(), 8);
        assert_eq!(net.output(), Shape::new(128, 10, 1, 1));
        assert!(matches!(
            net.layers()[0].spec,
            LayerSpec::Conv { co: 16, f: 5, stride: 1, pad: 2 }
        ));
        assert!(matches!(net.layers()[2].spec, LayerSpec::Pool { window: 2, stride: 2, .. }));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let net =
            parse_network("name: t\n\n# only a conv\ninput: 1 1 8 8\nconv c co=4 f=3\n").unwrap();
        assert_eq!(net.layers().len(), 1);
    }

    #[test]
    fn avg_pool_and_lrn() {
        let net = parse_network("name: t\ninput: 2 4 8 8\nlrn n1 size=3\npool p window=2 op=avg\n")
            .unwrap();
        assert!(matches!(net.layers()[0].spec, LayerSpec::Lrn { size: 3 }));
        assert!(matches!(
            net.layers()[1].spec,
            LayerSpec::Pool { op: memcnn_kernels::pool::PoolOp::Avg, .. }
        ));
    }

    #[test]
    fn error_cases_carry_line_numbers() {
        let e = parse_network("name: t\ninput: 1 1 8 8\nconv c f=3\n").unwrap_err();
        assert!(matches!(e, ParseError::Syntax(3, _)), "{e}");
        let e = parse_network("name: t\ninput: 1 1 8\n").unwrap_err();
        assert!(matches!(e, ParseError::Syntax(2, _)));
        let e = parse_network("name: t\ninput: 1 1 8 8\nwarp w\n").unwrap_err();
        assert!(e.to_string().contains("unknown layer kind"));
        let e = parse_network("conv c co=1 f=1\n").unwrap_err();
        assert!(matches!(e, ParseError::Header(_)));
        let e = parse_network("input: 1 1 8 8\n").unwrap_err();
        assert!(matches!(e, ParseError::Header(_)));
    }

    #[test]
    fn shape_errors_surface_as_net_errors() {
        let e = parse_network("name: t\ninput: 1 1 4 4\nconv c co=4 f=9\n").unwrap_err();
        assert!(matches!(e, ParseError::Net(_)));
    }

    #[test]
    fn parsed_network_matches_builder_equivalent() {
        let parsed = parse_network(LENET).unwrap();
        let built = crate::net::NetworkBuilder::new("LeNet", Shape::new(128, 1, 28, 28))
            .conv("CV1", 16, 5, 1, 2)
            .relu("relu1")
            .max_pool("PL1", 2, 2)
            .conv("CV2", 16, 5, 1, 2)
            .max_pool("PL2", 2, 2)
            .fc("ip1", 128)
            .fc("ip2", 10)
            .softmax("prob")
            .build()
            .unwrap();
        for (a, b) in parsed.layers().iter().zip(built.layers()) {
            assert_eq!(a.spec, b.spec, "{}", a.name);
            assert_eq!(a.output, b.output);
        }
    }
}
