//! # memcnn-core — the SC'16 contribution layer
//!
//! The paper's actual proposals, built on the kernel and simulator
//! substrates:
//!
//! - [`heuristic`]: the `(Ct, Nt)` data-layout selection rule and its
//!   per-device derivation by one-time profiling (§IV.A).
//! - [`autotune`]: the hill-climbing search for pooling working-set
//!   expansion factors (§V.A).
//! - [`net`] / [`layer`]: Caffe-prototxt-like network descriptions with
//!   shape inference.
//! - [`library`]: the six evaluated mechanisms (cuda-convnet, Caffe, the
//!   cuDNN modes, and the paper's `Opt`).
//! - [`engine`]: whole-network simulation — per-layer implementation
//!   selection, automatic layout assignment (heuristic or
//!   profiling-refined dynamic program), and transformation insertion at
//!   layout boundaries (§IV.D).
//! - [`exec`]: functional execution with per-layer layouts, verifying that
//!   mixed-layout execution is value-identical to fixed-layout execution.

#![warn(missing_docs)]

pub mod autotune;
pub mod engine;
pub mod error;
pub mod exec;
pub mod heuristic;
pub mod layer;
pub mod library;
pub mod net;
pub mod parser;

pub use engine::{
    Engine, LaunchAttempt, LayerReport, LayoutPolicy, NetworkReport, Plan, PlannedLayer,
    TransformQuality,
};
pub use error::{with_retries, EngineError};
pub use heuristic::{choose_layout, derive_thresholds, LayoutThresholds};
pub use layer::{Layer, LayerSpec};
pub use library::Mechanism;
pub use net::{NetError, Network, NetworkBuilder};
pub use parser::{parse_network, ParseError};
