//! Hill-climbing auto-tuner for the pooling working-set expansion — §V.A.
//!
//! "To find the best working set expansion factors along both directions,
//! we design an auto-tuning process which aims to balance the register
//! pressure and data reuse with a fine-grain search. In order to converge
//! into the optimal version quickly, we apply a hill-climbing heuristic to
//! prune the search space. With an initial factor of 2, the expansion
//! factor continues to increase linearly if the performance improves.
//! Otherwise it stops."

use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};
use memcnn_kernels::pool::chwn::PoolChwn;
use memcnn_kernels::PoolShape;
use serde::Serialize;

/// Result of tuning one pooling layer.
#[derive(Clone, Debug, Serialize)]
pub struct PoolTuneResult {
    /// Chosen expansion along x.
    pub ux: usize,
    /// Chosen expansion along y.
    pub uy: usize,
    /// Simulated time of the chosen configuration (seconds).
    pub time: f64,
    /// Simulated time of the uncoarsened baseline.
    pub baseline_time: f64,
    /// Every `(ux, uy, time)` the search evaluated, in order.
    pub trace: Vec<(usize, usize, f64)>,
}

impl PoolTuneResult {
    /// Speedup over the uncoarsened kernel.
    pub fn speedup(&self) -> f64 {
        self.baseline_time / self.time
    }
}

/// Generic 1D hill climb: starting from `from`, step the value up while
/// `eval` keeps improving (smaller is better); returns the best value and
/// records evaluations.
fn climb(
    from: usize,
    max: usize,
    mut eval: impl FnMut(usize) -> Option<f64>,
    best_so_far: f64,
) -> (usize, f64) {
    let mut best = (from.saturating_sub(1).max(1), best_so_far);
    let mut v = from;
    while v <= max {
        match eval(v) {
            Some(t) if t < best.1 => {
                best = (v, t);
                v += 1;
            }
            _ => break,
        }
    }
    best
}

/// Tune `(ux, uy)` for a pooling layer on a device by simulated
/// measurement, with the paper's hill-climbing schedule (climb x, then y).
pub fn tune_pooling(device: &DeviceConfig, shape: &PoolShape, opts: &SimOptions) -> PoolTuneResult {
    let mut trace = Vec::new();
    let mut measure = |ux: usize, uy: usize| -> Option<f64> {
        let k = PoolChwn::coarsened(*shape, ux, uy);
        match simulate(device, &k, opts) {
            Ok(r) => {
                trace.push((ux, uy, r.time()));
                Some(r.time())
            }
            // Register-pressure cliff: unlaunchable configs end the climb.
            Err(_) => None,
        }
    };

    let baseline = measure(1, 1).expect("uncoarsened pooling must simulate");
    // Climb ux with uy = 1.
    let (ux, t_x) = climb(2, shape.out_w(), |v| measure(v, 1), baseline);
    // Climb uy with the chosen ux.
    let (uy, t_xy) = climb(2, shape.out_h(), |v| measure(ux, v), t_x);

    PoolTuneResult { ux, uy, time: t_xy, baseline_time: baseline, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapped_pooling_tunes_to_coarsened_config() {
        // PL3: overlapped (win 3, stride 2) — reuse exists, so the tuner
        // should pick an expansion > 1 in at least one direction.
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(128, 24, 3, 64, 2);
        let r = tune_pooling(&d, &s, &SimOptions::default());
        assert!(r.ux * r.uy >= 2, "tuned to ({}, {})", r.ux, r.uy);
        assert!(r.time <= r.baseline_time);
        assert!(r.speedup() >= 1.0);
        assert!(r.trace.len() >= 2);
    }

    #[test]
    fn tuned_time_is_min_of_trace() {
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(128, 55, 3, 96, 2);
        let r = tune_pooling(&d, &s, &SimOptions::default());
        let min = r.trace.iter().map(|&(_, _, t)| t).fold(f64::INFINITY, f64::min);
        assert!(r.time <= min * 1.0001);
    }

    #[test]
    fn trace_is_a_hill_climb_path() {
        // The trace climbs ux first (uy=1), then uy at fixed ux.
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(128, 24, 3, 64, 2);
        let r = tune_pooling(&d, &s, &SimOptions::default());
        let phase1: Vec<_> = r.trace.iter().take_while(|&&(_, uy, _)| uy == 1).collect();
        assert!(!phase1.is_empty());
        for w in phase1.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1, "ux climbs linearly");
        }
    }

    #[test]
    fn non_overlapped_pooling_stays_uncoarsened_or_close() {
        // PL1: disjoint windows — no reuse to harvest; the tuner must not
        // regress below baseline.
        let d = DeviceConfig::titan_black();
        let s = PoolShape::table1(128, 28, 2, 16, 2);
        let r = tune_pooling(&d, &s, &SimOptions::default());
        assert!(r.time <= r.baseline_time * 1.0001);
    }
}
