//! Typed engine errors: the taxonomy degradation policies dispatch on.
//!
//! The simulator's [`SimError`] says *what* went wrong at the kernel level;
//! [`EngineError`] says what it *means* at the serving level, which is the
//! distinction a policy needs:
//!
//! - **plan-time** failures ([`EngineError::PlanOom`],
//!   [`EngineError::PlanInfeasible`]) — the batch shape itself doesn't fit
//!   the device. Retrying is pointless; the only recovery is a smaller
//!   batch (bucket downshift).
//! - **execute-time transients** ([`EngineError::Transient`]) — one launch
//!   of an otherwise-valid plan failed. Bounded retry with backoff is the
//!   right response; a fresh launch index gets a fresh fault roll.
//! - **execute-time OOM** ([`EngineError::ExecOom`]) — the device rejected
//!   an allocation mid-plan. Same-size retry keeps failing; degrade.
//! - **terminal** failures ([`EngineError::RetriesExhausted`],
//!   [`EngineError::Fatal`]) — the policy gave up or the error is outside
//!   the taxonomy. These surface to the caller as `Err`, never a panic.

use memcnn_gpusim::{Fault, SimError};
use std::fmt;

/// A typed engine/serving error. See the module docs for the taxonomy.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// Planning a batch failed because its footprint exceeds device memory.
    /// Degradable: a smaller batch may fit.
    PlanOom {
        /// Batch size that failed to plan.
        batch: usize,
        /// Bytes the failing kernel needed.
        needed: u64,
        /// Bytes the device has.
        available: u64,
    },
    /// Planning failed for a structural reason (unlaunchable kernel,
    /// un-rebatchable network). Not recoverable by shrinking the batch.
    PlanInfeasible(String),
    /// One launch of a valid plan failed transiently (injected
    /// launch-failure). Retryable: the next launch index rolls fresh.
    Transient {
        /// Layer whose launch failed.
        layer: String,
        /// Launch index the fault fired at.
        launch: u64,
        /// The underlying fault.
        fault: Fault,
    },
    /// The device rejected an allocation while executing a plan. Retrying
    /// at the same size keeps failing; degradable to a smaller batch.
    ExecOom {
        /// Layer whose allocation failed.
        layer: String,
        /// Launch index the fault fired at.
        launch: u64,
    },
    /// A bounded-retry loop exhausted its budget. Terminal; carries the
    /// last transient error for diagnosis.
    RetriesExhausted {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// The error the final attempt failed with.
        last: Box<EngineError>,
    },
    /// An error outside the taxonomy. Terminal.
    Fatal(String),
}

impl EngineError {
    /// Classify a plan-time [`SimError`] for a batch of `batch` images.
    pub fn plan(batch: usize, err: SimError) -> EngineError {
        match err {
            SimError::OutOfMemory { needed, available } => {
                EngineError::PlanOom { batch, needed, available }
            }
            SimError::Unlaunchable(msg) => EngineError::PlanInfeasible(msg),
            SimError::Injected { fault, kernel, launch } => EngineError::Fatal(format!(
                "injected fault {fault} on {kernel} reached the planner (launch {launch}); \
                 plans must be compiled fault-free"
            )),
        }
    }

    /// Whether retrying the same operation can succeed (only transients).
    pub fn is_transient(&self) -> bool {
        matches!(self, EngineError::Transient { .. })
    }

    /// Whether shrinking the batch can succeed (the OOM classes).
    pub fn is_degradable(&self) -> bool {
        matches!(self, EngineError::PlanOom { .. } | EngineError::ExecOom { .. })
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::PlanOom { batch, needed, available } => write!(
                f,
                "plan for batch {batch} exceeds device memory ({:.1} MB needed, {:.1} MB available)",
                *needed as f64 / 1e6,
                *available as f64 / 1e6
            ),
            EngineError::PlanInfeasible(msg) => write!(f, "plan infeasible: {msg}"),
            EngineError::Transient { layer, launch, fault } => {
                write!(f, "transient fault {fault:?} on layer {layer} at launch {launch}")
            }
            EngineError::ExecOom { layer, launch } => {
                write!(f, "device out of memory on layer {layer} at launch {launch}")
            }
            EngineError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            EngineError::Fatal(msg) => write!(f, "fatal: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Run `attempt` up to `1 + max_retries` times, retrying only transient
/// errors. `attempt` receives the attempt number (0 for the first try) so
/// callers can vary launch indices or charge backoff per attempt.
///
/// Non-transient errors return immediately (retrying a structural failure
/// is wasted work); transient exhaustion returns
/// [`EngineError::RetriesExhausted`] wrapping the last error — a typed
/// `Err`, never a panic.
pub fn with_retries<T>(
    max_retries: u32,
    mut attempt: impl FnMut(u32) -> Result<T, EngineError>,
) -> Result<T, EngineError> {
    let mut last = None;
    for i in 0..=max_retries {
        match attempt(i) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(EngineError::RetriesExhausted {
        attempts: max_retries + 1,
        last: Box::new(last.unwrap_or(EngineError::Fatal("retry loop ran zero attempts".into()))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_classifies_sim_errors() {
        let oom = EngineError::plan(64, SimError::OutOfMemory { needed: 10, available: 5 });
        assert_eq!(oom, EngineError::PlanOom { batch: 64, needed: 10, available: 5 });
        assert!(oom.is_degradable() && !oom.is_transient());
        let inf = EngineError::plan(64, SimError::Unlaunchable("too many threads".into()));
        assert_eq!(inf, EngineError::PlanInfeasible("too many threads".into()));
        assert!(!inf.is_degradable() && !inf.is_transient());
    }

    #[test]
    fn with_retries_retries_transients_and_gives_up_typed() {
        // Succeeds on the third attempt: two transients absorbed.
        let mut calls = 0;
        let out = with_retries(3, |i| {
            calls += 1;
            if i < 2 {
                Err(EngineError::Transient {
                    layer: "CV1".into(),
                    launch: i as u64,
                    fault: Fault::LaunchFailed,
                })
            } else {
                Ok(i)
            }
        });
        assert_eq!(out, Ok(2));
        assert_eq!(calls, 3);

        // Always-transient: typed exhaustion, with the attempt count.
        let out: Result<(), _> = with_retries(2, |i| {
            Err(EngineError::Transient {
                layer: "CV1".into(),
                launch: i as u64,
                fault: Fault::LaunchFailed,
            })
        });
        match out {
            Err(EngineError::RetriesExhausted { attempts: 3, last }) => {
                assert!(last.is_transient())
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }

        // Non-transient errors are not retried.
        let mut calls = 0;
        let out: Result<(), _> = with_retries(5, |_| {
            calls += 1;
            Err(EngineError::ExecOom { layer: "CV1".into(), launch: 0 })
        });
        assert!(matches!(out, Err(EngineError::ExecOom { .. })));
        assert_eq!(calls, 1);
    }
}
