//! The evaluated library mechanisms — §VI.C's six configurations.

use serde::Serialize;
use std::fmt;

/// Which library/mechanism executes the network (Fig 14's legend).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum Mechanism {
    /// cuda-convnet2: `CHWN` everywhere, direct convolution.
    CudaConvnet,
    /// Caffe without cuDNN: `NCHW`, MM convolution, Caffe's own pooling
    /// and softmax kernels.
    Caffe,
    /// cuDNN with the standard matrix-multiplication convolution mode.
    CudnnMm,
    /// cuDNN FFT mode, falling back to MM where FFT fails (§VI.C).
    CudnnFft,
    /// cuDNN FFT-tiling mode, falling back to MM where it fails.
    CudnnFftTiling,
    /// Cherry-pick the fastest cuDNN mode per convolutional layer.
    CudnnBest,
    /// The paper's optimized framework: heuristic per-layer layouts, fast
    /// transformations, coarsened pooling, fused softmax.
    Opt,
}

impl Mechanism {
    /// All mechanisms in the paper's Fig 14 order.
    pub const ALL: [Mechanism; 7] = [
        Mechanism::CudnnMm,
        Mechanism::CudnnFft,
        Mechanism::CudnnFftTiling,
        Mechanism::CudaConvnet,
        Mechanism::Caffe,
        Mechanism::CudnnBest,
        Mechanism::Opt,
    ];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Mechanism::CudaConvnet => "cuda-convnet",
            Mechanism::Caffe => "Caffe",
            Mechanism::CudnnMm => "cuDNN-MM",
            Mechanism::CudnnFft => "cuDNN-FFT",
            Mechanism::CudnnFftTiling => "cuDNN-FFT-T",
            Mechanism::CudnnBest => "cuDNN-Best",
            Mechanism::Opt => "Opt",
        }
    }

    /// Whether this mechanism fixes one layout for the whole network (the
    /// "single uniform data layout" limitation §I criticizes), and which.
    pub fn fixed_layout(&self) -> Option<memcnn_tensor::Layout> {
        match self {
            Mechanism::CudaConvnet => Some(memcnn_tensor::Layout::CHWN),
            Mechanism::Opt => None,
            _ => Some(memcnn_tensor::Layout::NCHW),
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_tensor::Layout;

    #[test]
    fn labels_match_figures() {
        assert_eq!(Mechanism::CudnnBest.label(), "cuDNN-Best");
        assert_eq!(Mechanism::Opt.to_string(), "Opt");
        assert_eq!(Mechanism::ALL.len(), 7);
    }

    #[test]
    fn fixed_layouts() {
        assert_eq!(Mechanism::CudaConvnet.fixed_layout(), Some(Layout::CHWN));
        assert_eq!(Mechanism::CudnnMm.fixed_layout(), Some(Layout::NCHW));
        assert_eq!(Mechanism::Opt.fixed_layout(), None);
    }
}
