//! Functional network execution: actually computes the network on tensors,
//! honouring per-layer layout assignments (converting between layouts at
//! boundaries exactly where the engine would insert transformation
//! kernels). Used to verify that mixed-layout execution is semantically
//! identical to fixed-layout execution — the correctness side of §IV.D.

use crate::layer::LayerSpec;
use crate::net::Network;
use memcnn_kernels::conv::{conv_forward, ConvError};
use memcnn_kernels::layers::{fc_forward, lrn_forward, relu_forward};
use memcnn_kernels::pool::pool_forward;
use memcnn_kernels::softmax::softmax_forward;
use memcnn_kernels::SoftmaxShape;
use memcnn_tensor::{Layout, Tensor};
use memcnn_trace as trace;
use std::fmt;
use std::time::Instant;

/// Errors from functional execution.
#[derive(Debug)]
pub enum ExecError {
    /// Input tensor does not match the network's declared input shape.
    BadInput(String),
    /// Layout assignment list has the wrong length.
    BadLayouts(String),
    /// A convolution failed.
    Conv(ConvError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BadInput(m) => write!(f, "bad input: {m}"),
            ExecError::BadLayouts(m) => write!(f, "bad layouts: {m}"),
            ExecError::Conv(e) => write!(f, "convolution failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ConvError> for ExecError {
    fn from(e: ConvError) -> Self {
        ExecError::Conv(e)
    }
}

/// Deterministic per-layer weights (synthetic stand-ins for trained
/// parameters; every reproduced measurement depends only on shapes).
pub fn layer_weights(net: &Network, index: usize, seed: u64) -> Option<Tensor> {
    let layer = &net.layers()[index];
    match layer.spec {
        LayerSpec::Conv { .. } => {
            let s = layer.conv_shape().expect("conv");
            Some(Tensor::random(s.filter_shape(), Layout::NCHW, seed ^ ((index as u64) << 8)))
        }
        _ => None,
    }
}

/// Run the network functionally. `layouts` assigns the working layout of
/// each layer (e.g. all-`NCHW`, all-`CHWN`, or the engine's mixed
/// assignment); tensors are converted at boundaries. Returns the final
/// output as a flat vector in logical `(n, c, h, w)` order.
pub fn run_network(
    net: &Network,
    input: &Tensor,
    layouts: &[Layout],
    seed: u64,
) -> Result<Vec<f32>, ExecError> {
    if input.shape() != net.input {
        return Err(ExecError::BadInput(format!("expected {}, got {}", net.input, input.shape())));
    }
    if layouts.len() != net.layers().len() {
        return Err(ExecError::BadLayouts(format!(
            "{} layouts for {} layers",
            layouts.len(),
            net.layers().len()
        )));
    }
    let _run_scope = trace::scope(trace::Scope::Run(net.name.clone()));
    let run_start = Instant::now();
    let mut cur = input.clone();
    let mut flat: Option<Vec<f32>> = None; // set once FC flattens
    for (i, (layer, &layout)) in net.layers().iter().zip(layouts).enumerate() {
        let layer_start = Instant::now();
        match &layer.spec {
            LayerSpec::Conv { .. } => {
                let s = layer.conv_shape().expect("conv");
                let w = layer_weights(net, i, seed).expect("conv weights");
                let x = cur.to_layout(layout);
                cur = conv_forward(&x, &w, &s, layout)?;
            }
            LayerSpec::Pool { op, .. } => {
                let s = layer.pool_shape().expect("pool");
                let x = cur.to_layout(layout);
                cur = pool_forward(&x, &s, *op, layout);
            }
            LayerSpec::ReLU => {
                cur = relu_forward(&cur);
            }
            LayerSpec::Lrn { size } => {
                cur = lrn_forward(&cur, *size, 1e-4, 0.75, 2.0);
            }
            LayerSpec::Fc { outputs } => {
                let per_image = layer.input.c * layer.input.h * layer.input.w;
                let w: Vec<f32> = {
                    let t = Tensor::random(
                        memcnn_tensor::Shape::new(1, 1, *outputs, per_image),
                        Layout::NCHW,
                        seed ^ ((index_hash(i)) << 16),
                    );
                    t.into_vec()
                };
                let out = fc_forward(&cur, &w, *outputs);
                // Re-tensorize as (n, outputs, 1, 1).
                cur = Tensor::from_vec(layer.output, Layout::NCHW, out).expect("fc output length");
            }
            LayerSpec::Softmax => {
                let s = layer.softmax_shape().expect("softmax");
                let probs = softmax_forward(cur.to_layout(Layout::NCHW).as_slice(), s);
                flat = Some(probs);
            }
        }
        trace::record_span(|| trace::SpanEvent {
            name: layer.name.clone(),
            track: trace::Track::Exec,
            ts_us: layer_start.duration_since(run_start).as_secs_f64() * 1e6,
            dur_us: layer_start.elapsed().as_secs_f64() * 1e6,
            args: vec![("layout".into(), layout.name().into())],
        });
    }
    Ok(match flat {
        Some(v) => v,
        None => tensor_to_logical_vec(&cur),
    })
}

/// Run the network functionally under a compiled [`crate::engine::Plan`]'s
/// layout assignment — the plan-reuse entry point: callers that already
/// planned (serving, benches) execute without re-deriving layouts.
pub fn run_network_planned(
    net: &Network,
    input: &Tensor,
    plan: &crate::engine::Plan,
    seed: u64,
) -> Result<Vec<f32>, ExecError> {
    if plan.layers.len() != net.layers().len() {
        return Err(ExecError::BadLayouts(format!(
            "plan for {} has {} layers, network {} has {}",
            plan.network,
            plan.layers.len(),
            net.name,
            net.layers().len()
        )));
    }
    run_network(net, input, &plan.layouts(), seed)
}

fn index_hash(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Flatten a tensor to logical `(n, c, h, w)` order.
pub fn tensor_to_logical_vec(t: &Tensor) -> Vec<f32> {
    t.iter_logical().map(|(_, v)| v).collect()
}

/// Check that a softmax output is a valid probability distribution per row.
pub fn assert_valid_probabilities(probs: &[f32], shape: SoftmaxShape, tol: f32) -> bool {
    probs.len() == shape.len()
        && probs.chunks(shape.categories).all(|row| {
            let sum: f32 = row.iter().sum();
            (sum - 1.0).abs() <= tol && row.iter().all(|&p| (0.0..=1.0 + tol).contains(&p))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkBuilder;
    use memcnn_tensor::Shape;

    fn tiny_net() -> Network {
        NetworkBuilder::new("tiny", Shape::new(4, 3, 12, 12))
            .conv("cv1", 8, 3, 1, 0)
            .relu("r1")
            .max_pool("pl1", 2, 2)
            .conv("cv2", 16, 3, 1, 1)
            .lrn("lrn", 5)
            .max_pool("pl2", 5, 5)
            .fc("fc", 10)
            .softmax("prob")
            .build()
            .unwrap()
    }

    #[test]
    fn output_is_a_probability_distribution() {
        let net = tiny_net();
        let input = Tensor::random(net.input, Layout::NCHW, 1);
        let layouts = vec![Layout::NCHW; net.layers().len()];
        let out = run_network(&net, &input, &layouts, 42).unwrap();
        assert!(assert_valid_probabilities(&out, SoftmaxShape::new(4, 10), 1e-4));
    }

    #[test]
    fn mixed_layouts_give_identical_results() {
        // The §IV.D correctness property: inserting layout transformations
        // never changes values.
        let net = tiny_net();
        let input = Tensor::random(net.input, Layout::NCHW, 2);
        let n = net.layers().len();
        let all_nchw = run_network(&net, &input, &vec![Layout::NCHW; n], 7).unwrap();
        let all_chwn = run_network(&net, &input, &vec![Layout::CHWN; n], 7).unwrap();
        let mixed: Vec<Layout> =
            (0..n).map(|i| if i % 2 == 0 { Layout::CHWN } else { Layout::NCHW }).collect();
        let alternating = run_network(&net, &input, &mixed, 7).unwrap();
        for ((a, b), c) in all_nchw.iter().zip(&all_chwn).zip(&alternating) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            assert!((a - c).abs() < 1e-3, "{a} vs {c}");
        }
    }

    #[test]
    fn planned_execution_matches_explicit_layouts() {
        use crate::heuristic::LayoutThresholds;
        use crate::library::Mechanism;
        use memcnn_gpusim::DeviceConfig;

        let net = tiny_net();
        let engine =
            crate::Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper());
        let plan = engine.plan(&net, Mechanism::Opt).unwrap();
        let input = Tensor::random(net.input, Layout::NCHW, 3);
        let planned = run_network_planned(&net, &input, &plan, 11).unwrap();
        let explicit = run_network(&net, &input, &plan.layouts(), 11).unwrap();
        assert_eq!(planned, explicit);
        // A plan for a different architecture is rejected.
        let other = NetworkBuilder::new("other", Shape::new(4, 3, 12, 12))
            .conv("cv", 8, 3, 1, 0)
            .build()
            .unwrap();
        let bad = engine.plan(&other, Mechanism::Opt).unwrap();
        assert!(matches!(
            run_network_planned(&net, &input, &bad, 11),
            Err(ExecError::BadLayouts(_))
        ));
    }

    #[test]
    fn input_shape_is_validated() {
        let net = tiny_net();
        let bad = Tensor::zeros(Shape::new(4, 3, 10, 10), Layout::NCHW);
        let layouts = vec![Layout::NCHW; net.layers().len()];
        assert!(matches!(run_network(&net, &bad, &layouts, 0), Err(ExecError::BadInput(_))));
        let input = Tensor::zeros(net.input, Layout::NCHW);
        assert!(matches!(
            run_network(&net, &input, &[Layout::NCHW], 0),
            Err(ExecError::BadLayouts(_))
        ));
    }

    #[test]
    fn distinct_layers_get_distinct_weight_seeds() {
        // Two convolutions with identical filter shapes must still draw
        // different weights: the per-layer seed is `seed ^ (index << 8)`,
        // which must vary with the layer index.
        let net = NetworkBuilder::new("twin", Shape::new(2, 8, 8, 8))
            .conv("cv1", 8, 3, 1, 1)
            .conv("cv2", 8, 3, 1, 1)
            .conv("cv3", 8, 3, 1, 1)
            .build()
            .unwrap();
        let w0 = layer_weights(&net, 0, 9).unwrap();
        let w1 = layer_weights(&net, 1, 9).unwrap();
        let w2 = layer_weights(&net, 2, 9).unwrap();
        assert_eq!(w0.shape(), w1.shape());
        assert_ne!(w0.as_slice(), w1.as_slice());
        assert_ne!(w1.as_slice(), w2.as_slice());
        assert_ne!(w0.as_slice(), w2.as_slice());
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let net = tiny_net();
        let a = layer_weights(&net, 0, 5).unwrap();
        let b = layer_weights(&net, 0, 5).unwrap();
        let c = layer_weights(&net, 0, 6).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        assert!(layer_weights(&net, 1, 5).is_none()); // relu has no weights
    }
}
