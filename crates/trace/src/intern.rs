//! Process-wide string interning for trace annotations.
//!
//! Serving loops attach the same handful of strings — device labels,
//! network names, tenant names, annotation keys — to millions of span
//! events. Interning maps each distinct string to a small integer id
//! ([`Sym`]) exactly once; after that, building an annotation is a
//! 4-byte copy instead of a heap allocation, and resolution back to
//! `&str` is an index into a leaked table (the set of interned strings
//! is small and bounded by construction: names, not payloads).
//!
//! [`ArgValue`] is the annotation value type [`SpanEvent`](crate::SpanEvent)
//! carries: either an interned [`Sym`] or an owned `String` for one-off
//! values (ids, counts). Both compare and render as their string form,
//! so exporters and tests are agnostic to which representation a
//! recording site chose.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned string: a small id resolving to a `&'static str`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    table: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner { table: Vec::new(), ids: HashMap::new() }))
}

/// Intern `s`, returning its stable process-wide [`Sym`]. The first
/// interning of a distinct string leaks one copy of it (the table is
/// append-only); repeat calls are a shared-lock lookup.
pub fn intern(s: &str) -> Sym {
    if let Some(&id) = interner().read().expect("interner poisoned").ids.get(s) {
        return Sym(id);
    }
    let mut w = interner().write().expect("interner poisoned");
    if let Some(&id) = w.ids.get(s) {
        return Sym(id);
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    let id = w.table.len() as u32;
    w.table.push(leaked);
    w.ids.insert(leaked, id);
    Sym(id)
}

impl Sym {
    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner poisoned").table[self.0 as usize]
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One annotation key or value on a span: interned ([`Sym`]) for the
/// bounded name-like strings hot loops repeat, owned for one-offs.
#[derive(Clone, Debug)]
pub enum ArgValue {
    /// An owned one-off value (request ids, counts, ...).
    Str(String),
    /// An interned name (device label, network, tenant, key).
    Sym(Sym),
}

impl ArgValue {
    /// The annotation as a string slice, whichever representation.
    pub fn as_str(&self) -> &str {
        match self {
            ArgValue::Str(s) => s.as_str(),
            ArgValue::Sym(sym) => sym.as_str(),
        }
    }
}

impl From<String> for ArgValue {
    fn from(s: String) -> ArgValue {
        ArgValue::Str(s)
    }
}

impl From<&str> for ArgValue {
    fn from(s: &str) -> ArgValue {
        ArgValue::Str(s.to_string())
    }
}

impl From<Sym> for ArgValue {
    fn from(sym: Sym) -> ArgValue {
        ArgValue::Sym(sym)
    }
}

impl PartialEq for ArgValue {
    fn eq(&self, other: &ArgValue) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for ArgValue {}

impl PartialEq<str> for ArgValue {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for ArgValue {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialOrd for ArgValue {
    fn partial_cmp(&self, other: &ArgValue) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ArgValue {
    fn cmp(&self, other: &ArgValue) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::fmt::Display for ArgValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_deduplicated() {
        let a = intern("test.intern.device0");
        let b = intern("test.intern.device0");
        let c = intern("test.intern.device1");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "test.intern.device0");
        assert_eq!(c.as_str(), "test.intern.device1");
        assert_eq!(a.to_string(), "test.intern.device0");
    }

    #[test]
    fn arg_values_compare_by_string_across_representations() {
        let sym: ArgValue = intern("test.intern.argv").into();
        let owned: ArgValue = "test.intern.argv".to_string().into();
        let slice: ArgValue = "test.intern.argv".into();
        assert_eq!(sym, owned);
        assert_eq!(owned, slice);
        assert_eq!(sym, *"test.intern.argv");
        assert_eq!(sym, "test.intern.argv");
        assert_eq!(sym.as_str(), "test.intern.argv");
        let other: ArgValue = "test.intern.argw".into();
        assert!(sym < other);
        assert_ne!(sym, other);
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let handles: Vec<_> =
            (0..8).map(|_| std::thread::spawn(|| intern("test.intern.concurrent"))).collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
