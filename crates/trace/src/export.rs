//! Trace exporters: Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and a human-readable text profile.

use crate::counters::Aggregate;
use crate::intern::ArgValue;
use crate::{KernelRecord, Scope, SpanEvent, Trace, Track};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

fn n(v: f64) -> Value {
    Value::Number(v)
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn args_obj(args: &[(ArgValue, ArgValue)]) -> Value {
    Value::Object(args.iter().map(|(k, v)| (k.as_str().to_string(), s(v.as_str()))).collect())
}

fn meta_obj(meta: &[(String, String)]) -> Value {
    Value::Object(meta.iter().map(|(k, v)| (k.clone(), s(v))).collect())
}

/// How one recorded kernel is classified for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelClass {
    /// Part of a chosen implementation on the forward timeline
    /// (including chosen transform kernels).
    Timeline,
    /// Simulated while evaluating a candidate that was not chosen.
    Candidate,
    /// Simulated during layout planning (heuristic/DP probing).
    Planning,
    /// Simulated during pooling autotune sweeps.
    Autotune,
    /// Simulated for the backward pass.
    Backward,
    /// Simulated speculatively on a parallel probe worker (cache
    /// prewarms carrying a [`Scope::Worker`] frame). Never paired to a
    /// timeline span; counts may vary with thread scheduling because
    /// workers race to warm shared memoization, so they are reported
    /// separately and excluded from the deterministic timeline.
    Speculative,
}

/// Classify every kernel record and, for timeline kernels, pair it with
/// the index of the span it executes under. Pairing is by scope: a
/// kernel belongs to a layer span when its path carries that layer and
/// the span's chosen `impl` (or the `Transform` frame for transform
/// spans). Each kernel is consumed by at most one span, in order.
pub fn classify_kernels(trace: &Trace) -> Vec<(KernelClass, Option<usize>)> {
    let mut out: Vec<(KernelClass, Option<usize>)> = trace
        .kernels
        .iter()
        .map(|k| {
            if k.path.iter().any(|f| matches!(f, Scope::Worker(_))) {
                (KernelClass::Speculative, None)
            } else if k.in_scope(&Scope::Plan) {
                (KernelClass::Planning, None)
            } else if k.in_scope(&Scope::Autotune) {
                (KernelClass::Autotune, None)
            } else if k.in_scope(&Scope::Backward) {
                (KernelClass::Backward, None)
            } else {
                (KernelClass::Candidate, None)
            }
        })
        .collect();

    let arg =
        |sp: &SpanEvent, key: &str| sp.args.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
    for (si, sp) in trace.spans.iter().enumerate() {
        let matcher: Box<dyn Fn(&KernelRecord) -> bool> = match sp.track {
            Track::Layers => {
                let Some(imp) = arg(sp, "impl") else { continue };
                let layer = sp.name.clone();
                Box::new(move |k: &KernelRecord| {
                    k.layer() == Some(layer.as_str()) && k.candidate() == Some(imp.as_str())
                })
            }
            Track::Transforms => {
                if arg(sp, "phase").is_some_and(|v| v == "backward") {
                    continue; // arithmetic double of the forward transform
                }
                let Some(layer) = arg(sp, "layer") else { continue };
                Box::new(move |k: &KernelRecord| {
                    k.layer() == Some(layer.as_str()) && k.in_scope(&Scope::Transform)
                })
            }
            _ => continue,
        };
        for (ki, k) in trace.kernels.iter().enumerate() {
            if out[ki].0 == KernelClass::Candidate && out[ki].1.is_none() && matcher(k) {
                out[ki] = (KernelClass::Timeline, Some(si));
            }
        }
    }
    out
}

/// Render a Chrome trace-event JSON document. Layers, transforms and
/// backward spans ride the engine's simulated clock (pid 1); functional
/// execution spans ride the wall clock as a separate process (pid 2);
/// kernels of each chosen implementation are laid back-to-back inside
/// their layer's span on a dedicated track; layout decisions appear as
/// instant events at the start of the layer they settle.
pub fn chrome_trace(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::new();

    let process_meta = |pid: u64, name: &str| {
        obj(vec![
            ("ph", s("M")),
            ("name", s("process_name")),
            ("pid", n(pid as f64)),
            ("tid", n(0.0)),
            ("args", obj(vec![("name", s(name))])),
        ])
    };
    let thread_meta = |track: Track| {
        obj(vec![
            ("ph", s("M")),
            ("name", s("thread_name")),
            ("pid", n(track.pid() as f64)),
            ("tid", n(track.tid() as f64)),
            ("args", obj(vec![("name", s(track.name()))])),
        ])
    };
    let uses_track = |track: Track| {
        trace.spans.iter().any(|sp| sp.track == track)
            || trace.counters.iter().any(|c| c.track == track)
    };
    events.push(process_meta(1, "memcnn simulated timeline"));
    for track in [Track::Layers, Track::Transforms, Track::Kernels, Track::Backward] {
        events.push(thread_meta(track));
    }
    for track in [Track::Serve, Track::Faults, Track::Fleet] {
        if uses_track(track) {
            events.push(thread_meta(track));
        }
    }
    if uses_track(Track::Exec) {
        events.push(process_meta(2, "memcnn functional execution"));
        events.push(thread_meta(Track::Exec));
    }

    let span_event = |name: &str, track: Track, ts_us: f64, dur_us: f64, args: Value| {
        obj(vec![
            ("ph", s("X")),
            ("name", s(name)),
            ("cat", s(track.name())),
            ("pid", n(track.pid() as f64)),
            ("tid", n(track.tid() as f64)),
            ("ts", n(ts_us)),
            ("dur", n(dur_us)),
            ("args", args),
        ])
    };

    for sp in &trace.spans {
        events.push(span_event(&sp.name, sp.track, sp.ts_us, sp.dur_us, args_obj(&sp.args)));
    }

    // Counter series as Perfetto counter tracks ("C" phase): one stepped
    // area chart per series name, under the track's process.
    for c in &trace.counters {
        events.push(obj(vec![
            ("ph", s("C")),
            ("name", s(&c.name)),
            ("cat", s(c.track.name())),
            ("pid", n(c.track.pid() as f64)),
            ("tid", n(c.track.tid() as f64)),
            ("ts", n(c.ts_us)),
            ("args", obj(vec![("value", n(c.value))])),
        ]));
    }

    // Kernels of chosen implementations, back-to-back inside their span.
    let classes = classify_kernels(trace);
    let mut cursor: BTreeMap<usize, f64> = BTreeMap::new();
    for (ki, (_, span_idx)) in classes.iter().enumerate() {
        let Some(si) = span_idx else { continue };
        let sp = &trace.spans[*si];
        let c = &trace.kernels[ki].counters;
        let ts = *cursor.entry(*si).or_insert(sp.ts_us);
        let dur = c.time_s * 1e6;
        cursor.insert(*si, ts + dur);
        events.push(span_event(
            &c.name,
            Track::Kernels,
            ts,
            dur,
            obj(vec![
                ("layer", s(&sp.name)),
                ("bound", s(&c.bound)),
                ("dram_bytes", n(c.dram_bytes)),
                ("transaction_bytes", n(c.transaction_bytes)),
                ("requested_bytes", n(c.requested_bytes)),
                ("overfetch", n(c.overfetch())),
                ("l2_hit_rate", n(c.l2_hit_rate)),
                ("dram_gbs", n(c.dram_gbs())),
                ("flops", n(c.flops)),
                ("occupancy", n(c.occupancy)),
                ("occupancy_limiter", s(&c.occupancy_limiter)),
                ("smem_passes", n(c.smem_passes)),
                ("grid_blocks", n(c.grid_blocks as f64)),
                ("sampled_blocks", n(c.sampled_blocks as f64)),
            ]),
        ));
    }

    // Layout decisions as instants at the start of their layer's span.
    for d in &trace.decisions {
        let ts = trace
            .spans
            .iter()
            .find(|sp| sp.track == Track::Layers && sp.name == d.layer)
            .map(|sp| sp.ts_us)
            .unwrap_or(0.0);
        events.push(obj(vec![
            ("ph", s("i")),
            ("name", s(&format!("{}: {} ({})", d.layer, d.layout, d.policy))),
            ("cat", s("layout-decision")),
            ("pid", n(1.0)),
            ("tid", n(Track::Layers.tid() as f64)),
            ("ts", n(ts)),
            ("s", s("t")),
            ("args", obj(vec![("reason", s(&d.reason)), ("policy", s(&d.policy))])),
        ]));
    }

    let mut top = vec![("traceEvents", Value::Array(events)), ("displayTimeUnit", s("ms"))];
    if !trace.meta.is_empty() {
        top.push(("otherData", meta_obj(&trace.meta)));
    }
    serde_json::to_string(&obj(top)).expect("serializing a trace cannot fail")
}

struct RankedKernel<'a> {
    record: &'a KernelRecord,
    span_name: String,
}

/// Render a human-readable text profile: summary, bound breakdown,
/// top-`top_n` kernel tables, per-layer rollup, and the layout decisions
/// with their reasons. All kernel numbers are the simulator's own
/// counters, unmodified.
pub fn text_profile(trace: &Trace, top_n: usize) -> String {
    let mut out = String::new();
    let classes = classify_kernels(trace);

    let mut timeline: Vec<RankedKernel> = Vec::new();
    let mut agg = BTreeMap::new();
    for class in [
        KernelClass::Timeline,
        KernelClass::Candidate,
        KernelClass::Planning,
        KernelClass::Autotune,
        KernelClass::Backward,
        KernelClass::Speculative,
    ] {
        agg.insert(format!("{class:?}"), Aggregate::default());
    }
    for (ki, (class, span_idx)) in classes.iter().enumerate() {
        let record = &trace.kernels[ki];
        agg.get_mut(&format!("{class:?}")).expect("all classes present").add(&record.counters);
        if *class == KernelClass::Timeline {
            let span_name = span_idx.map(|si| trace.spans[si].name.clone()).unwrap_or_default();
            timeline.push(RankedKernel { record, span_name });
        }
    }
    let tl = &agg["Timeline"];

    writeln!(out, "memcnn profile").unwrap();
    for (k, v) in &trace.meta {
        writeln!(out, "  {k}: {v}").unwrap();
    }
    writeln!(out).unwrap();

    writeln!(out, "== timeline ==").unwrap();
    writeln!(
        out,
        "  total {:.3} ms  (layers {:.3} ms, transforms {:.3} ms in {} kernels, backward {:.3} ms)",
        trace.timeline_total_ms(),
        trace.track_total_ms(Track::Layers),
        trace.track_total_ms(Track::Transforms),
        trace.spans.iter().filter(|sp| sp.track == Track::Transforms).count(),
        trace.track_total_ms(Track::Backward),
    )
    .unwrap();
    writeln!(out).unwrap();

    writeln!(out, "== kernels ==").unwrap();
    writeln!(
        out,
        "  {:<10} {:>8} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "class", "kernels", "time(ms)", "dram(MB)", "bw(GB/s)", "overfetch", "l2(%)"
    )
    .unwrap();
    for (name, a) in &agg {
        if a.kernels == 0 {
            continue;
        }
        writeln!(
            out,
            "  {:<10} {:>8} {:>12.3} {:>12.2} {:>10.1} {:>10.2} {:>8.1}",
            name.to_lowercase(),
            a.kernels,
            a.time_s * 1e3,
            a.dram_bytes / 1e6,
            a.dram_gbs(),
            a.overfetch(),
            a.l2_hit_rate() * 100.0
        )
        .unwrap();
    }
    writeln!(out).unwrap();

    writeln!(out, "== bound breakdown (timeline kernels) ==").unwrap();
    for (bound, t) in &tl.time_by_bound {
        writeln!(
            out,
            "  {:<14} {:>6.1}%  {:>10.3} ms",
            bound,
            if tl.time_s > 0.0 { t / tl.time_s * 100.0 } else { 0.0 },
            t * 1e3
        )
        .unwrap();
    }
    writeln!(out).unwrap();

    let kernel_table = |out: &mut String, title: &str, ranked: &[&RankedKernel]| {
        writeln!(out, "== {title} ==").unwrap();
        writeln!(
            out,
            "  {:<28} {:<10} {:>10} {:>10} {:>9} {:>9} {:>6} {:<14} {:>5} {:<9}",
            "kernel",
            "layer",
            "time(us)",
            "dram(MB)",
            "bw(GB/s)",
            "overfetch",
            "l2(%)",
            "bound",
            "occ%",
            "limiter"
        )
        .unwrap();
        for rk in ranked {
            let c = &rk.record.counters;
            writeln!(
                out,
                "  {:<28} {:<10} {:>10.2} {:>10.3} {:>9.1} {:>9.2} {:>6.1} {:<14} {:>5.0} {:<9}",
                c.name,
                rk.span_name,
                c.time_s * 1e6,
                c.dram_bytes / 1e6,
                c.dram_gbs(),
                c.overfetch(),
                c.l2_hit_rate * 100.0,
                c.bound,
                c.occupancy * 100.0,
                c.occupancy_limiter
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    };

    let mut by_time: Vec<&RankedKernel> = timeline.iter().collect();
    by_time.sort_by(|a, b| b.record.counters.time_s.total_cmp(&a.record.counters.time_s));
    by_time.truncate(top_n);
    kernel_table(&mut out, &format!("top {} kernels by time", by_time.len()), &by_time);

    let mut by_dram: Vec<&RankedKernel> = timeline.iter().collect();
    by_dram.sort_by(|a, b| b.record.counters.dram_bytes.total_cmp(&a.record.counters.dram_bytes));
    by_dram.truncate(top_n);
    kernel_table(&mut out, &format!("top {} kernels by DRAM traffic", by_dram.len()), &by_dram);

    writeln!(out, "== layers ==").unwrap();
    writeln!(
        out,
        "  {:<10} {:<6} {:<16} {:>10} {:>8} {:>10} {:>10} {:>6}",
        "layer", "layout", "impl", "time(ms)", "kernels", "dram(MB)", "overfetch", "l2(%)"
    )
    .unwrap();
    for sp in trace.spans.iter().filter(|sp| sp.track == Track::Layers) {
        let arg = |key: &str| {
            sp.args.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str()).unwrap_or("-")
        };
        let a: Aggregate = {
            let mut a = Aggregate::default();
            for rk in timeline.iter().filter(|rk| rk.span_name == sp.name) {
                a.add(&rk.record.counters);
            }
            a
        };
        writeln!(
            out,
            "  {:<10} {:<6} {:<16} {:>10.3} {:>8} {:>10.3} {:>10.2} {:>6.1}",
            sp.name,
            arg("layout"),
            arg("impl"),
            sp.dur_us / 1e3,
            a.kernels,
            a.dram_bytes / 1e6,
            a.overfetch(),
            a.l2_hit_rate() * 100.0
        )
        .unwrap();
    }
    writeln!(out).unwrap();

    if !trace.decisions.is_empty() {
        writeln!(out, "== layout decisions ==").unwrap();
        for d in &trace.decisions {
            writeln!(out, "  {:<10} {:<5} [{}] {}", d.layer, d.layout, d.policy, d.reason).unwrap();
        }
    }

    // Process-wide perf counters (cache hits, parallel-worker kernel counts,
    // ...) — the per-thread collector above cannot see work done on rayon
    // workers, but the global registry can.
    let perf = crate::perf::render();
    if !perf.is_empty() {
        writeln!(out).unwrap();
        writeln!(out, "== perf counters (process-wide) ==").unwrap();
        out.push_str(&perf);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelCounters;

    fn sample_trace() -> Trace {
        crate::start();
        crate::set_meta("network", "t");
        {
            let _n = crate::scope(Scope::Network("t".to_string()));
            {
                let _p = crate::scope(Scope::Plan);
                crate::record_kernel(|| KernelCounters {
                    name: "probe".to_string(),
                    time_s: 5e-6,
                    bound: "Compute".to_string(),
                    ..Default::default()
                });
            }
            crate::record_decision(|| crate::Decision {
                layer: "CV1".to_string(),
                layout: "CHWN".to_string(),
                policy: "heuristic".to_string(),
                reason: "ci < ct".to_string(),
            });
            {
                let _l = crate::scope(Scope::Layer("CV1".to_string()));
                {
                    let _c = crate::scope(Scope::Candidate("mm".to_string()));
                    crate::record_kernel(|| KernelCounters {
                        name: "im2col".to_string(),
                        time_s: 4e-6,
                        dram_bytes: 1e6,
                        transaction_bytes: 2e6,
                        requested_bytes: 1e6,
                        bound: "DramBandwidth".to_string(),
                        ..Default::default()
                    });
                    crate::record_kernel(|| KernelCounters {
                        name: "gemm".to_string(),
                        time_s: 6e-6,
                        flops: 1e9,
                        bound: "Compute".to_string(),
                        ..Default::default()
                    });
                }
                {
                    let _c = crate::scope(Scope::Candidate("fft".to_string()));
                    crate::record_kernel(|| KernelCounters {
                        name: "fft-fwd".to_string(),
                        time_s: 9e-6,
                        bound: "Compute".to_string(),
                        ..Default::default()
                    });
                }
                crate::record_span(|| SpanEvent {
                    name: "CV1".to_string(),
                    track: Track::Layers,
                    ts_us: 0.0,
                    dur_us: 10.0,
                    args: vec![("impl".into(), "mm".into()), ("layout".into(), "CHWN".into())],
                });
            }
        }
        crate::finish().unwrap()
    }

    #[test]
    fn classification_separates_timeline_from_overhead() {
        let t = sample_trace();
        let classes = classify_kernels(&t);
        assert_eq!(classes[0].0, KernelClass::Planning);
        assert_eq!(classes[1], (KernelClass::Timeline, Some(0)));
        assert_eq!(classes[2], (KernelClass::Timeline, Some(0)));
        assert_eq!(classes[3].0, KernelClass::Candidate); // fft not chosen
    }

    #[test]
    fn worker_frame_classifies_speculative_and_stays_off_the_timeline() {
        let mut t = sample_trace();
        // A speculative prewarm of the very kernel the chosen impl runs:
        // the Worker frame must win over layer/candidate matching.
        let mut spec = t.kernels[1].clone();
        spec.path.push(Scope::Worker(0));
        t.kernels.push(spec);
        let classes = classify_kernels(&t);
        assert_eq!(classes[4], (KernelClass::Speculative, None));
        // Timeline pairing of the orchestrator's records is unchanged.
        assert_eq!(classes[1], (KernelClass::Timeline, Some(0)));
        let text = text_profile(&t, 10);
        assert!(text.contains("speculative"), "missing speculative row:\n{text}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let t = sample_trace();
        let json = chrome_trace(&t);
        let doc = serde_json::from_str(&json).unwrap();
        assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let spans: Vec<_> =
            events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("X")).collect();
        // 1 layer span + 2 timeline kernels (im2col, gemm); the fft
        // candidate and the planning probe stay off the timeline.
        assert_eq!(spans.len(), 3);
        let kernels: Vec<_> =
            spans.iter().filter(|e| e.get("cat").unwrap().as_str() == Some("kernels")).collect();
        assert_eq!(kernels.len(), 2);
        // Back-to-back inside the layer span, monotonic, non-overlapping.
        let (k0, k1) = (&kernels[0], &kernels[1]);
        let end0 =
            k0.get("ts").unwrap().as_f64().unwrap() + k0.get("dur").unwrap().as_f64().unwrap();
        assert!((end0 - k1.get("ts").unwrap().as_f64().unwrap()).abs() < 1e-9);
        // One decision instant.
        assert_eq!(events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("i")).count(), 1);
    }

    #[test]
    fn counter_samples_export_as_counter_track_events() {
        let mut t = sample_trace();
        for (ts, v) in [(0.0, 1.0), (5.0, 3.0), (9.0, 0.0)] {
            t.counters.push(crate::CounterEvent {
                name: "queue.depth".to_string(),
                track: Track::Serve,
                ts_us: ts,
                value: v,
            });
        }
        let json = chrome_trace(&t);
        let doc = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let counters: Vec<_> =
            events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("C")).collect();
        assert_eq!(counters.len(), 3);
        // Non-decreasing timestamps, value carried in args, and the serve
        // track's thread metadata present (referenced only by counters).
        let ts: Vec<f64> =
            counters.iter().map(|e| e.get("ts").unwrap().as_f64().unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(counters[1].get("args").unwrap().get("value").unwrap().as_f64(), Some(3.0));
        assert!(
            events.iter().any(|e| e.get("ph").unwrap().as_str() == Some("M")
                && e.get("args").unwrap().get("name").unwrap().as_str() == Some("serving")),
            "serve thread metadata missing"
        );
    }

    #[test]
    fn text_profile_reports_counters_and_decisions() {
        let t = sample_trace();
        let text = text_profile(&t, 10);
        for needle in [
            "== timeline ==",
            "== bound breakdown",
            "top 2 kernels by time",
            "im2col",
            "gemm",
            "== layout decisions ==",
            "ci < ct",
            "planning",
            "candidate",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The over-fetch factor of im2col (2e6 / 1e6) is printed as-is.
        assert!(text.contains("2.00"), "overfetch column missing:\n{text}");
    }
}
