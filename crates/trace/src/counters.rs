//! Typed per-kernel performance counters and their aggregation.
//!
//! One [`KernelCounters`] is recorded per simulated kernel launch, copied
//! verbatim from the simulator's report (plus two internal shared-memory
//! totals the report does not carry). [`Aggregate`] folds any number of
//! them into per-layer / per-phase / per-network rollups.

use serde::Serialize;
use std::collections::BTreeMap;

/// Counters of one simulated kernel launch. Field values are copied
/// unmodified from `memcnn_gpusim::KernelReport` (and the simulator's
/// internal launch totals), so a profile rendered from them matches the
/// report to float round-off.
#[derive(Clone, Debug, Default, Serialize)]
pub struct KernelCounters {
    /// Kernel name.
    pub name: String,
    /// Simulated wall time, seconds.
    pub time_s: f64,
    /// DRAM bytes moved (post-L2).
    pub dram_bytes: f64,
    /// L2 sector bytes (pre-cache transactions, i.e. fetched).
    pub transaction_bytes: f64,
    /// Bytes the lanes asked for; `transaction_bytes / requested_bytes`
    /// is the over-fetch factor of an uncoalesced kernel.
    pub requested_bytes: f64,
    /// L2 hit rate on the sampled stream.
    pub l2_hit_rate: f64,
    /// Floating-point operations.
    pub flops: f64,
    /// Shared-memory access passes — each bank conflict adds a replay
    /// pass, so `smem_passes` above one pass per access means conflicts.
    pub smem_passes: f64,
    /// Shared-memory bytes touched.
    pub smem_bytes: f64,
    /// Achieved occupancy fraction.
    pub occupancy: f64,
    /// What limited occupancy (threads, registers, smem, ...).
    pub occupancy_limiter: String,
    /// Bound classification of the scored time (compute, DRAM, ...).
    pub bound: String,
    /// Time charged to the shared-memory term (bank-conflict cost).
    pub smem_time_s: f64,
    /// Grid size in blocks.
    pub grid_blocks: u64,
    /// Blocks actually traced.
    pub sampled_blocks: u64,
}

impl KernelCounters {
    /// Over-fetch factor (1.0 = perfectly coalesced).
    pub fn overfetch(&self) -> f64 {
        if self.requested_bytes > 0.0 {
            self.transaction_bytes / self.requested_bytes
        } else {
            1.0
        }
    }

    /// Achieved DRAM bandwidth, GB/s.
    pub fn dram_gbs(&self) -> f64 {
        if self.time_s > 0.0 {
            self.dram_bytes / self.time_s / 1e9
        } else {
            0.0
        }
    }
}

/// Rollup of many kernels: per layer, per phase, or whole network.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Aggregate {
    /// Number of kernels folded in.
    pub kernels: u64,
    /// Total simulated kernel time, seconds.
    pub time_s: f64,
    /// Total DRAM bytes.
    pub dram_bytes: f64,
    /// Total fetched (L2 transaction) bytes.
    pub transaction_bytes: f64,
    /// Total requested bytes.
    pub requested_bytes: f64,
    /// Total FLOPs.
    pub flops: f64,
    /// Total shared-memory passes.
    pub smem_passes: f64,
    /// Total time charged to shared-memory (bank conflicts), seconds.
    pub smem_time_s: f64,
    /// Transaction-byte-weighted L2 hit mass (see [`Aggregate::l2_hit_rate`]).
    pub l2_hit_weight: f64,
    /// Kernel time by bound classification.
    pub time_by_bound: BTreeMap<String, f64>,
}

impl Aggregate {
    /// Fold one kernel in.
    pub fn add(&mut self, c: &KernelCounters) {
        self.kernels += 1;
        self.time_s += c.time_s;
        self.dram_bytes += c.dram_bytes;
        self.transaction_bytes += c.transaction_bytes;
        self.requested_bytes += c.requested_bytes;
        self.flops += c.flops;
        self.smem_passes += c.smem_passes;
        self.smem_time_s += c.smem_time_s;
        self.l2_hit_weight += c.l2_hit_rate * c.transaction_bytes;
        *self.time_by_bound.entry(c.bound.clone()).or_insert(0.0) += c.time_s;
    }

    /// Merge another aggregate in.
    pub fn merge(&mut self, other: &Aggregate) {
        self.kernels += other.kernels;
        self.time_s += other.time_s;
        self.dram_bytes += other.dram_bytes;
        self.transaction_bytes += other.transaction_bytes;
        self.requested_bytes += other.requested_bytes;
        self.flops += other.flops;
        self.smem_passes += other.smem_passes;
        self.smem_time_s += other.smem_time_s;
        self.l2_hit_weight += other.l2_hit_weight;
        for (k, v) in &other.time_by_bound {
            *self.time_by_bound.entry(k.clone()).or_insert(0.0) += v;
        }
    }

    /// Transaction-weighted mean L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        if self.transaction_bytes > 0.0 {
            self.l2_hit_weight / self.transaction_bytes
        } else {
            0.0
        }
    }

    /// Aggregate over-fetch factor.
    pub fn overfetch(&self) -> f64 {
        if self.requested_bytes > 0.0 {
            self.transaction_bytes / self.requested_bytes
        } else {
            1.0
        }
    }

    /// Aggregate DRAM bandwidth, GB/s.
    pub fn dram_gbs(&self) -> f64 {
        if self.time_s > 0.0 {
            self.dram_bytes / self.time_s / 1e9
        } else {
            0.0
        }
    }

    /// Aggregate GFLOP/s.
    pub fn gflops(&self) -> f64 {
        if self.time_s > 0.0 {
            self.flops / self.time_s / 1e9
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(time_s: f64, bound: &str) -> KernelCounters {
        KernelCounters {
            name: "k".to_string(),
            time_s,
            dram_bytes: 100.0,
            transaction_bytes: 200.0,
            requested_bytes: 100.0,
            l2_hit_rate: 0.5,
            flops: 1000.0,
            bound: bound.to_string(),
            ..Default::default()
        }
    }

    #[test]
    fn aggregate_sums_and_weights() {
        let mut a = Aggregate::default();
        a.add(&kernel(1.0, "DramBandwidth"));
        a.add(&kernel(2.0, "Compute"));
        a.add(&kernel(3.0, "Compute"));
        assert_eq!(a.kernels, 3);
        assert_eq!(a.time_s, 6.0);
        assert_eq!(a.dram_bytes, 300.0);
        assert_eq!(a.overfetch(), 2.0);
        assert!((a.l2_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(a.time_by_bound["Compute"], 5.0);
        assert_eq!(a.time_by_bound["DramBandwidth"], 1.0);

        let mut b = Aggregate::default();
        b.add(&kernel(4.0, "Compute"));
        a.merge(&b);
        assert_eq!(a.kernels, 4);
        assert_eq!(a.time_by_bound["Compute"], 9.0);
    }

    #[test]
    fn rates_handle_zero_time() {
        let a = Aggregate::default();
        assert_eq!(a.dram_gbs(), 0.0);
        assert_eq!(a.gflops(), 0.0);
        assert_eq!(a.l2_hit_rate(), 0.0);
        assert_eq!(a.overfetch(), 1.0);
    }
}
