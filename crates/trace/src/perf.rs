//! Global, thread-safe named performance counters.
//!
//! The span/kernel collector in this crate is thread-local by design: it
//! attributes simulated kernels to the scope stack of the *orchestrating*
//! thread. Work fanned out to rayon workers has no scope stack, so anything
//! counted only there would silently vanish from `profile.txt`. This module
//! is the complement: a process-wide registry of monotonically increasing
//! `u64` counters that any thread can bump cheaply (one atomic add after a
//! shared-lock name lookup; hot paths can hold on to the returned handle and
//! skip the lookup entirely).
//!
//! Unlike the collector, the registry is always on — counters cost an atomic
//! increment whether or not a trace is being recorded. They carry *counts*,
//! not timings, so there is no per-record allocation and no distortion of the
//! traced timeline.
//!
//! Naming convention: dotted lowercase paths, e.g. `sim.cache.hit`,
//! `engine.probe.parallel`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A live handle to one named counter. Cloning is cheap (`Arc`); keep one
/// around to bump a hot counter without re-resolving its name.
pub type Counter = Arc<AtomicU64>;

fn registry() -> &'static RwLock<BTreeMap<&'static str, Counter>> {
    static REGISTRY: OnceLock<RwLock<BTreeMap<&'static str, Counter>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// Resolve (registering on first use) the counter named `name`.
pub fn counter(name: &'static str) -> Counter {
    if let Some(c) = registry().read().expect("perf registry poisoned").get(name) {
        return Arc::clone(c);
    }
    let mut map = registry().write().expect("perf registry poisoned");
    Arc::clone(map.entry(name).or_default())
}

/// Increment `name` by one.
pub fn incr(name: &'static str) {
    add(name, 1);
}

/// Increment `name` by `n`.
pub fn add(name: &'static str, n: u64) {
    counter(name).fetch_add(n, Ordering::Relaxed);
}

/// Current value of `name` (0 if it was never touched).
pub fn get(name: &'static str) -> u64 {
    registry()
        .read()
        .expect("perf registry poisoned")
        .get(name)
        .map_or(0, |c| c.load(Ordering::Relaxed))
}

/// Snapshot every registered counter. Values are read individually and
/// relaxed, so a snapshot taken during concurrent updates is a consistent
/// *per-counter* view, not a global atomic cut — fine for reporting.
pub fn snapshot() -> BTreeMap<String, u64> {
    registry()
        .read()
        .expect("perf registry poisoned")
        .iter()
        .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect()
}

/// A lazily resolved, statically cached counter handle for hot paths.
///
/// [`incr`]/[`add`] re-resolve the name through the registry's shared
/// lock on every call; inner-loop call sites (the fleet's per-barrier
/// and per-batch counters) instead declare one of these as a `static`
/// and pay the lock exactly once per process — every later bump is a
/// single relaxed atomic add on the cached [`Counter`] `Arc`.
/// [`reset`] keeps handles valid (it zeroes the shared cells in place),
/// so benches that reset between runs see cached increments too.
///
/// ```
/// use memcnn_trace::perf;
/// static EVENTS: perf::CachedCounter = perf::CachedCounter::new("doc.cached.events");
/// EVENTS.incr();
/// EVENTS.add(2);
/// assert_eq!(perf::get("doc.cached.events"), 3);
/// ```
pub struct CachedCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl CachedCounter {
    /// A handle for `name`, resolved on first use.
    pub const fn new(name: &'static str) -> CachedCounter {
        CachedCounter { name, cell: OnceLock::new() }
    }

    fn cell(&self) -> &Counter {
        self.cell.get_or_init(|| counter(self.name))
    }

    /// Increment by one (atomic add; no registry lookup after the first
    /// call).
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell().fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell().load(Ordering::Relaxed)
    }
}

/// A point-in-time snapshot of every registered counter, used to report
/// *per-run deltas* instead of process-lifetime totals. The counters are
/// global and monotonically increasing, so within one process several
/// runs bleed into the same totals; a baseline taken before a run turns
/// them back into that run's own counts:
///
/// ```
/// use memcnn_trace::perf;
/// let base = perf::baseline();
/// perf::add("doc.baseline.example", 3);
/// assert_eq!(base.delta_of("doc.baseline.example"), 3);
/// assert!(base.delta().contains_key("doc.baseline.example"));
/// ```
#[derive(Clone, Debug)]
pub struct Baseline {
    at: BTreeMap<String, u64>,
}

/// Snapshot the registry as a [`Baseline`] for later delta queries.
pub fn baseline() -> Baseline {
    Baseline { at: snapshot() }
}

impl Baseline {
    /// Growth of one counter since the baseline (0 if it never moved;
    /// saturating, so a [`reset`] between baseline and query reads as 0
    /// rather than wrapping).
    pub fn delta_of(&self, name: &'static str) -> u64 {
        get(name).saturating_sub(self.at.get(name).copied().unwrap_or(0))
    }

    /// Every counter that grew since the baseline, with its growth.
    /// Counters registered after the baseline count from zero; unchanged
    /// counters are omitted.
    pub fn delta(&self) -> BTreeMap<String, u64> {
        snapshot()
            .into_iter()
            .filter_map(|(name, now)| {
                let before = self.at.get(&name).copied().unwrap_or(0);
                let d = now.saturating_sub(before);
                (d > 0).then_some((name, d))
            })
            .collect()
    }
}

/// Reset every registered counter to zero. Handles held by hot paths stay
/// valid (the `Arc`s are reused, not replaced).
pub fn reset() {
    for c in registry().read().expect("perf registry poisoned").values() {
        c.store(0, Ordering::Relaxed);
    }
}

/// Render the non-zero counters as a text block (used by the profile
/// exporter); empty string when nothing has been counted.
pub fn render() -> String {
    let snap = snapshot();
    let mut out = String::new();
    for (name, value) in snap.iter().filter(|(_, v)| **v > 0) {
        out.push_str(&format!("  {name:<28} {value:>12}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_accumulate_and_reset() {
        // One test exercises the whole lifecycle: the registry is global,
        // so parallel tests sharing names would race on asserts.
        let c = counter("test.perf.lifecycle");
        assert_eq!(c.load(Ordering::Relaxed), 0);
        incr("test.perf.lifecycle");
        add("test.perf.lifecycle", 41);
        assert_eq!(get("test.perf.lifecycle"), 42);
        // The handle observes the same cell the free functions use.
        assert_eq!(c.load(Ordering::Relaxed), 42);
        assert_eq!(snapshot().get("test.perf.lifecycle"), Some(&42));
        assert!(render().contains("test.perf.lifecycle"));

        reset();
        assert_eq!(get("test.perf.lifecycle"), 0);
        // Held handles survive a reset.
        c.fetch_add(7, Ordering::Relaxed);
        assert_eq!(get("test.perf.lifecycle"), 7);
    }

    #[test]
    fn cached_counter_tracks_the_registry_cell_across_resets() {
        static CACHED: CachedCounter = CachedCounter::new("test.perf.cached");
        CACHED.incr();
        CACHED.add(4);
        assert_eq!(get("test.perf.cached"), 5);
        assert_eq!(CACHED.get(), 5);
        // The free functions and the cached handle share one cell.
        add("test.perf.cached", 1);
        assert_eq!(CACHED.get(), 6);
        reset();
        CACHED.incr();
        assert_eq!(get("test.perf.cached"), 1, "cached handles survive reset()");
    }

    #[test]
    fn baseline_reports_per_run_deltas_not_lifetime_totals() {
        // "Run 1" pollutes the global counter, as real bench binaries do.
        add("test.perf.baseline", 100);
        let base = baseline();
        assert_eq!(base.delta_of("test.perf.baseline"), 0);
        assert!(!base.delta().contains_key("test.perf.baseline"));
        // "Run 2" under the baseline sees only its own counts.
        add("test.perf.baseline", 7);
        incr("test.perf.baseline.fresh"); // registered after the baseline
        assert_eq!(base.delta_of("test.perf.baseline"), 7);
        let d = base.delta();
        assert_eq!(d.get("test.perf.baseline"), Some(&7));
        assert_eq!(d.get("test.perf.baseline.fresh"), Some(&1));
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let threads = 8;
        let per_thread = 1000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        incr("test.perf.concurrent");
                    }
                });
            }
        });
        assert_eq!(get("test.perf.concurrent"), threads * per_thread);
    }
}
