//! memcnn-trace: structured tracing for the simulator and engine.
//!
//! A thread-local collector records typed spans (layers, transforms,
//! backward passes on the engine's simulated-time timeline; functional
//! execution on wall clock), per-kernel performance counters, and layout
//! decisions. Collection is off by default and every recording entry
//! point takes a closure, so the disabled path costs one thread-local
//! check — no allocation, no formatting, and no effect on simulated
//! timings.
//!
//! ```
//! use memcnn_trace as trace;
//! trace::start();
//! {
//!     let _net = trace::scope(trace::Scope::Network("lenet".into()));
//!     trace::record_span(|| trace::SpanEvent {
//!         name: "CV1".into(),
//!         track: trace::Track::Layers,
//!         ts_us: 0.0,
//!         dur_us: 10.0,
//!         args: vec![("impl".into(), "mm".into())],
//!     });
//! }
//! let t = trace::finish().unwrap();
//! assert_eq!(t.spans.len(), 1);
//! ```
#![forbid(unsafe_code)]

pub mod counters;
pub mod export;
pub mod intern;
pub mod perf;

pub use counters::{Aggregate, KernelCounters};
pub use intern::{intern, ArgValue, Sym};

use std::cell::RefCell;

/// One frame of the collector's scope stack. Kernel records snapshot the
/// stack, which is how the exporter attributes kernels to layers,
/// candidate implementations, planning, autotuning, or backward passes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Scope {
    /// A whole-network simulation.
    Network(String),
    /// One named layer.
    Layer(String),
    /// A candidate implementation being timed (name matches the
    /// `impl_name` the engine reports for the layer if chosen).
    Candidate(String),
    /// A layout transformation kernel.
    Transform,
    /// Layout planning (the heuristic + DP probing pass).
    Plan,
    /// Pooling autotune sweeps.
    Autotune,
    /// Backward-pass simulation.
    Backward,
    /// Functional (on-CPU) execution of a network.
    Run(String),
    /// Speculative work on a parallel probe worker (the index is the
    /// worker's job index within its fan-out). Records carrying this
    /// frame are cache prewarms, not part of the deterministic
    /// orchestrator timeline.
    Worker(usize),
}

impl Scope {
    /// Short label for display.
    pub fn label(&self) -> String {
        match self {
            Scope::Network(n) => format!("net:{n}"),
            Scope::Layer(n) => format!("layer:{n}"),
            Scope::Candidate(n) => format!("cand:{n}"),
            Scope::Transform => "transform".to_string(),
            Scope::Plan => "plan".to_string(),
            Scope::Autotune => "autotune".to_string(),
            Scope::Backward => "backward".to_string(),
            Scope::Run(n) => format!("run:{n}"),
            Scope::Worker(i) => format!("worker:{i}"),
        }
    }
}

/// Timeline tracks of the exported trace. `Layers`..`Backward` use the
/// engine's simulated clock; `Exec` uses the host's wall clock and is
/// exported as a separate process so the two time bases never mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Track {
    /// Chosen per-layer forward work (simulated time).
    Layers,
    /// Inserted layout transformations (simulated time).
    Transforms,
    /// Individual kernels of the chosen implementations (simulated time).
    Kernels,
    /// Backward-pass work (simulated time).
    Backward,
    /// Served inference batches (simulated serving-clock time; one span
    /// per launched batch).
    Serve,
    /// Fault-handling events on the serving clock: injected-fault
    /// retries (the span covers the backoff), OOM bucket downshifts,
    /// sheds, and degraded-mode transitions.
    Faults,
    /// Multi-device fleet serving (simulated serving-clock time; one
    /// span per launched batch, tagged with its device and network).
    Fleet,
    /// Functional execution on the host (wall clock).
    Exec,
}

impl Track {
    /// Thread id in the Chrome trace.
    pub fn tid(self) -> u64 {
        match self {
            Track::Layers => 1,
            Track::Transforms => 2,
            Track::Kernels => 3,
            Track::Backward => 4,
            Track::Serve => 5,
            Track::Faults => 6,
            Track::Fleet => 7,
            Track::Exec => 1,
        }
    }

    /// Process id in the Chrome trace (simulated vs wall clock).
    pub fn pid(self) -> u64 {
        match self {
            Track::Exec => 2,
            _ => 1,
        }
    }

    /// Human-readable track name.
    pub fn name(self) -> &'static str {
        match self {
            Track::Layers => "layers",
            Track::Transforms => "transforms",
            Track::Kernels => "kernels",
            Track::Backward => "backward",
            Track::Serve => "serving",
            Track::Faults => "faults",
            Track::Fleet => "fleet",
            Track::Exec => "exec (wall clock)",
        }
    }
}

/// A completed interval on one track.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Span name (layer name, kernel name, ...).
    pub name: String,
    /// Track the span lives on.
    pub track: Track,
    /// Start, microseconds on the track's time base.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Key/value annotations (layout, impl, ...). Keys and values are
    /// [`ArgValue`]s so hot recording loops can pass interned [`Sym`]s
    /// for the bounded name-like strings (devices, networks, tenants)
    /// instead of allocating fresh `String`s per event.
    pub args: Vec<(ArgValue, ArgValue)>,
}

/// One sample of a named counter series on one track — exported as a
/// Chrome/Perfetto counter-track event (`"ph": "C"`), so gauges like
/// queue depth or device utilization render as stepped area charts under
/// the span tracks. Samples of the same `name` form one series; their
/// timestamps are expected to be non-decreasing in record order.
#[derive(Clone, Debug)]
pub struct CounterEvent {
    /// Series name (e.g. `queue.depth`, `dev0.util`).
    pub name: String,
    /// Track whose time base the sample rides (pid/tid grouping).
    pub track: Track,
    /// Sample time, microseconds on the track's time base.
    pub ts_us: f64,
    /// Sampled value.
    pub value: f64,
}

/// Counters of one simulated kernel plus the scope path it ran under.
#[derive(Clone, Debug)]
pub struct KernelRecord {
    /// The counters, copied from the simulator's report.
    pub counters: KernelCounters,
    /// Scope stack at record time, outermost first.
    pub path: Vec<Scope>,
}

impl KernelRecord {
    /// Whether the path contains a given scope frame.
    pub fn in_scope(&self, s: &Scope) -> bool {
        self.path.contains(s)
    }

    /// The layer name on the path, if any.
    pub fn layer(&self) -> Option<&str> {
        self.path.iter().find_map(|s| match s {
            Scope::Layer(n) => Some(n.as_str()),
            _ => None,
        })
    }

    /// The candidate implementation on the path, if any.
    pub fn candidate(&self) -> Option<&str> {
        self.path.iter().find_map(|s| match s {
            Scope::Candidate(n) => Some(n.as_str()),
            _ => None,
        })
    }
}

/// One layout decision with its stated reason (heuristic rule firing, or
/// a profiled-DP override of the heuristic).
#[derive(Clone, Debug)]
pub struct Decision {
    /// Layer the decision applies to.
    pub layer: String,
    /// Chosen layout name.
    pub layout: String,
    /// `"heuristic"` or `"profiled"`.
    pub policy: String,
    /// Why (rule values, or what the DP overrode).
    pub reason: String,
}

/// Everything one collection window captured.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Timeline spans.
    pub spans: Vec<SpanEvent>,
    /// Per-kernel counter records.
    pub kernels: Vec<KernelRecord>,
    /// Layout decisions.
    pub decisions: Vec<Decision>,
    /// Counter-series samples (gauges over simulated time).
    pub counters: Vec<CounterEvent>,
    /// Free-form metadata (network, mechanism, device, ...).
    pub meta: Vec<(String, String)>,
}

impl Trace {
    /// Total number of recorded events of all kinds.
    pub fn event_count(&self) -> usize {
        self.spans.len()
            + self.kernels.len()
            + self.decisions.len()
            + self.counters.len()
            + self.meta.len()
    }

    /// The samples of one counter series, in record order.
    pub fn counter_series(&self, name: &str) -> Vec<&CounterEvent> {
        self.counters.iter().filter(|c| c.name == name).collect()
    }

    /// Metadata value by key.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Sum of span durations on one track, milliseconds.
    pub fn track_total_ms(&self, track: Track) -> f64 {
        // `+ 0.0` normalizes the empty sum: `Sum for f64` folds from -0.0.
        self.spans.iter().filter(|s| s.track == track).map(|s| s.dur_us).sum::<f64>() / 1e3 + 0.0
    }

    /// Sum of all simulated-timeline span durations (layers, transforms
    /// and backward), milliseconds. For a traced `simulate_network` run
    /// this equals `NetworkReport::total_time()` in ms.
    pub fn timeline_total_ms(&self) -> f64 {
        self.track_total_ms(Track::Layers)
            + self.track_total_ms(Track::Transforms)
            + self.track_total_ms(Track::Backward)
    }

    /// Aggregate counters over kernels selected by `filter`.
    pub fn aggregate_kernels<F: Fn(&KernelRecord) -> bool>(&self, filter: F) -> Aggregate {
        let mut agg = Aggregate::default();
        for k in self.kernels.iter().filter(|k| filter(k)) {
            agg.add(&k.counters);
        }
        agg
    }
}

#[derive(Default)]
struct Collector {
    trace: Trace,
    stack: Vec<Scope>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Begin collecting on this thread. Replaces any trace in progress.
pub fn start() {
    COLLECTOR.with(|c| *c.borrow_mut() = Some(Collector::default()));
}

/// Stop collecting and return the captured trace, or `None` if
/// collection was never started on this thread.
pub fn finish() -> Option<Trace> {
    COLLECTOR.with(|c| c.borrow_mut().take()).map(|col| col.trace)
}

/// Whether collection is active on this thread.
pub fn active() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Push a scope frame; the returned guard pops it on drop. A no-op when
/// collection is inactive.
#[must_use = "the scope pops when this guard drops"]
pub fn scope(s: Scope) -> ScopeGuard {
    let pushed = COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.stack.push(s);
            true
        } else {
            false
        }
    });
    ScopeGuard { pushed }
}

/// Guard returned by [`scope`].
pub struct ScopeGuard {
    pushed: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.pushed {
            COLLECTOR.with(|c| {
                if let Some(col) = c.borrow_mut().as_mut() {
                    col.stack.pop();
                }
            });
        }
    }
}

fn with_active<F: FnOnce(&mut Collector)>(f: F) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            f(col);
        }
    });
}

/// Record a timeline span. The closure only runs when collection is
/// active, so disabled call sites do no work.
pub fn record_span<F: FnOnce() -> SpanEvent>(f: F) {
    with_active(|col| {
        let s = f();
        col.trace.spans.push(s);
    });
}

/// Record one simulated kernel's counters, tagged with the current scope
/// path. The closure only runs when collection is active.
pub fn record_kernel<F: FnOnce() -> KernelCounters>(f: F) {
    with_active(|col| {
        let counters = f();
        let path = col.stack.clone();
        col.trace.kernels.push(KernelRecord { counters, path });
    });
}

/// Record a layout decision. The closure only runs when collection is
/// active.
pub fn record_decision<F: FnOnce() -> Decision>(f: F) {
    with_active(|col| {
        let d = f();
        col.trace.decisions.push(d);
    });
}

/// Record one counter-series sample. The closure only runs when
/// collection is active, so disabled call sites do no work.
pub fn record_counter<F: FnOnce() -> CounterEvent>(f: F) {
    with_active(|col| {
        let c = f();
        col.trace.counters.push(c);
    });
}

/// Attach a metadata key/value to the trace in progress.
pub fn set_meta(key: &str, value: &str) {
    with_active(|col| {
        col.trace.meta.push((key.to_string(), value.to_string()));
    });
}

/// Capture the active collection window for a parallel fan-out.
///
/// `fork()` snapshots the orchestrator's scope stack; each worker calls
/// [`Fork::attach`] to record into its own collector seeded with that
/// stack plus a [`Scope::Worker`] frame, and [`Fork::merge`] folds every
/// worker's records back into the orchestrator's trace in worker-index
/// order. When collection is inactive the whole cycle is a no-op, so
/// call sites need no `if trace::active()` gate.
pub fn fork() -> Fork {
    let seed = COLLECTOR.with(|c| c.borrow().as_ref().map(|col| col.stack.clone()));
    Fork { seed, sink: std::sync::Mutex::new(Vec::new()) }
}

/// A parallel fan-out's collection state: the orchestrator's scope stack
/// at fork time plus the sink worker traces merge into. See [`fork`].
pub struct Fork {
    /// Orchestrator stack at fork time; `None` when collection was
    /// inactive (attach/merge become no-ops).
    seed: Option<Vec<Scope>>,
    /// Completed worker traces, tagged with their worker index.
    sink: std::sync::Mutex<Vec<(usize, Trace)>>,
}

impl Fork {
    /// Begin collecting on the calling worker thread under a
    /// `Scope::Worker(index)` frame. Drop the guard when the worker's
    /// job finishes; its records then wait in the fork until
    /// [`Fork::merge`]. If the caller *is* the orchestrator (the
    /// parallel runtime fell back to inline execution), the frame is
    /// pushed onto the live collector instead and the records land
    /// directly.
    #[must_use = "the worker's records are captured while this guard lives"]
    pub fn attach(&self, index: usize) -> WorkerGuard<'_> {
        let Some(seed) = &self.seed else {
            return WorkerGuard { fork: self, index, mode: WorkerMode::Inactive };
        };
        let installed = COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            match slot.as_mut() {
                Some(col) => {
                    // Inline fallback: the orchestrator itself runs the
                    // job. Tag its records with the worker frame only.
                    col.stack.push(Scope::Worker(index));
                    false
                }
                None => {
                    let mut stack = seed.clone();
                    stack.push(Scope::Worker(index));
                    *slot = Some(Collector { trace: Trace::default(), stack });
                    true
                }
            }
        });
        let mode = if installed { WorkerMode::Installed } else { WorkerMode::Pushed };
        WorkerGuard { fork: self, index, mode }
    }

    /// Fold every detached worker's records into the active collector,
    /// ordered by worker index so merged traces are independent of
    /// thread scheduling. A no-op when collection is inactive.
    pub fn merge(self) {
        let mut parts = match self.sink.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        };
        parts.sort_by_key(|(i, _)| *i);
        with_active(move |col| {
            for (_, t) in parts {
                col.trace.spans.extend(t.spans);
                col.trace.kernels.extend(t.kernels);
                col.trace.decisions.extend(t.decisions);
                col.trace.counters.extend(t.counters);
                col.trace.meta.extend(t.meta);
            }
        });
    }
}

enum WorkerMode {
    /// Collection inactive at fork time: nothing to do.
    Inactive,
    /// Inline fallback on the orchestrator: pop the worker frame.
    Pushed,
    /// Detached worker: take the collector and park its trace in the
    /// fork's sink.
    Installed,
}

/// Guard returned by [`Fork::attach`]; finishing the worker's collection
/// window on drop.
pub struct WorkerGuard<'f> {
    fork: &'f Fork,
    index: usize,
    mode: WorkerMode,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        match self.mode {
            WorkerMode::Inactive => {}
            WorkerMode::Pushed => {
                COLLECTOR.with(|c| {
                    if let Some(col) = c.borrow_mut().as_mut() {
                        col.stack.pop();
                    }
                });
            }
            WorkerMode::Installed => {
                if let Some(col) = COLLECTOR.with(|c| c.borrow_mut().take()) {
                    let mut sink = match self.fork.sink.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    sink.push((self.index, col.trace));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, track: Track, ts: f64, dur: f64) -> SpanEvent {
        SpanEvent { name: name.to_string(), track, ts_us: ts, dur_us: dur, args: vec![] }
    }

    #[test]
    fn disabled_collection_records_nothing_and_runs_no_closures() {
        assert!(finish().is_none());
        assert!(!active());
        record_span(|| unreachable!("closure must not run while disabled"));
        record_kernel(|| unreachable!("closure must not run while disabled"));
        record_decision(|| unreachable!("closure must not run while disabled"));
        let _g = scope(Scope::Plan);
        assert!(finish().is_none());
    }

    #[test]
    fn collects_spans_kernels_and_scopes() {
        start();
        assert!(active());
        set_meta("network", "test-net");
        {
            let _n = scope(Scope::Network("test-net".to_string()));
            let _l = scope(Scope::Layer("CV1".to_string()));
            {
                let _c = scope(Scope::Candidate("mm".to_string()));
                record_kernel(|| KernelCounters {
                    name: "gemm".to_string(),
                    time_s: 1e-3,
                    ..Default::default()
                });
            }
            record_span(|| span("CV1", Track::Layers, 0.0, 1000.0));
        }
        record_span(|| span("transform", Track::Transforms, 1000.0, 50.0));
        let t = finish().unwrap();
        assert!(!active());
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.kernels.len(), 1);
        assert_eq!(t.meta("network"), Some("test-net"));
        let k = &t.kernels[0];
        assert_eq!(k.layer(), Some("CV1"));
        assert_eq!(k.candidate(), Some("mm"));
        assert!(k.in_scope(&Scope::Network("test-net".to_string())));
        assert!((t.timeline_total_ms() - 1.05).abs() < 1e-12);
        assert_eq!(t.aggregate_kernels(|k| k.layer() == Some("CV1")).kernels, 1);
        assert_eq!(t.aggregate_kernels(|k| k.in_scope(&Scope::Plan)).kernels, 0);
    }

    #[test]
    fn scope_guard_pops_in_reverse_order() {
        start();
        {
            let _a = scope(Scope::Plan);
            {
                let _b = scope(Scope::Autotune);
                record_kernel(KernelCounters::default);
            }
            record_kernel(KernelCounters::default);
        }
        record_kernel(KernelCounters::default);
        let t = finish().unwrap();
        assert_eq!(t.kernels[0].path, vec![Scope::Plan, Scope::Autotune]);
        assert_eq!(t.kernels[1].path, vec![Scope::Plan]);
        assert!(t.kernels[2].path.is_empty());
    }

    #[test]
    fn counters_record_and_read_back_as_series() {
        record_counter(|| unreachable!("closure must not run while disabled"));
        start();
        for (i, v) in [(0, 3.0), (1, 5.0), (2, 2.0)] {
            record_counter(|| CounterEvent {
                name: "queue.depth".to_string(),
                track: Track::Serve,
                ts_us: i as f64 * 10.0,
                value: v,
            });
        }
        record_counter(|| CounterEvent {
            name: "util".to_string(),
            track: Track::Serve,
            ts_us: 0.0,
            value: 0.5,
        });
        let t = finish().unwrap();
        assert_eq!(t.counters.len(), 4);
        assert_eq!(t.event_count(), 4);
        let depth = t.counter_series("queue.depth");
        assert_eq!(depth.len(), 3);
        assert_eq!(depth[1].value, 5.0);
        assert!(depth.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn start_resets_previous_window() {
        start();
        record_span(|| span("a", Track::Layers, 0.0, 1.0));
        start();
        let t = finish().unwrap();
        assert_eq!(t.event_count(), 0);
    }

    /// What one synthetic worker job records under a fork.
    fn worker_job(i: usize) {
        record_kernel(|| KernelCounters {
            name: format!("probe-{i}"),
            time_s: 1e-3,
            ..Default::default()
        });
        record_span(|| span(&format!("w{i}"), Track::Kernels, i as f64, 1.0));
    }

    #[test]
    fn forked_workers_merge_in_index_order_with_seeded_stacks() {
        start();
        let _p = scope(Scope::Plan);
        let fork = fork();
        std::thread::scope(|s| {
            // Spawn in reverse so scheduling order differs from index
            // order; merge must still sort by index.
            for i in (0..4).rev() {
                let fork = &fork;
                s.spawn(move || {
                    let _w = fork.attach(i);
                    worker_job(i);
                });
            }
        });
        fork.merge();
        worker_job(99); // orchestrator record, after the merge
        drop(_p);
        let t = finish().unwrap();
        assert_eq!(t.kernels.len(), 5);
        assert_eq!(t.spans.len(), 5);
        for i in 0..4 {
            assert_eq!(t.kernels[i].counters.name, format!("probe-{i}"));
            assert_eq!(t.kernels[i].path, vec![Scope::Plan, Scope::Worker(i)]);
        }
        assert_eq!(t.kernels[4].path, vec![Scope::Plan]);
    }

    #[test]
    fn inline_fallback_tags_orchestrator_records_with_worker_frame() {
        start();
        let _p = scope(Scope::Autotune);
        let fork = fork();
        {
            let _w = fork.attach(7);
            record_kernel(KernelCounters::default);
        }
        record_kernel(KernelCounters::default);
        fork.merge();
        drop(_p);
        let t = finish().unwrap();
        assert_eq!(t.kernels[0].path, vec![Scope::Autotune, Scope::Worker(7)]);
        assert_eq!(t.kernels[1].path, vec![Scope::Autotune]);
    }

    #[test]
    fn fork_is_a_noop_when_collection_is_inactive() {
        assert!(!active());
        let fork = fork();
        std::thread::scope(|s| {
            let fork = &fork;
            s.spawn(move || {
                let _w = fork.attach(0);
                record_kernel(|| unreachable!("collection must stay inactive"));
            });
        });
        fork.merge();
        assert!(finish().is_none());
    }
}
