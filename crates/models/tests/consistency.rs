//! Consistency between the Table 1 benchmark entries and the layers of the
//! actual networks (the table omits padding, so padding is excluded from
//! the comparison).

use memcnn_core::Network;
use memcnn_kernels::ConvShape;
use memcnn_models::table1;
use memcnn_models::{alexnet, cifar10, lenet, vgg16, zfnet};

fn conv_of(net: &Network, name: &str) -> ConvShape {
    net.layers()
        .iter()
        .find(|l| l.name == name)
        .unwrap_or_else(|| panic!("{} has no layer {name}", net.name))
        .conv_shape()
        .unwrap_or_else(|| panic!("{name} is not a conv layer"))
}

fn matches_ignoring_pad(a: &ConvShape, b: &ConvShape) -> bool {
    (a.n, a.ci, a.h, a.w, a.co, a.fh, a.fw, a.stride)
        == (b.n, b.ci, b.h, b.w, b.co, b.fh, b.fw, b.stride)
}

#[test]
fn lenet_layers_match_their_table_entries() {
    let net = lenet().unwrap();
    for name in ["CV1", "CV2"] {
        let t = table1::conv(name).unwrap();
        let l = conv_of(&net, name);
        assert!(matches_ignoring_pad(&l, &t), "{name}: {l} vs table {t}");
    }
}

#[test]
fn cifar_layers_match_their_table_entries() {
    let net = cifar10().unwrap();
    for name in ["CV3", "CV4"] {
        let t = table1::conv(name).unwrap();
        let l = conv_of(&net, name);
        assert!(matches_ignoring_pad(&l, &t), "{name}: {l} vs table {t}");
    }
}

#[test]
fn vgg_layers_match_their_table_entries() {
    let net = vgg16().unwrap();
    for name in ["CV9", "CV10", "CV11", "CV12"] {
        let t = table1::conv(name).unwrap();
        let l = conv_of(&net, name);
        assert!(matches_ignoring_pad(&l, &t), "{name}: {l} vs table {t}");
    }
}

#[test]
fn zfnet_inner_layers_match_their_table_entries() {
    // CV5 is the documented Table-1/architecture discrepancy (F printed as
    // 3, actual ZFNet 7x7 — see memcnn-models docs); CV6-CV8 must match.
    let net = zfnet().unwrap();
    for name in ["CV6", "CV7", "CV8"] {
        let t = table1::conv(name).unwrap();
        let l = conv_of(&net, name);
        assert!(matches_ignoring_pad(&l, &t), "{name}: {l} vs table {t}");
    }
}

#[test]
fn pooling_entries_match_alexnet_and_zfnet_chains() {
    // Table PL5-PL7 are AlexNet's pools; PL8-PL10 ZFNet's.
    let alex = alexnet().unwrap();
    let pools: Vec<_> = alex.layers().iter().filter_map(|l| l.pool_shape()).collect();
    let expected = [("PL5", 55, 96), ("PL6", 27, 256), ("PL7", 13, 256)];
    for ((name, h, c), got) in expected.iter().zip(&pools) {
        let t = table1::pool(name).unwrap();
        assert_eq!(got.h, *h, "{name}");
        assert_eq!(got.c, *c, "{name}");
        assert_eq!(
            (t.n, t.h, t.window, t.stride),
            (got.n, got.h, got.window, got.stride),
            "{name}: table {t} vs network {got}"
        );
        // Table lists AlexNet PL6/PL7 with the paper's channel counts
        // (192/256 — their AlexNet variant splits channels over 2 GPUs);
        // our single-tower net uses 256 both places, so C may differ on
        // PL6 only.
        if *name != "PL6" {
            assert_eq!(t.c, got.c, "{name}");
        }
    }
    let zf = zfnet().unwrap();
    let zpools: Vec<_> = zf.layers().iter().filter_map(|l| l.pool_shape()).collect();
    for (name, got) in ["PL8", "PL9", "PL10"].iter().zip(&zpools) {
        let t = table1::pool(name).unwrap();
        assert_eq!(
            (t.n, t.h, t.window, t.stride),
            (got.n, got.h, got.window, got.stride),
            "{name}: table {t} vs network {got}"
        );
    }
}

#[test]
fn classifier_entries_match_network_outputs() {
    for (net, class) in [
        (lenet().unwrap(), "CLASS1"),
        (cifar10().unwrap(), "CLASS2"),
        (alexnet().unwrap(), "CLASS3"),
        (zfnet().unwrap(), "CLASS4"),
        (vgg16().unwrap(), "CLASS5"),
    ] {
        let entry = table1::CLASS_LAYERS.iter().find(|e| e.name == class).unwrap();
        assert_eq!(net.input.n, entry.shape.batch, "{class}");
        assert_eq!(net.output().c, entry.shape.categories, "{class}");
    }
}
