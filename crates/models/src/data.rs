//! Synthetic dataset generators.
//!
//! Stand-ins for MNIST, CIFAR-10 and ImageNet (DESIGN.md §2): every
//! quantity the reproduced experiments measure depends only on tensor
//! shapes, so seeded random batches with the right shapes and value ranges
//! exercise the same code paths. Labels are provided for the classifier
//! backward pass.

use memcnn_tensor::{Layout, Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic labelled batch.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Input images.
    pub images: Tensor,
    /// One label per image.
    pub labels: Vec<usize>,
}

/// Generate a batch shaped like a dataset's input with `categories` labels.
pub fn synthetic_batch(shape: Shape, categories: usize, seed: u64) -> Batch {
    let images = Tensor::random(shape, Layout::NCHW, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
    let labels = (0..shape.n).map(|_| rng.gen_range(0..categories)).collect();
    Batch { images, labels }
}

/// MNIST-shaped batch (`n x 1 x 28 x 28`, 10 classes).
pub fn mnist_batch(n: usize, seed: u64) -> Batch {
    synthetic_batch(Shape::new(n, 1, 28, 28), 10, seed)
}

/// CIFAR-10-shaped batch after cuda-convnet cropping (`n x 3 x 24 x 24`).
pub fn cifar_batch(n: usize, seed: u64) -> Batch {
    synthetic_batch(Shape::new(n, 3, 24, 24), 10, seed)
}

/// ImageNet-shaped batch for AlexNet (`n x 3 x 227 x 227`, 1000 classes).
pub fn imagenet_batch_227(n: usize, seed: u64) -> Batch {
    synthetic_batch(Shape::new(n, 3, 227, 227), 1000, seed)
}

/// ImageNet-shaped batch for ZFNet/VGG (`n x 3 x 224 x 224`).
pub fn imagenet_batch_224(n: usize, seed: u64) -> Batch {
    synthetic_batch(Shape::new(n, 3, 224, 224), 1000, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_expected_shapes_and_labels() {
        let b = mnist_batch(16, 1);
        assert_eq!(b.images.shape(), Shape::new(16, 1, 28, 28));
        assert_eq!(b.labels.len(), 16);
        assert!(b.labels.iter().all(|&l| l < 10));
        let b = imagenet_batch_224(4, 2);
        assert_eq!(b.images.shape(), Shape::new(4, 3, 224, 224));
        assert!(b.labels.iter().all(|&l| l < 1000));
    }

    #[test]
    fn batches_are_deterministic_in_seed() {
        let a = cifar_batch(8, 7);
        let b = cifar_batch(8, 7);
        let c = cifar_batch(8, 8);
        assert_eq!(a.images.as_slice(), b.images.as_slice());
        assert_eq!(a.labels, b.labels);
        assert_ne!(a.images.as_slice(), c.images.as_slice());
    }

    #[test]
    fn values_are_bounded() {
        let b = mnist_batch(4, 3);
        assert!(b.images.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
    }
}
