//! # memcnn-models — the evaluation's layer zoo and networks
//!
//! [`table1`] encodes the paper's Table 1 verbatim (CV1-CV12, PL1-PL10,
//! CLASS1-CLASS5, plus the Fig 13 softmax sweep); [`networks`] builds the
//! five complete CNNs of Fig 14 (LeNet, CIFAR, AlexNet, ZFNet, VGG) with
//! batch sizes and layer chains consistent with that table; [`data`]
//! generates the synthetic dataset stand-ins.

#![warn(missing_docs)]

pub mod data;
pub mod networks;
pub mod table1;

pub use networks::{alexnet, all_networks, cifar10, lenet, vgg16, zfnet};
