//! The paper's Table 1: every benchmarked layer configuration.
//!
//! Columns are `(Ni, Co, H/W, Fw/Fh, Ci, S)` for convolutions and
//! `(Ni, H/W, Fw, Ci, S)` for pooling; classifier rows give
//! `(images, categories)`.

use memcnn_kernels::{ConvShape, PoolShape, SoftmaxShape};

/// A named convolutional layer from Table 1.
#[derive(Clone, Copy, Debug)]
pub struct ConvEntry {
    /// Table name (`CV1` .. `CV12`).
    pub name: &'static str,
    /// The shape.
    pub shape: ConvShape,
    /// Source network.
    pub network: &'static str,
}

/// A named pooling layer from Table 1.
#[derive(Clone, Copy, Debug)]
pub struct PoolEntry {
    /// Table name (`PL1` .. `PL10`).
    pub name: &'static str,
    /// The shape.
    pub shape: PoolShape,
    /// Source network.
    pub network: &'static str,
}

/// A named classifier configuration from Table 1.
#[derive(Clone, Copy, Debug)]
pub struct ClassEntry {
    /// Table name (`CLASS1` .. `CLASS5`).
    pub name: &'static str,
    /// The shape.
    pub shape: SoftmaxShape,
    /// Source network.
    pub network: &'static str,
}

/// The twelve convolutional layers (CV1-CV12).
pub const CONV_LAYERS: [ConvEntry; 12] = [
    ConvEntry { name: "CV1", shape: ConvShape::table1(128, 16, 28, 5, 1, 1), network: "LeNet" },
    ConvEntry { name: "CV2", shape: ConvShape::table1(128, 16, 14, 5, 16, 1), network: "LeNet" },
    ConvEntry { name: "CV3", shape: ConvShape::table1(128, 64, 24, 5, 3, 1), network: "Cifar10" },
    ConvEntry { name: "CV4", shape: ConvShape::table1(128, 64, 12, 5, 64, 1), network: "Cifar10" },
    ConvEntry { name: "CV5", shape: ConvShape::table1(64, 96, 224, 3, 3, 2), network: "ZFNet" },
    ConvEntry { name: "CV6", shape: ConvShape::table1(64, 256, 55, 5, 96, 2), network: "ZFNet" },
    ConvEntry { name: "CV7", shape: ConvShape::table1(64, 384, 13, 3, 256, 1), network: "ZFNet" },
    ConvEntry { name: "CV8", shape: ConvShape::table1(64, 384, 13, 3, 384, 1), network: "ZFNet" },
    ConvEntry { name: "CV9", shape: ConvShape::table1(32, 64, 224, 3, 3, 1), network: "VGG" },
    ConvEntry { name: "CV10", shape: ConvShape::table1(32, 256, 56, 3, 128, 1), network: "VGG" },
    ConvEntry { name: "CV11", shape: ConvShape::table1(32, 512, 28, 3, 256, 1), network: "VGG" },
    ConvEntry { name: "CV12", shape: ConvShape::table1(32, 512, 14, 3, 512, 1), network: "VGG" },
];

/// The ten pooling layers (PL1-PL10).
pub const POOL_LAYERS: [PoolEntry; 10] = [
    PoolEntry { name: "PL1", shape: PoolShape::table1(128, 28, 2, 16, 2), network: "LeNet" },
    PoolEntry { name: "PL2", shape: PoolShape::table1(128, 14, 2, 16, 2), network: "LeNet" },
    PoolEntry { name: "PL3", shape: PoolShape::table1(128, 24, 3, 64, 2), network: "Cifar10" },
    PoolEntry { name: "PL4", shape: PoolShape::table1(128, 12, 3, 64, 2), network: "Cifar10" },
    PoolEntry { name: "PL5", shape: PoolShape::table1(128, 55, 3, 96, 2), network: "AlexNet" },
    PoolEntry { name: "PL6", shape: PoolShape::table1(128, 27, 3, 192, 2), network: "AlexNet" },
    PoolEntry { name: "PL7", shape: PoolShape::table1(128, 13, 3, 256, 2), network: "AlexNet" },
    PoolEntry { name: "PL8", shape: PoolShape::table1(64, 110, 3, 96, 2), network: "ZFNet" },
    PoolEntry { name: "PL9", shape: PoolShape::table1(64, 26, 3, 256, 2), network: "ZFNet" },
    PoolEntry { name: "PL10", shape: PoolShape::table1(64, 13, 3, 256, 2), network: "ZFNet" },
];

/// The five classifier configurations (CLASS1-CLASS5).
pub const CLASS_LAYERS: [ClassEntry; 5] = [
    ClassEntry { name: "CLASS1", shape: SoftmaxShape::new(128, 10), network: "LeNet" },
    ClassEntry { name: "CLASS2", shape: SoftmaxShape::new(128, 10), network: "Cifar10" },
    ClassEntry { name: "CLASS3", shape: SoftmaxShape::new(128, 1000), network: "AlexNet" },
    ClassEntry { name: "CLASS4", shape: SoftmaxShape::new(64, 1000), network: "ZFNet" },
    ClassEntry { name: "CLASS5", shape: SoftmaxShape::new(32, 1000), network: "VGG" },
];

/// The twelve softmax configurations swept in Fig 13 (`batch/categories`).
pub const FIG13_SOFTMAX: [SoftmaxShape; 12] = [
    SoftmaxShape::new(32, 10),
    SoftmaxShape::new(64, 10),
    SoftmaxShape::new(128, 10),
    SoftmaxShape::new(256, 10),
    SoftmaxShape::new(32, 100),
    SoftmaxShape::new(64, 100),
    SoftmaxShape::new(128, 100),
    SoftmaxShape::new(32, 1000),
    SoftmaxShape::new(64, 1000),
    SoftmaxShape::new(128, 1000),
    SoftmaxShape::new(64, 10000),
    SoftmaxShape::new(128, 10000),
];

/// Look up a convolutional layer by its table name.
pub fn conv(name: &str) -> Option<ConvShape> {
    CONV_LAYERS.iter().find(|e| e.name == name).map(|e| e.shape)
}

/// Look up a pooling layer by its table name.
pub fn pool(name: &str) -> Option<PoolShape> {
    POOL_LAYERS.iter().find(|e| e.name == name).map(|e| e.shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shapes_validate() {
        for e in CONV_LAYERS {
            assert!(e.shape.validate().is_ok(), "{}", e.name);
        }
        for e in POOL_LAYERS {
            assert!(e.shape.validate().is_ok(), "{}", e.name);
        }
    }

    #[test]
    fn table_matches_paper_values() {
        // Spot checks against Table 1 as printed.
        let cv6 = conv("CV6").unwrap();
        assert_eq!((cv6.n, cv6.co, cv6.h, cv6.fh, cv6.ci, cv6.stride), (64, 256, 55, 5, 96, 2));
        let cv12 = conv("CV12").unwrap();
        assert_eq!((cv12.n, cv12.co, cv12.h, cv12.ci), (32, 512, 14, 512));
        let pl5 = pool("PL5").unwrap();
        assert_eq!((pl5.n, pl5.h, pl5.window, pl5.c, pl5.stride), (128, 55, 3, 96, 2));
        assert!(pl5.overlapped());
        // PL1/PL2 are the non-overlapped LeNet pools.
        assert!(!pool("PL1").unwrap().overlapped());
        assert!(!pool("PL2").unwrap().overlapped());
    }

    #[test]
    fn only_cv5_and_cv6_are_strided() {
        let strided: Vec<&str> =
            CONV_LAYERS.iter().filter(|e| e.shape.stride > 1).map(|e| e.name).collect();
        assert_eq!(strided, vec!["CV5", "CV6"]);
    }

    #[test]
    fn lookup_by_name() {
        assert!(conv("CV1").is_some());
        assert!(conv("CV13").is_none());
        assert!(pool("PL10").is_some());
        assert!(pool("PL11").is_none());
    }

    #[test]
    fn fig13_covers_small_and_large_configs() {
        assert_eq!(FIG13_SOFTMAX.len(), 12);
        assert!(FIG13_SOFTMAX.iter().any(|s| s.categories == 10));
        assert!(FIG13_SOFTMAX.iter().any(|s| s.categories == 10000));
    }
}
