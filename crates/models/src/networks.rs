//! The five complete networks of the evaluation (§III.A, Fig 14), with the
//! batch sizes Table 1 assigns them (LeNet/Cifar/AlexNet: 128, ZFNet: 64,
//! VGG: 32).

use memcnn_core::{NetError, Network, NetworkBuilder};
use memcnn_tensor::Shape;

/// LeNet on MNIST (batch 128, 1x28x28). Same-padded 5x5 convolutions keep
/// Table 1's layer inputs: CONV1 at 28, POOL1 at 28, CONV2/POOL2 at 14.
pub fn lenet() -> Result<Network, NetError> {
    NetworkBuilder::new("LeNet", Shape::new(128, 1, 28, 28))
        .conv("CV1", 16, 5, 1, 2)
        .relu("relu1")
        .max_pool("PL1", 2, 2)
        .conv("CV2", 16, 5, 1, 2)
        .relu("relu2")
        .max_pool("PL2", 2, 2)
        .fc("ip1", 128)
        .relu("relu3")
        .fc("ip2", 10)
        .softmax("prob")
        .build()
}

/// The cuda-convnet example network for CIFAR-10 (batch 128, 3x24x24 after
/// cropping): CONV3/POOL3 at 24, CONV4/POOL4 at 12 (ceil-mode pooling).
pub fn cifar10() -> Result<Network, NetError> {
    NetworkBuilder::new("CIFAR", Shape::new(128, 3, 24, 24))
        .conv("CV3", 64, 5, 1, 2)
        .relu("relu1")
        .max_pool("PL3", 3, 2)
        .conv("CV4", 64, 5, 1, 2)
        .relu("relu2")
        .max_pool("PL4", 3, 2)
        .fc("ip1", 64)
        .relu("relu3")
        .fc("ip2", 10)
        .softmax("prob")
        .build()
}

/// AlexNet (batch 128, 3x227x227): POOL layers at 55/27/13 as in Table 1's
/// PL5-PL7; classifier CLASS3 (128 images, 1000 categories).
pub fn alexnet() -> Result<Network, NetError> {
    NetworkBuilder::new("AlexNet", Shape::new(128, 3, 227, 227))
        .conv("CV1", 96, 11, 4, 0)
        .relu("relu1")
        .lrn("norm1", 5)
        .max_pool("PL1", 3, 2)
        .conv("CV2", 256, 5, 1, 2)
        .relu("relu2")
        .lrn("norm2", 5)
        .max_pool("PL2", 3, 2)
        .conv("CV3", 384, 3, 1, 1)
        .relu("relu3")
        .conv("CV4", 384, 3, 1, 1)
        .relu("relu4")
        .conv("CV5", 256, 3, 1, 1)
        .relu("relu5")
        .max_pool("PL3", 3, 2)
        .fc("fc6", 4096)
        .relu("relu6")
        .fc("fc7", 4096)
        .relu("relu7")
        .fc("fc8", 1000)
        .softmax("prob")
        .build()
}

/// ZFNet (batch 64, 3x224x224). Table 1 prints CONV5 with F=3, but its own
/// pooling row (PL8 at 110) pins the actual ZFNet first layer: 7x7 stride 2
/// (pad 1) -> 110. The CV5 *benchmark entry* stays as printed; the network
/// uses the architecture the table's layer chain implies.
pub fn zfnet() -> Result<Network, NetError> {
    NetworkBuilder::new("ZFNet", Shape::new(64, 3, 224, 224))
        .conv("CV5", 96, 7, 2, 1)
        .relu("relu1")
        .max_pool("PL8", 3, 2)
        .lrn("norm1", 5)
        .conv("CV6", 256, 5, 2, 0)
        .relu("relu2")
        .max_pool("PL9", 3, 2)
        .lrn("norm2", 5)
        .conv("CV7", 384, 3, 1, 1)
        .relu("relu3")
        .conv("CV8", 384, 3, 1, 1)
        .relu("relu4")
        .conv("CV8b", 256, 3, 1, 1)
        .relu("relu5")
        .max_pool("PL10", 3, 2)
        .fc("fc6", 4096)
        .relu("relu6")
        .fc("fc7", 4096)
        .relu("relu7")
        .fc("fc8", 1000)
        .softmax("prob")
        .build()
}

/// VGG-16 (batch 32, 3x224x224); CV9-CV12 are the first convolutions of
/// blocks 1, 3, 4 and 5.
pub fn vgg16() -> Result<Network, NetError> {
    NetworkBuilder::new("VGG", Shape::new(32, 3, 224, 224))
        .conv("CV9", 64, 3, 1, 1)
        .relu("relu1_1")
        .conv("conv1_2", 64, 3, 1, 1)
        .relu("relu1_2")
        .max_pool("pool1", 2, 2)
        .conv("conv2_1", 128, 3, 1, 1)
        .relu("relu2_1")
        .conv("conv2_2", 128, 3, 1, 1)
        .relu("relu2_2")
        .max_pool("pool2", 2, 2)
        .conv("CV10", 256, 3, 1, 1)
        .relu("relu3_1")
        .conv("conv3_2", 256, 3, 1, 1)
        .relu("relu3_2")
        .conv("conv3_3", 256, 3, 1, 1)
        .relu("relu3_3")
        .max_pool("pool3", 2, 2)
        .conv("CV11", 512, 3, 1, 1)
        .relu("relu4_1")
        .conv("conv4_2", 512, 3, 1, 1)
        .relu("relu4_2")
        .conv("conv4_3", 512, 3, 1, 1)
        .relu("relu4_3")
        .max_pool("pool4", 2, 2)
        .conv("CV12", 512, 3, 1, 1)
        .relu("relu5_1")
        .conv("conv5_2", 512, 3, 1, 1)
        .relu("relu5_2")
        .conv("conv5_3", 512, 3, 1, 1)
        .relu("relu5_3")
        .max_pool("pool5", 2, 2)
        .fc("fc6", 4096)
        .relu("relu6")
        .fc("fc7", 4096)
        .relu("relu7")
        .fc("fc8", 1000)
        .softmax("prob")
        .build()
}

/// All five networks in Fig 14 order.
pub fn all_networks() -> Vec<Network> {
    vec![
        lenet().expect("LeNet builds"),
        cifar10().expect("CIFAR builds"),
        alexnet().expect("AlexNet builds"),
        zfnet().expect("ZFNet builds"),
        vgg16().expect("VGG builds"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_core::LayerSpec;

    #[test]
    fn all_five_networks_build() {
        let nets = all_networks();
        assert_eq!(nets.len(), 5);
        let names: Vec<&str> = nets.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["LeNet", "CIFAR", "AlexNet", "ZFNet", "VGG"]);
    }

    #[test]
    fn lenet_matches_table1_layer_inputs() {
        let net = lenet().unwrap();
        let layer = |n: &str| net.layers().iter().find(|l| l.name == n).unwrap();
        assert_eq!(layer("CV1").input.h, 28);
        assert_eq!(layer("PL1").input.h, 28);
        assert_eq!(layer("CV2").input.h, 14);
        assert_eq!(layer("PL2").input.h, 14);
        assert_eq!(net.output(), Shape::new(128, 10, 1, 1));
    }

    #[test]
    fn cifar_matches_table1_layer_inputs() {
        let net = cifar10().unwrap();
        let layer = |n: &str| net.layers().iter().find(|l| l.name == n).unwrap();
        assert_eq!(layer("CV3").input.h, 24);
        assert_eq!(layer("PL3").input.h, 24);
        assert_eq!(layer("CV4").input.h, 12, "ceil-mode pooling: 24 -> 12");
        assert_eq!(layer("PL4").input.h, 12);
    }

    #[test]
    fn alexnet_matches_table1_pool_inputs() {
        let net = alexnet().unwrap();
        let layer = |n: &str| net.layers().iter().find(|l| l.name == n).unwrap();
        assert_eq!(layer("PL1").input.h, 55); // PL5 row
        assert_eq!(layer("PL2").input.h, 27); // PL6 row
        assert_eq!(layer("PL3").input.h, 13); // PL7 row
        assert_eq!(layer("PL1").input.c, 96);
        assert_eq!(layer("PL2").input.c, 256);
        assert_eq!(net.output(), Shape::new(128, 1000, 1, 1));
    }

    #[test]
    fn zfnet_matches_table1_pool_inputs() {
        let net = zfnet().unwrap();
        let layer = |n: &str| net.layers().iter().find(|l| l.name == n).unwrap();
        assert_eq!(layer("PL8").input.h, 110);
        assert_eq!(layer("PL9").input.h, 26);
        assert_eq!(layer("PL10").input.h, 13);
        assert_eq!(layer("CV6").input.h, 55);
        assert_eq!(layer("CV7").input.h, 13);
        assert_eq!(layer("CV7").input.c, 256);
    }

    #[test]
    fn vgg_matches_table1_conv_inputs() {
        let net = vgg16().unwrap();
        let layer = |n: &str| net.layers().iter().find(|l| l.name == n).unwrap();
        assert_eq!((layer("CV9").input.h, layer("CV9").input.c), (224, 3));
        assert_eq!((layer("CV10").input.h, layer("CV10").input.c), (56, 128));
        assert_eq!((layer("CV11").input.h, layer("CV11").input.c), (28, 256));
        assert_eq!((layer("CV12").input.h, layer("CV12").input.c), (14, 512));
        // 13 convolutions + 5 pools + 3 FC + softmax + ReLUs.
        let convs =
            net.layers().iter().filter(|l| matches!(l.spec, LayerSpec::Conv { .. })).count();
        assert_eq!(convs, 13);
    }
}
