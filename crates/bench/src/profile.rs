//! The `profile` mode: simulate one network under one mechanism with
//! tracing enabled, and render the capture as a Chrome/Perfetto
//! `trace.json` plus a human-readable `profile.txt`.

use crate::util::Ctx;
use memcnn_core::{Mechanism, Network, NetworkReport};
use memcnn_gpusim::SimError;
use memcnn_models as models;
use memcnn_trace::{self as trace, export, Trace};
use std::io;
use std::path::{Path, PathBuf};

/// Everything one profiling run produces.
pub struct ProfileOutput {
    /// The engine's per-layer report.
    pub report: NetworkReport,
    /// The raw trace capture.
    pub trace: Trace,
    /// Chrome trace-event JSON (load in Perfetto or `chrome://tracing`).
    pub trace_json: String,
    /// Human-readable profile.
    pub profile_text: String,
}

/// Simulate `net` under `mech` with tracing on and render both exports.
/// `training` adds the backward pass (and doubles transformation
/// charges, as the engine does).
pub fn profile_network(
    ctx: &Ctx,
    net: &Network,
    mech: Mechanism,
    training: bool,
    top_n: usize,
) -> Result<ProfileOutput, SimError> {
    trace::start();
    trace::set_meta("network", &net.name);
    trace::set_meta("mechanism", mech.label());
    trace::set_meta("device", &ctx.device.name);
    trace::set_meta("mode", if training { "training" } else { "forward" });
    let result = if training {
        ctx.engine.simulate_network_training(net, mech)
    } else {
        ctx.engine.simulate_network(net, mech)
    };
    let captured = trace::finish().expect("trace collection was started above");
    let report = result?;
    Ok(ProfileOutput {
        trace_json: export::chrome_trace(&captured),
        profile_text: export::text_profile(&captured, top_n),
        trace: captured,
        report,
    })
}

/// Write `trace.json` and `profile.txt` into `out_dir` (created if
/// missing). Returns the two paths.
pub fn write_profile(out_dir: &Path, out: &ProfileOutput) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(out_dir)?;
    let json_path = out_dir.join("trace.json");
    let text_path = out_dir.join("profile.txt");
    std::fs::write(&json_path, &out.trace_json)?;
    std::fs::write(&text_path, &out.profile_text)?;
    Ok((json_path, text_path))
}

/// Look up a bundled network by name (`lenet`, `cifar10`, `alexnet`,
/// `zfnet`, `vgg16`).
pub fn find_network(name: &str) -> Option<Network> {
    match name.to_ascii_lowercase().as_str() {
        "lenet" => models::lenet().ok(),
        "cifar10" => models::cifar10().ok(),
        "alexnet" => models::alexnet().ok(),
        "zfnet" => models::zfnet().ok(),
        "vgg16" | "vgg" => models::vgg16().ok(),
        _ => None,
    }
}

/// Parse a mechanism from its label or a forgiving lowercase alias.
pub fn find_mechanism(name: &str) -> Option<Mechanism> {
    let lower = name.to_ascii_lowercase();
    Mechanism::ALL.into_iter().find(|m| m.label().to_ascii_lowercase() == lower).or(
        match lower.as_str() {
            "opt" => Some(Mechanism::Opt),
            "mm" | "cudnn" => Some(Mechanism::CudnnMm),
            "fft" => Some(Mechanism::CudnnFft),
            "fft-tiling" | "fft-t" => Some(Mechanism::CudnnFftTiling),
            "best" => Some(Mechanism::CudnnBest),
            "convnet" | "cuda-convnet2" => Some(Mechanism::CudaConvnet),
            "caffe" => Some(Mechanism::Caffe),
            _ => None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_are_forgiving() {
        assert!(find_network("LeNet").is_some());
        assert!(find_network("vgg").is_some());
        assert!(find_network("resnet").is_none());
        assert_eq!(find_mechanism("Opt"), Some(Mechanism::Opt));
        assert_eq!(find_mechanism("cuDNN-MM"), Some(Mechanism::CudnnMm));
        assert_eq!(find_mechanism("fft"), Some(Mechanism::CudnnFft));
        assert_eq!(find_mechanism("nope"), None);
    }

    #[test]
    fn profiling_lenet_produces_consistent_outputs() {
        let ctx = Ctx::titan_black();
        let net = find_network("lenet").unwrap();
        let out = profile_network(&ctx, &net, Mechanism::Opt, false, 10).unwrap();
        // One layer span per layer, timeline agrees with the report.
        let layer_spans =
            out.trace.spans.iter().filter(|sp| sp.track == memcnn_trace::Track::Layers).count();
        assert_eq!(layer_spans, out.report.layers.len());
        let total_ms = out.report.total_time() * 1e3;
        assert!((out.trace.timeline_total_ms() - total_ms).abs() <= 1e-9 * total_ms.max(1.0));
        // Both exports mention the network and every layer.
        assert!(out.trace_json.contains("\"traceEvents\""));
        for l in &out.report.layers {
            assert!(out.profile_text.contains(&l.name), "{} missing", l.name);
        }
    }
}
