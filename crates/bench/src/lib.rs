//! # memcnn-bench — evaluation harnesses
//!
//! [`figures`] regenerates every table and figure of the paper's
//! evaluation (Figs 1, 3-6, 10-15, Table 1, and the in-text claims:
//! thresholds, ALU utilization, softmax ablation, memory overhead, Titan X
//! results), printing the same rows/series the paper reports. The
//! `figures` binary exposes them as subcommands; Criterion benches cover
//! the real CPU performance of the functional kernels.

#![warn(missing_docs)]

pub mod figures;
pub mod layer_times;
pub mod util;
