//! # memcnn-bench — evaluation harnesses
//!
//! [`figures`] regenerates every table and figure of the paper's
//! evaluation (Figs 1, 3-6, 10-15, Table 1, and the in-text claims:
//! thresholds, ALU utilization, softmax ablation, memory overhead, Titan X
//! results), printing the same rows/series the paper reports. The
//! `figures` binary exposes them as subcommands; Criterion benches cover
//! the real CPU performance of the functional kernels.
//!
//! [`profile`] is the tracing front-end: it runs one network under one
//! mechanism with the [`memcnn_trace`] collector enabled and writes a
//! Perfetto-loadable `trace.json` plus a human-readable `profile.txt`
//! (exposed as the `profile` binary).
//!
//! [`serving`] drives the `memcnn-serve` dynamic-batching simulator
//! through latency-vs-throughput sweeps (exposed as the `serve` binary,
//! which also emits `BENCH_serve.json` for CI).
//!
//! [`chaos`] holds the serving workload fixed and sweeps the seeded
//! fault-injection rate instead, measuring what the retry/downshift/shed
//! ladder costs in p99 latency and shed rate (exposed as the `chaos`
//! binary, which emits `BENCH_chaos.json` for CI).
//!
//! [`fleet`] scales the serving simulator out to multi-device fleets:
//! fixed per-device offered load, 1/2/4/8 homogeneous devices, every
//! placement policy, plus a bursty least-loaded-vs-round-robin
//! comparison (exposed as the `fleet` binary, which emits
//! `BENCH_fleet.json` for CI and gates on 4-device scaling).
//!
//! [`scenario`] is the regression harness on top of all of the above:
//! declarative `scenarios/*.toml` files (parsed by [`toml_lite`]) each
//! describe one fleet-serving run; the `scenario` binary executes them
//! as separate OS processes, merges their latency histograms, and diffs
//! every metric against committed `baselines/*.json` with per-metric
//! tolerances — failing CI with a structured report when one drifts.

#![warn(missing_docs)]

pub mod chaos;
pub mod figures;
pub mod fleet;
pub mod layer_times;
pub mod profile;
pub mod scenario;
pub mod serving;
pub mod slo;
pub mod toml_lite;
pub mod util;
