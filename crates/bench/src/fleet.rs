//! Multi-device fleet-serving scaling sweeps: the harness behind the
//! `fleet` binary and `BENCH_fleet.json`.
//!
//! The sweep holds per-device offered load fixed at
//! [`FLEET_LOAD_FRAC`] of single-device saturation and scales the fleet
//! 1 → 2 → 4 → 8 → 16 homogeneous devices, so ideal scaling is linear
//! images/sec at flat p99 — each device sees the same stream intensity
//! regardless of K. Every [`Placement`] policy runs the same seeded
//! stream; a separate bursty two-phase stream compares least-loaded
//! against round-robin where placement actually matters (round-robin
//! keeps feeding a backlogged device during a burst; least-loaded
//! spills to whichever frees up first).

use crate::serving::{IMAGES_MAX, IMAGES_MIN};
use crate::util::Ctx;
use memcnn_core::{EngineError, Network, NetworkBuilder};
use memcnn_serve::{
    serve_fleet, Arrival, BatchPolicy, FleetConfig, FleetReport, Phase, Placement, WorkloadConfig,
};
use memcnn_tensor::Shape;

/// Seed shared by every fleet stream (`BENCH_fleet.json` comparability).
pub const FLEET_SEED: u64 = 42;
/// Offered load per device, as a fraction of single-device saturation.
pub const FLEET_LOAD_FRAC: f64 = 0.7;
/// Requests per device in the scaling stream (total scales with K, so
/// stream duration stays constant and throughput ratios read as speedup).
pub const REQUESTS_PER_DEVICE: usize = 160;
/// Fleet sizes swept by the scaling run.
pub const FLEET_SIZES: [usize; 5] = [1, 2, 4, 8, 16];

/// One (fleet size, placement policy) operating point.
pub struct FleetRow {
    /// Devices in the fleet.
    pub devices: usize,
    /// Placement policy the point ran.
    pub placement: Placement,
    /// The finished run.
    pub report: FleetReport,
}

/// Poisson stream at [`FLEET_LOAD_FRAC`] of the K-device aggregate
/// capacity, carrying [`REQUESTS_PER_DEVICE`] · K requests. Duration is
/// independent of K by construction.
pub fn fleet_workload(k: usize, capacity_ips: f64, seed: u64) -> WorkloadConfig {
    let mean_images = (IMAGES_MIN + IMAGES_MAX) as f64 / 2.0;
    let rate = (FLEET_LOAD_FRAC * capacity_ips * k as f64 / mean_images).max(1.0);
    let duration = (REQUESTS_PER_DEVICE * k) as f64 / rate;
    let mut cfg = WorkloadConfig::poisson(rate, duration, seed);
    cfg.images_min = IMAGES_MIN;
    cfg.images_max = IMAGES_MAX;
    cfg
}

/// A two-phase stream for the K-device fleet: a quiet spell at 30% of
/// aggregate capacity, then a burst at 150% — placement policy decides
/// who absorbs the backlog.
pub fn bursty_workload(k: usize, capacity_ips: f64, seed: u64) -> WorkloadConfig {
    let mean_images = (IMAGES_MIN + IMAGES_MAX) as f64 / 2.0;
    let agg = capacity_ips * k as f64;
    let quiet = (0.3 * agg / mean_images).max(1.0);
    let burst = (1.5 * agg / mean_images).max(1.0);
    WorkloadConfig {
        phases: vec![
            Phase {
                arrival: Arrival::Poisson { rate: quiet },
                duration: (REQUESTS_PER_DEVICE * k / 4) as f64 / quiet,
            },
            Phase {
                arrival: Arrival::Poisson { rate: burst },
                duration: (REQUESTS_PER_DEVICE * k) as f64 / burst,
            },
        ],
        images_min: IMAGES_MIN,
        images_max: IMAGES_MAX,
        seed,
    }
}

/// Run one fleet point: K copies of the context's engine (homogeneous —
/// they share plan shapes and the process-wide sim cache) draining
/// `workload` under `placement`.
pub fn run_fleet(
    ctx: &Ctx,
    net: &Network,
    policy: BatchPolicy,
    workload: WorkloadConfig,
    placement: Placement,
    k: usize,
) -> Result<FleetReport, EngineError> {
    let engines: Vec<&memcnn_core::Engine> = (0..k).map(|_| &ctx.engine).collect();
    let mut cfg = FleetConfig::new(workload, policy, placement);
    cfg.mechanism = ctx.mechanism();
    serve_fleet(&engines, std::slice::from_ref(net), &cfg)
}

/// FNV-1a digest of a fleet run's order-sensitive contents: per-request
/// latency bits and placements, then every device's batch records
/// (launch/done bits, bucket, network). Two runs with equal digests
/// committed the same batches with the same contents in the same order —
/// the cross-thread-count determinism observable the `fleet` binary's
/// wallclock matrix checks.
pub fn digest(report: &FleetReport) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for &l in &report.latencies {
        eat(l.to_bits());
    }
    for &p in &report.placements {
        eat(p as u64);
    }
    for dev in &report.devices {
        for b in &dev.batches {
            eat(b.record.launch.to_bits());
            eat(b.record.done.to_bits());
            eat(b.record.bucket as u64);
            eat(b.network as u64);
        }
    }
    h
}

/// Requests carried by the orchestrator-throughput stream mode.
pub const STREAM_REQUESTS: usize = 1_000_000;
/// Fleet size of the showcase stream run.
pub const STREAM_K: usize = 64;
/// Fleet size of the indexed-vs-linear router throughput gate.
pub const STREAM_GATE_K: usize = 16;

/// A deliberately tiny network for the stream mode: one small conv and a
/// pool, so each committed batch costs almost nothing to simulate and
/// wallclock is dominated by the orchestrator — routing, placement, lane
/// arbitration, and commit selection. That is the code the route index
/// accelerates, so this is where its speedup is measurable.
pub fn stream_net() -> Network {
    NetworkBuilder::new("stream-tiny", Shape::new(1, 4, 16, 16))
        .conv("CV", 8, 3, 1, 1)
        .max_pool("PL", 2, 2)
        .build()
        .expect("stream net")
}

/// A single-phase Poisson stream sized to carry about `n_requests`
/// requests at 90% of the K-device aggregate capacity — hot enough that
/// queues stay busy (every event exercises the router) without the
/// unbounded backlog an overloaded stream would accumulate.
pub fn stream_workload(
    n_requests: usize,
    capacity_ips: f64,
    k: usize,
    seed: u64,
) -> WorkloadConfig {
    let mean_images = (IMAGES_MIN + IMAGES_MAX) as f64 / 2.0;
    let rate = (0.9 * capacity_ips * k as f64 / mean_images).max(1.0);
    let duration = n_requests as f64 / rate;
    let mut cfg = WorkloadConfig::poisson(rate, duration, seed);
    cfg.images_min = IMAGES_MIN;
    cfg.images_max = IMAGES_MAX;
    cfg
}

/// The scaling sweep: every fleet size in `sizes` × every policy in
/// `placements`, each at [`FLEET_LOAD_FRAC`] per-device load on the
/// seeded stream.
pub fn scaling(
    ctx: &Ctx,
    net: &Network,
    policy: BatchPolicy,
    capacity_ips: f64,
    placements: &[Placement],
    sizes: &[usize],
) -> Result<Vec<FleetRow>, EngineError> {
    let mut rows = Vec::new();
    for &k in sizes {
        for &placement in placements {
            let workload = fleet_workload(k, capacity_ips, FLEET_SEED);
            let report = run_fleet(ctx, net, policy, workload, placement, k)?;
            rows.push(FleetRow { devices: k, placement, report });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_scale_requests_not_duration() {
        let rate = |a: &Arrival| match *a {
            Arrival::Poisson { rate } | Arrival::Uniform { rate } => rate,
        };
        let w1 = fleet_workload(1, 1000.0, 7);
        let w4 = fleet_workload(4, 1000.0, 7);
        assert!((w1.duration() - w4.duration()).abs() < 1e-9, "duration must not scale with K");
        let (r1, r4) = (rate(&w1.phases[0].arrival), rate(&w4.phases[0].arrival));
        assert!((r4 / r1 - 4.0).abs() < 1e-9, "rate must scale linearly with K");
        let b = bursty_workload(2, 1000.0, 7);
        assert_eq!(b.phases.len(), 2);
        assert!(rate(&b.phases[1].arrival) > rate(&b.phases[0].arrival));
    }
}
