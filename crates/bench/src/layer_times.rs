//! Per-layer timing helpers shared by the figure harnesses.

use crate::util::Ctx;
use memcnn_core::autotune::{tune_pooling, PoolTuneResult};
use memcnn_gpusim::{simulate, simulate_sequence, KernelReport, KernelSpec};
use memcnn_kernels::conv::direct_chwn::DirectConvChwn;
use memcnn_kernels::conv::fft_nchw::{FftConvMode, FftConvNchw};
use memcnn_kernels::conv::mm_nchw::MmConvNchw;
use memcnn_kernels::pool::chwn::PoolChwn;
use memcnn_kernels::pool::nchw::{PoolNchwCaffe, PoolNchwCudnn};
use memcnn_kernels::softmax::{
    cudnn_pipeline, five_kernel_pipeline, SoftmaxFused, SoftmaxFusedSerial,
};
use memcnn_kernels::{ConvShape, PoolShape, SoftmaxShape};

/// All convolution implementation timings for one layer (seconds).
#[derive(Clone, Copy, Debug)]
pub struct ConvTimes {
    /// cuda-convnet direct convolution (CHWN).
    pub direct: f64,
    /// Caffe/cuDNN MM convolution (NCHW).
    pub mm: f64,
    /// cuDNN FFT mode (None = execution failure, as in Fig 5).
    pub fft: Option<f64>,
    /// cuDNN FFT-tiling mode.
    pub fft_tiling: Option<f64>,
}

impl ConvTimes {
    /// Best NCHW-side time (cuDNN-Best per layer).
    pub fn nchw_best(&self) -> f64 {
        [Some(self.mm), self.fft, self.fft_tiling]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min)
    }

    /// Best overall time and its layout/implementation label.
    pub fn best(&self) -> (f64, &'static str) {
        if self.direct <= self.nchw_best() {
            (self.direct, "CHWN/direct")
        } else if self.nchw_best() == self.mm {
            (self.mm, "NCHW/mm")
        } else if self.fft == Some(self.nchw_best()) {
            (self.nchw_best(), "NCHW/fft")
        } else {
            (self.nchw_best(), "NCHW/fft-t")
        }
    }
}

/// Measure every convolution implementation on a layer.
pub fn conv_times(ctx: &Ctx, shape: &ConvShape) -> ConvTimes {
    let direct = simulate(&ctx.device, &DirectConvChwn::new(*shape), &ctx.opts)
        .expect("direct conv simulates")
        .time();
    let mm =
        MmConvNchw::new(*shape).simulate(&ctx.device, &ctx.opts).expect("mm conv simulates").time();
    let fft_time = |mode| {
        FftConvNchw::new(*shape, mode)
            .ok()
            .and_then(|p| p.simulate(&ctx.device, &ctx.opts).ok())
            .map(|r| r.time())
    };
    ConvTimes {
        direct,
        mm,
        fft: fft_time(FftConvMode::Full),
        fft_tiling: fft_time(FftConvMode::Tiled),
    }
}

/// All pooling implementation reports for one layer.
#[derive(Clone, Debug)]
pub struct PoolTimes {
    /// cuda-convnet (CHWN, uncoarsened).
    pub chwn: KernelReport,
    /// Caffe (NCHW).
    pub caffe: KernelReport,
    /// cuDNN (NCHW).
    pub cudnn: KernelReport,
    /// The paper's Opt (CHWN, auto-tuned coarsening).
    pub opt: KernelReport,
    /// The tuning search result behind `opt`.
    pub tune: PoolTuneResult,
}

/// Measure every pooling implementation on a layer.
pub fn pool_times(ctx: &Ctx, shape: &PoolShape) -> PoolTimes {
    let chwn = simulate(&ctx.device, &PoolChwn::new(*shape), &ctx.opts).expect("chwn pool");
    let caffe = simulate(&ctx.device, &PoolNchwCaffe::new(*shape), &ctx.opts).expect("caffe pool");
    let cudnn = simulate(&ctx.device, &PoolNchwCudnn::new(*shape), &ctx.opts).expect("cudnn pool");
    let tune = tune_pooling(&ctx.device, shape, &ctx.opts);
    let opt = simulate(&ctx.device, &PoolChwn::coarsened(*shape, tune.ux, tune.uy), &ctx.opts)
        .expect("tuned pool");
    PoolTimes { chwn, caffe, cudnn, opt, tune }
}

/// Softmax implementation timings (seconds) and achieved bandwidths (GB/s,
/// app-level: one read + one write of the matrix over the total time).
#[derive(Clone, Copy, Debug)]
pub struct SoftmaxTimes {
    /// cuda-convnet/Caffe 5-kernel baseline.
    pub five_kernel: f64,
    /// cuDNN-style multi-kernel baseline.
    pub cudnn: f64,
    /// Fused, serial inner loops (ablation step 1).
    pub fused_serial: f64,
    /// The paper's fused + parallel-inner kernel (Opt).
    pub fused: f64,
    /// Matrix payload bytes (in + out).
    pub payload_bytes: f64,
}

impl SoftmaxTimes {
    /// Best baseline time (the Fig 13 `BL_Best` bar).
    pub fn baseline_best(&self) -> f64 {
        self.five_kernel.min(self.cudnn)
    }

    /// App-level bandwidth of a time, GB/s.
    pub fn bandwidth(&self, t: f64) -> f64 {
        self.payload_bytes / t / 1e9
    }
}

/// Measure every softmax implementation on a configuration.
pub fn softmax_times(ctx: &Ctx, shape: SoftmaxShape) -> SoftmaxTimes {
    let seq = |ks: Vec<Box<dyn KernelSpec + Send>>| {
        let refs: Vec<&dyn KernelSpec> = ks.iter().map(|k| k.as_ref() as _).collect();
        simulate_sequence(&ctx.device, &refs, &ctx.opts).expect("softmax pipeline").time()
    };
    SoftmaxTimes {
        five_kernel: seq(five_kernel_pipeline(shape)),
        cudnn: seq(cudnn_pipeline(shape)),
        fused_serial: simulate(&ctx.device, &SoftmaxFusedSerial::new(shape), &ctx.opts)
            .expect("fused serial")
            .time(),
        fused: simulate(&ctx.device, &SoftmaxFused::new(shape), &ctx.opts).expect("fused").time(),
        payload_bytes: 2.0 * shape.len() as f64 * 4.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_models::table1;

    #[test]
    fn conv_times_cover_fft_failures() {
        let ctx = Ctx::titan_black();
        let cv5 = table1::conv("CV5").unwrap();
        let t = conv_times(&ctx, &cv5);
        assert!(t.fft.is_none() && t.fft_tiling.is_none(), "CV5 FFT must fail");
        assert!(t.direct > 0.0 && t.mm > 0.0);
        assert_eq!(t.nchw_best(), t.mm);
    }

    #[test]
    fn best_picks_the_minimum() {
        let t = ConvTimes { direct: 2.0, mm: 3.0, fft: Some(1.0), fft_tiling: Some(1.5) };
        assert_eq!(t.best(), (1.0, "NCHW/fft"));
        let t2 = ConvTimes { direct: 0.5, mm: 3.0, fft: None, fft_tiling: None };
        assert_eq!(t2.best(), (0.5, "CHWN/direct"));
    }

    #[test]
    fn pool_times_orderings() {
        let ctx = Ctx::titan_black();
        let pl3 = table1::pool("PL3").unwrap();
        let t = pool_times(&ctx, &pl3);
        assert!(t.chwn.time() < t.caffe.time());
        assert!(t.chwn.time() < t.cudnn.time());
        assert!(t.opt.time() <= t.chwn.time() * 1.001);
    }

    #[test]
    fn softmax_times_orderings() {
        let ctx = Ctx::titan_black();
        let t = softmax_times(&ctx, SoftmaxShape::new(128, 1000));
        assert!(t.fused < t.baseline_best());
        assert!(t.fused_serial < t.five_kernel);
        assert!(t.bandwidth(t.fused) > t.bandwidth(t.baseline_best()));
    }
}
