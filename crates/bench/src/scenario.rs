//! The scenario regression harness: declarative serving scenarios,
//! committed metric baselines, and a structured drift report.
//!
//! A scenario is a TOML file (see [`crate::toml_lite`] for the subset)
//! describing one fleet-serving run — devices, networks, placement
//! policy, workload shape, fault plan — plus the invariants it must hold
//! and the per-metric tolerances its baseline diff uses:
//!
//! ```toml
//! [scenario]
//! name = "burst-queue-weighted"
//! suite = "burst"
//! devices = ["titan-black", "titan-black", "titan-black", "titan-black"]
//! networks = ["alexnet"]
//! placement = "queue-weighted"
//! requests_per_device = 120
//! seed = 42
//!
//! [workload]
//! kind = "bursty"        # or "poisson" with load_frac
//! quiet_frac = 0.3
//! burst_frac = 1.5
//!
//! [tenant.frontend]      # optional: enables the SLO-aware scheduler
//! class = "interactive"  # or "standard" / "best-effort"
//! p99_budget_ms = 25.0   # interactive only
//! weight = 1.0
//! rate = 200.0           # optional admission cap, requests/second
//!
//! [device_faults]         # optional: whole-device lifecycle faults
//! seed = 7
//! drain_rate = 0.2        # events per device-second
//! crash_at_ms = 120.0     # scheduled crash (with crash_device)
//! crash_device = 1
//! repair_ms = 40.0
//! warmup_ms = 15.0
//!
//! [expect]
//! min_requests = 100
//! max_shed_rate = 0.25
//!
//! [tolerances]
//! default = 0.02
//! "latency.p99" = 0.05
//! ```
//!
//! The `scenario` binary runs each file as its own OS process (release
//! bench binary), collects one JSON result line per run, merges the
//! per-run latency histograms (mergeability is the histogram's design
//! property), and diffs every metric against `baselines/<name>.json`.
//! A drift beyond tolerance fails CI with a structured report naming the
//! scenario, the metric, both values, and the relative drift.

use crate::serving::{sweep_policy, IMAGES_MAX, IMAGES_MIN};
use crate::toml_lite::{self, Section, Value};
use crate::util::Ctx;
use memcnn_core::Network;
use memcnn_metrics::{Histogram, MetricsTimeline};
use memcnn_serve::{
    capacity_images_per_sec, feasible_max_batch, serve_fleet, Arrival, FaultPolicy, FleetConfig,
    FleetReport, Phase, Placement, TenantSpec, WorkloadConfig,
};
use serde::Serialize;
use std::collections::BTreeMap;

/// Workload shape of a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadKind {
    /// Single-phase Poisson stream at `load_frac` of aggregate capacity.
    Poisson {
        /// Offered load as a fraction of fleet saturation.
        load_frac: f64,
    },
    /// Two-phase stream: quiet spell, then a burst.
    Bursty {
        /// Quiet-phase load fraction.
        quiet_frac: f64,
        /// Burst-phase load fraction (typically > 1).
        burst_frac: f64,
    },
}

/// Optional seeded fault plan of a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Fault-stream seed.
    pub seed: u64,
    /// Per-launch transient probability.
    pub launch_failed: f64,
    /// Per-launch execute-OOM probability.
    pub device_oom: f64,
    /// Per-launch throttle probability.
    pub throttle: f64,
    /// Retry budget per batch.
    pub max_retries: u32,
    /// Queue-wait shed deadline, milliseconds (`None`: never shed).
    pub shed_deadline_ms: Option<f64>,
}

/// Optional seeded device-lifecycle fault plan of a scenario
/// (`[device_faults]`): whole-device crash / hang / drain events on top
/// of the kernel-level `[faults]` plan. Rates are events per device per
/// second; the optional scheduled crash pins one deterministic mid-run
/// device loss for chaos scenarios.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceFaultSpec {
    /// Device-fault-stream seed.
    pub seed: u64,
    /// Crash rate, events per device-second.
    pub crash_rate: f64,
    /// Hang rate, events per device-second.
    pub hang_rate: f64,
    /// Planned-drain rate, events per device-second.
    pub drain_rate: f64,
    /// Rate-quantization epoch, milliseconds (`None`: plan default).
    pub epoch_ms: Option<f64>,
    /// Down-state repair window, milliseconds (`None`: plan default).
    pub repair_ms: Option<f64>,
    /// Warming window, milliseconds (`None`: plan default).
    pub warmup_ms: Option<f64>,
    /// Scheduled crash time, milliseconds into the stream.
    pub crash_at_ms: Option<f64>,
    /// Device the scheduled crash hits.
    pub crash_device: Option<u32>,
}

impl DeviceFaultSpec {
    /// Expand the spec into the plan the fleet consumes.
    pub fn plan(&self) -> memcnn_gpusim::DeviceFaultPlan {
        let mut plan = memcnn_gpusim::DeviceFaultPlan::new(
            self.seed,
            self.crash_rate,
            self.hang_rate,
            self.drain_rate,
        );
        if let Some(ms) = self.epoch_ms {
            plan = plan.with_epoch(ms / 1e3);
        }
        if let Some(ms) = self.repair_ms {
            plan = plan.with_repair(ms / 1e3);
        }
        if let Some(ms) = self.warmup_ms {
            plan = plan.with_warmup(ms / 1e3);
        }
        if let (Some(ms), Some(d)) = (self.crash_at_ms, self.crash_device) {
            plan = plan.crash_at(ms / 1e3, d);
        }
        plan
    }
}

/// Invariants a scenario run must satisfy regardless of baselines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Expectations {
    /// The stream must carry at least this many requests.
    pub min_requests: usize,
    /// Shed fraction must not exceed this.
    pub max_shed_rate: f64,
}

impl Default for Expectations {
    fn default() -> Expectations {
        Expectations { min_requests: 1, max_shed_rate: 1.0 }
    }
}

/// Relative drift tolerances for the baseline diff.
#[derive(Clone, Debug, PartialEq)]
pub struct Tolerances {
    /// Tolerance for metrics without a per-metric entry.
    pub default: f64,
    /// Per-metric overrides (keys are metric names, e.g. `latency.p99`).
    pub per_metric: BTreeMap<String, f64>,
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances { default: 0.02, per_metric: BTreeMap::new() }
    }
}

impl Tolerances {
    /// The tolerance applied to `metric`.
    pub fn tol(&self, metric: &str) -> f64 {
        self.per_metric.get(metric).copied().unwrap_or(self.default)
    }
}

/// One parsed scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (the baseline filename stem).
    pub name: String,
    /// Suite the scenario belongs to (`deterministic`, `chaos`, ...).
    pub suite: String,
    /// Device kinds, one per fleet slot (`titan-black` / `titan-x`).
    pub devices: Vec<String>,
    /// Networks multiplexed over the fleet (model names).
    pub networks: Vec<String>,
    /// Placement policy, by [`Placement::name`].
    pub placement: Placement,
    /// Requests per device in the stream.
    pub requests_per_device: usize,
    /// Workload seed.
    pub seed: u64,
    /// Workload shape.
    pub workload: WorkloadKind,
    /// Service tenants (`[tenant.NAME]` sections, name-ascending).
    /// Empty: the class-blind scheduler, byte-identical to pre-tenant
    /// baselines.
    pub tenants: Vec<TenantSpec>,
    /// Optional fault injection.
    pub faults: Option<FaultSpec>,
    /// Optional device-lifecycle faults (`[device_faults]`).
    pub device_faults: Option<DeviceFaultSpec>,
    /// Hard invariants.
    pub expect: Expectations,
    /// Baseline-diff tolerances.
    pub tolerances: Tolerances,
}

fn need<'a>(sec: &'a Section, section: &str, key: &str) -> Result<&'a Value, String> {
    sec.get(key).ok_or_else(|| format!("[{section}] is missing `{key}`"))
}

fn need_f64(sec: &Section, section: &str, key: &str) -> Result<f64, String> {
    need(sec, section, key)?.as_f64().ok_or_else(|| format!("[{section}] `{key}` must be a number"))
}

fn need_u64(sec: &Section, section: &str, key: &str) -> Result<u64, String> {
    need(sec, section, key)?
        .as_u64()
        .ok_or_else(|| format!("[{section}] `{key}` must be a non-negative integer"))
}

/// Parse a scenario file.
pub fn parse_spec(text: &str) -> Result<ScenarioSpec, String> {
    let doc = toml_lite::parse(text)?;
    let sc = doc.section("scenario").ok_or("missing [scenario] section")?;
    let name = need(sc, "scenario", "name")?
        .as_str()
        .ok_or("[scenario] `name` must be a string")?
        .to_string();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') {
        return Err(format!("scenario name {name:?} must be a filename-safe slug"));
    }
    let suite = need(sc, "scenario", "suite")?
        .as_str()
        .ok_or("[scenario] `suite` must be a string")?
        .to_string();
    let devices: Vec<String> = need(sc, "scenario", "devices")?
        .as_str_array()
        .ok_or("[scenario] `devices` must be an array of strings")?
        .into_iter()
        .map(str::to_string)
        .collect();
    if devices.is_empty() {
        return Err("[scenario] `devices` must not be empty".to_string());
    }
    for d in &devices {
        if engine_for(d).is_none() {
            return Err(format!("unknown device kind {d:?} (titan-black / titan-x)"));
        }
    }
    let networks: Vec<String> = need(sc, "scenario", "networks")?
        .as_str_array()
        .ok_or("[scenario] `networks` must be an array of strings")?
        .into_iter()
        .map(str::to_string)
        .collect();
    if networks.is_empty() {
        return Err("[scenario] `networks` must not be empty".to_string());
    }
    for n in &networks {
        if network_for(n).is_none() {
            return Err(format!("unknown network {n:?}"));
        }
    }
    let placement_name = need(sc, "scenario", "placement")?
        .as_str()
        .ok_or("[scenario] `placement` must be a string")?;
    let placement = Placement::from_name(placement_name)
        .ok_or_else(|| format!("unknown placement {placement_name:?}"))?;
    let requests_per_device = need_u64(sc, "scenario", "requests_per_device")? as usize;
    let seed = need_u64(sc, "scenario", "seed")?;

    let wl = doc.section("workload").ok_or("missing [workload] section")?;
    let kind =
        need(wl, "workload", "kind")?.as_str().ok_or("[workload] `kind` must be a string")?;
    let workload = match kind {
        "poisson" => WorkloadKind::Poisson { load_frac: need_f64(wl, "workload", "load_frac")? },
        "bursty" => WorkloadKind::Bursty {
            quiet_frac: need_f64(wl, "workload", "quiet_frac")?,
            burst_frac: need_f64(wl, "workload", "burst_frac")?,
        },
        other => return Err(format!("unknown workload kind {other:?}")),
    };

    let mut tenants = Vec::new();
    for section in doc.section_names() {
        let Some(tname) = section.strip_prefix("tenant.") else { continue };
        if tname.is_empty()
            || !tname.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!("tenant name {tname:?} must be a metrics-key-safe slug"));
        }
        let sec = doc.section(section).expect("section_names yields live sections");
        let class = need(sec, section, "class")?
            .as_str()
            .ok_or_else(|| format!("[{section}] `class` must be a string"))?;
        let weight = match sec.get("weight") {
            None => 1.0,
            Some(v) => v
                .as_f64()
                .filter(|w| *w > 0.0)
                .ok_or_else(|| format!("[{section}] `weight` must be a positive number"))?,
        };
        let budget_ms = sec.get("p99_budget_ms").map(|v| {
            v.as_f64()
                .filter(|b| *b > 0.0)
                .ok_or_else(|| format!("[{section}] `p99_budget_ms` must be a positive number"))
        });
        let mut spec = match class {
            "interactive" => {
                let ms = budget_ms.ok_or_else(|| {
                    format!("[{section}] interactive tenants need `p99_budget_ms`")
                })??;
                TenantSpec::interactive(tname, ms / 1e3, weight)
            }
            "standard" | "best-effort" => {
                if budget_ms.is_some() {
                    return Err(format!(
                        "[{section}] `p99_budget_ms` only applies to interactive tenants"
                    ));
                }
                match class {
                    "standard" => TenantSpec::standard(tname, weight),
                    _ => TenantSpec::best_effort(tname, weight),
                }
            }
            other => {
                return Err(format!(
                    "[{section}] unknown class {other:?} (interactive / standard / best-effort)"
                ))
            }
        };
        if let Some(v) = sec.get("rate") {
            let rate = v
                .as_f64()
                .filter(|r| *r > 0.0)
                .ok_or_else(|| format!("[{section}] `rate` must be a positive number"))?;
            spec = spec.with_rate_limit(rate);
        }
        tenants.push(spec);
    }

    let faults = match doc.section("faults") {
        None => None,
        Some(f) => Some(FaultSpec {
            seed: need_u64(f, "faults", "seed")?,
            launch_failed: f.get("launch_failed").and_then(Value::as_f64).unwrap_or(0.0),
            device_oom: f.get("device_oom").and_then(Value::as_f64).unwrap_or(0.0),
            throttle: f.get("throttle").and_then(Value::as_f64).unwrap_or(0.0),
            max_retries: f
                .get("max_retries")
                .and_then(Value::as_u64)
                .unwrap_or(FaultPolicy::default().max_retries as u64)
                as u32,
            shed_deadline_ms: f.get("shed_deadline_ms").and_then(Value::as_f64),
        }),
    };

    let device_faults = match doc.section("device_faults") {
        None => None,
        Some(f) => {
            let spec = DeviceFaultSpec {
                seed: need_u64(f, "device_faults", "seed")?,
                crash_rate: f.get("crash_rate").and_then(Value::as_f64).unwrap_or(0.0),
                hang_rate: f.get("hang_rate").and_then(Value::as_f64).unwrap_or(0.0),
                drain_rate: f.get("drain_rate").and_then(Value::as_f64).unwrap_or(0.0),
                epoch_ms: f.get("epoch_ms").and_then(Value::as_f64),
                repair_ms: f.get("repair_ms").and_then(Value::as_f64),
                warmup_ms: f.get("warmup_ms").and_then(Value::as_f64),
                crash_at_ms: f.get("crash_at_ms").and_then(Value::as_f64),
                crash_device: f.get("crash_device").and_then(Value::as_u64).map(|d| d as u32),
            };
            if spec.crash_at_ms.is_some() != spec.crash_device.is_some() {
                return Err(
                    "[device_faults] `crash_at_ms` and `crash_device` must be set together"
                        .to_string(),
                );
            }
            if let Some(d) = spec.crash_device {
                if d as usize >= devices.len() {
                    return Err(format!(
                        "[device_faults] `crash_device` {d} is outside the {}-device fleet",
                        devices.len()
                    ));
                }
            }
            Some(spec)
        }
    };

    let mut expect = Expectations::default();
    if let Some(ex) = doc.section("expect") {
        if let Some(v) = ex.get("min_requests") {
            expect.min_requests =
                v.as_u64().ok_or("[expect] `min_requests` must be an integer")? as usize;
        }
        if let Some(v) = ex.get("max_shed_rate") {
            expect.max_shed_rate = v.as_f64().ok_or("[expect] `max_shed_rate` must be a number")?;
        }
    }

    let mut tolerances = Tolerances::default();
    if let Some(tl) = doc.section("tolerances") {
        for (key, v) in tl {
            let t = v.as_f64().ok_or_else(|| format!("[tolerances] `{key}` must be a number"))?;
            if key == "default" {
                tolerances.default = t;
            } else {
                tolerances.per_metric.insert(key.clone(), t);
            }
        }
    }

    Ok(ScenarioSpec {
        name,
        suite,
        devices,
        networks,
        placement,
        requests_per_device,
        seed,
        workload,
        tenants,
        faults,
        device_faults,
        expect,
        tolerances,
    })
}

/// The measurement context for a device kind, or `None` if unknown.
pub fn engine_for(device: &str) -> Option<Ctx> {
    match device {
        "titan-black" => Some(Ctx::titan_black()),
        "titan-x" => Some(Ctx::titan_x()),
        _ => None,
    }
}

/// A network by model name, or `None` if unknown.
pub fn network_for(name: &str) -> Option<Network> {
    let built = match name {
        "lenet" => memcnn_models::lenet(),
        "cifar10" => memcnn_models::cifar10(),
        "alexnet" => memcnn_models::alexnet(),
        "zfnet" => memcnn_models::zfnet(),
        "vgg16" => memcnn_models::vgg16(),
        _ => return None,
    };
    built.ok()
}

/// The machine-readable outcome of one scenario run: the metric map the
/// baseline diff operates on, the run's latency histogram (mergeable
/// across scenarios), and any violated invariants. Serialized as the
/// agent process's single-line JSON result.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioResult {
    /// Scenario name.
    pub scenario: String,
    /// Suite name.
    pub suite: String,
    /// Metric name → value. Latencies are milliseconds.
    pub metrics: BTreeMap<String, f64>,
    /// The run's served-latency histogram.
    pub hist: Histogram,
    /// Violated `[expect]` invariants (empty: all held).
    pub expect_failures: Vec<String>,
}

/// Run one scenario. Returns the result plus the full metrics timeline
/// (the caller writes it as `<name>.metrics.json`).
pub fn run(spec: &ScenarioSpec) -> Result<(ScenarioResult, MetricsTimeline), String> {
    let ctxs: Vec<Ctx> = spec
        .devices
        .iter()
        .map(|d| engine_for(d).ok_or_else(|| format!("unknown device {d:?}")))
        .collect::<Result<_, String>>()?;
    let nets: Vec<Network> = spec
        .networks
        .iter()
        .map(|n| network_for(n).ok_or_else(|| format!("unknown network {n:?}")))
        .collect::<Result<_, String>>()?;
    let k = ctxs.len();

    // Size the stream off the *first* (device, network) pair's saturation
    // — a fixed, documented convention so heterogeneous scenarios stay
    // reproducible without per-device load math.
    let (max_batch, top_plan) =
        feasible_max_batch(&ctxs[0].engine, &nets[0], ctxs[0].mechanism(), &[256, 128, 64, 32])
            .ok_or_else(|| format!("{}: no feasible batch size", nets[0].name))?;
    let capacity = capacity_images_per_sec(max_batch, &top_plan);
    let policy = sweep_policy(max_batch, top_plan.total_time());
    let mean_images = (IMAGES_MIN + IMAGES_MAX) as f64 / 2.0;
    let total_requests = spec.requests_per_device * k;
    let agg = capacity * k as f64;
    let phases = match spec.workload {
        WorkloadKind::Poisson { load_frac } => {
            let rate = (load_frac * agg / mean_images).max(1.0);
            vec![Phase {
                arrival: Arrival::Poisson { rate },
                duration: total_requests as f64 / rate,
            }]
        }
        WorkloadKind::Bursty { quiet_frac, burst_frac } => {
            let quiet = (quiet_frac * agg / mean_images).max(1.0);
            let burst = (burst_frac * agg / mean_images).max(1.0);
            vec![
                Phase {
                    arrival: Arrival::Poisson { rate: quiet },
                    duration: (total_requests / 4) as f64 / quiet,
                },
                Phase {
                    arrival: Arrival::Poisson { rate: burst },
                    duration: total_requests as f64 / burst,
                },
            ]
        }
    };
    let workload =
        WorkloadConfig { phases, images_min: IMAGES_MIN, images_max: IMAGES_MAX, seed: spec.seed };

    let mut cfg = FleetConfig::new(workload, policy, spec.placement);
    cfg.mechanism = ctxs[0].mechanism();
    if !spec.tenants.is_empty() {
        cfg = cfg.with_tenants(spec.tenants.clone());
    }
    if let Some(f) = spec.faults {
        let plan = memcnn_gpusim::FaultPlan::new(f.seed, f.launch_failed, f.device_oom, f.throttle);
        let fpol = FaultPolicy {
            max_retries: f.max_retries,
            shed_deadline: f.shed_deadline_ms.map(|ms| ms / 1e3),
            ..FaultPolicy::default()
        };
        cfg = cfg.with_faults(plan, fpol);
    }
    if let Some(df) = &spec.device_faults {
        cfg = cfg.with_device_faults(df.plan());
    }
    let engines: Vec<&memcnn_core::Engine> = ctxs.iter().map(|c| &c.engine).collect();
    let report = serve_fleet(&engines, &nets, &cfg).map_err(|e| format!("{}: {e:?}", spec.name))?;

    let metrics = extract_metrics(&report, k);
    let mut expect_failures = Vec::new();
    if report.requests < spec.expect.min_requests {
        expect_failures.push(format!(
            "requests {} < min_requests {}",
            report.requests, spec.expect.min_requests
        ));
    }
    if report.shed_rate() > spec.expect.max_shed_rate {
        expect_failures.push(format!(
            "shed_rate {:.4} > max_shed_rate {:.4}",
            report.shed_rate(),
            spec.expect.max_shed_rate
        ));
    }

    let result = ScenarioResult {
        scenario: spec.name.clone(),
        suite: spec.suite.clone(),
        metrics,
        hist: report.timeline.latency_hist.clone(),
        expect_failures,
    };
    Ok((result, report.timeline))
}

/// Flatten a fleet report (and its timeline) into the scenario metric
/// map. Latency values are milliseconds; `hist.*` percentiles come from
/// the log-bucketed histogram (bucket resolution, bit-deterministic);
/// `queue.*` read the per-device timelines — `queue.imbalance` is the
/// convoy observable (peak device backlog over the mean peak; 1.0 is a
/// perfectly spread fleet).
pub fn extract_metrics(report: &FleetReport, k: usize) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    let lat = report.latency();
    m.insert("requests".to_string(), report.requests as f64);
    m.insert("shed".to_string(), report.shed_requests as f64);
    m.insert("shed_rate".to_string(), report.shed_rate());
    m.insert("throughput_ips".to_string(), report.throughput_images_per_sec());
    m.insert("makespan_ms".to_string(), report.makespan * 1e3);
    m.insert("latency.p50".to_string(), lat.p50 * 1e3);
    m.insert("latency.p95".to_string(), lat.p95 * 1e3);
    m.insert("latency.p99".to_string(), lat.p99 * 1e3);
    m.insert("fault.injected".to_string(), report.faults.injected as f64);
    m.insert("fault.retried".to_string(), report.faults.retried as f64);
    m.insert("fault.degraded".to_string(), report.faults.degraded as f64);
    m.insert("fault.shed".to_string(), report.faults.shed as f64);
    let hist = &report.timeline.latency_hist;
    m.insert("hist.count".to_string(), hist.count() as f64);
    m.insert("hist.p50".to_string(), hist.percentile(50.0) * 1e3);
    m.insert("hist.p99".to_string(), hist.percentile(99.0) * 1e3);
    let peaks: Vec<f64> = (0..k)
        .map(|d| {
            report
                .timeline
                .series(&format!("dev{d}.queue.images"))
                .map_or(0.0, |s| s.samples.iter().map(|p| p.value).fold(0.0, f64::max))
        })
        .collect();
    let peak = peaks.iter().copied().fold(0.0, f64::max);
    let mean_peak = peaks.iter().sum::<f64>() / peaks.len().max(1) as f64;
    m.insert("queue.peak".to_string(), peak);
    m.insert("queue.imbalance".to_string(), if mean_peak > 0.0 { peak / mean_peak } else { 1.0 });
    // Tenant metrics exist only for tenant-enabled scenarios: the diff
    // treats one-sided metrics as schema drift, so emitting them
    // unconditionally would break every pre-tenant baseline.
    if let Some(slo) = &report.slo {
        m.insert("slo.violations".to_string(), slo.violations as f64);
        m.insert("slo.rejected".to_string(), slo.rejected as f64);
        m.insert("slo.early_commits".to_string(), slo.early_commits as f64);
        m.insert("slo.preemptions".to_string(), slo.preemptions as f64);
        m.insert("slo.fairness_ratio".to_string(), slo.fairness.ratio);
        m.insert("slo.device_seconds".to_string(), slo.device_seconds);
        m.insert("slo.cost".to_string(), slo.cost());
        for t in &slo.tenants {
            let key = |field: &str| format!("tenant.{}.{field}", t.name);
            m.insert(key("p99"), t.latency.p99 * 1e3);
            m.insert(key("completed"), t.completed as f64);
            m.insert(key("shed"), t.shed as f64);
            m.insert(key("rejected"), t.rejected as f64);
            m.insert(key("violations"), t.violations as f64);
        }
    }
    // Health metrics exist only for device-fault scenarios, for the
    // same one-sided schema-drift reason as the tenant block.
    if let Some(h) = &report.health {
        m.insert("health.downs".to_string(), h.downs as f64);
        m.insert("health.ups".to_string(), h.ups as f64);
        m.insert("health.failed_over".to_string(), h.failed_over as f64);
        m.insert("health.requeued".to_string(), h.requeued as f64);
        m.insert("health.transit_shed".to_string(), h.transit_shed as f64);
        m.insert("health.warm_compiles".to_string(), h.warm_compiles as f64);
    }
    m
}

/// Parse an agent process's JSON result line back into a
/// [`ScenarioResult`] (the vendored serde has no derive-level
/// deserialization, so this walks the parsed `Value` by hand).
pub fn parse_result(line: &str) -> Result<ScenarioResult, String> {
    let v = serde_json::from_str(line).map_err(|e| format!("bad result JSON: {e}"))?;
    let str_of = |key: &str| -> Result<String, String> {
        Ok(v.get(key)
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| format!("result missing string `{key}`"))?
            .to_string())
    };
    let mut metrics = BTreeMap::new();
    for (name, val) in v
        .get("metrics")
        .and_then(serde_json::Value::as_object)
        .ok_or("result missing `metrics` object")?
    {
        metrics.insert(
            name.clone(),
            val.as_f64().ok_or_else(|| format!("metric `{name}` is not a number"))?,
        );
    }
    let hist = parse_hist(v.get("hist").ok_or("result missing `hist`")?)?;
    let expect_failures = v
        .get("expect_failures")
        .and_then(serde_json::Value::as_array)
        .map(|a| a.iter().filter_map(|s| s.as_str().map(str::to_string)).collect())
        .unwrap_or_default();
    Ok(ScenarioResult {
        scenario: str_of("scenario")?,
        suite: str_of("suite")?,
        metrics,
        hist,
        expect_failures,
    })
}

/// Rebuild a [`Histogram`] from its serialized `{count, buckets}` form.
pub fn parse_hist(v: &serde_json::Value) -> Result<Histogram, String> {
    let mut hist = Histogram::new();
    let buckets = v
        .get("buckets")
        .and_then(serde_json::Value::as_array)
        .ok_or("hist missing `buckets` array")?;
    for pair in buckets {
        let p = pair.as_array().filter(|p| p.len() == 2).ok_or("hist bucket must be a pair")?;
        let idx = p[0].as_u64().ok_or("bucket index must be an integer")? as u32;
        let n = p[1].as_u64().ok_or("bucket count must be an integer")?;
        hist.record_bucket(idx, n);
    }
    let count = v.get("count").and_then(serde_json::Value::as_u64).ok_or("hist missing `count`")?;
    if count != hist.count() {
        return Err(format!("hist count {count} != bucket sum {}", hist.count()));
    }
    Ok(hist)
}

/// One out-of-tolerance metric.
#[derive(Clone, Debug, Serialize)]
pub struct Drift {
    /// The drifting metric.
    pub metric: String,
    /// Baseline value (NaN: the metric is new — no baseline entry).
    pub baseline: f64,
    /// Current value (NaN: the metric disappeared).
    pub current: f64,
    /// Relative drift `|current - baseline| / max(|baseline|, 1e-9)`.
    pub rel: f64,
    /// The tolerance that was applied.
    pub tol: f64,
}

/// Diff a current metric map against its baseline. Returns every metric
/// whose relative drift exceeds its tolerance, plus metrics present on
/// only one side (schema drift is a regression too — refresh baselines
/// deliberately with `--update-baselines`, not by accident).
pub fn diff_metrics(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    tol: &Tolerances,
) -> Vec<Drift> {
    let mut drifts = Vec::new();
    for (metric, &base) in baseline {
        let t = tol.tol(metric);
        match current.get(metric) {
            None => drifts.push(Drift {
                metric: metric.clone(),
                baseline: base,
                current: f64::NAN,
                rel: f64::INFINITY,
                tol: t,
            }),
            Some(&cur) => {
                let rel = (cur - base).abs() / base.abs().max(1e-9);
                if rel > t {
                    drifts.push(Drift {
                        metric: metric.clone(),
                        baseline: base,
                        current: cur,
                        rel,
                        tol: t,
                    });
                }
            }
        }
    }
    for (metric, &cur) in current {
        if !baseline.contains_key(metric) {
            drifts.push(Drift {
                metric: metric.clone(),
                baseline: f64::NAN,
                current: cur,
                rel: f64::INFINITY,
                tol: tol.tol(metric),
            });
        }
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
[scenario]
name = "unit-poisson"
suite = "deterministic"
devices = ["titan-black"]
networks = ["alexnet"]
placement = "least-loaded"
requests_per_device = 8
seed = 42

[workload]
kind = "poisson"
load_frac = 0.5

[expect]
min_requests = 4

[tolerances]
default = 0.02
"latency.p99" = 0.05
"#;

    #[test]
    fn spec_parses_and_validates() {
        let spec = parse_spec(SPEC).unwrap();
        assert_eq!(spec.name, "unit-poisson");
        assert_eq!(spec.placement, Placement::LeastLoaded);
        assert_eq!(spec.workload, WorkloadKind::Poisson { load_frac: 0.5 });
        assert_eq!(spec.expect.min_requests, 4);
        assert_eq!(spec.tolerances.tol("latency.p99"), 0.05);
        assert_eq!(spec.tolerances.tol("anything-else"), 0.02);
        assert!(spec.faults.is_none());
        assert!(spec.device_faults.is_none());

        assert!(parse_spec(&SPEC.replace("alexnet", "resnet")).is_err(), "unknown network");
        assert!(parse_spec(&SPEC.replace("titan-black", "h100")).is_err(), "unknown device");
        assert!(parse_spec(&SPEC.replace("least-loaded", "random")).is_err(), "unknown policy");
        assert!(parse_spec(&SPEC.replace("\"poisson\"", "\"steady\"")).is_err(), "unknown kind");
    }

    const TENANTS: &str = r#"
[tenant.frontend]
class = "interactive"
p99_budget_ms = 25.0
weight = 1.0
rate = 200.0

[tenant.analytics]
class = "best-effort"
weight = 2.0
"#;

    #[test]
    fn tenant_sections_parse_name_ascending() {
        let spec = parse_spec(&format!("{SPEC}{TENANTS}")).unwrap();
        assert_eq!(spec.tenants.len(), 2);
        // Section names come back ascending, so `analytics` leads — the
        // order is part of the attribution function and must be stable.
        assert_eq!(spec.tenants[0].name, "analytics");
        assert_eq!(spec.tenants[0].class.name(), "best-effort");
        assert_eq!(spec.tenants[0].weight, 2.0);
        assert_eq!(spec.tenants[0].rate_limit, None);
        assert_eq!(spec.tenants[1].name, "frontend");
        assert_eq!(spec.tenants[1].class.p99_budget(), Some(0.025));
        assert_eq!(spec.tenants[1].rate_limit, Some(200.0));

        assert!(parse_spec(SPEC).unwrap().tenants.is_empty(), "no sections, no tenants");
        let bad = |s: &str, r: &str| parse_spec(&format!("{SPEC}{}", TENANTS.replace(s, r)));
        assert!(bad("\"interactive\"", "\"premium\"").is_err(), "unknown class");
        assert!(bad("p99_budget_ms = 25.0", "").is_err(), "interactive needs a budget");
        assert!(bad("weight = 2.0", "weight = -1.0").is_err(), "weights must be positive");
        assert!(
            bad("class = \"best-effort\"", "class = \"best-effort\"\np99_budget_ms = 9.0").is_err(),
            "budgets are interactive-only"
        );
        assert!(bad("[tenant.analytics]", "[tenant.bad name]").is_err(), "slug-safe names");
    }

    const DEVICE_FAULTS: &str = r#"
[device_faults]
seed = 7
drain_rate = 0.2
crash_at_ms = 120.0
crash_device = 0
repair_ms = 40.0
warmup_ms = 15.0
"#;

    #[test]
    fn device_fault_sections_parse_and_validate() {
        let spec = parse_spec(&format!("{SPEC}{DEVICE_FAULTS}")).unwrap();
        let df = spec.device_faults.expect("[device_faults] parses");
        assert_eq!(df.seed, 7);
        assert_eq!(df.drain_rate, 0.2);
        assert_eq!((df.crash_at_ms, df.crash_device), (Some(120.0), Some(0)));
        let plan = df.plan();
        assert_eq!(plan.repair, 0.04);
        assert_eq!(plan.warmup, 0.015);
        assert_eq!(plan.scheduled.len(), 1);
        assert!(!plan.is_noop());

        let bad = |s: &str, r: &str| parse_spec(&format!("{SPEC}{}", DEVICE_FAULTS.replace(s, r)));
        assert!(bad("seed = 7", "").is_err(), "seed is required");
        assert!(bad("crash_device = 0", "").is_err(), "scheduled crash needs both keys");
        assert!(bad("crash_device = 0", "crash_device = 9").is_err(), "device must be in fleet");
    }

    #[test]
    fn diff_flags_drift_beyond_tolerance_and_schema_changes() {
        let tol = Tolerances { default: 0.02, per_metric: BTreeMap::new() };
        let mut base = BTreeMap::new();
        base.insert("latency.p99".to_string(), 10.0);
        base.insert("requests".to_string(), 200.0);
        let mut cur = base.clone();
        assert!(diff_metrics(&base, &cur, &tol).is_empty(), "identical maps must pass");

        // 1% drift passes at 2% tolerance; 5% fails and names the metric.
        cur.insert("latency.p99".to_string(), 10.1);
        assert!(diff_metrics(&base, &cur, &tol).is_empty());
        cur.insert("latency.p99".to_string(), 10.5);
        let drifts = diff_metrics(&base, &cur, &tol);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].metric, "latency.p99");
        assert!((drifts[0].rel - 0.05).abs() < 1e-12);

        // A metric on only one side is schema drift.
        cur.insert("latency.p99".to_string(), 10.0);
        cur.remove("requests");
        cur.insert("brand_new".to_string(), 1.0);
        let drifts = diff_metrics(&base, &cur, &tol);
        let names: Vec<&str> = drifts.iter().map(|d| d.metric.as_str()).collect();
        assert_eq!(names, vec!["requests", "brand_new"]);
        assert!(drifts.iter().all(|d| d.rel.is_infinite()));
    }

    #[test]
    fn result_round_trips_through_its_json_line() {
        let mut hist = Histogram::new();
        hist.record(0.002);
        hist.record_n(0.004, 3);
        let mut metrics = BTreeMap::new();
        metrics.insert("latency.p99".to_string(), 4.25);
        metrics.insert("requests".to_string(), 4.0);
        let r = ScenarioResult {
            scenario: "unit".to_string(),
            suite: "deterministic".to_string(),
            metrics,
            hist: hist.clone(),
            expect_failures: vec!["requests 4 < min_requests 5".to_string()],
        };
        let line = serde_json::to_string(&r).unwrap();
        let back = parse_result(&line).unwrap();
        assert_eq!(back.scenario, r.scenario);
        assert_eq!(back.suite, r.suite);
        assert_eq!(back.metrics, r.metrics);
        assert_eq!(back.hist, hist);
        assert_eq!(back.expect_failures, r.expect_failures);
        assert!(parse_result("{}").is_err());
    }
}
