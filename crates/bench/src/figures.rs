//! One harness per paper table/figure. Each function simulates the exact
//! workload, prints the same rows/series the paper reports, and returns the
//! numbers for programmatic checks (integration tests, EXPERIMENTS.md).

use crate::layer_times::{conv_times, pool_times, softmax_times};
use crate::util::{gbs, geomean, ms, x, Ctx, Table};
use memcnn_core::engine::TransformQuality;
use memcnn_core::heuristic::{choose_layout, derive_thresholds};
use memcnn_core::{Engine, LayoutThresholds, Mechanism};
use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};
use memcnn_kernels::conv::direct_chwn::DirectConvChwn;
use memcnn_kernels::conv::mm_nchw::MmConvNchw;
use memcnn_kernels::transform::{TransformImpl, TransformKernel, VECTORIZE_MIN_N};
use memcnn_kernels::{ConvShape, PoolShape};
use memcnn_models::networks;
use memcnn_models::table1::{CLASS_LAYERS, CONV_LAYERS, FIG13_SOFTMAX, POOL_LAYERS};
use memcnn_tensor::Layout;

/// Fig 1: CHWN (cuda-convnet2) vs NCHW (cuDNN v4) on AlexNet's conv and
/// pooling layers, as normalized execution time (CHWN = 1).
/// Returns `(name, nchw_over_chwn)` rows.
pub fn fig1(ctx: &Ctx) -> Vec<(String, f64)> {
    let net = networks::alexnet().expect("alexnet");
    let mut rows = Vec::new();
    let mut cv = 0;
    let mut pl = 0;
    for layer in net.layers() {
        if let Some(shape) = layer.conv_shape() {
            cv += 1;
            let t = conv_times(ctx, &shape);
            rows.push((format!("CV{cv}"), t.mm / t.direct));
        } else if let Some(shape) = layer.pool_shape() {
            pl += 1;
            let t = pool_times(ctx, &shape);
            rows.push((format!("PL{pl}"), t.cudnn.time() / t.chwn.time()));
        }
    }
    let mut table = Table::new(
        "Fig 1: normalized execution time on AlexNet layers (CHWN = 1.0)",
        &["layer", "CHWN", "NCHW"],
    );
    for (name, ratio) in &rows {
        table.row(vec![name.clone(), "1.00".into(), format!("{ratio:.2}")]);
    }
    table.print();
    rows
}

/// Fig 3: cuda-convnet vs cuDNN(-MM) on CV1-CV12, normalized to
/// cuda-convnet (the cuDNN bar is `t_convnet / t_cudnn`).
pub fn fig3(ctx: &Ctx) -> Vec<(String, f64)> {
    let mut table = Table::new(
        "Fig 3: conv layers, speedup normalized to cuda-convnet",
        &["layer", "cuda-convnet", "cuDNN"],
    );
    let mut rows = Vec::new();
    for e in CONV_LAYERS {
        let t = conv_times(ctx, &e.shape);
        let cudnn = t.direct / t.mm;
        table.row(vec![e.name.into(), "1.00".into(), format!("{cudnn:.2}")]);
        rows.push((e.name.to_string(), cudnn));
    }
    table.print();
    rows
}

/// One sweep point: `(param value, chwn GFLOPS, nchw GFLOPS)`.
pub type SweepRow = (usize, f64, f64);

/// Fig 4a/4b: GFLOPS sensitivity sweeps on the CONV7 shape. Returns
/// `(param, chwn_gflops, nchw_gflops)` rows for both sweeps.
pub fn fig4(ctx: &Ctx) -> (Vec<SweepRow>, Vec<SweepRow>) {
    let probe = |n: usize, c: usize| ConvShape::table1(n, 384, 13, 3, c, 1);
    let measure = |s: &ConvShape| {
        let t = conv_times(ctx, s);
        let gf = |t: f64| s.flops() as f64 / t / 1e9;
        (gf(t.direct), gf(t.mm))
    };
    let mut a = Vec::new();
    for n in [1usize, 3, 16, 32, 64, 128, 256, 384, 512] {
        let (chwn, nchw) = measure(&probe(n, 256));
        a.push((n, chwn, nchw));
    }
    let mut b = Vec::new();
    for c in [16usize, 32, 64, 128, 256] {
        let (chwn, nchw) = measure(&probe(64, c));
        b.push((c, chwn, nchw));
    }
    let mut ta =
        Table::new("Fig 4a: GFLOPS vs batch size N (CONV7)", &["N", "cuda-convnet", "cuDNN"]);
    for (n, chwn, nchw) in &a {
        ta.row(vec![n.to_string(), format!("{chwn:.0}"), format!("{nchw:.0}")]);
    }
    ta.print();
    let mut tb =
        Table::new("Fig 4b: GFLOPS vs channels C (CONV7)", &["C", "cuda-convnet", "cuDNN"]);
    for (c, chwn, nchw) in &b {
        tb.row(vec![c.to_string(), format!("{chwn:.0}"), format!("{nchw:.0}")]);
    }
    tb.print();
    (a, b)
}

/// One Fig 5 row: speedups over cuda-convnet (None = execution failure).
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Layer name.
    pub name: String,
    /// cuDNN-MM speedup over cuda-convnet.
    pub mm: f64,
    /// cuDNN-FFT speedup (None = failed, CV5/CV6).
    pub fft: Option<f64>,
    /// cuDNN-FFT-Tiling speedup.
    pub fft_tiling: Option<f64>,
}

/// Fig 5: FFT-based approaches vs cuda-convnet on CV1-CV12.
pub fn fig5(ctx: &Ctx) -> Vec<Fig5Row> {
    let mut table = Table::new(
        "Fig 5: speedups over cuda-convnet (FAIL = execution failure)",
        &["layer", "cuda-convnet2", "cuDNN-MM", "cuDNN-FFT", "cuDNN-FFT-T"],
    );
    let mut rows = Vec::new();
    for e in CONV_LAYERS {
        let t = conv_times(ctx, &e.shape);
        let row = Fig5Row {
            name: e.name.to_string(),
            mm: t.direct / t.mm,
            fft: t.fft.map(|f| t.direct / f),
            fft_tiling: t.fft_tiling.map(|f| t.direct / f),
        };
        let opt = |v: Option<f64>| v.map(|s| format!("{s:.2}")).unwrap_or_else(|| "FAIL".into());
        table.row(vec![
            e.name.into(),
            "1.00".into(),
            format!("{:.2}", row.mm),
            opt(row.fft),
            opt(row.fft_tiling),
        ]);
        rows.push(row);
    }
    table.print();
    rows
}

/// One Fig 6 row.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Layer name.
    pub name: String,
    /// Caffe speedup vs cuda-convnet (< 1).
    pub caffe: f64,
    /// cuDNN speedup vs cuda-convnet (< 1).
    pub cudnn: f64,
    /// Highest achieved DRAM bandwidth across the three, GB/s.
    pub best_gbs: f64,
}

/// Fig 6: pooling layers under the three libraries, normalized to
/// cuda-convnet, with the highest achieved bandwidth per layer.
pub fn fig6(ctx: &Ctx) -> Vec<Fig6Row> {
    let mut table = Table::new(
        "Fig 6: pooling, speedup normalized to cuda-convnet",
        &["layer", "cuda-convnet", "Caffe", "cuDNN", "best GB/s"],
    );
    let mut rows = Vec::new();
    for e in POOL_LAYERS {
        let t = pool_times(ctx, &e.shape);
        let row = Fig6Row {
            name: e.name.to_string(),
            caffe: t.chwn.time() / t.caffe.time(),
            cudnn: t.chwn.time() / t.cudnn.time(),
            best_gbs: t.chwn.dram_gbs().max(t.caffe.dram_gbs()).max(t.cudnn.dram_gbs()),
        };
        table.row(vec![
            e.name.into(),
            "1.00".into(),
            format!("{:.2}", row.caffe),
            format!("{:.2}", row.cudnn),
            gbs(row.best_gbs),
        ]);
        rows.push(row);
    }
    table.print();
    rows
}

/// One Fig 10 row: layout-preference speedups with transform overheads.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// Layer name.
    pub name: String,
    /// Preferred layout by the heuristic.
    pub layout: Layout,
    /// Speedup of preferred over alternative layout, no transform cost.
    pub opt: f64,
    /// Same, charging a naive round-trip transformation.
    pub opt_naive: f64,
    /// Same, charging the optimized transformation.
    pub opt_fast: f64,
}

/// Fig 10: per conv layer, the preferred layout's speedup over the
/// alternative — bare, with naive transforms, with optimized transforms
/// (input converted in, output converted back: the cost of running this
/// one layer in its preferred layout inside a network that uses the other).
pub fn fig10(ctx: &Ctx) -> Vec<Fig10Row> {
    let th = LayoutThresholds::titan_black_paper();
    let mut table = Table::new(
        "Fig 10: preferred-layout speedup per conv layer",
        &["layer", "pref", "Opt", "Opt+NaiveT", "Opt+OptT"],
    );
    let mut rows = Vec::new();
    for e in CONV_LAYERS {
        let t = conv_times(ctx, &e.shape);
        let layout = choose_layout(&e.shape, &th);
        let (pref, alt) = if layout == Layout::CHWN {
            (t.direct, t.nchw_best())
        } else {
            (t.nchw_best(), t.direct)
        };
        let (from, to) = if layout == Layout::CHWN {
            (Layout::NCHW, Layout::CHWN)
        } else {
            (Layout::CHWN, Layout::NCHW)
        };
        let tr = |imp: TransformImpl, shape: memcnn_tensor::Shape, from, to| {
            simulate(&ctx.device, &TransformKernel::new(shape, from, to, imp), &ctx.opts)
                .expect("transform simulates")
                .time()
        };
        let fast_in =
            if e.shape.n >= VECTORIZE_MIN_N { TransformImpl::Opt2 } else { TransformImpl::Opt1 };
        let in_shape = e.shape.input_shape();
        let out_shape = e.shape.output_shape();
        let naive = tr(TransformImpl::Naive, in_shape, from, to)
            + tr(TransformImpl::Naive, out_shape, to, from);
        let fast = tr(fast_in, in_shape, from, to) + tr(fast_in, out_shape, to, from);
        let row = Fig10Row {
            name: e.name.to_string(),
            layout,
            opt: alt / pref,
            opt_naive: alt / (pref + naive),
            opt_fast: alt / (pref + fast),
        };
        table.row(vec![
            e.name.into(),
            layout.name(),
            x(row.opt),
            x(row.opt_naive),
            x(row.opt_fast),
        ]);
        rows.push(row);
    }
    let gm = |f: &dyn Fn(&Fig10Row) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    table.row(vec![
        "GM".into(),
        "-".into(),
        x(gm(&|r| r.opt)),
        x(gm(&|r| r.opt_naive)),
        x(gm(&|r| r.opt_fast)),
    ]);
    table.print();
    rows
}

/// One Fig 11 row: transformation bandwidths (GB/s, payload = read+write).
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Layer name.
    pub name: String,
    /// Naive kernel bandwidth.
    pub naive: f64,
    /// Opt1 (tiled) bandwidth.
    pub opt1: f64,
    /// Opt2 (vectorized) bandwidth; None when N < 64.
    pub opt2: Option<f64>,
}

/// Fig 11: achieved bandwidth of the three transformation kernels on each
/// conv layer's input tensor (CHWN -> NCHW).
pub fn fig11(ctx: &Ctx) -> Vec<Fig11Row> {
    let mut table =
        Table::new("Fig 11: transformation bandwidth (GB/s)", &["layer", "Naive", "Opt1", "Opt2"]);
    let mut rows = Vec::new();
    for e in CONV_LAYERS {
        let shape = e.shape.input_shape();
        let payload = 2.0 * shape.len() as f64 * 4.0;
        let bw = |imp: TransformImpl| {
            let k = TransformKernel::new(shape, Layout::CHWN, Layout::NCHW, imp);
            let t = simulate(&ctx.device, &k, &ctx.opts).expect("transform").time();
            payload / t / 1e9
        };
        let row = Fig11Row {
            name: e.name.to_string(),
            naive: bw(TransformImpl::Naive),
            opt1: bw(TransformImpl::Opt1),
            opt2: (shape.n >= VECTORIZE_MIN_N).then(|| bw(TransformImpl::Opt2)),
        };
        table.row(vec![
            e.name.into(),
            gbs(row.naive),
            gbs(row.opt1),
            row.opt2.map(gbs).unwrap_or_else(|| "n/a".into()),
        ]);
        rows.push(row);
    }
    table.print();
    rows
}

/// One Fig 12 row.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Layer name.
    pub name: String,
    /// Caffe speedup vs cuda-convnet.
    pub caffe: f64,
    /// cuDNN speedup vs cuda-convnet.
    pub cudnn: f64,
    /// Opt (auto-tuned coarsened CHWN) speedup vs cuda-convnet.
    pub opt: f64,
    /// Tuned expansion factors.
    pub factors: (usize, usize),
    /// Opt achieved bandwidth, GB/s.
    pub opt_gbs: f64,
}

/// Fig 12: pooling under four implementations, normalized to cuda-convnet.
pub fn fig12(ctx: &Ctx) -> Vec<Fig12Row> {
    let mut table = Table::new(
        "Fig 12: pooling incl. auto-tuned Opt, normalized to cuda-convnet",
        &["layer", "cuda-convnet", "Caffe", "cuDNN", "Opt", "(ux,uy)", "Opt GB/s"],
    );
    let mut rows = Vec::new();
    for e in POOL_LAYERS {
        let t = pool_times(ctx, &e.shape);
        let base = t.chwn.time();
        let row = Fig12Row {
            name: e.name.to_string(),
            caffe: base / t.caffe.time(),
            cudnn: base / t.cudnn.time(),
            opt: base / t.opt.time(),
            factors: (t.tune.ux, t.tune.uy),
            opt_gbs: t.opt.dram_gbs(),
        };
        table.row(vec![
            e.name.into(),
            "1.00".into(),
            format!("{:.2}", row.caffe),
            format!("{:.2}", row.cudnn),
            format!("{:.2}", row.opt),
            format!("({},{})", row.factors.0, row.factors.1),
            gbs(row.opt_gbs),
        ]);
        rows.push(row);
    }
    table.print();
    rows
}

/// One Fig 13 row.
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// `batch/categories` label.
    pub config: String,
    /// Best baseline bandwidth (GB/s).
    pub baseline: f64,
    /// Optimized fused kernel bandwidth (GB/s).
    pub opt: f64,
}

/// Fig 13: softmax bandwidth, BL_Best vs Opt, across the twelve configs.
pub fn fig13(ctx: &Ctx) -> Vec<Fig13Row> {
    let mut table = Table::new("Fig 13: softmax bandwidth (GB/s)", &["config", "BL_Best", "Opt"]);
    let mut rows = Vec::new();
    for shape in FIG13_SOFTMAX {
        let t = softmax_times(ctx, shape);
        let row = Fig13Row {
            config: format!("{}/{}", shape.batch, shape.categories),
            baseline: t.bandwidth(t.baseline_best()),
            opt: t.bandwidth(t.fused),
        };
        table.row(vec![row.config.clone(), gbs(row.baseline), gbs(row.opt)]);
        rows.push(row);
    }
    table.print();
    rows
}

/// One network's Fig 14 row: speedups over cuDNN-MM per mechanism.
#[derive(Clone, Debug)]
pub struct Fig14Row {
    /// Network name.
    pub network: String,
    /// `(mechanism label, speedup over cuDNN-MM)` in Fig 14 order.
    pub speedups: Vec<(String, f64)>,
}

impl Fig14Row {
    /// Speedup of one mechanism by label.
    pub fn speedup(&self, label: &str) -> f64 {
        self.speedups.iter().find(|(l, _)| l == label).map(|(_, s)| *s).unwrap_or(f64::NAN)
    }
}

/// Fig 14: the five whole networks under all mechanisms, normalized to
/// cuDNN-MM. Heavy: simulates every layer under every mechanism.
pub fn fig14(ctx: &Ctx) -> Vec<Fig14Row> {
    let nets = networks::all_networks();
    let mut table = Table::new(
        "Fig 14: whole-network speedup over cuDNN-MM",
        &[
            "network",
            "cuDNN-MM",
            "cuDNN-FFT",
            "cuDNN-FFT-T",
            "cuda-convnet",
            "Caffe",
            "cuDNN-Best",
            "Opt",
        ],
    );
    let mut rows = Vec::new();
    for net in &nets {
        let mm = ctx
            .engine
            .simulate_network(net, Mechanism::CudnnMm)
            .expect("network simulates")
            .total_time();
        let mut speedups = Vec::new();
        for mech in Mechanism::ALL {
            let t = ctx.engine.simulate_network(net, mech).expect("network simulates").total_time();
            speedups.push((mech.label().to_string(), mm / t));
        }
        let row = Fig14Row { network: net.name.clone(), speedups };
        table.row(vec![
            row.network.clone(),
            x(row.speedup("cuDNN-MM")),
            x(row.speedup("cuDNN-FFT")),
            x(row.speedup("cuDNN-FFT-T")),
            x(row.speedup("cuda-convnet")),
            x(row.speedup("Caffe")),
            x(row.speedup("cuDNN-Best")),
            x(row.speedup("Opt")),
        ]);
        rows.push(row);
    }
    table.print();
    rows
}

/// Fig 15: AlexNet per-layer comparison across mechanisms, normalized to
/// cuDNN-MM per layer. Returns `(layer, mechanism label, speedup)` rows.
pub fn fig15(ctx: &Ctx) -> Vec<(String, String, f64)> {
    let net = networks::alexnet().expect("alexnet");
    let mechanisms =
        [Mechanism::CudnnMm, Mechanism::CudaConvnet, Mechanism::CudnnBest, Mechanism::Opt];
    let reports: Vec<_> = mechanisms
        .iter()
        .map(|&m| ctx.engine.simulate_network(&net, m).expect("alexnet simulates"))
        .collect();
    let mut table = Table::new(
        "Fig 15: AlexNet per-layer speedup over cuDNN-MM",
        &["layer", "cuDNN-MM", "cuda-convnet", "cuDNN-Best", "Opt"],
    );
    let mut rows = Vec::new();
    let interesting = ["CV1", "CV2", "CV3", "CV4", "CV5", "PL1", "PL2", "PL3", "prob"];
    for name in interesting {
        let mm_time = reports[0].layer(name).expect("layer exists").time;
        let mut cells = vec![name.to_string()];
        for (mech, report) in mechanisms.iter().zip(&reports) {
            let l = report.layer(name).expect("layer exists");
            let speedup = mm_time / (l.time + l.transform_before);
            cells.push(x(speedup));
            rows.push((name.to_string(), mech.label().to_string(), speedup));
        }
        table.row(cells);
    }
    table.print();
    rows
}

/// Threshold derivation table: `(device name, Ct, Nt)` for the paper's two
/// GPUs plus a hypothetical bandwidth-starved device (ablation).
pub fn thresholds_table() -> Vec<(String, usize, usize)> {
    let opts = SimOptions::default();
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Derived layout thresholds (one-time profiling per device)",
        &["device", "Ct", "Nt"],
    );
    let mut starved = DeviceConfig::titan_black();
    starved.name = "hypothetical (half-bandwidth Titan Black)".into();
    starved.dram_bw /= 2.0;
    starved.l2_bw /= 2.0;
    for device in [DeviceConfig::titan_black(), DeviceConfig::titan_x(), starved] {
        let th = derive_thresholds(&device, &opts).expect("derivation");
        table.row(vec![device.name.clone(), th.ct.to_string(), th.nt.to_string()]);
        rows.push((device.name.clone(), th.ct, th.nt));
    }
    table.print();
    rows
}

/// In-text claim: CV2 (AlexNet's second conv) ALU utilization improves with
/// the suitable layout (paper: 55.64% -> 78.71% on a Titan X). Returns
/// `(utilization in worse layout, in better layout)`.
pub fn alu_utilization(ctx: &Ctx) -> (f64, f64) {
    // AlexNet CV2: N=128, Ci=96, 27x27, Co=256, F=5, pad 2.
    let shape =
        ConvShape { n: 128, ci: 96, h: 27, w: 27, co: 256, fh: 5, fw: 5, stride: 1, pad: 2 };
    let direct = simulate(&ctx.device, &DirectConvChwn::new(shape), &ctx.opts).expect("direct");
    let mm = MmConvNchw::new(shape).simulate(&ctx.device, &ctx.opts).expect("mm");
    // Utilization of the MM pipeline: conv FLOPs over total pipeline time.
    let mm_util = shape.flops() as f64 / ctx.device.peak_flops / mm.time();
    let direct_util = direct.timing.alu_utilization;
    let mut table = Table::new("CV2 ALU utilization by layout", &["layout", "utilization"]);
    table.row(vec!["NCHW (MM)".into(), format!("{:.2}%", mm_util * 100.0)]);
    table.row(vec!["CHWN (direct)".into(), format!("{:.2}%", direct_util * 100.0)]);
    table.print();
    (mm_util, direct_util)
}

/// Softmax ablation (in-text §VI.B): fusion alone vs added inner-loop
/// parallelism, GM speedups over the 5-kernel baseline across the Fig 13
/// configs. Returns `(gm_fusion, gm_parallel_over_fused_serial)`.
pub fn softmax_ablation(ctx: &Ctx) -> (f64, f64) {
    let mut fusion = Vec::new();
    let mut parallel = Vec::new();
    let mut table = Table::new(
        "Softmax ablation: speedup over 5-kernel baseline",
        &["config", "fusion only", "+parallel inner"],
    );
    for shape in FIG13_SOFTMAX {
        let t = softmax_times(ctx, shape);
        let f = t.five_kernel / t.fused_serial;
        let p = t.fused_serial / t.fused;
        fusion.push(f);
        parallel.push(p);
        table.row(vec![format!("{}/{}", shape.batch, shape.categories), x(f), x(p)]);
    }
    let (gm_f, gm_p) = (geomean(&fusion), geomean(&parallel));
    table.row(vec!["GM".into(), x(gm_f), x(gm_p)]);
    table.print();
    (gm_f, gm_p)
}

/// In-text §VI.A: transformation memory overhead on AlexNet — scratch vs
/// network footprint. Returns `(scratch_bytes, footprint_bytes)`.
pub fn memory_overhead(_ctx: &Ctx) -> (u64, u64) {
    let net = networks::alexnet().expect("alexnet");
    // Footprint of a training pass (the paper's ~3 GB AlexNet figure is a
    // forward+backward footprint): activations + gradients (2x) plus
    // weights and their gradients (2x).
    let mut footprint: u64 = 2 * net.input.bytes() as u64;
    for l in net.layers() {
        footprint += 2 * l.output.bytes() as u64;
        if let Some(c) = l.conv_shape() {
            footprint += 2 * c.filter_shape().bytes() as u64;
        }
        if let memcnn_core::LayerSpec::Fc { outputs } = l.spec {
            footprint += 2 * (outputs * l.input.c * l.input.h * l.input.w * 4) as u64;
        }
    }
    // Transformation scratch upper bound: one copy of the largest
    // intermediate, freed right after the transform (§VI.A).
    let scratch = net.layers().iter().map(|l| l.input.bytes() as u64).max().unwrap_or(0);
    let mut table = Table::new("AlexNet transformation memory overhead", &["quantity", "MB"]);
    table.row(vec!["largest transform scratch".into(), format!("{:.1}", scratch as f64 / 1e6)]);
    table.row(vec!["network footprint".into(), format!("{:.1}", footprint as f64 / 1e6)]);
    table
        .row(vec!["overhead".into(), format!("{:.2}%", scratch as f64 / footprint as f64 * 100.0)]);
    table.print();
    (scratch, footprint)
}

/// §VI.C's Titan X check: LeNet and VGG under the mechanisms on the Maxwell
/// preset. Returns rows like [`fig14`].
pub fn titan_x_networks() -> Vec<Fig14Row> {
    let ctx = Ctx::titan_x();
    let nets = vec![networks::lenet().expect("lenet"), networks::vgg16().expect("vgg")];
    let mut rows = Vec::new();
    let mut table = Table::new(
        "Titan X: speedup of Opt over each mechanism",
        &["network", "vs cuda-convnet", "vs Caffe", "vs cuDNN-MM"],
    );
    for net in &nets {
        let time =
            |m: Mechanism| ctx.engine.simulate_network(net, m).expect("simulates").total_time();
        let opt = time(Mechanism::Opt);
        let mm = time(Mechanism::CudnnMm);
        let mut speedups = vec![
            ("cuda-convnet".to_string(), time(Mechanism::CudaConvnet) / opt),
            ("Caffe".to_string(), time(Mechanism::Caffe) / opt),
            ("cuDNN-MM".to_string(), mm / opt),
        ];
        table.row(vec![net.name.clone(), x(speedups[0].1), x(speedups[1].1), x(speedups[2].1)]);
        speedups.push(("Opt".to_string(), 1.0));
        rows.push(Fig14Row { network: net.name.clone(), speedups });
    }
    table.print();
    rows
}

/// Extension beyond the paper: sweep *all 24* layouts for one conv and one
/// pooling layer, confirming CHWN/NCHW are the right representatives of
/// the two families (batch-innermost vs batch-outermost).
pub fn layouts24(ctx: &Ctx) -> Vec<(String, f64)> {
    // Pooling is the clean case: the kernel family is determined by
    // whether the innermost dimension is N (coalesced over images) or a
    // spatial one. Use PL3 and score both families per layout.
    let shape = PoolShape::table1(128, 24, 3, 64, 2);
    let t = pool_times(ctx, &shape);
    let mut rows = Vec::new();
    let mut table = Table::new(
        "All 24 layouts, PL3 pooling (family time, s)",
        &["layout", "family", "time_ms"],
    );
    for layout in Layout::all() {
        let (family, time) = if layout.innermost() == memcnn_tensor::Dim::N {
            ("N-innermost (cuda-convnet family)", t.chwn.time())
        } else if layout.innermost() == memcnn_tensor::Dim::W {
            ("W-innermost (Caffe/cuDNN family)", t.caffe.time())
        } else {
            // H- or C-innermost: strided at least as badly as NCHW.
            ("other (strided)", t.caffe.time().max(t.cudnn.time()))
        };
        table.row(vec![layout.name(), family.into(), ms(time)]);
        rows.push((layout.name(), time));
    }
    table.print();
    rows
}

/// Fig 10 support: the engine-level effect of transform quality on whole
/// AlexNet (Opt with naive vs optimized transforms). Returns the two times.
pub fn transform_quality_network(ctx: &Ctx) -> (f64, f64) {
    let net = networks::alexnet().expect("alexnet");
    let fast = ctx.engine.simulate_network(&net, Mechanism::Opt).expect("simulates").total_time();
    let naive_engine = Engine::new(ctx.device.clone(), *ctx.engine.thresholds())
        .with_transform_quality(TransformQuality::Naive);
    let naive =
        naive_engine.simulate_network(&net, Mechanism::Opt).expect("simulates").total_time();
    let mut table = Table::new("AlexNet Opt: transform quality", &["variant", "time_ms"]);
    table.row(vec!["Opt + optimized transform".into(), ms(fast)]);
    table.row(vec!["Opt + naive transform".into(), ms(naive)]);
    table.print();
    (fast, naive)
}

/// Ablation: the Opt2 transformation's dependence on Kepler's 8-byte
/// shared-memory bank mode. Finding: in this model the Opt2-over-Opt1 edge
/// survives without the mode — the transform is DRAM-bound, so the extra
/// shared-memory passes stay off the critical path; the edge is carried by
/// the doubled per-warp burst size (the paper's "global access
/// transactions will be doubled for data fetching") and the halved
/// instruction stream. Returns `(opt2_over_opt1_kepler, opt2_over_opt1_no8b)`.
pub fn bank_mode_ablation() -> (f64, f64) {
    let shape = memcnn_tensor::Shape::new(64, 96, 55, 55); // CV6 input
    let opts = SimOptions::default();
    let speedup = |device: &DeviceConfig| {
        let t = |imp| {
            simulate(device, &TransformKernel::new(shape, Layout::CHWN, Layout::NCHW, imp), &opts)
                .expect("transform")
                .time()
        };
        t(TransformImpl::Opt1) / t(TransformImpl::Opt2)
    };
    let kepler = DeviceConfig::titan_black();
    let mut no8b = DeviceConfig::titan_black();
    no8b.name = "Titan Black without 8-byte bank mode".into();
    no8b.supports_8byte_banks = false;
    let (with_mode, without_mode) = (speedup(&kepler), speedup(&no8b));
    let mut table = Table::new(
        "Ablation: Opt2/Opt1 transform speedup vs shared-memory bank mode (CV6)",
        &["device", "Opt2 over Opt1"],
    );
    table.row(vec![kepler.name.clone(), x(with_mode)]);
    table.row(vec![no8b.name, x(without_mode)]);
    table.print();
    (with_mode, without_mode)
}

/// Ablation: the L2 model's contribution. Disabling it sends every sector
/// to DRAM; kernels with real reuse (overlapped pooling) slow down while
/// streaming kernels barely move. Returns `(pool_ratio, stream_ratio)` of
/// no-L2 time over with-L2 time.
pub fn l2_ablation(ctx: &Ctx) -> (f64, f64) {
    use memcnn_kernels::pool::chwn::PoolChwn;
    let no_l2 = SimOptions { l2_enabled: false, ..Default::default() };
    let pool = PoolShape::table1(128, 24, 3, 64, 2); // PL3, overlapped
    let pool_with = simulate(&ctx.device, &PoolChwn::new(pool), &ctx.opts).unwrap().time();
    let pool_without = simulate(&ctx.device, &PoolChwn::new(pool), &no_l2).unwrap().time();
    let stream = memcnn_kernels::layers::ElementwiseKernel::new("relu", 32 << 20, 1);
    let s_with = simulate(&ctx.device, &stream, &ctx.opts).unwrap().time();
    let s_without = simulate(&ctx.device, &stream, &no_l2).unwrap().time();
    let (pr, sr) = (pool_without / pool_with, s_without / s_with);
    let mut table = Table::new("Ablation: disabling the L2 model", &["kernel", "slowdown"]);
    table.row(vec!["overlapped pooling (PL3)".into(), x(pr)]);
    table.row(vec!["streaming elementwise".into(), x(sr)]);
    table.print();
    (pr, sr)
}

/// Extension (§VII outlook): Winograd F(2x2, 3x3) vs the paper's
/// implementations on every 3x3 stride-1 layer of Table 1. Returns
/// `(layer, winograd_speedup_over_best_of_paper)`.
pub fn winograd(ctx: &Ctx) -> Vec<(String, f64)> {
    use memcnn_kernels::conv::winograd::WinogradConvNchw;
    let mut table = Table::new(
        "Extension: Winograd F(2x2,3x3) vs the paper's implementations",
        &["layer", "best-of-paper", "best impl", "Winograd", "speedup"],
    );
    let mut rows = Vec::new();
    for e in CONV_LAYERS {
        if e.shape.fh != 3 || e.shape.stride != 1 {
            continue;
        }
        let t = conv_times(ctx, &e.shape);
        let (best, label) = t.best();
        let w = WinogradConvNchw::new(e.shape)
            .expect("3x3 stride-1 layer")
            .simulate(&ctx.device, &ctx.opts)
            .expect("winograd simulates")
            .time();
        let speedup = best / w;
        table.row(vec![e.name.into(), ms(best), label.into(), ms(w), x(speedup)]);
        rows.push((e.name.to_string(), speedup));
    }
    table.print();
    rows
}

/// Training-step costs (the §IV.D "complete forward-backward" setting):
/// forward vs forward+backward per network under Opt, plus the layout
/// benefit surviving into training. Returns
/// `(network, fwd_ms, train_ms, train_speedup_over_mm)`.
pub fn training(ctx: &Ctx) -> Vec<(String, f64, f64, f64)> {
    let mut table = Table::new(
        "Training step under Opt (forward + backward)",
        &["network", "fwd ms", "train ms", "bwd/fwd", "Opt/MM (train)"],
    );
    let mut rows = Vec::new();
    for net in networks::all_networks() {
        let fwd =
            ctx.engine.simulate_network(&net, Mechanism::Opt).expect("simulates").total_time();
        let train = ctx
            .engine
            .simulate_network_training(&net, Mechanism::Opt)
            .expect("simulates")
            .total_time();
        let mm_train = ctx
            .engine
            .simulate_network_training(&net, Mechanism::CudnnMm)
            .expect("simulates")
            .total_time();
        table.row(vec![
            net.name.clone(),
            ms(fwd),
            ms(train),
            format!("{:.2}", (train - fwd) / fwd),
            x(mm_train / train),
        ]);
        rows.push((net.name.clone(), fwd, train, mm_train / train));
    }
    table.print();
    rows
}

/// Table 1 echo: the benchmark zoo as parsed.
pub fn table1_echo() {
    let mut t =
        Table::new("Table 1: conv layers", &["name", "N", "Co", "H/W", "F", "Ci", "S", "net"]);
    for e in CONV_LAYERS {
        let s = e.shape;
        t.row(vec![
            e.name.into(),
            s.n.to_string(),
            s.co.to_string(),
            s.h.to_string(),
            s.fh.to_string(),
            s.ci.to_string(),
            s.stride.to_string(),
            e.network.into(),
        ]);
    }
    t.print();
    let mut t =
        Table::new("Table 1: pooling layers", &["name", "N", "H/W", "win", "C", "S", "net"]);
    for e in POOL_LAYERS {
        let s = e.shape;
        t.row(vec![
            e.name.into(),
            s.n.to_string(),
            s.h.to_string(),
            s.window.to_string(),
            s.c.to_string(),
            s.stride.to_string(),
            e.network.into(),
        ]);
    }
    t.print();
    let mut t = Table::new("Table 1: classifiers", &["name", "images", "categories", "net"]);
    for e in CLASS_LAYERS {
        t.row(vec![
            e.name.into(),
            e.shape.batch.to_string(),
            e.shape.categories.to_string(),
            e.network.into(),
        ]);
    }
    t.print();
}
