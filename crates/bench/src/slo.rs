//! Multi-tenant SLO serving comparison: the harness behind the `slo`
//! binary and `BENCH_slo.json`, plus the per-class attribution the
//! `fleet` binary's bursty table reuses.
//!
//! The comparison runs the same seeded bursty stream twice on the same
//! fleet: once with the deadline-aware tenant scheduler, once with
//! `MEMCNN_SLO_DISABLE=1` forcing the class-blind path (the equivalence
//! oracle, so the blind run is byte-identical to a tenant-free config).
//! Because tenant attribution is a pure function of `(seed, request id)`
//! and never perturbs the stream, the blind run's per-class latencies
//! can be recovered post hoc with [`tenant_tags`] — both runs served the
//! exact same requests, so the per-class deltas are pure scheduling.

use crate::fleet::REQUESTS_PER_DEVICE;
use crate::serving::{IMAGES_MAX, IMAGES_MIN};
use crate::util::{Ctx, Table};
use memcnn_core::{EngineError, Network};
use memcnn_serve::{
    generate, latency_stats, serve_fleet, tenant_tags, Arrival, BatchPolicy, FleetConfig,
    FleetReport, Phase, Placement, TenantSpec, WorkloadConfig,
};
use serde::Serialize;

/// Devices in the SLO comparison fleet.
pub const SLO_DEVICES: usize = 4;

/// Two-phase stream for the SLO comparison: a steady spell at 15% of
/// the K-device aggregate capacity, then a rush at 30% — deliberately
/// subcritical, because that is the regime the deadline-aware commit
/// rule governs. Under the throughput-first delay
/// ([`SLO_DELAY_FACTOR`]), tail latency here comes from the batcher's
/// queue-delay policy (what the tenant scheduler changes per class); a
/// saturating burst would instead measure the backlog drain, where
/// weighted fairness, not deadlines, decides who waits — and where the
/// per-lane fragmentation of part-full batches costs more capacity than
/// early commits can buy back.
pub fn slo_workload(k: usize, capacity_ips: f64, seed: u64) -> WorkloadConfig {
    let mean_images = (IMAGES_MIN + IMAGES_MAX) as f64 / 2.0;
    let agg = capacity_ips * k as f64;
    let steady = (0.15 * agg / mean_images).max(1.0);
    let rush = (0.3 * agg / mean_images).max(1.0);
    WorkloadConfig {
        phases: vec![
            Phase {
                arrival: Arrival::Poisson { rate: steady },
                duration: (REQUESTS_PER_DEVICE * k / 4) as f64 / steady,
            },
            Phase {
                arrival: Arrival::Poisson { rate: rush },
                duration: (REQUESTS_PER_DEVICE * k) as f64 / rush,
            },
        ],
        images_min: IMAGES_MIN,
        images_max: IMAGES_MAX,
        seed,
    }
}

/// The blind queue-delay cap, as a multiple of the top bucket's service
/// time. Deliberately throughput-first: the batcher holds arrivals long
/// enough to fill the top bucket even in the steady phase — the
/// configuration a multi-tenant operator runs for fleet efficiency, and
/// exactly the regime where a uniform delay costs interactive requests
/// the most (their tail is the shared batching delay, not service).
pub const SLO_DELAY_FACTOR: f64 = 3.0;

/// The bench's tenant mix: a small latency-sensitive interactive
/// minority (~6% of arrivals), a standard tenant, and a best-effort
/// bulk tenant carrying half the traffic. The interactive share must
/// stay small for the comparison to be favorable at all: its tight
/// commit budget forms tiny part-full batches, and the simulator's
/// per-batch fixed cost (~6.5 ms on AlexNet) makes those ~4x less
/// efficient than full buckets — a cost only a minority tenant can pay
/// without saturating the fleet. The interactive p99 budget is 40% of
/// the blind delay, so its commit budget (half the p99 budget) fires at
/// a fifth of the delay every class-blind batch waits out.
pub fn slo_tenants(policy_delay: f64) -> Vec<TenantSpec> {
    vec![
        TenantSpec::interactive("interactive", 0.4 * policy_delay, 0.25),
        TenantSpec::standard("standard", 1.75),
        TenantSpec::best_effort("batch", 2.0),
    ]
}

/// Run one tenant-enabled fleet point (K homogeneous copies of the
/// context's engine draining `workload`).
pub fn run_slo_fleet(
    ctx: &Ctx,
    net: &Network,
    policy: BatchPolicy,
    workload: WorkloadConfig,
    placement: Placement,
    k: usize,
    tenants: Vec<TenantSpec>,
) -> Result<FleetReport, EngineError> {
    let engines: Vec<&memcnn_core::Engine> = (0..k).map(|_| &ctx.engine).collect();
    let mut cfg = FleetConfig::new(workload, policy, placement).with_tenants(tenants);
    cfg.mechanism = ctx.mechanism();
    serve_fleet(&engines, std::slice::from_ref(net), &cfg)
}

/// One service class, deadline-aware vs class-blind, on the same stream.
#[derive(Serialize)]
pub struct ClassCompare {
    /// Tenant name.
    pub class: String,
    /// Service-class kind (`interactive` / `standard` / `best-effort`).
    pub kind: String,
    /// Arrival weight.
    pub weight: f64,
    /// Class-blind p99 (post-hoc attribution), milliseconds.
    pub blind_p99_ms: f64,
    /// Deadline-aware p99 (from the SLO report), milliseconds.
    pub aware_p99_ms: f64,
    /// Class-blind mean latency, milliseconds.
    pub blind_mean_ms: f64,
    /// Deadline-aware mean latency, milliseconds.
    pub aware_mean_ms: f64,
    /// p99-budget violations in the blind run (post hoc; 0 for classes
    /// without a budget).
    pub blind_violations: u64,
    /// p99-budget violations in the aware run.
    pub aware_violations: u64,
    /// Completed requests, blind run.
    pub blind_completed: u64,
    /// Completed requests, aware run.
    pub aware_completed: u64,
    /// Requests shed after admission, aware run.
    pub aware_shed: u64,
    /// Images the blind run completed for this class.
    pub blind_images: u64,
    /// Images the aware run completed for this class.
    pub aware_images: u64,
}

/// Per-class rollup of a class-blind run: served latencies, completed
/// count, completed images, and post-hoc p99-budget violations —
/// recovered from the latency vector with the deterministic tags, since
/// the blind scheduler never saw the tenants.
fn blind_points(
    report: &FleetReport,
    workload: &WorkloadConfig,
    tenants: &[TenantSpec],
) -> Vec<(Vec<f64>, u64, u64, u64)> {
    let requests = generate(workload);
    let tags = tenant_tags(workload.seed, requests.len(), tenants);
    let mut per: Vec<(Vec<f64>, u64, u64, u64)> = vec![Default::default(); tenants.len()];
    for (i, req) in requests.iter().enumerate() {
        let lat = report.latencies[i];
        if lat <= 0.0 {
            continue; // shed sentinel — never completed
        }
        let p = &mut per[tags[i] as usize];
        p.0.push(lat);
        p.1 += 1;
        p.2 += req.images as u64;
        if tenants[tags[i] as usize].class.p99_budget().is_some_and(|b| lat > b) {
            p.3 += 1;
        }
    }
    per
}

/// Build the per-class comparison: aware-side numbers straight from the
/// aware run's SLO report, blind-side numbers by post-hoc attribution
/// over the identical stream.
pub fn compare_classes(
    aware: &FleetReport,
    blind: &FleetReport,
    workload: &WorkloadConfig,
    tenants: &[TenantSpec],
) -> Vec<ClassCompare> {
    let slo = aware.slo.as_ref().expect("aware run must carry an SLO report");
    let blind_per = blind_points(blind, workload, tenants);
    slo.tenants
        .iter()
        .zip(&blind_per)
        .map(|(t, (lats, completed, images, violations))| {
            let b = latency_stats(lats);
            ClassCompare {
                class: t.name.clone(),
                kind: t.class.name().to_string(),
                weight: t.weight,
                blind_p99_ms: b.p99 * 1e3,
                aware_p99_ms: t.latency.p99 * 1e3,
                blind_mean_ms: b.mean * 1e3,
                aware_mean_ms: t.latency.mean * 1e3,
                blind_violations: *violations,
                aware_violations: t.violations,
                blind_completed: *completed,
                aware_completed: t.completed,
                aware_shed: t.shed,
                blind_images: *images,
                aware_images: t.images,
            }
        })
        .collect()
}

/// Tabulate a per-class comparison (shared by the `slo` and `fleet`
/// binaries).
pub fn class_table(title: String, classes: &[ClassCompare]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "class",
            "kind",
            "weight",
            "blind p99 ms",
            "aware p99 ms",
            "blind viol",
            "aware viol",
            "completed",
            "shed",
        ],
    );
    for c in classes {
        t.row(vec![
            c.class.clone(),
            c.kind.clone(),
            format!("{:.1}", c.weight),
            format!("{:.3}", c.blind_p99_ms),
            format!("{:.3}", c.aware_p99_ms),
            c.blind_violations.to_string(),
            c.aware_violations.to_string(),
            c.aware_completed.to_string(),
            c.aware_shed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_mix_is_commit_tight() {
        let delay = 0.004;
        let tenants = slo_tenants(delay);
        assert_eq!(tenants.len(), 3);
        // The interactive commit budget must undercut the blind delay,
        // or the deadline-aware path degenerates to class-blind.
        assert!(tenants[0].class.commit_budget(delay) < delay);
        assert!(tenants[0].class.p99_budget().is_some());
        let total: f64 = tenants.iter().map(|t| t.weight).sum();
        assert!((tenants[2].weight / total - 0.5).abs() < 1e-12, "bulk carries half the traffic");
    }
}
