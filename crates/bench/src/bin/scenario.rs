//! Scenario regression orchestrator.
//!
//! ```text
//! cargo run -p memcnn-bench --release --bin scenario
//! cargo run -p memcnn-bench --release --bin scenario -- --update-baselines
//! cargo run -p memcnn-bench --release --bin scenario -- run scenarios/burst-qw.toml
//! ```
//!
//! Without a subcommand, discovers every `scenarios/*.toml`, runs each
//! one as its own OS process (`scenario run <file>` on a release-built
//! copy of this binary), parses the one-line JSON result each agent
//! prints, merges the per-run latency histograms into suite-wide and
//! overall ones, and diffs every metric against `baselines/<name>.json`
//! under the scenario's own tolerances. A drift beyond tolerance prints
//! a structured `REGRESSION ...` line naming the scenario, the metric,
//! both values, and the relative drift — and the process exits non-zero,
//! which is the CI gate. `--update-baselines` rewrites the baseline
//! files from the current run instead of diffing (review that diff like
//! code).
//!
//! `run <file>` is the agent mode: execute one scenario, write its full
//! metrics timeline to `<metrics-dir>/<name>.metrics.json`, and print
//! the machine-readable result as the last stdout line.
//!
//! `--record-perfetto` (orchestrator or agent) additionally collects an
//! execution trace around each scenario run and writes it as a
//! ready-to-open Chrome/Perfetto timeline to
//! `<metrics-dir>/<name>.trace.json` — so a failing scenario leaves its
//! timeline next to its report.

use memcnn_bench::scenario::{self, diff_metrics, Drift, ScenarioResult, ScenarioSpec};
use memcnn_bench::util::Table;
use memcnn_metrics::Histogram;
use memcnn_trace as trace;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

#[derive(Serialize)]
struct Outcome {
    scenario: String,
    suite: String,
    /// `ok`, `drift`, `expect-failed`, or `error`.
    status: String,
    drifts: Vec<Drift>,
    expect_failures: Vec<String>,
}

#[derive(Serialize)]
struct Summary {
    bench: &'static str,
    scenarios: Vec<Outcome>,
    /// Latency histograms merged across each suite's scenarios.
    suite_hist: BTreeMap<String, Histogram>,
    /// Latency histogram merged across every scenario.
    merged_hist: Histogram,
}

fn usage() -> ! {
    eprintln!(
        "usage: scenario [--scenarios DIR] [--baselines DIR] [--metrics-dir DIR] \
         [--out PATH] [--agent PATH] [--update-baselines] [--record-perfetto]\n       \
         scenario run FILE [--metrics-dir DIR] [--record-perfetto]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("run") {
        run_agent(&args[1..]);
    }

    let mut scenarios_dir = PathBuf::from("scenarios");
    let mut baselines_dir = PathBuf::from("baselines");
    let mut metrics_dir = PathBuf::from("target/metrics");
    let mut out = PathBuf::from("BENCH_scenario.json");
    let mut agent: Option<PathBuf> = None;
    let mut update = false;
    let mut record_perfetto = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenarios" => scenarios_dir = next_path(&mut it),
            "--baselines" => baselines_dir = next_path(&mut it),
            "--metrics-dir" => metrics_dir = next_path(&mut it),
            "--out" => out = next_path(&mut it),
            "--agent" => agent = Some(next_path(&mut it)),
            "--update-baselines" => update = true,
            "--record-perfetto" => record_perfetto = true,
            _ => usage(),
        }
    }
    let agent = agent.unwrap_or_else(|| std::env::current_exe().expect("current_exe"));

    let mut files: Vec<PathBuf> = std::fs::read_dir(&scenarios_dir)
        .unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", scenarios_dir.display());
            std::process::exit(1);
        })
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("no *.toml scenarios under {}", scenarios_dir.display());
        std::process::exit(1);
    }
    std::fs::create_dir_all(&metrics_dir).expect("create metrics dir");
    if update {
        std::fs::create_dir_all(&baselines_dir).expect("create baselines dir");
    }

    let mut outcomes = Vec::new();
    let mut suite_hist: BTreeMap<String, Histogram> = BTreeMap::new();
    let mut merged_hist = Histogram::new();
    let mut table = Table::new(
        "scenario regression harness".to_string(),
        &["scenario", "suite", "requests", "p99 ms", "shed", "status"],
    );
    let mut failed = false;

    for file in &files {
        let spec = match std::fs::read_to_string(file)
            .map_err(|e| e.to_string())
            .and_then(|t| scenario::parse_spec(&t))
        {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ERROR scenario={} parse: {e}", file.display());
                failed = true;
                continue;
            }
        };
        let result = match spawn_agent(&agent, file, &metrics_dir, record_perfetto) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ERROR scenario={} run: {e}", spec.name);
                outcomes.push(Outcome {
                    scenario: spec.name.clone(),
                    suite: spec.suite.clone(),
                    status: "error".to_string(),
                    drifts: Vec::new(),
                    expect_failures: Vec::new(),
                });
                failed = true;
                continue;
            }
        };

        suite_hist.entry(result.suite.clone()).or_default().merge(&result.hist);
        merged_hist.merge(&result.hist);

        let mut status = "ok";
        for f in &result.expect_failures {
            eprintln!("EXPECT FAILED scenario={}: {f}", result.scenario);
            status = "expect-failed";
            failed = true;
        }

        let drifts = if update {
            let path = baseline_path(&baselines_dir, &spec.name);
            let pretty = serde_json::to_string_pretty(&result).expect("serialize baseline");
            std::fs::write(&path, format!("{pretty}\n")).expect("write baseline");
            eprintln!("updated {}", path.display());
            Vec::new()
        } else {
            match diff_against_baseline(&baselines_dir, &spec, &result) {
                Ok(drifts) => {
                    for d in &drifts {
                        eprintln!(
                            "REGRESSION scenario={} metric={} baseline={} current={} \
                             drift={:.2}% tol={:.2}%",
                            result.scenario,
                            d.metric,
                            d.baseline,
                            d.current,
                            d.rel * 100.0,
                            d.tol * 100.0
                        );
                    }
                    if !drifts.is_empty() {
                        status = "drift";
                        failed = true;
                    }
                    drifts
                }
                Err(e) => {
                    eprintln!("ERROR scenario={} baseline: {e}", result.scenario);
                    status = "error";
                    failed = true;
                    Vec::new()
                }
            }
        };

        table.row(vec![
            result.scenario.clone(),
            result.suite.clone(),
            fmt_metric(&result, "requests"),
            fmt_metric(&result, "latency.p99"),
            fmt_metric(&result, "shed"),
            status.to_string(),
        ]);
        outcomes.push(Outcome {
            scenario: result.scenario.clone(),
            suite: result.suite.clone(),
            status: status.to_string(),
            drifts,
            expect_failures: result.expect_failures.clone(),
        });
    }
    table.print();

    let summary = Summary { bench: "scenario", scenarios: outcomes, suite_hist, merged_hist };
    let line = serde_json::to_string(&summary).expect("serialize summary");
    println!("\n{line}");
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", out.display());
    if failed {
        std::process::exit(1);
    }
}

/// Agent mode: run one scenario file in-process.
fn run_agent(args: &[String]) -> ! {
    let mut file: Option<PathBuf> = None;
    let mut metrics_dir = PathBuf::from("target/metrics");
    let mut record_perfetto = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics-dir" => metrics_dir = next_path(&mut it),
            "--record-perfetto" => record_perfetto = true,
            _ if file.is_none() && !arg.starts_with('-') => file = Some(PathBuf::from(arg)),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", file.display());
        std::process::exit(1);
    });
    let spec = scenario::parse_spec(&text).unwrap_or_else(|e| {
        eprintln!("{}: {e}", file.display());
        std::process::exit(1);
    });
    if record_perfetto {
        trace::start();
    }
    let (result, timeline) = scenario::run(&spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    std::fs::create_dir_all(&metrics_dir).expect("create metrics dir");
    if record_perfetto {
        if let Some(captured) = trace::finish() {
            let tpath = metrics_dir.join(format!("{}.trace.json", spec.name));
            std::fs::write(&tpath, trace::export::chrome_trace(&captured))
                .expect("write perfetto trace");
            eprintln!("wrote {}", tpath.display());
        }
    }
    let mpath = metrics_dir.join(format!("{}.metrics.json", spec.name));
    std::fs::write(&mpath, format!("{}\n", timeline.to_json())).expect("write metrics timeline");
    eprintln!("wrote {}", mpath.display());
    // The result line must be the last stdout line: the orchestrator
    // parses stdout from the bottom.
    let line = serde_json::to_string(&result).expect("serialize result");
    println!("{line}");
    std::process::exit(0);
}

fn next_path(it: &mut std::slice::Iter<'_, String>) -> PathBuf {
    match it.next() {
        Some(p) => PathBuf::from(p),
        None => usage(),
    }
}

fn baseline_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.json"))
}

/// Spawn the agent as an OS process and parse its last stdout line.
fn spawn_agent(
    agent: &Path,
    file: &Path,
    metrics_dir: &Path,
    record_perfetto: bool,
) -> Result<ScenarioResult, String> {
    let mut cmd = Command::new(agent);
    cmd.arg("run").arg(file).arg("--metrics-dir").arg(metrics_dir);
    if record_perfetto {
        cmd.arg("--record-perfetto");
    }
    let output = cmd.output().map_err(|e| format!("spawn {}: {e}", agent.display()))?;
    if !output.status.success() {
        let err = String::from_utf8_lossy(&output.stderr);
        return Err(format!("agent exited {}: {}", output.status, err.trim()));
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or("agent printed no result line")?;
    scenario::parse_result(line)
}

/// Diff the result against its committed baseline file.
fn diff_against_baseline(
    dir: &Path,
    spec: &ScenarioSpec,
    result: &ScenarioResult,
) -> Result<Vec<Drift>, String> {
    let path = baseline_path(dir, &spec.name);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!("missing baseline {} ({e}); run --update-baselines", path.display())
    })?;
    let baseline = scenario::parse_result(&text)?;
    Ok(diff_metrics(&baseline.metrics, &result.metrics, &spec.tolerances))
}

fn fmt_metric(result: &ScenarioResult, name: &str) -> String {
    match result.metrics.get(name) {
        Some(v) if name.starts_with("latency") => format!("{v:.3}"),
        Some(v) => format!("{v:.0}"),
        None => "-".to_string(),
    }
}
