//! Profile one network under one mechanism and write the trace exports.
//!
//! ```text
//! cargo run -p memcnn-bench --release --bin profile -- alexnet Opt
//! cargo run -p memcnn-bench --release --bin profile -- vgg16 cuDNN-Best --training --out /tmp/prof
//! ```
//!
//! Writes `<out>/trace.json` (load in Perfetto or `chrome://tracing`)
//! and `<out>/profile.txt` (printed to stdout as well).

use memcnn_bench::profile::{find_mechanism, find_network, profile_network, write_profile};
use memcnn_bench::util::Ctx;
use std::path::PathBuf;

const NETWORKS: &str = "lenet cifar10 alexnet zfnet vgg16";
const MECHANISMS: &str = "cuDNN-MM cuDNN-FFT cuDNN-FFT-T cuda-convnet Caffe cuDNN-Best Opt";

fn usage() -> ! {
    eprintln!(
        "usage: profile <network> <mechanism> [--training] [--titanx] [--top N] [--out DIR]\n\
         networks:   {NETWORKS}\n\
         mechanisms: {MECHANISMS} (case-insensitive; aliases like `fft`, `best` work)\n\
         default output dir: target/profile/<network>-<mechanism>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let mut positional: Vec<&str> = Vec::new();
    let mut training = false;
    let mut titanx = false;
    let mut top_n = 15usize;
    let mut out_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--training" => training = true,
            "--titanx" => titanx = true,
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => top_n = n,
                None => usage(),
            },
            "--out" => match it.next() {
                Some(d) => out_dir = Some(PathBuf::from(d)),
                None => usage(),
            },
            flag if flag.starts_with('-') => usage(),
            pos => positional.push(pos),
        }
    }
    let (net_name, mech_name) = match positional.as_slice() {
        [n] => (*n, "Opt"),
        [n, m] => (*n, *m),
        _ => usage(),
    };
    let Some(net) = find_network(net_name) else {
        eprintln!("unknown network {net_name:?}; known: {NETWORKS}");
        std::process::exit(2);
    };
    let Some(mech) = find_mechanism(mech_name) else {
        eprintln!("unknown mechanism {mech_name:?}; known: {MECHANISMS}");
        std::process::exit(2);
    };
    let ctx = if titanx { Ctx::titan_x() } else { Ctx::titan_black() };
    let out_dir = out_dir.unwrap_or_else(|| {
        PathBuf::from("target/profile").join(format!(
            "{}-{}{}",
            net.name,
            mech.label().to_ascii_lowercase(),
            if training { "-training" } else { "" }
        ))
    });

    let out = match profile_network(&ctx, &net, mech, training, top_n) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", out.profile_text);
    match write_profile(&out_dir, &out) {
        Ok((json_path, text_path)) => {
            println!("wrote {}", json_path.display());
            println!("wrote {}", text_path.display());
        }
        Err(e) => {
            eprintln!("failed to write outputs to {}: {e}", out_dir.display());
            std::process::exit(1);
        }
    }
}
