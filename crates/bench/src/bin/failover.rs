//! Device-failure recovery bench.
//!
//! ```text
//! cargo run -p memcnn-bench --release --bin failover
//! cargo run -p memcnn-bench --release --bin failover -- --out target/BENCH_failover.json
//! ```
//!
//! Serves the seeded 4-device AlexNet Poisson stream (the `fleet`
//! bench's workload shape) with one scheduled mid-run crash: device 1
//! dies at 40% of the stream, its queued work fails over through the
//! retry/shed ladder, and the deterministic healer brings it back —
//! cold plan caches and all — at 60% of the stream. Pre-crash and
//! post-recovery steady-state throughput are computed from the batch
//! records (images completed inside each window / window length), so
//! the recovery cost is measured on the simulated clock, not inferred
//! from aggregates.
//!
//! Two gates, both fatal (exit 1):
//!
//! 1. the extended accounting invariant must balance per tenant and in
//!    aggregate (`admitted == completed + shed + rejected + in_flight +
//!    failed_over_in_transit`), every failed-over request must be
//!    re-queued or shed, and nothing may remain in transit — a mid-run
//!    crash loses no request silently;
//! 2. post-recovery throughput must stay at or above
//!    [`RECOVERY_TPUT_FLOOR`] of the pre-crash window — the healed
//!    device must actually pull its weight again despite the cold
//!    plan-cache warmup.
//!
//! `--metrics PATH` writes the run's metrics timeline (the per-device
//! `dev{d}.health` gauges make the Down → Warming → Healthy ladder
//! directly visible) as one JSON object for CI artifact upload. The
//! summary goes to `BENCH_failover.json` as one line of JSON.

use memcnn_bench::fleet::FLEET_SEED;
use memcnn_bench::slo::{slo_tenants, SLO_DELAY_FACTOR};
use memcnn_bench::util::Ctx;
use memcnn_gpusim::DeviceFaultPlan;
use memcnn_metrics::MetricsTimeline;
use memcnn_models::alexnet;
use memcnn_serve::{
    capacity_images_per_sec, feasible_max_batch, serve_fleet, BatchPolicy, FleetConfig,
    FleetReport, Placement,
};
use memcnn_trace::perf;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Devices in the crash fleet.
const FAILOVER_DEVICES: usize = 4;
/// Device the scheduled crash takes down.
const CRASH_DEVICE: u32 = 1;
/// Crash time as a fraction of the stream duration.
const CRASH_FRAC: f64 = 0.40;
/// Repair span as a fraction of the stream duration.
const REPAIR_FRAC: f64 = 0.15;
/// Warmup span as a fraction of the stream duration.
const WARMUP_FRAC: f64 = 0.05;
/// Gate: post-recovery window throughput must be at least this fraction
/// of the pre-crash window (observed ≈ 2.7 — the healed fleet drains
/// the failover backlog above steady state; the floor bounds
/// regressions where the healed device stays effectively dead).
const RECOVERY_TPUT_FLOOR: f64 = 0.9;

#[derive(Serialize)]
struct Summary {
    bench: &'static str,
    device: String,
    network: String,
    seed: u64,
    devices: usize,
    max_batch: usize,
    capacity_images_per_sec: f64,
    requests: usize,
    shed: usize,
    /// Simulated crash / heal instants, seconds.
    crash_t: f64,
    heal_t: f64,
    /// Images/sec completed in `[0, crash_t)`.
    pre_crash_images_per_sec: f64,
    /// Images/sec completed in `[heal_t, makespan]`.
    post_recovery_images_per_sec: f64,
    /// post / pre (gated >= [`RECOVERY_TPUT_FLOOR`]).
    recovery_tput_ratio: f64,
    downs: u64,
    ups: u64,
    failed_over: u64,
    requeued: u64,
    transit_shed: u64,
    warm_compiles: u64,
    device_seconds: f64,
    slo_cost: f64,
    /// `fleet.*` perf-counter deltas from this process's run.
    fleet_perf: BTreeMap<String, u64>,
}

/// Images/sec completed across the fleet inside `[from, to)`, from the
/// per-device batch records.
fn window_images_per_sec(report: &FleetReport, from: f64, to: f64) -> f64 {
    let images: usize = report
        .devices
        .iter()
        .flat_map(|d| &d.batches)
        .filter(|b| b.record.done >= from && b.record.done < to)
        .map(|b| b.record.images)
        .sum();
    images as f64 / (to - from).max(1e-12)
}

fn usage() -> ! {
    eprintln!("usage: failover [--out PATH] [--metrics PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_failover.json");
    let mut metrics: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => usage(),
            },
            "--metrics" => match it.next() {
                Some(p) => metrics = Some(PathBuf::from(p)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let perf_base = perf::baseline();
    let ctx = Ctx::titan_black();
    let net = alexnet().expect("alexnet");
    let (max_batch, top_plan) = feasible_max_batch(&ctx.engine, &net, ctx.mechanism(), &[64, 32])
        .unwrap_or_else(|| panic!("{}: no feasible batch size", net.name));
    let capacity = capacity_images_per_sec(max_batch, &top_plan);
    let policy = BatchPolicy::new(max_batch, SLO_DELAY_FACTOR * top_plan.total_time());
    let k = FAILOVER_DEVICES;

    let workload = memcnn_bench::fleet::fleet_workload(k, capacity, FLEET_SEED);
    let duration = workload.phases.iter().map(|p| p.duration).sum::<f64>();
    let crash_t = CRASH_FRAC * duration;
    let heal_t = crash_t + (REPAIR_FRAC + WARMUP_FRAC) * duration;
    let faults = DeviceFaultPlan::new(FLEET_SEED, 0.0, 0.0, 0.0)
        .with_repair(REPAIR_FRAC * duration)
        .with_warmup(WARMUP_FRAC * duration)
        .crash_at(crash_t, CRASH_DEVICE);
    let tenants = slo_tenants(policy.max_queue_delay);
    let mut cfg = FleetConfig::new(workload, policy, Placement::LeastLoaded)
        .with_tenants(tenants)
        .with_device_faults(faults);
    cfg.mechanism = ctx.mechanism();

    println!(
        "{}: max_batch={max_batch}, {k}-device stream of {:.0} ms; device {CRASH_DEVICE} \
         crashes at {:.1} ms, heals at {:.1} ms",
        net.name,
        duration * 1e3,
        crash_t * 1e3,
        heal_t * 1e3
    );

    let engines: Vec<&memcnn_core::Engine> = (0..k).map(|_| &ctx.engine).collect();
    let report = serve_fleet(&engines, std::slice::from_ref(&net), &cfg).expect("failover run");
    let health = report.health.as_ref().expect("fault-enabled run must carry a health report");
    let slo = report.slo.as_ref().expect("tenant-enabled run must carry an SLO report");

    let pre_ips = window_images_per_sec(&report, 0.0, crash_t);
    let post_ips = window_images_per_sec(&report, heal_t, report.makespan.max(heal_t + 1e-9));
    let ratio = if pre_ips > 0.0 { post_ips / pre_ips } else { f64::INFINITY };
    println!(
        "pre-crash {pre_ips:.0} images/s, post-recovery {post_ips:.0} images/s (ratio {ratio:.3}); \
         downs {} ups {} failed_over {} requeued {} transit_shed {} warm_compiles {}",
        health.downs,
        health.ups,
        health.failed_over,
        health.requeued,
        health.transit_shed,
        health.warm_compiles
    );

    let mut gate_failed = false;

    // Precondition: the bench measures nothing unless the crash fired,
    // failed over queued work, and the device healed inside the stream.
    if health.downs < 1 || health.ups < 1 || health.failed_over == 0 {
        eprintln!(
            "GATE FAILED: fault plan did not exercise the ladder (downs {}, ups {}, \
             failed_over {})",
            health.downs, health.ups, health.failed_over
        );
        gate_failed = true;
    }

    // Gate 1: the extended accounting invariant — no request lost
    // silently across the crash.
    if !slo.balanced() {
        eprintln!(
            "GATE FAILED: accounting out of balance (admitted != completed + shed + rejected + \
             in_flight + failed_over_in_transit)"
        );
        gate_failed = true;
    }
    for t in &slo.tenants {
        if !t.balanced() {
            eprintln!("GATE FAILED: tenant {} accounting out of balance", t.name);
            gate_failed = true;
        }
    }
    if health.failed_over_in_transit != 0 || slo.failed_over_in_transit != 0 {
        eprintln!(
            "GATE FAILED: {} requests stranded in the failover transit buffer",
            health.failed_over_in_transit
        );
        gate_failed = true;
    }
    if health.requeued + health.transit_shed != health.failed_over {
        eprintln!(
            "GATE FAILED: failover leak — failed_over {} != requeued {} + transit_shed {}",
            health.failed_over, health.requeued, health.transit_shed
        );
        gate_failed = true;
    }
    if !gate_failed {
        println!(
            "gate ok: books balance across the crash ({} failed over, {} re-queued, {} shed, \
             0 in transit)",
            health.failed_over, health.requeued, health.transit_shed
        );
    }

    // Gate 2: the healed fleet must recover steady-state throughput.
    if ratio < RECOVERY_TPUT_FLOOR {
        eprintln!(
            "GATE FAILED: post-recovery throughput ratio {ratio:.3} ({post_ips:.0} vs \
             {pre_ips:.0} images/s) fell below {RECOVERY_TPUT_FLOOR}"
        );
        gate_failed = true;
    } else {
        println!(
            "gate ok: post-recovery throughput holds {:.0}% of pre-crash ({post_ips:.0} vs \
             {pre_ips:.0} images/s)",
            ratio * 100.0
        );
    }

    if let Some(path) = &metrics {
        let mut timelines: BTreeMap<String, MetricsTimeline> = BTreeMap::new();
        timelines.insert(format!("{}.failover", net.name), report.timeline.clone());
        let json = serde_json::to_string(&timelines).expect("serialize timelines");
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    let fleet_perf: BTreeMap<String, u64> =
        perf_base.delta().into_iter().filter(|(name, _)| name.starts_with("fleet.")).collect();

    let summary = Summary {
        bench: "failover",
        device: ctx.device.name.clone(),
        network: net.name.clone(),
        seed: FLEET_SEED,
        devices: k,
        max_batch,
        capacity_images_per_sec: capacity,
        requests: report.requests,
        shed: report.shed_requests,
        crash_t,
        heal_t,
        pre_crash_images_per_sec: pre_ips,
        post_recovery_images_per_sec: post_ips,
        recovery_tput_ratio: ratio,
        downs: health.downs,
        ups: health.ups,
        failed_over: health.failed_over,
        requeued: health.requeued,
        transit_shed: health.transit_shed,
        warm_compiles: health.warm_compiles,
        device_seconds: slo.device_seconds,
        slo_cost: slo.cost(),
        fleet_perf,
    };
    let line = serde_json::to_string(&summary).expect("serialize summary");
    println!("\n{line}");
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", out.display());
    if gate_failed {
        std::process::exit(1);
    }
}
