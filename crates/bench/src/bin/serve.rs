//! Latency-vs-throughput serving sweep with batch-size-aware layout plans.
//!
//! ```text
//! cargo run -p memcnn-bench --release --bin serve
//! cargo run -p memcnn-bench --release --bin serve -- --out target/BENCH_serve.json
//! ```
//!
//! For AlexNet and VGG-16 (the deeper network), prints the per-bucket plan
//! table — the same network compiles different convolution layouts at
//! different bucket sizes — then serves seeded Poisson streams at
//! fractions of saturation throughput and tabulates p50/p95/p99 latency
//! and throughput per operating point. A fixed reference point
//! (70% of capacity, seed 42) is written as one line of JSON to
//! `BENCH_serve.json` for CI trend tracking, next to `BENCH_engine.json`.
//!
//! `--metrics PATH` additionally writes each network's reference-point
//! metrics timeline (queue depth, utilization, plan-cache hit rate, and
//! windowed latency percentiles on simulated time) as one JSON object
//! keyed by network name.

use memcnn_bench::serving::{self, plan_table, run_point, sweep, sweep_policy};
use memcnn_bench::util::Ctx;
use memcnn_metrics::MetricsTimeline;
use memcnn_models::{alexnet, vgg16};
use memcnn_serve::{capacity_images_per_sec, feasible_max_batch};
use memcnn_trace::perf;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;

#[derive(Serialize)]
struct NetworkRow {
    name: String,
    max_batch: usize,
    /// Offered request rate at the reference point, requests/second.
    reference_rate_rps: f64,
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
    throughput_images_per_sec: f64,
    /// Buckets that actually served batches at the reference point.
    buckets_used: Vec<usize>,
    /// Distinct conv-layout signatures across compiled buckets (> 1 means
    /// the server flips plans with load).
    distinct_conv_signatures: usize,
    /// Layout-DP compiles during the reference run (== buckets touched).
    plan_compiles: u64,
    /// Plan-cache hits during the reference run (repeat buckets).
    plan_hits: u64,
}

#[derive(Serialize)]
struct Summary {
    bench: &'static str,
    device: String,
    seed: u64,
    reference_load_frac: f64,
    networks: Vec<NetworkRow>,
}

fn usage() -> ! {
    eprintln!("usage: serve [--out PATH] [--metrics PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut metrics: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => usage(),
            },
            "--metrics" => match it.next() {
                Some(p) => metrics = Some(PathBuf::from(p)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let ctx = Ctx::titan_black();
    let fracs = [0.2, 0.5, 0.8, 1.1];
    let mut rows = Vec::new();
    let mut timelines: BTreeMap<String, MetricsTimeline> = BTreeMap::new();

    for net in [alexnet().expect("alexnet"), vgg16().expect("vgg16")] {
        // Deep networks can exhaust simulated device memory at large N;
        // cap the top bucket at the largest batch that still plans.
        let (max_batch, top_plan) =
            feasible_max_batch(&ctx.engine, &net, ctx.mechanism(), &[256, 128, 64, 32])
                .unwrap_or_else(|| panic!("{}: no feasible batch size", net.name));
        let capacity = capacity_images_per_sec(max_batch, &top_plan);
        let policy = sweep_policy(max_batch, top_plan.total_time());
        println!(
            "\n{}: max_batch={max_batch}, saturation ≈ {capacity:.0} images/s, \
             queue-delay cap {:.1} ms",
            net.name,
            policy.max_queue_delay * 1e3
        );

        let table = plan_table(&ctx, &net, &policy).expect("plan table");
        table.print();

        let (_, sweep_table) = sweep(&ctx, &net, &policy, &fracs, capacity).expect("latency sweep");
        sweep_table.print();

        // Reference point for CI: fixed load fraction and seed. Counters
        // are read as deltas against a snapshot, so earlier sweeps in
        // this process don't leak into the reference numbers.
        let before = perf::baseline();
        let reference = run_point(&ctx, &net, &policy, serving::REFERENCE_FRAC, capacity)
            .expect("reference point");
        let (compiles, hits) =
            (before.delta_of("engine.plan.compile"), before.delta_of("serve.plan.hit"));
        let lat = reference.report.latency();
        println!(
            "reference @{:.0}%: p50 {:.3} ms, p99 {:.3} ms, {:.0} images/s \
             ({compiles} plan compiles, {hits} cache hits)",
            serving::REFERENCE_FRAC * 100.0,
            lat.p50 * 1e3,
            lat.p99 * 1e3,
            reference.report.throughput_images_per_sec()
        );
        rows.push(NetworkRow {
            name: net.name.clone(),
            max_batch,
            reference_rate_rps: reference.rate,
            requests: reference.report.requests,
            p50_ms: lat.p50 * 1e3,
            p99_ms: lat.p99 * 1e3,
            throughput_images_per_sec: reference.report.throughput_images_per_sec(),
            buckets_used: reference
                .report
                .buckets
                .iter()
                .filter(|b| b.batches > 0)
                .map(|b| b.bucket)
                .collect(),
            distinct_conv_signatures: reference.report.distinct_conv_signatures(),
            plan_compiles: compiles,
            plan_hits: hits,
        });
        timelines.insert(net.name.clone(), reference.report.timeline.clone());
    }

    if let Some(path) = &metrics {
        let json = serde_json::to_string(&timelines).expect("serialize timelines");
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    let summary = Summary {
        bench: "serve",
        device: ctx.device.name.clone(),
        seed: serving::SWEEP_SEED,
        reference_load_frac: serving::REFERENCE_FRAC,
        networks: rows,
    };
    let line = serde_json::to_string(&summary).expect("serialize summary");
    println!("\n{line}");
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", out.display());
}
