//! Emit a single-line JSON summary of engine performance for CI.
//!
//! ```text
//! cargo run -p memcnn-bench --release --bin bench_summary
//! cargo run -p memcnn-bench --release --bin bench_summary -- --tier1-secs 93 --out target/BENCH_engine.json
//! ```
//!
//! Simulates every network under Opt twice — the first pass fills the
//! simulation cache, the second runs hot — then writes one line of JSON to
//! `BENCH_engine.json` and echoes it to stdout so CI logs carry the numbers
//! without artifact plumbing. `--tier1-secs` lets the caller fold in the
//! wall-clock of the tier-1 test suite it just ran.

use memcnn_bench::util::Ctx;
use memcnn_core::Mechanism;
use memcnn_gpusim::simcache;
use memcnn_models::all_networks;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct NetworkRow {
    name: String,
    /// Wall-clock of the first Opt simulation (cache-filling), in ms.
    first_ms: f64,
    /// Wall-clock of a repeat Opt simulation (cache hot), in ms.
    warm_ms: f64,
    /// Simulated GPU execution time of the network under Opt, in ms.
    simulated_ms: f64,
}

#[derive(Serialize)]
struct Summary {
    bench: &'static str,
    device: String,
    /// Wall-clock of the tier-1 suite as reported by the caller, if any.
    tier1_wall_secs: Option<f64>,
    cache_hit_rate: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_entries: u64,
    networks: Vec<NetworkRow>,
}

fn usage() -> ! {
    eprintln!("usage: bench_summary [--tier1-secs S] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tier1_wall_secs = None;
    let mut out = PathBuf::from("BENCH_engine.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tier1-secs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => tier1_wall_secs = Some(s),
                None => usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let ctx = Ctx::titan_black();
    let mut networks = Vec::new();
    for net in all_networks() {
        let t0 = Instant::now();
        let report = ctx.engine.simulate_network(&net, Mechanism::Opt).expect("simulate");
        let first_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        ctx.engine.simulate_network(&net, Mechanism::Opt).expect("simulate");
        let warm_ms = t1.elapsed().as_secs_f64() * 1e3;
        networks.push(NetworkRow {
            name: net.name.clone(),
            first_ms,
            warm_ms,
            simulated_ms: report.total_time() * 1e3,
        });
    }

    let stats = simcache::stats();
    let summary = Summary {
        bench: "engine",
        device: ctx.device.name.clone(),
        tier1_wall_secs,
        cache_hit_rate: stats.hit_rate(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_entries: stats.entries,
        networks,
    };
    let line = serde_json::to_string(&summary).expect("serialize summary");
    println!("{line}");
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", out.display());
}
