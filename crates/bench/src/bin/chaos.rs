//! Chaos sweep: serving under seeded fault injection.
//!
//! ```text
//! cargo run -p memcnn-bench --release --bin chaos
//! cargo run -p memcnn-bench --release --bin chaos -- --out target/BENCH_chaos.json
//! ```
//!
//! Serves the fixed reference stream (AlexNet, 70% of saturation
//! capacity, seed 42) under increasing fault rates — 0%, 1%, 5%, 10%
//! transient launch failures, each with OOM at one fifth of the transient
//! rate — and tabulates p99 latency, shed rate, and the fault accounting
//! per point. The whole sweep is written as one line of JSON to
//! `BENCH_chaos.json` for CI trend tracking, next to `BENCH_serve.json`.
//!
//! Exits non-zero if any point violates the counter-discipline invariant
//! (`injected == retried + degraded + shed`): that invariant is the
//! machine-checkable statement that every injected fault was handled.
//!
//! `--metrics PATH` additionally writes the highest-rate point's metrics
//! timeline (gauges plus windowed latency percentiles on simulated time)
//! as JSON.

use memcnn_bench::chaos::chaos_sweep;
use memcnn_bench::util::Ctx;
use memcnn_models::alexnet;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: chaos [--out PATH] [--metrics PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_chaos.json");
    let mut metrics: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => usage(),
            },
            "--metrics" => match it.next() {
                Some(p) => metrics = Some(PathBuf::from(p)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let ctx = Ctx::titan_black();
    let net = alexnet().expect("alexnet");
    let (summary, table, timeline) = match chaos_sweep(&ctx, &net) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos sweep failed: {e}");
            std::process::exit(1);
        }
    };
    table.print();

    if let Some(path) = metrics {
        if let Err(e) = std::fs::write(&path, format!("{}\n", timeline.to_json())) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    if let Some(bad) = summary.points.iter().find(|p| !p.balanced) {
        eprintln!(
            "counter discipline violated at transient rate {}: \
             injected {} != retried {} + degraded {} + shed {}",
            bad.transient_rate, bad.injected, bad.retried, bad.degraded, bad.shed_faults
        );
        std::process::exit(1);
    }

    let line = serde_json::to_string(&summary).expect("serialize summary");
    println!("\n{line}");
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", out.display());
}
