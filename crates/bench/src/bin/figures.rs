//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p memcnn-bench --release --bin figures -- <id>...
//! cargo run -p memcnn-bench --release --bin figures -- all
//! ```
//!
//! Ids: `table1 fig1 fig3 fig4a fig4b fig5 fig6 fig10 fig11 fig12 fig13
//! fig14 fig15 thresholds alu-util softmax-ablation mem-overhead titanx
//! layouts24 transform-quality` (see DESIGN.md §5 for the mapping).

use memcnn_bench::figures;
use memcnn_bench::util::Ctx;

const ALL: &[&str] = &[
    "table1",
    "fig1",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "thresholds",
    "alu-util",
    "softmax-ablation",
    "mem-overhead",
    "titanx",
    "layouts24",
    "transform-quality",
    "bankmode",
    "l2-ablation",
    "training",
    "winograd",
];

fn run(id: &str, ctx: &Ctx) -> bool {
    match id {
        "table1" => figures::table1_echo(),
        "fig1" => {
            figures::fig1(ctx);
        }
        "fig3" => {
            figures::fig3(ctx);
        }
        "fig4a" | "fig4b" | "fig4" => {
            figures::fig4(ctx);
        }
        "fig5" => {
            figures::fig5(ctx);
        }
        "fig6" => {
            figures::fig6(ctx);
        }
        "fig10" => {
            figures::fig10(ctx);
        }
        "fig11" => {
            figures::fig11(ctx);
        }
        "fig12" => {
            figures::fig12(ctx);
        }
        "fig13" => {
            figures::fig13(ctx);
        }
        "fig14" => {
            figures::fig14(ctx);
        }
        "fig15" => {
            figures::fig15(ctx);
        }
        "thresholds" => {
            figures::thresholds_table();
        }
        "alu-util" => {
            figures::alu_utilization(ctx);
        }
        "softmax-ablation" => {
            figures::softmax_ablation(ctx);
        }
        "mem-overhead" => {
            figures::memory_overhead(ctx);
        }
        "titanx" => {
            figures::titan_x_networks();
        }
        "layouts24" => {
            figures::layouts24(ctx);
        }
        "transform-quality" => {
            figures::transform_quality_network(ctx);
        }
        "bankmode" => {
            figures::bank_mode_ablation();
        }
        "l2-ablation" => {
            figures::l2_ablation(ctx);
        }
        "training" => {
            figures::training(ctx);
        }
        "winograd" => {
            figures::winograd(ctx);
        }
        _ => return false,
    }
    println!();
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures <id>... | all\nids: {}", ALL.join(" "));
        std::process::exit(2);
    }
    let ctx = Ctx::titan_black();
    println!("device: {}\n", ctx.device.name);
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for id in ids {
        if !run(id, &ctx) {
            eprintln!("unknown figure id {id:?}; known: {}", ALL.join(" "));
            std::process::exit(2);
        }
    }
}
