//! Multi-tenant SLO scheduling bench.
//!
//! ```text
//! cargo run -p memcnn-bench --release --bin slo
//! cargo run -p memcnn-bench --release --bin slo -- --out target/BENCH_slo.json
//! ```
//!
//! Serves one seeded two-phase AlexNet stream on a 4-device Titan-Black
//! fleet twice: once with the deadline-aware tenant scheduler (an
//! interactive minority, a standard tenant, and a best-effort bulk
//! tenant), once with `MEMCNN_SLO_DISABLE=1` forcing the class-blind
//! scheduler on the identical config. Attribution is a pure function of
//! the seed, so the blind run's per-class latencies are recovered post
//! hoc and every per-class delta is pure scheduling, not workload noise.
//!
//! Three gates, all fatal (exit 1):
//!
//! 1. the aware run's per-tenant accounting must balance
//!    (`admitted == completed + shed + rejected + in_flight`, per tenant
//!    and aggregate);
//! 2. interactive p99 under the mixed workload must beat the class-blind
//!    scheduler by at least the recorded ratio;
//! 3. best-effort throughput must stay above the recorded floor of its
//!    class-blind throughput — the fairness deficit counter bounds the
//!    starvation the interactive preference is allowed to cause.
//!
//! `--metrics PATH` writes both runs' metrics timelines (the aware one
//! carries the per-tenant keyed latency histograms) as one JSON object
//! for CI artifact upload. The summary — per-class table, gate ratios,
//! fairness, and the `slo.*` perf-counter deltas — goes to
//! `BENCH_slo.json` as one line of JSON.

use memcnn_bench::fleet::FLEET_SEED;
use memcnn_bench::slo::{
    class_table, compare_classes, run_slo_fleet, slo_tenants, slo_workload, ClassCompare,
    SLO_DEVICES,
};
use memcnn_bench::util::Ctx;
use memcnn_metrics::MetricsTimeline;
use memcnn_models::alexnet;
use memcnn_serve::{capacity_images_per_sec, feasible_max_batch, Placement};
use memcnn_trace::perf;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Gate: aware interactive p99 must be at most this fraction of the
/// class-blind interactive p99 (observed ≈ 0.65 on the seeded stream;
/// headroom for engine-tuning drift).
const INTERACTIVE_P99_GATE: f64 = 0.75;
/// Gate: aware best-effort images/sec must stay above this fraction of
/// its class-blind throughput (observed ≈ 0.80 — the drained run loses
/// makespan, not completions; the floor bounds regressions where the
/// interactive preference starves bulk work outright).
const BEST_EFFORT_TPUT_FLOOR: f64 = 0.6;

#[derive(Serialize)]
struct Summary {
    bench: &'static str,
    device: String,
    network: String,
    seed: u64,
    devices: usize,
    max_batch: usize,
    capacity_images_per_sec: f64,
    classes: Vec<ClassCompare>,
    /// aware / blind interactive p99 (gated <= [`INTERACTIVE_P99_GATE`]).
    interactive_p99_ratio: f64,
    /// aware / blind best-effort images/sec (gated >=
    /// [`BEST_EFFORT_TPUT_FLOOR`]).
    best_effort_tput_ratio: f64,
    /// max/min weighted share across tenants in the aware run.
    fairness_ratio: f64,
    early_commits: u64,
    preemptions: u64,
    rejected: u64,
    violations: u64,
    /// Device-seconds consumed by the aware run (sum of per-device busy
    /// time).
    device_seconds: f64,
    /// Device-seconds per p99-budget violation (higher is better:
    /// capacity spent without blowing budgets).
    slo_cost: f64,
    /// `slo.*` perf-counter deltas from this process's two runs.
    slo_perf: BTreeMap<String, u64>,
}

fn usage() -> ! {
    eprintln!("usage: slo [--out PATH] [--metrics PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_slo.json");
    let mut metrics: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => usage(),
            },
            "--metrics" => match it.next() {
                Some(p) => metrics = Some(PathBuf::from(p)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let perf_base = perf::baseline();
    let ctx = Ctx::titan_black();
    let net = alexnet().expect("alexnet");
    let (max_batch, top_plan) = feasible_max_batch(&ctx.engine, &net, ctx.mechanism(), &[64, 32])
        .unwrap_or_else(|| panic!("{}: no feasible batch size", net.name));
    let capacity = capacity_images_per_sec(max_batch, &top_plan);
    let policy = memcnn_serve::BatchPolicy::new(
        max_batch,
        memcnn_bench::slo::SLO_DELAY_FACTOR * top_plan.total_time(),
    );
    let k = SLO_DEVICES;
    let workload = slo_workload(k, capacity, FLEET_SEED);
    let tenants = slo_tenants(policy.max_queue_delay);
    println!(
        "{}: max_batch={max_batch}, {k}-device two-phase stream, {} tenants \
         (interactive p99 budget {:.1} ms, blind queue delay {:.1} ms)",
        net.name,
        tenants.len(),
        tenants[0].class.p99_budget().unwrap_or(0.0) * 1e3,
        policy.max_queue_delay * 1e3
    );

    // Deadline-aware run, then the class-blind oracle on the SAME config
    // (the knob forces the blind scheduler; attribution stays post hoc).
    std::env::remove_var("MEMCNN_SLO_DISABLE");
    let aware = run_slo_fleet(
        &ctx,
        &net,
        policy,
        workload.clone(),
        Placement::QueueWeighted,
        k,
        tenants.clone(),
    )
    .expect("aware run");
    std::env::set_var("MEMCNN_SLO_DISABLE", "1");
    let blind = run_slo_fleet(
        &ctx,
        &net,
        policy,
        workload.clone(),
        Placement::QueueWeighted,
        k,
        tenants.clone(),
    )
    .expect("blind run");
    std::env::remove_var("MEMCNN_SLO_DISABLE");

    let slo = aware.slo.as_ref().expect("aware run must carry an SLO report");
    let classes = compare_classes(&aware, &blind, &workload, &tenants);
    class_table(format!("{}: deadline-aware vs class-blind @{k} devices", net.name), &classes)
        .print();
    println!(
        "fairness max/min weighted share {:.2}; early commits {}, preemptions {}, \
         rejected {}, violations {}; slo.cost {:.4} device-s/violation \
         ({:.3} device-s total)",
        slo.fairness.ratio,
        slo.early_commits,
        slo.preemptions,
        slo.rejected,
        slo.violations,
        slo.cost(),
        slo.device_seconds
    );

    let mut gate_failed = false;

    // Gate 1: the accounting invariant, per tenant and aggregate.
    if !slo.balanced() {
        eprintln!("GATE FAILED: per-tenant accounting out of balance (admitted != completed + shed + rejected + in_flight)");
        gate_failed = true;
    }

    // Gate 2: interactive p99 must actually improve.
    let interactive = &classes[0];
    let p99_ratio = if interactive.blind_p99_ms > 0.0 {
        interactive.aware_p99_ms / interactive.blind_p99_ms
    } else {
        f64::INFINITY
    };
    if p99_ratio > INTERACTIVE_P99_GATE {
        eprintln!(
            "GATE FAILED: interactive p99 ratio {p99_ratio:.3} (aware {:.3} ms / blind {:.3} ms) \
             exceeds {INTERACTIVE_P99_GATE}",
            interactive.aware_p99_ms, interactive.blind_p99_ms
        );
        gate_failed = true;
    } else {
        println!(
            "gate ok: interactive p99 {:.3} ms is {:.2}x below class-blind {:.3} ms",
            interactive.aware_p99_ms,
            1.0 / p99_ratio.max(1e-12),
            interactive.blind_p99_ms
        );
    }

    // Gate 3: the bounded best-effort cost.
    let be = classes.last().expect("tenant mix is non-empty");
    let be_aware = be.aware_images as f64 / aware.makespan.max(1e-12);
    let be_blind = be.blind_images as f64 / blind.makespan.max(1e-12);
    let tput_ratio = if be_blind > 0.0 { be_aware / be_blind } else { f64::INFINITY };
    if tput_ratio < BEST_EFFORT_TPUT_FLOOR {
        eprintln!(
            "GATE FAILED: best-effort throughput ratio {tput_ratio:.3} ({be_aware:.0} vs \
             {be_blind:.0} images/s) fell below {BEST_EFFORT_TPUT_FLOOR}"
        );
        gate_failed = true;
    } else {
        println!(
            "gate ok: best-effort keeps {:.0}% of class-blind throughput ({be_aware:.0} vs \
             {be_blind:.0} images/s)",
            tput_ratio * 100.0
        );
    }

    if let Some(path) = &metrics {
        let mut timelines: BTreeMap<String, MetricsTimeline> = BTreeMap::new();
        timelines.insert(format!("{}.slo.aware", net.name), aware.timeline.clone());
        timelines.insert(format!("{}.slo.blind", net.name), blind.timeline.clone());
        let json = serde_json::to_string(&timelines).expect("serialize timelines");
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    let slo_perf: BTreeMap<String, u64> =
        perf_base.delta().into_iter().filter(|(name, _)| name.starts_with("slo.")).collect();
    println!(
        "slo perf: {}",
        slo_perf.iter().map(|(name, v)| format!("{name}={v}")).collect::<Vec<_>>().join(", ")
    );

    let summary = Summary {
        bench: "slo",
        device: ctx.device.name.clone(),
        network: net.name.clone(),
        seed: FLEET_SEED,
        devices: k,
        max_batch,
        capacity_images_per_sec: capacity,
        classes,
        interactive_p99_ratio: p99_ratio,
        best_effort_tput_ratio: tput_ratio,
        fairness_ratio: slo.fairness.ratio,
        early_commits: slo.early_commits,
        preemptions: slo.preemptions,
        rejected: slo.rejected,
        violations: slo.violations,
        device_seconds: slo.device_seconds,
        slo_cost: slo.cost(),
        slo_perf,
    };
    let line = serde_json::to_string(&summary).expect("serialize summary");
    println!("\n{line}");
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", out.display());
    if gate_failed {
        std::process::exit(1);
    }
}
