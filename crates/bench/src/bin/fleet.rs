//! Multi-device fleet-serving scaling bench.
//!
//! ```text
//! cargo run -p memcnn-bench --release --bin fleet
//! cargo run -p memcnn-bench --release --bin fleet -- --out target/BENCH_fleet.json
//! ```
//!
//! For AlexNet and VGG-16, serves the same seeded Poisson stream on
//! homogeneous Titan-Black fleets of 1/2/4/8 devices at a fixed 70%
//! per-device offered load, under each placement policy, and tabulates
//! images/sec, p99, and speedup over the single device. A bursty
//! two-phase stream then compares round-robin, least-loaded, and
//! queue-weighted at 4 devices — the burst is where least-loaded's
//! convoy defect shows (its frozen free-time key routes a whole burst to
//! one device between commits; queue-weighted's queued-images key does
//! not), so the steady-state scaling sweep keeps the original three
//! policies. The whole summary is written as one line of JSON to
//! `BENCH_fleet.json` for CI trend tracking.
//!
//! `--metrics PATH` additionally writes the bursty runs' metrics
//! timelines as one JSON object keyed `<network>.bursty.<policy>` — the
//! per-device `dev{d}.queue.images` series inside make the convoy (and
//! its absence under queue-weighted) directly visible.
//!
//! A wallclock matrix then re-runs the AlexNet least-loaded point cold in
//! fresh subprocesses (`--measure K` is the hidden child mode) for every
//! (K, MEMCNN_THREADS) in {1, 4, 8, 16, 64} × {1, 4} — fresh processes
//! because `MEMCNN_THREADS` is read once per process. Each child reports
//! `wallclock_ms` plus a report digest; the digests must match across
//! thread counts (bit-determinism gate, always enforced), and on hosts
//! with ≥ 4 cores THREADS=4 must be ≥ 2x faster than THREADS=1 at K=8
//! (the parallel-stepping scaling gate; skipped with a note on smaller
//! hosts, where the speedup physically cannot exist).
//!
//! An orchestrator-throughput stream mode follows: a ~1,000,000-request
//! Poisson stream of a deliberately tiny network on a K=64 fleet, where
//! wallclock is dominated by routing/arbitration rather than plan
//! simulation. It reports orchestrator events/sec (routes + commits per
//! second of wallclock) in `BENCH_fleet.json`, checks the run's digest
//! against the retained sequential oracle (`MEMCNN_FLEET_SEQUENTIAL=1`),
//! and at K=16 compares the tournament route index against the retained
//! pre-index linear scan (`MEMCNN_FLEET_LINEAR=1`) — the indexed router
//! must clear 2x the linear baseline's events/sec. Both stream gates are
//! fatal and run on any host (the comparison is thread-count-matched, so
//! core count cannot excuse a miss).
//!
//! Exits non-zero if 4-device least-loaded throughput falls below 3x
//! the single device — the scaling regression gate — or if either
//! wallclock-matrix gate or either stream gate trips.

use memcnn_bench::fleet::{
    bursty_workload, digest, fleet_workload, run_fleet, scaling, stream_net, stream_workload,
    FLEET_LOAD_FRAC, FLEET_SEED, FLEET_SIZES, STREAM_GATE_K, STREAM_K, STREAM_REQUESTS,
};
use memcnn_bench::serving::sweep_policy;
use memcnn_bench::slo::{class_table, compare_classes, run_slo_fleet, slo_tenants, ClassCompare};
use memcnn_bench::util::{Ctx, Table};
use memcnn_metrics::MetricsTimeline;
use memcnn_models::{alexnet, vgg16};
use memcnn_serve::{capacity_images_per_sec, feasible_max_batch, Placement};
use memcnn_trace::perf;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

/// Thread counts the wallclock matrix sweeps (each in a fresh child).
const MATRIX_THREADS: [usize; 2] = [1, 4];
/// Fleet sizes the wallclock matrix sweeps.
const MATRIX_SIZES: [usize; 5] = [1, 4, 8, 16, 64];

#[derive(Serialize)]
struct PolicyRow {
    devices: usize,
    policy: &'static str,
    requests: usize,
    shed: usize,
    images_per_sec: f64,
    p99_ms: f64,
    /// Throughput relative to the same policy's single-device run.
    speedup_vs_1: f64,
}

#[derive(Serialize)]
struct BurstyRow {
    devices: usize,
    rr_p99_ms: f64,
    ll_p99_ms: f64,
    qw_p99_ms: f64,
    rr_shed: usize,
    ll_shed: usize,
    qw_shed: usize,
    /// Peak single-device queued-images backlog during the burst, per
    /// policy — the convoy observable (least-loaded spikes, queue-weighted
    /// stays near the even share).
    rr_peak_queue: f64,
    ll_peak_queue: f64,
    qw_peak_queue: f64,
}

#[derive(Serialize)]
struct NetworkFleet {
    name: String,
    max_batch: usize,
    capacity_images_per_sec: f64,
    rows: Vec<PolicyRow>,
    bursty: BurstyRow,
    /// Per-class columns for the same bursty stream: class-blind
    /// queue-weighted vs the deadline-aware tenant scheduler (p99 and
    /// SLO-violation counts per service class).
    slo_classes: Vec<ClassCompare>,
    /// Device-seconds per p99-budget violation in the aware bursty run
    /// (the `slo.cost` efficiency metric; higher is better).
    slo_cost: f64,
}

/// One cold child run of the wallclock matrix.
#[derive(Serialize)]
struct MeasureRow {
    k: usize,
    threads: usize,
    wallclock_ms: f64,
    /// FNV-1a digest of the run's latencies/placements/batches, as hex
    /// (a string because the vendored JSON stores numbers as f64, which
    /// cannot carry 64 digest bits). Equal digests across thread counts
    /// is the determinism gate.
    digest: String,
}

/// One run of the orchestrator-throughput stream mode.
#[derive(Serialize)]
struct StreamRow {
    /// Router variant: "indexed" (the tournament route index),
    /// "linear" (`MEMCNN_FLEET_LINEAR=1`, the retained pre-index scan),
    /// or "sequential" (`MEMCNN_FLEET_SEQUENTIAL=1`, the oracle loop).
    mode: &'static str,
    k: usize,
    requests: usize,
    /// Orchestrator events processed: routed arrivals + committed
    /// batches (the `fleet.route.count` + `fleet.commit.count` deltas).
    events: u64,
    wallclock_ms: f64,
    events_per_sec: f64,
    digest: String,
}

#[derive(Serialize)]
struct Summary {
    bench: &'static str,
    device: String,
    seed: u64,
    load_frac: f64,
    networks: Vec<NetworkFleet>,
    /// Cold wallclock per (K, MEMCNN_THREADS) point, from `--measure`
    /// subprocesses.
    wallclock: Vec<MeasureRow>,
    /// Orchestrator-throughput stream runs (K=64 showcase + sequential
    /// oracle, K=16 indexed-vs-linear gate pair).
    stream: Vec<StreamRow>,
    /// Indexed-router events/sec over the linear-scan baseline at the
    /// gate fleet size (must be >= 2.0).
    index_speedup: f64,
    /// `fleet.*` perf-counter deltas accumulated by this process's
    /// in-process sweep runs (barriers crossed, parallel steps taken,
    /// plans batch-compiled).
    fleet_perf: BTreeMap<String, u64>,
}

/// Peak queued-images backlog on any one device, read from the fleet
/// timeline's per-device `dev{d}.queue.images` series.
fn peak_device_queue(timeline: &MetricsTimeline, k: usize) -> f64 {
    (0..k)
        .map(|d| {
            timeline
                .series(&format!("dev{d}.queue.images"))
                .map_or(0.0, |s| s.samples.iter().map(|p| p.value).fold(0.0, f64::max))
        })
        .fold(0.0, f64::max)
}

fn usage() -> ! {
    eprintln!("usage: fleet [--out PATH] [--metrics PATH] [--measure K]");
    std::process::exit(2);
}

/// Hidden child mode: one cold AlexNet least-loaded fleet run at `k`
/// devices, timed around the serve call and reported as a single JSON
/// line on stdout. Run in a fresh process per point because the worker
/// pool reads `MEMCNN_THREADS` once per process — the parent sets it in
/// our environment.
fn measure(k: usize) -> ! {
    let threads = std::env::var("MEMCNN_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    let ctx = Ctx::titan_black();
    let net = alexnet().expect("alexnet");
    let (max_batch, top_plan) =
        feasible_max_batch(&ctx.engine, &net, ctx.mechanism(), &[256, 128, 64, 32])
            .unwrap_or_else(|| panic!("{}: no feasible batch size", net.name));
    let capacity = capacity_images_per_sec(max_batch, &top_plan);
    let policy = sweep_policy(max_batch, top_plan.total_time());
    let workload = fleet_workload(k, capacity, FLEET_SEED);
    let start = Instant::now();
    let report = run_fleet(&ctx, &net, policy, workload, Placement::LeastLoaded, k)
        .unwrap_or_else(|e| panic!("measure k={k}: {e}"));
    let row = MeasureRow {
        k,
        threads,
        wallclock_ms: start.elapsed().as_secs_f64() * 1e3,
        digest: format!("{:016x}", digest(&report)),
    };
    println!("{}", serde_json::to_string(&row).expect("serialize measure row"));
    std::process::exit(0);
}

/// The cold wallclock matrix: spawn `--measure` children over
/// [`MATRIX_THREADS`] × [`MATRIX_SIZES`], cross-check digests per K
/// (always), and apply the THREADS=4 ≥ 2x THREADS=1 gate at K=8 when the
/// host has the cores to make the comparison meaningful.
fn wallclock_matrix() -> (Vec<MeasureRow>, bool) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut rows: Vec<MeasureRow> = Vec::new();
    let mut failed = false;
    for &threads in &MATRIX_THREADS {
        for &k in &MATRIX_SIZES {
            let out = Command::new(&exe)
                .arg("--measure")
                .arg(k.to_string())
                .env("MEMCNN_THREADS", threads.to_string())
                .output()
                .expect("spawn measure child");
            if !out.status.success() {
                eprintln!(
                    "measure child (k={k}, threads={threads}) failed:\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                std::process::exit(1);
            }
            let stdout = String::from_utf8_lossy(&out.stdout);
            let line = stdout.lines().last().unwrap_or("");
            // The vendored serde has no derive-level deserialization;
            // walk the parsed `Value` by hand (same idiom as scenario
            // result parsing).
            let row = serde_json::from_str(line)
                .ok()
                .and_then(|v| {
                    Some(MeasureRow {
                        k: v.get("k")?.as_u64()? as usize,
                        threads: v.get("threads")?.as_u64()? as usize,
                        wallclock_ms: v.get("wallclock_ms")?.as_f64()?,
                        digest: v.get("digest")?.as_str()?.to_string(),
                    })
                })
                .unwrap_or_else(|| {
                    panic!("measure child (k={k}, threads={threads}) bad output {line:?}")
                });
            rows.push(row);
        }
    }

    let mut table = Table::new(
        "cold fleet wallclock: AlexNet, least-loaded, fresh process per point".to_string(),
        &["devices", "MEMCNN_THREADS", "wallclock ms", "digest"],
    );
    for row in &rows {
        table.row(vec![
            row.k.to_string(),
            row.threads.to_string(),
            format!("{:.1}", row.wallclock_ms),
            row.digest.clone(),
        ]);
    }
    table.print();

    // Determinism gate: at each K, every thread count must produce the
    // byte-identical run. Always enforced — core count is irrelevant to
    // correctness.
    for &k in &MATRIX_SIZES {
        let digests: Vec<&str> =
            rows.iter().filter(|r| r.k == k).map(|r| r.digest.as_str()).collect();
        if digests.windows(2).any(|w| w[0] != w[1]) {
            eprintln!(
                "GATE FAILED: k={k}: report digests differ across MEMCNN_THREADS \
                 {MATRIX_THREADS:?}: {digests:?}"
            );
            failed = true;
        }
    }

    // Scaling gate: parallel stepping must actually buy wallclock — but
    // only where the host can physically run 4 workers at once.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ms = |threads: usize, k: usize| {
        rows.iter().find(|r| r.threads == threads && r.k == k).map(|r| r.wallclock_ms)
    };
    if let (Some(t1), Some(t4)) = (ms(1, 8), ms(4, 8)) {
        if cores >= 4 {
            if t4 * 2.0 > t1 {
                eprintln!(
                    "GATE FAILED: k=8: THREADS=4 ({t4:.1} ms) is not >= 2x faster than \
                     THREADS=1 ({t1:.1} ms)"
                );
                failed = true;
            } else {
                println!(
                    "gate ok: k=8 THREADS=4 is {:.2}x faster than THREADS=1 ({t4:.1} ms vs \
                     {t1:.1} ms)",
                    t1 / t4
                );
            }
        } else {
            println!(
                "parallel scaling gate skipped: host has {cores} core(s), need >= 4 for the 2x \
                 check (k=8: THREADS=1 {t1:.1} ms, THREADS=4 {t4:.1} ms; digests still gated)"
            );
        }
    }
    (rows, failed)
}

/// One timed stream run: the tiny-network Poisson stream on a K-device
/// fleet, with orchestrator events (routes + commits) counted from the
/// perf registry and digested for cross-mode identity checks. `env`
/// temporarily pins a fleet-loop knob (`MEMCNN_FLEET_LINEAR` /
/// `MEMCNN_FLEET_SEQUENTIAL` — both re-read per call, unlike
/// `MEMCNN_THREADS`).
fn stream_run(
    ctx: &Ctx,
    net: &memcnn_core::Network,
    policy: memcnn_serve::BatchPolicy,
    capacity: f64,
    k: usize,
    mode: &'static str,
    env: Option<&str>,
) -> StreamRow {
    if let Some(var) = env {
        std::env::set_var(var, "1");
    }
    let workload = stream_workload(STREAM_REQUESTS, capacity, k, FLEET_SEED);
    let base = perf::baseline();
    let start = Instant::now();
    let report = run_fleet(ctx, net, policy, workload, Placement::QueueWeighted, k)
        .unwrap_or_else(|e| panic!("stream {mode} k={k}: {e}"));
    let wallclock_ms = start.elapsed().as_secs_f64() * 1e3;
    if let Some(var) = env {
        std::env::remove_var(var);
    }
    let events = base.delta_of("fleet.route.count") + base.delta_of("fleet.commit.count");
    StreamRow {
        mode,
        k,
        requests: report.requests,
        events,
        wallclock_ms,
        events_per_sec: events as f64 / (wallclock_ms / 1e3),
        digest: format!("{:016x}", digest(&report)),
    }
}

/// The orchestrator-throughput stream section: the K=64 showcase run
/// with its sequential-oracle digest check, then the K=16 indexed-vs-
/// linear throughput gate. Returns the rows, the indexed/linear
/// speedup, and whether any gate failed.
fn stream_section(ctx: &Ctx) -> (Vec<StreamRow>, f64, bool) {
    let net = stream_net();
    let (max_batch, top_plan) =
        feasible_max_batch(&ctx.engine, &net, ctx.mechanism(), &[256, 128, 64, 32])
            .unwrap_or_else(|| panic!("{}: no feasible batch size", net.name));
    let capacity = capacity_images_per_sec(max_batch, &top_plan);
    let policy = sweep_policy(max_batch, top_plan.total_time());
    let mut failed = false;

    println!(
        "\nstream mode: ~{STREAM_REQUESTS} requests of {} (orchestrator-bound), \
         queue-weighted placement",
        net.name
    );
    let k64 = stream_run(ctx, &net, policy, capacity, STREAM_K, "indexed", None);
    let k64_seq = stream_run(
        ctx,
        &net,
        policy,
        capacity,
        STREAM_K,
        "sequential",
        Some("MEMCNN_FLEET_SEQUENTIAL"),
    );
    if k64.digest != k64_seq.digest {
        eprintln!(
            "GATE FAILED: k={STREAM_K} stream: parallel digest {} != sequential oracle digest {}",
            k64.digest, k64_seq.digest
        );
        failed = true;
    }
    let gate = stream_run(ctx, &net, policy, capacity, STREAM_GATE_K, "indexed", None);
    let gate_linear = stream_run(
        ctx,
        &net,
        policy,
        capacity,
        STREAM_GATE_K,
        "linear",
        Some("MEMCNN_FLEET_LINEAR"),
    );
    if gate.digest != gate_linear.digest {
        eprintln!(
            "GATE FAILED: k={STREAM_GATE_K} stream: indexed digest {} != linear digest {}",
            gate.digest, gate_linear.digest
        );
        failed = true;
    }
    let speedup = gate.events_per_sec / gate_linear.events_per_sec;

    let rows = vec![k64, k64_seq, gate, gate_linear];
    let mut table = Table::new(
        "orchestrator stream throughput (routes + commits per second)".to_string(),
        &["mode", "devices", "requests", "events", "wallclock ms", "events/s", "digest"],
    );
    for row in &rows {
        table.row(vec![
            row.mode.to_string(),
            row.k.to_string(),
            row.requests.to_string(),
            row.events.to_string(),
            format!("{:.1}", row.wallclock_ms),
            format!("{:.0}", row.events_per_sec),
            row.digest.clone(),
        ]);
    }
    table.print();

    // The index regression gate: fatal, and deliberately thread-count-
    // matched (both runs use the same pool), so it holds on any host —
    // including single-core CI, unlike the parallel scaling gate.
    if speedup < 2.0 {
        eprintln!(
            "GATE FAILED: k={STREAM_GATE_K}: indexed router events/sec is only {speedup:.2}x the \
             linear-scan baseline (need >= 2x)"
        );
        failed = true;
    } else {
        println!(
            "gate ok: k={STREAM_GATE_K} indexed router clears {speedup:.2}x the linear-scan \
             baseline"
        );
    }
    (rows, speedup, failed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_fleet.json");
    let mut metrics: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => usage(),
            },
            "--metrics" => match it.next() {
                Some(p) => metrics = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--measure" => match it.next().and_then(|k| k.parse().ok()) {
                Some(k) => measure(k),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let perf_base = perf::baseline();
    let ctx = Ctx::titan_black();
    let placements = [Placement::RoundRobin, Placement::LeastLoaded, Placement::MemoryAware];
    let mut networks = Vec::new();
    let mut timelines: BTreeMap<String, MetricsTimeline> = BTreeMap::new();
    let mut gate_failed = false;

    for net in [alexnet().expect("alexnet"), vgg16().expect("vgg16")] {
        let (max_batch, top_plan) =
            feasible_max_batch(&ctx.engine, &net, ctx.mechanism(), &[256, 128, 64, 32])
                .unwrap_or_else(|| panic!("{}: no feasible batch size", net.name));
        let capacity = capacity_images_per_sec(max_batch, &top_plan);
        let policy = sweep_policy(max_batch, top_plan.total_time());
        println!(
            "\n{}: max_batch={max_batch}, single-device saturation ≈ {capacity:.0} images/s, \
             offered load {:.0}% per device",
            net.name,
            FLEET_LOAD_FRAC * 100.0
        );

        let runs = scaling(&ctx, &net, policy, capacity, &placements, &FLEET_SIZES)
            .expect("scaling sweep");
        let mut table = Table::new(
            format!(
                "{}: fleet scaling at {:.0}% per-device load",
                net.name,
                FLEET_LOAD_FRAC * 100.0
            ),
            &["devices", "policy", "images/s", "p99 ms", "shed", "speedup"],
        );
        let mut rows = Vec::new();
        for run in &runs {
            let tput = run.report.throughput_images_per_sec();
            let base = runs
                .iter()
                .find(|r| r.devices == 1 && r.placement == run.placement)
                .map_or(tput, |r| r.report.throughput_images_per_sec());
            let speedup = if base > 0.0 { tput / base } else { 0.0 };
            let p99 = run.report.latency().p99;
            table.row(vec![
                run.devices.to_string(),
                run.placement.name().to_string(),
                format!("{tput:.0}"),
                format!("{:.3}", p99 * 1e3),
                run.report.shed_requests.to_string(),
                format!("{speedup:.2}x"),
            ]);
            rows.push(PolicyRow {
                devices: run.devices,
                policy: run.placement.name(),
                requests: run.report.requests,
                shed: run.report.shed_requests,
                images_per_sec: tput,
                p99_ms: p99 * 1e3,
                speedup_vs_1: speedup,
            });
        }
        table.print();

        // Scaling gate: 4-device least-loaded must beat 3x one device.
        let ll = |k: usize| {
            rows.iter()
                .find(|r| r.devices == k && r.policy == Placement::LeastLoaded.name())
                .expect("least-loaded row")
                .images_per_sec
        };
        let (one, four) = (ll(1), ll(4));
        if four < 3.0 * one {
            eprintln!(
                "GATE FAILED: {}: 4-device least-loaded {four:.0} images/s < 3x \
                 single-device {one:.0} images/s",
                net.name
            );
            gate_failed = true;
        } else {
            println!("gate ok: 4-device least-loaded scales {:.2}x over one device", four / one);
        }

        // Bursty comparison at 4 devices: round-robin vs least-loaded vs
        // queue-weighted (the convoy fix).
        let k = 4;
        let mut bursty_run = |placement: Placement| {
            let report = run_fleet(
                &ctx,
                &net,
                policy,
                bursty_workload(k, capacity, FLEET_SEED),
                placement,
                k,
            )
            .unwrap_or_else(|e| panic!("bursty {}: {e}", placement.name()));
            let peak = peak_device_queue(&report.timeline, k);
            timelines.insert(
                format!("{}.bursty.{}", net.name, placement.name()),
                report.timeline.clone(),
            );
            (report, peak)
        };
        let (rr, rr_peak) = bursty_run(Placement::RoundRobin);
        let (ll_run, ll_peak) = bursty_run(Placement::LeastLoaded);
        let (qw_run, qw_peak) = bursty_run(Placement::QueueWeighted);
        let (rr_p99, ll_p99, qw_p99) =
            (rr.latency().p99, ll_run.latency().p99, qw_run.latency().p99);
        println!(
            "bursty @{k} devices: round-robin p99 {:.3} ms, least-loaded p99 {:.3} ms, \
             queue-weighted p99 {:.3} ms",
            rr_p99 * 1e3,
            ll_p99 * 1e3,
            qw_p99 * 1e3
        );
        println!(
            "bursty peak device backlog: round-robin {rr_peak:.0}, least-loaded {ll_peak:.0}, \
             queue-weighted {qw_peak:.0} images (the convoy shows as a least-loaded spike)"
        );

        // Per-class view of the same bursty stream: class-blind
        // queue-weighted vs the deadline-aware tenant scheduler. The
        // saturating burst is fairness territory — the aware scheduler
        // holds per-class violations down but pays lane-fragmentation
        // capacity for it; the subcritical regime where deadlines win
        // outright is the `slo` binary's gated comparison.
        let tenants = slo_tenants(policy.max_queue_delay);
        let workload = bursty_workload(k, capacity, FLEET_SEED);
        let aware = run_slo_fleet(
            &ctx,
            &net,
            policy,
            workload.clone(),
            Placement::QueueWeighted,
            k,
            tenants.clone(),
        )
        .unwrap_or_else(|e| panic!("bursty deadline-aware: {e}"));
        timelines.insert(format!("{}.bursty.deadline-aware", net.name), aware.timeline.clone());
        let slo_classes = compare_classes(&aware, &qw_run, &workload, &tenants);
        let slo_cost = aware.slo.as_ref().map_or(0.0, |s| s.cost());
        class_table(
            format!(
                "{}: bursty @{k} devices, class-blind queue-weighted vs deadline-aware",
                net.name
            ),
            &slo_classes,
        )
        .print();
        if let Some(s) = aware.slo.as_ref() {
            println!(
                "deadline-aware slo.cost: {:.4} device-s/violation ({:.3} device-s total)",
                s.cost(),
                s.device_seconds
            );
        }
        networks.push(NetworkFleet {
            name: net.name.clone(),
            max_batch,
            capacity_images_per_sec: capacity,
            rows,
            bursty: BurstyRow {
                devices: k,
                rr_p99_ms: rr_p99 * 1e3,
                ll_p99_ms: ll_p99 * 1e3,
                qw_p99_ms: qw_p99 * 1e3,
                rr_shed: rr.shed_requests,
                ll_shed: ll_run.shed_requests,
                qw_shed: qw_run.shed_requests,
                rr_peak_queue: rr_peak,
                ll_peak_queue: ll_peak,
                qw_peak_queue: qw_peak,
            },
            slo_classes,
            slo_cost,
        });
    }

    if let Some(path) = &metrics {
        let json = serde_json::to_string(&timelines).expect("serialize timelines");
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    let (wallclock, matrix_failed) = wallclock_matrix();
    gate_failed |= matrix_failed;

    let (stream, index_speedup, stream_failed) = stream_section(&ctx);
    gate_failed |= stream_failed;

    let fleet_perf: BTreeMap<String, u64> =
        perf_base.delta().into_iter().filter(|(name, _)| name.starts_with("fleet.")).collect();
    println!(
        "fleet perf (this process's sweep runs): {}",
        fleet_perf.iter().map(|(name, v)| format!("{name}={v}")).collect::<Vec<_>>().join(", ")
    );

    let summary = Summary {
        bench: "fleet",
        device: ctx.device.name.clone(),
        seed: FLEET_SEED,
        load_frac: FLEET_LOAD_FRAC,
        networks,
        wallclock,
        stream,
        index_speedup,
        fleet_perf,
    };
    let line = serde_json::to_string(&summary).expect("serialize summary");
    println!("\n{line}");
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", out.display());
    if gate_failed {
        std::process::exit(1);
    }
}
