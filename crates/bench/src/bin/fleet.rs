//! Multi-device fleet-serving scaling bench.
//!
//! ```text
//! cargo run -p memcnn-bench --release --bin fleet
//! cargo run -p memcnn-bench --release --bin fleet -- --out target/BENCH_fleet.json
//! ```
//!
//! For AlexNet and VGG-16, serves the same seeded Poisson stream on
//! homogeneous Titan-Black fleets of 1/2/4/8 devices at a fixed 70%
//! per-device offered load, under each placement policy, and tabulates
//! images/sec, p99, and speedup over the single device. A bursty
//! two-phase stream then compares least-loaded against round-robin at
//! 4 devices. The whole summary is written as one line of JSON to
//! `BENCH_fleet.json` for CI trend tracking.
//!
//! Exits non-zero if 4-device least-loaded throughput falls below 3x
//! the single device — the scaling regression gate.

use memcnn_bench::fleet::{
    bursty_workload, run_fleet, scaling, FLEET_LOAD_FRAC, FLEET_SEED, FLEET_SIZES,
};
use memcnn_bench::serving::sweep_policy;
use memcnn_bench::util::{Ctx, Table};
use memcnn_models::{alexnet, vgg16};
use memcnn_serve::{capacity_images_per_sec, feasible_max_batch, Placement};
use serde::Serialize;
use std::path::PathBuf;

#[derive(Serialize)]
struct PolicyRow {
    devices: usize,
    policy: &'static str,
    requests: usize,
    shed: usize,
    images_per_sec: f64,
    p99_ms: f64,
    /// Throughput relative to the same policy's single-device run.
    speedup_vs_1: f64,
}

#[derive(Serialize)]
struct BurstyRow {
    devices: usize,
    rr_p99_ms: f64,
    ll_p99_ms: f64,
    rr_shed: usize,
    ll_shed: usize,
}

#[derive(Serialize)]
struct NetworkFleet {
    name: String,
    max_batch: usize,
    capacity_images_per_sec: f64,
    rows: Vec<PolicyRow>,
    bursty: BurstyRow,
}

#[derive(Serialize)]
struct Summary {
    bench: &'static str,
    device: String,
    seed: u64,
    load_frac: f64,
    networks: Vec<NetworkFleet>,
}

fn usage() -> ! {
    eprintln!("usage: fleet [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_fleet.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let ctx = Ctx::titan_black();
    let placements = [Placement::RoundRobin, Placement::LeastLoaded, Placement::MemoryAware];
    let mut networks = Vec::new();
    let mut gate_failed = false;

    for net in [alexnet().expect("alexnet"), vgg16().expect("vgg16")] {
        let (max_batch, top_plan) =
            feasible_max_batch(&ctx.engine, &net, ctx.mechanism(), &[256, 128, 64, 32])
                .unwrap_or_else(|| panic!("{}: no feasible batch size", net.name));
        let capacity = capacity_images_per_sec(max_batch, &top_plan);
        let policy = sweep_policy(max_batch, top_plan.total_time());
        println!(
            "\n{}: max_batch={max_batch}, single-device saturation ≈ {capacity:.0} images/s, \
             offered load {:.0}% per device",
            net.name,
            FLEET_LOAD_FRAC * 100.0
        );

        let runs = scaling(&ctx, &net, policy, capacity, &placements, &FLEET_SIZES)
            .expect("scaling sweep");
        let mut table = Table::new(
            format!(
                "{}: fleet scaling at {:.0}% per-device load",
                net.name,
                FLEET_LOAD_FRAC * 100.0
            ),
            &["devices", "policy", "images/s", "p99 ms", "shed", "speedup"],
        );
        let mut rows = Vec::new();
        for run in &runs {
            let tput = run.report.throughput_images_per_sec();
            let base = runs
                .iter()
                .find(|r| r.devices == 1 && r.placement == run.placement)
                .map_or(tput, |r| r.report.throughput_images_per_sec());
            let speedup = if base > 0.0 { tput / base } else { 0.0 };
            let p99 = run.report.latency().p99;
            table.row(vec![
                run.devices.to_string(),
                run.placement.name().to_string(),
                format!("{tput:.0}"),
                format!("{:.3}", p99 * 1e3),
                run.report.shed_requests.to_string(),
                format!("{speedup:.2}x"),
            ]);
            rows.push(PolicyRow {
                devices: run.devices,
                policy: run.placement.name(),
                requests: run.report.requests,
                shed: run.report.shed_requests,
                images_per_sec: tput,
                p99_ms: p99 * 1e3,
                speedup_vs_1: speedup,
            });
        }
        table.print();

        // Scaling gate: 4-device least-loaded must beat 3x one device.
        let ll = |k: usize| {
            rows.iter()
                .find(|r| r.devices == k && r.policy == Placement::LeastLoaded.name())
                .expect("least-loaded row")
                .images_per_sec
        };
        let (one, four) = (ll(1), ll(4));
        if four < 3.0 * one {
            eprintln!(
                "GATE FAILED: {}: 4-device least-loaded {four:.0} images/s < 3x \
                 single-device {one:.0} images/s",
                net.name
            );
            gate_failed = true;
        } else {
            println!("gate ok: 4-device least-loaded scales {:.2}x over one device", four / one);
        }

        // Bursty comparison at 4 devices: least-loaded vs round-robin.
        let k = 4;
        let rr = run_fleet(
            &ctx,
            &net,
            policy,
            bursty_workload(k, capacity, FLEET_SEED),
            Placement::RoundRobin,
            k,
        )
        .expect("bursty round-robin");
        let ll_run = run_fleet(
            &ctx,
            &net,
            policy,
            bursty_workload(k, capacity, FLEET_SEED),
            Placement::LeastLoaded,
            k,
        )
        .expect("bursty least-loaded");
        let (rr_p99, ll_p99) = (rr.latency().p99, ll_run.latency().p99);
        println!(
            "bursty @{k} devices: round-robin p99 {:.3} ms vs least-loaded p99 {:.3} ms",
            rr_p99 * 1e3,
            ll_p99 * 1e3
        );
        networks.push(NetworkFleet {
            name: net.name.clone(),
            max_batch,
            capacity_images_per_sec: capacity,
            rows,
            bursty: BurstyRow {
                devices: k,
                rr_p99_ms: rr_p99 * 1e3,
                ll_p99_ms: ll_p99 * 1e3,
                rr_shed: rr.shed_requests,
                ll_shed: ll_run.shed_requests,
            },
        });
    }

    let summary = Summary {
        bench: "fleet",
        device: ctx.device.name.clone(),
        seed: FLEET_SEED,
        load_frac: FLEET_LOAD_FRAC,
        networks,
    };
    let line = serde_json::to_string(&summary).expect("serialize summary");
    println!("\n{line}");
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", out.display());
    if gate_failed {
        std::process::exit(1);
    }
}
