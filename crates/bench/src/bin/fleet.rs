//! Multi-device fleet-serving scaling bench.
//!
//! ```text
//! cargo run -p memcnn-bench --release --bin fleet
//! cargo run -p memcnn-bench --release --bin fleet -- --out target/BENCH_fleet.json
//! ```
//!
//! For AlexNet and VGG-16, serves the same seeded Poisson stream on
//! homogeneous Titan-Black fleets of 1/2/4/8 devices at a fixed 70%
//! per-device offered load, under each placement policy, and tabulates
//! images/sec, p99, and speedup over the single device. A bursty
//! two-phase stream then compares round-robin, least-loaded, and
//! queue-weighted at 4 devices — the burst is where least-loaded's
//! convoy defect shows (its frozen free-time key routes a whole burst to
//! one device between commits; queue-weighted's queued-images key does
//! not), so the steady-state scaling sweep keeps the original three
//! policies. The whole summary is written as one line of JSON to
//! `BENCH_fleet.json` for CI trend tracking.
//!
//! `--metrics PATH` additionally writes the bursty runs' metrics
//! timelines as one JSON object keyed `<network>.bursty.<policy>` — the
//! per-device `dev{d}.queue.images` series inside make the convoy (and
//! its absence under queue-weighted) directly visible.
//!
//! Exits non-zero if 4-device least-loaded throughput falls below 3x
//! the single device — the scaling regression gate.

use memcnn_bench::fleet::{
    bursty_workload, run_fleet, scaling, FLEET_LOAD_FRAC, FLEET_SEED, FLEET_SIZES,
};
use memcnn_bench::serving::sweep_policy;
use memcnn_bench::util::{Ctx, Table};
use memcnn_metrics::MetricsTimeline;
use memcnn_models::{alexnet, vgg16};
use memcnn_serve::{capacity_images_per_sec, feasible_max_batch, Placement};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;

#[derive(Serialize)]
struct PolicyRow {
    devices: usize,
    policy: &'static str,
    requests: usize,
    shed: usize,
    images_per_sec: f64,
    p99_ms: f64,
    /// Throughput relative to the same policy's single-device run.
    speedup_vs_1: f64,
}

#[derive(Serialize)]
struct BurstyRow {
    devices: usize,
    rr_p99_ms: f64,
    ll_p99_ms: f64,
    qw_p99_ms: f64,
    rr_shed: usize,
    ll_shed: usize,
    qw_shed: usize,
    /// Peak single-device queued-images backlog during the burst, per
    /// policy — the convoy observable (least-loaded spikes, queue-weighted
    /// stays near the even share).
    rr_peak_queue: f64,
    ll_peak_queue: f64,
    qw_peak_queue: f64,
}

#[derive(Serialize)]
struct NetworkFleet {
    name: String,
    max_batch: usize,
    capacity_images_per_sec: f64,
    rows: Vec<PolicyRow>,
    bursty: BurstyRow,
}

#[derive(Serialize)]
struct Summary {
    bench: &'static str,
    device: String,
    seed: u64,
    load_frac: f64,
    networks: Vec<NetworkFleet>,
}

/// Peak queued-images backlog on any one device, read from the fleet
/// timeline's per-device `dev{d}.queue.images` series.
fn peak_device_queue(timeline: &MetricsTimeline, k: usize) -> f64 {
    (0..k)
        .map(|d| {
            timeline
                .series(&format!("dev{d}.queue.images"))
                .map_or(0.0, |s| s.samples.iter().map(|p| p.value).fold(0.0, f64::max))
        })
        .fold(0.0, f64::max)
}

fn usage() -> ! {
    eprintln!("usage: fleet [--out PATH] [--metrics PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_fleet.json");
    let mut metrics: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => usage(),
            },
            "--metrics" => match it.next() {
                Some(p) => metrics = Some(PathBuf::from(p)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let ctx = Ctx::titan_black();
    let placements = [Placement::RoundRobin, Placement::LeastLoaded, Placement::MemoryAware];
    let mut networks = Vec::new();
    let mut timelines: BTreeMap<String, MetricsTimeline> = BTreeMap::new();
    let mut gate_failed = false;

    for net in [alexnet().expect("alexnet"), vgg16().expect("vgg16")] {
        let (max_batch, top_plan) =
            feasible_max_batch(&ctx.engine, &net, ctx.mechanism(), &[256, 128, 64, 32])
                .unwrap_or_else(|| panic!("{}: no feasible batch size", net.name));
        let capacity = capacity_images_per_sec(max_batch, &top_plan);
        let policy = sweep_policy(max_batch, top_plan.total_time());
        println!(
            "\n{}: max_batch={max_batch}, single-device saturation ≈ {capacity:.0} images/s, \
             offered load {:.0}% per device",
            net.name,
            FLEET_LOAD_FRAC * 100.0
        );

        let runs = scaling(&ctx, &net, policy, capacity, &placements, &FLEET_SIZES)
            .expect("scaling sweep");
        let mut table = Table::new(
            format!(
                "{}: fleet scaling at {:.0}% per-device load",
                net.name,
                FLEET_LOAD_FRAC * 100.0
            ),
            &["devices", "policy", "images/s", "p99 ms", "shed", "speedup"],
        );
        let mut rows = Vec::new();
        for run in &runs {
            let tput = run.report.throughput_images_per_sec();
            let base = runs
                .iter()
                .find(|r| r.devices == 1 && r.placement == run.placement)
                .map_or(tput, |r| r.report.throughput_images_per_sec());
            let speedup = if base > 0.0 { tput / base } else { 0.0 };
            let p99 = run.report.latency().p99;
            table.row(vec![
                run.devices.to_string(),
                run.placement.name().to_string(),
                format!("{tput:.0}"),
                format!("{:.3}", p99 * 1e3),
                run.report.shed_requests.to_string(),
                format!("{speedup:.2}x"),
            ]);
            rows.push(PolicyRow {
                devices: run.devices,
                policy: run.placement.name(),
                requests: run.report.requests,
                shed: run.report.shed_requests,
                images_per_sec: tput,
                p99_ms: p99 * 1e3,
                speedup_vs_1: speedup,
            });
        }
        table.print();

        // Scaling gate: 4-device least-loaded must beat 3x one device.
        let ll = |k: usize| {
            rows.iter()
                .find(|r| r.devices == k && r.policy == Placement::LeastLoaded.name())
                .expect("least-loaded row")
                .images_per_sec
        };
        let (one, four) = (ll(1), ll(4));
        if four < 3.0 * one {
            eprintln!(
                "GATE FAILED: {}: 4-device least-loaded {four:.0} images/s < 3x \
                 single-device {one:.0} images/s",
                net.name
            );
            gate_failed = true;
        } else {
            println!("gate ok: 4-device least-loaded scales {:.2}x over one device", four / one);
        }

        // Bursty comparison at 4 devices: round-robin vs least-loaded vs
        // queue-weighted (the convoy fix).
        let k = 4;
        let mut bursty_run = |placement: Placement| {
            let report = run_fleet(
                &ctx,
                &net,
                policy,
                bursty_workload(k, capacity, FLEET_SEED),
                placement,
                k,
            )
            .unwrap_or_else(|e| panic!("bursty {}: {e}", placement.name()));
            let peak = peak_device_queue(&report.timeline, k);
            timelines.insert(
                format!("{}.bursty.{}", net.name, placement.name()),
                report.timeline.clone(),
            );
            (report, peak)
        };
        let (rr, rr_peak) = bursty_run(Placement::RoundRobin);
        let (ll_run, ll_peak) = bursty_run(Placement::LeastLoaded);
        let (qw_run, qw_peak) = bursty_run(Placement::QueueWeighted);
        let (rr_p99, ll_p99, qw_p99) =
            (rr.latency().p99, ll_run.latency().p99, qw_run.latency().p99);
        println!(
            "bursty @{k} devices: round-robin p99 {:.3} ms, least-loaded p99 {:.3} ms, \
             queue-weighted p99 {:.3} ms",
            rr_p99 * 1e3,
            ll_p99 * 1e3,
            qw_p99 * 1e3
        );
        println!(
            "bursty peak device backlog: round-robin {rr_peak:.0}, least-loaded {ll_peak:.0}, \
             queue-weighted {qw_peak:.0} images (the convoy shows as a least-loaded spike)"
        );
        networks.push(NetworkFleet {
            name: net.name.clone(),
            max_batch,
            capacity_images_per_sec: capacity,
            rows,
            bursty: BurstyRow {
                devices: k,
                rr_p99_ms: rr_p99 * 1e3,
                ll_p99_ms: ll_p99 * 1e3,
                qw_p99_ms: qw_p99 * 1e3,
                rr_shed: rr.shed_requests,
                ll_shed: ll_run.shed_requests,
                qw_shed: qw_run.shed_requests,
                rr_peak_queue: rr_peak,
                ll_peak_queue: ll_peak,
                qw_peak_queue: qw_peak,
            },
        });
    }

    if let Some(path) = &metrics {
        let json = serde_json::to_string(&timelines).expect("serialize timelines");
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    let summary = Summary {
        bench: "fleet",
        device: ctx.device.name.clone(),
        seed: FLEET_SEED,
        load_frac: FLEET_LOAD_FRAC,
        networks,
    };
    let line = serde_json::to_string(&summary).expect("serialize summary");
    println!("\n{line}");
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("failed to write {}: {e}", out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", out.display());
    if gate_failed {
        std::process::exit(1);
    }
}
