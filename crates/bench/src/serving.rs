//! Latency-vs-throughput serving sweeps: the harness behind the `serve`
//! binary and `BENCH_serve.json`.
//!
//! A sweep fixes a network and a batching policy, estimates the device's
//! saturation throughput from the largest bucket's plan, then serves
//! seeded Poisson streams at fractions of that capacity. Low fractions
//! launch part-full batches (small buckets, small-`N` plans); high
//! fractions fill every batch (the top bucket's plan). Because the layout
//! heuristic keys on `N`, the per-bucket plan table shows the layout
//! decisions changing across buckets of the *same* network.

use crate::util::{ms, Ctx, Table};
use memcnn_core::{EngineError, Network};
use memcnn_serve::{
    buckets, serve, BatchPolicy, FaultPolicy, PlanCache, ServeConfig, ServeReport, WorkloadConfig,
};

/// One sweep operating point: a Poisson stream at `frac` of capacity.
pub struct SweepRow {
    /// Fraction of the saturation throughput offered.
    pub frac: f64,
    /// Offered request rate, requests/second.
    pub rate: f64,
    /// The finished run.
    pub report: ServeReport,
}

/// Per-request image counts used by every sweep (mean 2.5 images).
pub const IMAGES_MIN: usize = 1;
/// See [`IMAGES_MIN`].
pub const IMAGES_MAX: usize = 4;
/// Seed shared by every sweep stream; a fixed seed keeps
/// `BENCH_serve.json` comparable across commits.
pub const SWEEP_SEED: u64 = 42;
/// Requests per operating point (duration adapts to the rate).
pub const SWEEP_REQUESTS: usize = 240;
/// Offered-load fraction used for the `BENCH_serve.json` reference point.
pub const REFERENCE_FRAC: f64 = 0.7;

/// The sweep's batching policy for `max_batch_images`: the queue-delay cap
/// is tied to the largest bucket's service time — short enough that low
/// load launches part-full batches (small buckets, small-`N` plans), long
/// enough that high load still fills the top bucket.
pub fn sweep_policy(max_batch_images: usize, top_service_time: f64) -> BatchPolicy {
    BatchPolicy::new(max_batch_images, (0.25 * top_service_time).max(1e-4))
}

/// Compile every bucket of `policy` and tabulate its plan: the layout
/// decisions per bucket, inserted transforms, and per-bucket throughput.
pub fn plan_table(ctx: &Ctx, net: &Network, policy: &BatchPolicy) -> Result<Table, EngineError> {
    let mut cache = PlanCache::new(&ctx.engine, net, ctx.mechanism());
    let all = buckets(policy);
    cache.prewarm(&all)?;
    let mut t = Table::new(
        format!("{}: layout plan per batch-size bucket", net.name),
        &["bucket N", "conv layouts", "transforms", "service ms", "images/s"],
    );
    for &b in &all {
        let plan = cache.get(b)?;
        let service = plan.total_time();
        t.row(vec![
            b.to_string(),
            plan.conv_layout_signature(),
            plan.transform_count().to_string(),
            ms(service),
            format!("{:.0}", b as f64 / service),
        ]);
    }
    Ok(t)
}

/// Workload at `frac` of capacity: Poisson arrivals sized so the stream
/// carries roughly [`SWEEP_REQUESTS`] requests.
pub fn workload_at(frac: f64, capacity_ips: f64, seed: u64) -> WorkloadConfig {
    let mean_images = (IMAGES_MIN + IMAGES_MAX) as f64 / 2.0;
    let rate = (frac * capacity_ips / mean_images).max(1.0);
    let duration = SWEEP_REQUESTS as f64 / rate;
    let mut cfg = WorkloadConfig::poisson(rate, duration, seed);
    cfg.images_min = IMAGES_MIN;
    cfg.images_max = IMAGES_MAX;
    cfg
}

/// Serve one operating point.
pub fn run_point(
    ctx: &Ctx,
    net: &Network,
    policy: &BatchPolicy,
    frac: f64,
    capacity_ips: f64,
) -> Result<SweepRow, EngineError> {
    let workload = workload_at(frac, capacity_ips, SWEEP_SEED);
    let rate = match workload.phases[0].arrival {
        memcnn_serve::Arrival::Poisson { rate } | memcnn_serve::Arrival::Uniform { rate } => rate,
    };
    let cfg = ServeConfig {
        workload,
        policy: *policy,
        mechanism: ctx.mechanism(),
        faults: None,
        fault_policy: FaultPolicy::default(),
        tenants: Vec::new(),
    };
    let report = serve(&ctx.engine, net, &cfg)?;
    Ok(SweepRow { frac, rate, report })
}

/// Serve every fraction in `fracs` and tabulate latency vs throughput.
pub fn sweep(
    ctx: &Ctx,
    net: &Network,
    policy: &BatchPolicy,
    fracs: &[f64],
    capacity_ips: f64,
) -> Result<(Vec<SweepRow>, Table), EngineError> {
    let mut rows = Vec::new();
    let mut t = Table::new(
        format!(
            "{}: latency vs throughput (max_batch={}, delay={:.1} ms)",
            net.name,
            policy.max_batch_images,
            policy.max_queue_delay * 1e3
        ),
        &[
            "load",
            "req/s",
            "reqs",
            "batches",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "images/s",
            "mean fill",
            "buckets used",
        ],
    );
    for &frac in fracs {
        let row = run_point(ctx, net, policy, frac, capacity_ips)?;
        let lat = row.report.latency();
        let used: Vec<String> = row
            .report
            .buckets
            .iter()
            .filter(|b| b.batches > 0)
            .map(|b| b.bucket.to_string())
            .collect();
        let fill = {
            let (mut imgs, mut cap) = (0usize, 0usize);
            for b in row.report.buckets.iter().filter(|b| b.batches > 0) {
                imgs += b.images;
                cap += b.batches * b.bucket;
            }
            if cap > 0 {
                imgs as f64 / cap as f64
            } else {
                0.0
            }
        };
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            format!("{:.1}", row.rate),
            row.report.requests.to_string(),
            row.report.batches.len().to_string(),
            ms(lat.p50),
            ms(lat.p95),
            ms(lat.p99),
            format!("{:.0}", row.report.throughput_images_per_sec()),
            format!("{:.2}", fill),
            used.join(","),
        ]);
        rows.push(row);
    }
    Ok((rows, t))
}

impl Ctx {
    /// The mechanism serving sweeps plan under (the paper's `Opt`).
    pub fn mechanism(&self) -> memcnn_core::Mechanism {
        memcnn_core::Mechanism::Opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_models::alexnet;

    #[test]
    fn workload_scales_duration_to_rate() {
        let w = workload_at(0.5, 1000.0, 1);
        // rate = 0.5 * 1000 / 2.5 = 200 req/s; duration = 240 / 200.
        assert!((w.duration() - 1.2).abs() < 1e-12);
        assert_eq!(w.images_max, IMAGES_MAX);
    }

    #[test]
    fn feasible_max_batch_falls_back() {
        use memcnn_serve::{capacity_images_per_sec, feasible_max_batch};
        let ctx = Ctx::titan_black();
        let net = alexnet().unwrap();
        let (max, plan) = feasible_max_batch(&ctx.engine, &net, ctx.mechanism(), &[256, 128, 64])
            .expect("alexnet fits");
        assert_eq!(plan.batch, max);
        assert!(capacity_images_per_sec(max, &plan) > 0.0);
    }
}
