//! Shared harness utilities: measurement context and table printing.

use memcnn_core::{Engine, LayoutThresholds};
use memcnn_gpusim::{DeviceConfig, SimOptions};

/// A measurement context: device + engine + sim options.
pub struct Ctx {
    /// The simulated device.
    pub device: DeviceConfig,
    /// Engine configured for that device.
    pub engine: Engine,
    /// Simulation options.
    pub opts: SimOptions,
}

impl Ctx {
    /// Context on the paper's primary platform (GTX Titan Black) with its
    /// derived thresholds.
    pub fn titan_black() -> Ctx {
        let device = DeviceConfig::titan_black();
        Ctx {
            engine: Engine::new(device.clone(), LayoutThresholds::titan_black_paper()),
            device,
            opts: SimOptions::default(),
        }
    }

    /// Context on the secondary platform (GTX Titan X).
    pub fn titan_x() -> Ctx {
        let device = DeviceConfig::titan_x();
        Ctx {
            engine: Engine::new(device.clone(), LayoutThresholds::titan_x_paper()),
            device,
            opts: SimOptions::default(),
        }
    }
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// A printable results table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds as milliseconds with 3 decimals.
pub fn ms(t: f64) -> String {
    format!("{:.3}", t * 1e3)
}

/// Format a dimensionless ratio with 2 decimals.
pub fn x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Format GB/s with 1 decimal.
pub fn gbs(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["layer", "time"]);
        t.row(vec!["CV1".into(), "1.23".into()]);
        t.row(vec!["CV10".into(), "0.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("CV10"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(0.001234), "1.234");
        assert_eq!(x(2.5), "2.50x");
        assert_eq!(gbs(123.45), "123.5");
    }
}
