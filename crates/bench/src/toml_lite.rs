//! A hand-rolled parser for the TOML subset the scenario harness uses.
//!
//! This environment has no TOML crate (dependencies are vendored), and
//! scenario files only need a small, boring slice of the format:
//!
//! - `[section]` headers (dotted names allowed, kept verbatim);
//! - `key = value` pairs, with bare or `"quoted"` keys (quoted keys let
//!   tolerance tables address dotted metric names like `"latency.p99"`);
//! - values: strings, integers, floats, booleans, and flat arrays of
//!   those;
//! - `#` comments and blank lines.
//!
//! No inline tables, no multi-line strings, no datetimes, no array
//! nesting. Anything outside the subset is a parse *error*, not a silent
//! skip — a typoed scenario file should fail loudly in CI.

use std::collections::BTreeMap;

/// A parsed TOML-subset value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer (no decimal point or exponent in the source).
    Int(i64),
    /// A float.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A flat array.
    Array(Vec<Value>),
}

impl Value {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64 (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a vector of strings, if it is an array of strings.
    pub fn as_str_array(&self) -> Option<Vec<&str>> {
        self.as_array()?.iter().map(Value::as_str).collect()
    }
}

/// One section's key-value pairs.
pub type Section = BTreeMap<String, Value>;

/// A parsed document: sections by header name; keys before the first
/// header live in the `""` section.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Doc {
    sections: BTreeMap<String, Section>,
}

impl Doc {
    /// A section by name, if present.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.get(name)
    }

    /// A key inside a section, if both exist.
    pub fn get(&self, section: &str, key: &str) -> Option<&Value> {
        self.sections.get(section)?.get(key)
    }

    /// Section names, ascending.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }
}

/// Parse a document. Errors carry the 1-based line number.
pub fn parse(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    let mut current = String::new();
    doc.sections.entry(current.clone()).or_default();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated section header"))?
                .trim();
            if name.is_empty() {
                return Err(format!("line {lineno}: empty section name"));
            }
            current = name.to_string();
            if doc.sections.contains_key(&current) && !doc.sections[&current].is_empty() {
                return Err(format!("line {lineno}: duplicate section [{current}]"));
            }
            doc.sections.entry(current.clone()).or_default();
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`, got {line:?}"))?;
        let key = parse_key(line[..eq].trim())
            .ok_or_else(|| format!("line {lineno}: bad key {:?}", line[..eq].trim()))?;
        let value =
            parse_value(line[eq + 1..].trim()).map_err(|e| format!("line {lineno}: {e}"))?;
        let section = doc.sections.entry(current.clone()).or_default();
        if section.insert(key.clone(), value).is_some() {
            return Err(format!("line {lineno}: duplicate key {key:?}"));
        }
    }
    Ok(doc)
}

/// Strip a `#` comment, honoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Bare keys: letters/digits/`_`/`-`/`.`; quoted keys: any string.
fn parse_key(raw: &str) -> Option<String> {
    if let Some(inner) = raw.strip_prefix('"') {
        return Some(inner.strip_suffix('"')?.to_string());
    }
    let ok = !raw.is_empty()
        && raw.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'));
    ok.then(|| raw.to_string())
}

fn parse_value(raw: &str) -> Result<Value, String> {
    if raw.is_empty() {
        return Err("missing value".to_string());
    }
    if let Some(rest) = raw.strip_prefix('[') {
        let inner = rest.strip_suffix(']').ok_or("unterminated array")?.trim();
        if inner.is_empty() {
            return Ok(Value::Array(Vec::new()));
        }
        let items = split_array(inner)?
            .into_iter()
            .map(|s| parse_value(s.trim()))
            .collect::<Result<Vec<Value>, String>>()?;
        if items.iter().any(|v| matches!(v, Value::Array(_))) {
            return Err("nested arrays are outside the subset".to_string());
        }
        return Ok(Value::Array(items));
    }
    if let Some(rest) = raw.strip_prefix('"') {
        let inner = rest.strip_suffix('"').ok_or("unterminated string")?;
        return unescape(inner).map(Value::Str);
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let plain = raw.replace('_', "");
    if !plain.contains('.') && !plain.contains('e') && !plain.contains('E') {
        if let Ok(i) = plain.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    plain.parse::<f64>().map(Value::Float).map_err(|_| format!("unrecognized value {raw:?}"))
}

/// Split a flat array body on top-level commas (commas inside quoted
/// strings do not split).
fn split_array(inner: &str) -> Result<Vec<&str>, String> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    if in_str {
        return Err("unterminated string in array".to_string());
    }
    parts.push(&inner[start..]);
    Ok(parts)
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => return Err(format!("unsupported escape \\{}", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scenario_subset() {
        let doc = parse(
            r#"
# a scenario
[scenario]
name = "burst-qw"        # trailing comment
devices = ["titan-black", "titan-x"]
seed = 42
load_frac = 0.7
adaptive = false

[tolerances]
default = 0.02
"latency.p99" = 0.05
"#,
        )
        .unwrap();
        assert_eq!(doc.get("scenario", "name").unwrap().as_str(), Some("burst-qw"));
        assert_eq!(
            doc.get("scenario", "devices").unwrap().as_str_array(),
            Some(vec!["titan-black", "titan-x"])
        );
        assert_eq!(doc.get("scenario", "seed").unwrap().as_u64(), Some(42));
        assert_eq!(doc.get("scenario", "load_frac").unwrap().as_f64(), Some(0.7));
        assert_eq!(doc.get("scenario", "adaptive").unwrap().as_bool(), Some(false));
        // Quoted keys keep their dots; bare ints coerce to f64 on demand.
        assert_eq!(doc.get("tolerances", "latency.p99").unwrap().as_f64(), Some(0.05));
        assert_eq!(doc.get("scenario", "seed").unwrap().as_f64(), Some(42.0));
        assert!(doc.section("missing").is_none());
    }

    #[test]
    fn rejects_what_it_does_not_understand() {
        assert!(parse("[unclosed").is_err());
        assert!(parse("key").is_err());
        assert!(parse("key = ").is_err());
        assert!(parse("key = [1, [2]]").is_err());
        assert!(parse("key = \"unterminated").is_err());
        assert!(parse("key = 2024-01-01").is_err());
        assert!(parse("k = 1\nk = 2").is_err());
        assert!(parse("[a]\nx = 1\n[a]\ny = 2").is_err(), "duplicate sections must error");
    }

    #[test]
    fn comments_respect_strings() {
        let doc = parse("k = \"a # b\" # real comment").unwrap();
        assert_eq!(doc.get("", "k").unwrap().as_str(), Some("a # b"));
    }
}
