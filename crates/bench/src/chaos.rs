//! Chaos sweeps: the harness behind the `chaos` binary and
//! `BENCH_chaos.json`.
//!
//! A chaos sweep holds the workload fixed — AlexNet at
//! [`crate::serving::REFERENCE_FRAC`] of capacity, seed
//! [`crate::serving::SWEEP_SEED`] — and turns the fault-injection dial:
//! each operating point serves the *same* request stream under a
//! different seeded [`FaultPlan`] (transient launch failures plus a
//! smaller OOM rate), measuring what the degradation ladder costs in p99
//! latency and shed rate. The zero-rate point is the fault-free baseline;
//! the counter-discipline invariant (`injected == retried + degraded +
//! shed`) is asserted on every point.

use crate::serving::{sweep_policy, workload_at, REFERENCE_FRAC, SWEEP_SEED};
use crate::util::{ms, Ctx, Table};
use memcnn_core::{EngineError, Network};
use memcnn_gpusim::FaultPlan;
use memcnn_metrics::MetricsTimeline;
use memcnn_serve::{
    capacity_images_per_sec, feasible_max_batch, serve, FaultPolicy, ServeConfig, ServeReport,
};
use serde::Serialize;

/// Transient-fault rates swept by the chaos harness; every point also
/// injects OOM at [`oom_rate`] of the transient rate.
pub const TRANSIENT_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.10];

/// OOM rate injected alongside a transient rate (one fifth of it — OOM
/// should be the rarer failure, as on real devices).
pub fn oom_rate(transient: f64) -> f64 {
    transient / 5.0
}

/// One operating point of the chaos sweep.
#[derive(Serialize)]
pub struct ChaosRow {
    /// Injected transient (launch-failure) probability per kernel launch.
    pub transient_rate: f64,
    /// Injected device-OOM probability per kernel launch.
    pub oom_rate: f64,
    /// Requests the stream carried.
    pub requests: usize,
    /// Requests shed (deadline or fault shedding).
    pub shed_requests: usize,
    /// Shed fraction, in [0, 1].
    pub shed_rate: f64,
    /// p50 latency over served requests, milliseconds.
    pub p50_ms: f64,
    /// p99 latency over served requests, milliseconds.
    pub p99_ms: f64,
    /// Faults fired by the plan.
    pub injected: u64,
    /// Faults answered with a retry.
    pub retried: u64,
    /// Faults absorbed by degrading (throttles + OOM downshifts).
    pub degraded: u64,
    /// Faults resolved by shedding the batch.
    pub shed_faults: u64,
    /// Times the server entered degraded mode.
    pub degraded_entries: u64,
    /// Whether the counter-discipline invariant held.
    pub balanced: bool,
}

/// The whole sweep, serialized as one line of `BENCH_chaos.json`.
#[derive(Serialize)]
pub struct ChaosSummary {
    /// Bench name tag (`"chaos"`).
    pub bench: &'static str,
    /// Device the engine simulated.
    pub device: String,
    /// Workload and fault seed.
    pub seed: u64,
    /// Offered-load fraction of saturation capacity.
    pub load_frac: f64,
    /// Network under chaos.
    pub network: String,
    /// The fault policy every point ran under.
    pub policy: FaultPolicy,
    /// One row per transient rate.
    pub points: Vec<ChaosRow>,
}

/// The fault policy the sweep runs under: bounded retries, a shed
/// deadline wide enough that the fault-free point sheds nothing, and a
/// short recovery streak so degraded-mode exits show up in-sweep.
pub fn chaos_policy(top_service_time: f64) -> FaultPolicy {
    FaultPolicy {
        max_retries: 3,
        backoff_base: (0.05 * top_service_time).max(1e-5),
        shed_deadline: Some(20.0 * top_service_time),
        recovery_batches: 4,
    }
}

/// Serve the reference stream under one fault plan.
pub fn run_chaos_point(
    ctx: &Ctx,
    net: &Network,
    cfg: &ServeConfig,
    transient: f64,
) -> Result<(ChaosRow, ServeReport), EngineError> {
    let mut cfg = cfg.clone();
    if transient > 0.0 {
        cfg.faults = Some(FaultPlan::new(SWEEP_SEED, transient, oom_rate(transient), 0.0));
    }
    let report = serve(&ctx.engine, net, &cfg)?;
    let lat = report.latency();
    let row = ChaosRow {
        transient_rate: transient,
        oom_rate: oom_rate(transient),
        requests: report.requests,
        shed_requests: report.shed_requests,
        shed_rate: report.shed_rate(),
        p50_ms: lat.p50 * 1e3,
        p99_ms: lat.p99 * 1e3,
        injected: report.faults.injected,
        retried: report.faults.retried,
        degraded: report.faults.degraded,
        shed_faults: report.faults.shed,
        degraded_entries: report.faults.degraded_entries,
        balanced: report.faults.balanced(),
    };
    Ok((row, report))
}

/// Run the whole sweep for `net` and tabulate it. The returned rows are
/// what the binary serializes; the [`MetricsTimeline`] is the
/// highest-rate point's (the one that exercises the whole fault ladder),
/// for the binary's `--metrics` export. `Err` only for plan-time
/// failures (injected faults never abort a run).
pub fn chaos_sweep(
    ctx: &Ctx,
    net: &Network,
) -> Result<(ChaosSummary, Table, MetricsTimeline), EngineError> {
    let (max_batch, top_plan) =
        feasible_max_batch(&ctx.engine, net, ctx.mechanism(), &[256, 128, 64, 32])
            .ok_or_else(|| EngineError::Fatal(format!("{}: no feasible batch size", net.name)))?;
    let capacity = capacity_images_per_sec(max_batch, &top_plan);
    let policy = sweep_policy(max_batch, top_plan.total_time());
    let fault_policy = chaos_policy(top_plan.total_time());
    let base = ServeConfig {
        workload: workload_at(REFERENCE_FRAC, capacity, SWEEP_SEED),
        policy,
        mechanism: ctx.mechanism(),
        faults: None,
        fault_policy,
        tenants: Vec::new(),
    };

    let mut t = Table::new(
        format!(
            "{}: p99 latency and shed rate vs fault probability ({}% load, seed {})",
            net.name,
            (REFERENCE_FRAC * 100.0) as u32,
            SWEEP_SEED
        ),
        &[
            "transient",
            "oom",
            "reqs",
            "shed",
            "shed %",
            "p50 ms",
            "p99 ms",
            "injected",
            "retried",
            "degraded",
            "shed flts",
            "balanced",
        ],
    );
    let mut points = Vec::new();
    let mut timeline = MetricsTimeline::default();
    for &rate in &TRANSIENT_RATES {
        let (row, report) = run_chaos_point(ctx, net, &base, rate)?;
        timeline = report.timeline;
        t.row(vec![
            format!("{:.0}%", row.transient_rate * 100.0),
            format!("{:.1}%", row.oom_rate * 100.0),
            row.requests.to_string(),
            row.shed_requests.to_string(),
            format!("{:.1}%", row.shed_rate * 100.0),
            ms(row.p50_ms / 1e3),
            ms(row.p99_ms / 1e3),
            row.injected.to_string(),
            row.retried.to_string(),
            row.degraded.to_string(),
            row.shed_faults.to_string(),
            row.balanced.to_string(),
        ]);
        points.push(row);
    }
    let summary = ChaosSummary {
        bench: "chaos",
        device: ctx.device.name.clone(),
        seed: SWEEP_SEED,
        load_frac: REFERENCE_FRAC,
        network: net.name.clone(),
        policy: fault_policy,
        points,
    };
    Ok((summary, t, timeline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcnn_models::alexnet;

    #[test]
    fn fault_free_point_is_clean_and_faulted_points_balance() {
        let ctx = Ctx::titan_black();
        let net = alexnet().unwrap();
        let (summary, _, timeline) = chaos_sweep(&ctx, &net).expect("chaos sweep");
        assert!(!timeline.is_empty(), "the faulted point must produce a timeline");
        assert_eq!(summary.points.len(), TRANSIENT_RATES.len());
        let clean = &summary.points[0];
        assert_eq!(clean.injected, 0);
        assert_eq!(clean.shed_requests, 0);
        for p in &summary.points {
            assert!(p.balanced, "counter discipline violated at rate {}", p.transient_rate);
        }
        // More faults cannot make the tail faster than fault-free.
        assert!(summary.points.iter().all(|p| p.p99_ms >= clean.p99_ms - 1e-9));
    }
}
