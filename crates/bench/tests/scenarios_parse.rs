//! Every committed `scenarios/*.toml` must parse, carry a name matching
//! its filename stem, and declare tenants only where the suite expects
//! them — catching scenario/baseline skew before the (slower) harness
//! run in CI does.

use memcnn_bench::scenario::parse_spec;

#[test]
fn committed_scenarios_parse() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("scenarios dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "toml") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read scenario");
        let spec = parse_spec(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let stem = path.file_stem().unwrap().to_string_lossy();
        assert_eq!(spec.name, stem, "scenario name must match its filename stem");
        // Tenant sections flip the run onto the SLO scheduler, so they
        // belong only to the slo suite — a stray tenant in another file
        // would silently change what its baseline pins.
        assert_eq!(
            spec.suite == "slo",
            !spec.tenants.is_empty(),
            "{}: tenants iff suite == slo",
            path.display()
        );
        seen += 1;
    }
    assert!(seen >= 5, "expected the committed scenario set, saw {seen}");
}
