//! Criterion benchmarks for the *functional* (CPU) kernels: the real Rust
//! performance of the library's compute paths. Per-figure GPU-model
//! results come from the `figures` binary; these benches measure the code
//! a downstream user actually executes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memcnn_fft::{fft, fft_correlate2d, Complex32, Fft2dPlan};
use memcnn_kernels::conv::conv_forward;
use memcnn_kernels::conv::direct_chwn::direct_conv_chwn;
use memcnn_kernels::im2col::im2col;
use memcnn_kernels::matmul::sgemm;
use memcnn_kernels::pool::{pool_forward, PoolOp};
use memcnn_kernels::softmax::softmax_forward;
use memcnn_kernels::{ConvShape, PoolShape, SoftmaxShape};
use memcnn_tensor::{relayout, Layout, Shape, Tensor};

fn bench_sgemm(c: &mut Criterion) {
    let (m, k, n) = (256, 256, 256);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 11) as f32 - 5.0).collect();
    c.bench_function("sgemm 256^3", |bench| {
        bench.iter(|| sgemm(m, k, n, black_box(&a), black_box(&b)))
    });
}

fn bench_im2col(c: &mut Criterion) {
    let s = ConvShape::table1(8, 64, 28, 5, 16, 1);
    let input = Tensor::random(s.input_shape(), Layout::NCHW, 1);
    c.bench_function("im2col 8x16x28x28 f5", |bench| bench.iter(|| im2col(black_box(&input), &s)));
}

fn bench_conv(c: &mut Criterion) {
    // LeNet CONV2 at batch 16.
    let s = ConvShape::table1(16, 16, 14, 5, 16, 1);
    let nchw = Tensor::random(s.input_shape(), Layout::NCHW, 2);
    let chwn = nchw.to_layout(Layout::CHWN);
    let filter = Tensor::random(s.filter_shape(), Layout::NCHW, 3);
    c.bench_function("conv mm-path 16x16x14x14 f5", |bench| {
        bench.iter(|| conv_forward(black_box(&nchw), &filter, &s, Layout::NCHW).unwrap())
    });
    c.bench_function("conv direct-chwn 16x16x14x14 f5", |bench| {
        bench.iter(|| direct_conv_chwn(black_box(&chwn), &filter, &s))
    });
}

fn bench_pool(c: &mut Criterion) {
    let s = PoolShape::table1(32, 24, 3, 64, 2);
    let nchw = Tensor::random(s.input_shape(), Layout::NCHW, 4);
    let chwn = nchw.to_layout(Layout::CHWN);
    c.bench_function("maxpool nchw 32x64x24x24", |bench| {
        bench.iter(|| pool_forward(black_box(&nchw), &s, PoolOp::Max, Layout::NCHW))
    });
    c.bench_function("maxpool chwn 32x64x24x24", |bench| {
        bench.iter(|| pool_forward(black_box(&chwn), &s, PoolOp::Max, Layout::CHWN))
    });
}

fn bench_softmax(c: &mut Criterion) {
    let shape = SoftmaxShape::new(128, 1000);
    let input: Vec<f32> = (0..shape.len()).map(|i| ((i % 97) as f32) * 0.1).collect();
    c.bench_function("softmax 128x1000", |bench| {
        bench.iter(|| softmax_forward(black_box(&input), shape))
    });
}

fn bench_relayout(c: &mut Criterion) {
    let shape = Shape::new(64, 32, 28, 28);
    let t = Tensor::random(shape, Layout::CHWN, 5);
    c.bench_function("relayout chwn->nchw reference", |bench| {
        bench.iter(|| relayout::relayout(black_box(&t), Layout::NCHW))
    });
    c.bench_function("relayout chwn->nchw parallel", |bench| {
        bench.iter(|| relayout::relayout_parallel(black_box(&t), Layout::NCHW))
    });
    c.bench_function("relayout chwn->nchw 2d-transpose", |bench| {
        bench.iter(|| relayout::relayout_2d_transpose(black_box(&t), Layout::NCHW))
    });
}

fn bench_fft(c: &mut Criterion) {
    let mut data: Vec<Complex32> =
        (0..1024).map(|i| Complex32::new((i as f32).sin(), 0.0)).collect();
    c.bench_function("fft 1024", |bench| bench.iter(|| fft(black_box(&mut data))));
    let plan = Fft2dPlan::new(64, 64);
    let mut img: Vec<Complex32> = (0..64 * 64).map(|i| Complex32::real((i % 7) as f32)).collect();
    c.bench_function("fft2d 64x64", |bench| bench.iter(|| plan.forward(black_box(&mut img))));
    let input: Vec<f32> = (0..48 * 48).map(|i| (i % 9) as f32 - 4.0).collect();
    let kernel: Vec<f32> = (0..25).map(|i| (i % 5) as f32 - 2.0).collect();
    c.bench_function("fft_correlate2d 48x48 k5", |bench| {
        bench.iter(|| fft_correlate2d(black_box(&input), 48, 48, &kernel, 5, 5))
    });
}

criterion_group!(
    benches,
    bench_sgemm,
    bench_im2col,
    bench_conv,
    bench_pool,
    bench_softmax,
    bench_relayout,
    bench_fft
);
criterion_main!(benches);
