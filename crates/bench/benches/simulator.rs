//! Criterion benchmarks for the GPU simulator itself: how fast the
//! trace-sample-and-score pipeline evaluates kernels and networks. These
//! are the costs a user pays per `simulate()` call (e.g. inside the layout
//! auto-tuner or the engine's layout DP).

use criterion::{criterion_group, criterion_main, Criterion};
use memcnn_core::{Engine, LayoutThresholds, Mechanism};
use memcnn_gpusim::{simulate, DeviceConfig, SimOptions};
use memcnn_kernels::conv::direct_chwn::DirectConvChwn;
use memcnn_kernels::conv::mm_nchw::MmConvNchw;
use memcnn_kernels::pool::chwn::PoolChwn;
use memcnn_kernels::softmax::SoftmaxFused;
use memcnn_kernels::transform::{TransformImpl, TransformKernel};
use memcnn_kernels::{ConvShape, PoolShape, SoftmaxShape};
use memcnn_models::networks;
use memcnn_tensor::{Layout, Shape};

fn bench_kernel_sims(c: &mut Criterion) {
    let d = DeviceConfig::titan_black();
    let opts = SimOptions::default();
    let conv = ConvShape::table1(64, 384, 13, 3, 256, 1); // CONV7
    c.bench_function("simulate direct-conv CONV7", |b| {
        b.iter(|| simulate(&d, &DirectConvChwn::new(conv), &opts).unwrap())
    });
    c.bench_function("simulate mm-conv CONV7", |b| {
        b.iter(|| MmConvNchw::new(conv).simulate(&d, &opts).unwrap())
    });
    let pool = PoolShape::table1(128, 55, 3, 96, 2); // PL5
    c.bench_function("simulate pool-chwn PL5", |b| {
        b.iter(|| simulate(&d, &PoolChwn::new(pool), &opts).unwrap())
    });
    c.bench_function("simulate softmax-fused 128x1000", |b| {
        b.iter(|| simulate(&d, &SoftmaxFused::new(SoftmaxShape::new(128, 1000)), &opts).unwrap())
    });
    let shape = Shape::new(64, 96, 55, 55);
    c.bench_function("simulate transform-opt2 CV6", |b| {
        b.iter(|| {
            simulate(
                &d,
                &TransformKernel::new(shape, Layout::CHWN, Layout::NCHW, TransformImpl::Opt2),
                &opts,
            )
            .unwrap()
        })
    });
}

fn bench_network_sim(c: &mut Criterion) {
    let engine = Engine::new(DeviceConfig::titan_black(), LayoutThresholds::titan_black_paper());
    let lenet = networks::lenet().unwrap();
    c.bench_function("simulate LeNet under cuDNN-MM", |b| {
        b.iter(|| engine.simulate_network(&lenet, Mechanism::CudnnMm).unwrap())
    });
    c.bench_function("simulate LeNet under Opt (layout DP)", |b| {
        b.iter(|| engine.simulate_network(&lenet, Mechanism::Opt).unwrap())
    });
}

criterion_group!(benches, bench_kernel_sims, bench_network_sim);
criterion_main!(benches);
