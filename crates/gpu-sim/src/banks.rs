//! Shared-memory bank-conflict model.
//!
//! Shared memory is divided into 32 banks. A warp access completes in one
//! pass when every lane hits a different bank (or lanes share the exact
//! same word — broadcast); otherwise the access replays once per extra
//! distinct word mapped to the most-contended bank. Kepler's 8-byte bank
//! mode widens banks so `float2` accesses stop conflicting — the enabler
//! of the paper's vectorized transformation kernel (§IV.C, Fig 7b line
//! 16-24 and the Fig 11 `Transform-Opt2` bars).

use crate::device::BankMode;

/// Number of passes (1 = conflict-free) a warp shared-memory access takes.
///
/// `byte_addrs` are per-lane byte addresses into shared memory;
/// `bytes_per_lane` is the access width (4 for `float`, 8 for `float2`).
pub fn passes(byte_addrs: &[u64], bytes_per_lane: u64, mode: BankMode, banks: u32) -> u32 {
    if byte_addrs.is_empty() {
        return 0;
    }
    let bank_bytes = mode.bytes();
    let banks = banks as u64;
    // An access wider than a bank is split by the hardware into groups of
    // lanes whose combined width matches one bank sweep: float2 in 4-byte
    // mode is served half-warp at a time (two transactions), in 8-byte mode
    // whole-warp at once. Each group resolves bank conflicts independently
    // over every word its lanes touch.
    let group_lanes = ((banks * bank_bytes) / bytes_per_lane.max(1)).max(1) as usize;
    let words_per_lane = bytes_per_lane.div_ceil(bank_bytes);
    let mut total = 0u32;
    for group in byte_addrs.chunks(group_lanes) {
        // word index -> bank; lanes touching the same word broadcast.
        let mut per_bank_words: Vec<Vec<u64>> = vec![Vec::new(); banks as usize];
        for &a in group {
            for k in 0..words_per_lane {
                let word = a / bank_bytes + k;
                let bank = (word % banks) as usize;
                if !per_bank_words[bank].contains(&word) {
                    per_bank_words[bank].push(word);
                }
            }
        }
        let worst = per_bank_words.iter().map(|w| w.len()).max().unwrap_or(0);
        total += worst.max(1) as u32;
    }
    total
}

/// Bytes of shared-memory traffic a warp access generates (for throughput
/// accounting): requested bytes, independent of conflicts (conflicts cost
/// time via extra passes, not extra bytes).
pub fn bytes(byte_addrs: &[u64], bytes_per_lane: u64) -> u64 {
    byte_addrs.len() as u64 * bytes_per_lane
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(stride: u64, lanes: usize) -> Vec<u64> {
        (0..lanes as u64).map(|i| i * stride).collect()
    }

    #[test]
    fn unit_stride_floats_are_conflict_free() {
        assert_eq!(passes(&addrs(4, 32), 4, BankMode::FourByte, 32), 1);
    }

    #[test]
    fn stride_32_floats_serialize_fully() {
        // Classic column access of a 32-wide float tile: all lanes in bank 0.
        assert_eq!(passes(&addrs(128, 32), 4, BankMode::FourByte, 32), 32);
    }

    #[test]
    fn padded_tile_column_access_is_conflict_free() {
        // 33-wide padding (Fig 7b line 7: `sh[C][33]`) shifts each row by
        // one bank.
        assert_eq!(passes(&addrs(132, 32), 4, BankMode::FourByte, 32), 1);
    }

    #[test]
    fn broadcast_is_free() {
        assert_eq!(passes(&vec![0u64; 32], 4, BankMode::FourByte, 32), 1);
    }

    #[test]
    fn float2_in_4byte_mode_takes_two_passes() {
        assert_eq!(passes(&addrs(8, 32), 8, BankMode::FourByte, 32), 2);
    }

    #[test]
    fn float2_in_8byte_mode_takes_one_pass() {
        assert_eq!(passes(&addrs(8, 32), 8, BankMode::EightByte, 32), 1);
    }

    #[test]
    fn two_way_conflict_doubles_passes() {
        // Stride of 2 floats: lanes 0 and 16 share bank 0, etc.
        assert_eq!(passes(&addrs(8, 32), 4, BankMode::FourByte, 32), 2);
    }

    #[test]
    fn empty_access_is_zero_passes() {
        assert_eq!(passes(&[], 4, BankMode::FourByte, 32), 0);
    }

    #[test]
    fn bytes_counts_requested_traffic() {
        assert_eq!(bytes(&addrs(4, 32), 4), 128);
        assert_eq!(bytes(&addrs(8, 16), 8), 128);
    }
}
