//! Launch simulation: sample block traces, model the L2, score the kernel.

use crate::cache::Cache;
use crate::device::DeviceConfig;
use crate::kernel::{BlockTrace, KernelSpec};
use crate::model::{score, KernelTime, LaunchTotals};
use crate::occupancy::{occupancy, Occupancy};
use crate::SimError;
use rayon::prelude::*;
use serde::Serialize;

/// Simulation options.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Maximum blocks whose traces are replayed; larger grids are
    /// stride-sampled and results scaled. Traces are deterministic, so the
    /// same options always give the same report.
    pub max_sampled_blocks: u64,
    /// Disable the L2 model (all sectors go to DRAM). For ablations.
    pub l2_enabled: bool,
    /// Consult the process-wide memoization cache ([`crate::simcache`]) for
    /// kernels that provide a [`KernelSpec::cache_key`]. Reports are
    /// bit-identical either way; turning this off only trades time for a
    /// guaranteed cold simulation (ablations, benchmarking the model
    /// itself).
    pub use_cache: bool,
    /// Seeded fault-injection plan ([`crate::faults`]). `None` (the
    /// default) and a plan whose rates are all zero are bit-identical
    /// no-ops. Only [`simulate_injected`] consults it — plain [`simulate`]
    /// always runs clean, and the plan is excluded from the simulation
    /// cache key so faulted timings never pollute the cache.
    pub faults: Option<crate::faults::FaultPlan>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { max_sampled_blocks: 24, l2_enabled: true, use_cache: true, faults: None }
    }
}

/// Result of simulating one kernel launch.
#[derive(Clone, Debug, Serialize)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Scored time and its decomposition.
    pub timing: KernelTime,
    /// Occupancy snapshot.
    pub occupancy: Occupancy,
    /// Total DRAM bytes (post-L2, floored by compulsory traffic).
    pub dram_bytes: f64,
    /// Total L2 sector bytes (pre-cache transactions).
    pub transaction_bytes: f64,
    /// Bytes the lanes requested (load + store): transaction_bytes /
    /// requested_bytes is the over-fetch factor of an uncoalesced kernel.
    pub requested_bytes: f64,
    /// L2 hit rate observed on the sampled stream.
    pub l2_hit_rate: f64,
    /// Total FLOPs.
    pub flops: f64,
    /// Blocks sampled out of the grid.
    pub sampled_blocks: u64,
    /// Grid size.
    pub grid_blocks: u64,
}

impl std::fmt::Display for KernelReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = &self.timing;
        writeln!(f, "{}", self.name)?;
        writeln!(
            f,
            "  time {:>10.3} us   bound: {:?}   grid {} blocks ({} sampled)",
            t.time * 1e6,
            t.bound,
            self.grid_blocks,
            self.sampled_blocks
        )?;
        writeln!(
            f,
            "  terms: compute {:.1}us  dram {:.1}us  l2 {:.1}us  latency {:.1}us  smem {:.1}us  issue {:.1}us  launch {:.1}us",
            t.t_compute * 1e6,
            t.t_dram * 1e6,
            t.t_l2 * 1e6,
            t.t_latency * 1e6,
            t.t_smem * 1e6,
            t.t_issue * 1e6,
            t.t_launch * 1e6
        )?;
        writeln!(
            f,
            "  occupancy: {} blocks/SM, {} warps/SM ({:.0}%), limiter {:?}",
            self.occupancy.blocks_per_sm,
            self.occupancy.warps_per_sm,
            self.occupancy.fraction * 100.0,
            self.occupancy.limiter
        )?;
        writeln!(
            f,
            "  memory: requested {:.2} MB, transactions {:.2} MB (over-fetch {:.2}x), DRAM {:.2} MB, L2 hit {:.0}%",
            self.requested_bytes / 1e6,
            self.transaction_bytes / 1e6,
            if self.requested_bytes > 0.0 {
                self.transaction_bytes / self.requested_bytes
            } else {
                1.0
            },
            self.dram_bytes / 1e6,
            self.l2_hit_rate * 100.0
        )?;
        write!(
            f,
            "  rates: {:.1} GB/s DRAM, {:.0} GFLOP/s, ALU utilization {:.1}%",
            self.dram_gbs(),
            self.gflops(),
            t.alu_utilization * 100.0
        )
    }
}

impl KernelReport {
    /// Wall time in seconds.
    pub fn time(&self) -> f64 {
        self.timing.time
    }

    /// Achieved DRAM bandwidth in GB/s (the metric Figs 6, 11, 13 report).
    pub fn dram_gbs(&self) -> f64 {
        self.timing.dram_gbs / 1e9
    }

    /// Achieved GFLOP/s (the metric Fig 4 reports).
    pub fn gflops(&self) -> f64 {
        self.timing.flops_rate / 1e9
    }
}

/// Pick up to `max` block ids spread across `grid` as a few *runs* of
/// consecutive blocks. Runs (rather than isolated strided picks) keep the
/// sample representative when block workloads alternate with grid position
/// (edge tiles, partial warps) and preserve the spatial locality
/// neighbouring blocks share in the L2.
fn sample_blocks(grid: u64, max: u64) -> Vec<u64> {
    if grid <= max {
        return (0..grid).collect();
    }
    const RUNS: u64 = 4;
    let runs = RUNS.min(max);
    let run_len = max / runs;
    let mut out = Vec::with_capacity(max as usize);
    for r in 0..runs {
        // Run starts spread evenly, offset by half a stride.
        let start = ((2 * r + 1) * grid / (2 * runs)).min(grid - run_len);
        for b in start..start + run_len {
            if out.last() != Some(&b) && !out.contains(&b) {
                out.push(b);
            }
        }
    }
    out
}

/// Simulate one kernel launch on a device.
///
/// Fails if the kernel cannot launch (resources) or its declared footprint
/// exceeds device memory — the latter reproduces the paper's FFT
/// "execution failures" on CV5/CV6 (Fig 5).
///
/// When `opts.use_cache` is set and the kernel provides a
/// [`KernelSpec::cache_key`], the result is memoized process-wide in
/// [`crate::simcache`]: a hit returns the stored report (and replays the
/// same trace-collector record a cold run would emit); a miss simulates in
/// full and stores. Only successful simulations are cached — the error
/// paths are cheap pre-trace checks and callers probe them routinely.
pub fn simulate(
    device: &DeviceConfig,
    kernel: &dyn KernelSpec,
    opts: &SimOptions,
) -> Result<KernelReport, SimError> {
    let key = if opts.use_cache { kernel.cache_key() } else { None };
    let Some(key) = key else {
        crate::simcache::note_bypass();
        let (report, smem_passes, smem_bytes) = simulate_cold(device, kernel, opts)?;
        publish_to_trace(&report, smem_passes, smem_bytes);
        return Ok(report);
    };
    let sim_key = crate::simcache::SimKey::new(device, key, opts);
    if let Some(hit) = crate::simcache::lookup(&sim_key) {
        publish_to_trace(&hit.report, hit.smem_passes, hit.smem_bytes);
        return Ok(hit.report.clone());
    }
    let (report, smem_passes, smem_bytes) = simulate_cold(device, kernel, opts)?;
    publish_to_trace(&report, smem_passes, smem_bytes);
    crate::simcache::insert(
        sim_key,
        crate::simcache::CachedSim { report: report.clone(), smem_passes, smem_bytes },
    );
    Ok(report)
}

/// Simulate one kernel launch under the fault plan in `opts.faults`.
///
/// Rolls the plan at `(kernel key, launch_index)` *before* any simulation
/// or cache consult, so the cache only ever holds clean results:
///
/// - no fault (or no plan): identical to [`simulate`], bit for bit;
/// - `LaunchFailed` / `DeviceOom`: returns [`SimError::Injected`] without
///   simulating — the launch never ran;
/// - `Throttled { factor }`: simulates clean (cache eligible), then scales
///   the report's time by `factor` (and its achieved rates down to match).
///
/// The kernel key is [`KernelSpec::cache_key`] when available, else the
/// kernel name — the same identity the rest of the pipeline uses, so a
/// fault timeline can be read back against the Perfetto trace. The caller
/// supplies `launch_index` (a per-device launch-attempt counter); retries
/// at a fresh index get fresh rolls, which is what makes bounded retry
/// meaningful under a deterministic stream.
pub fn simulate_injected(
    device: &DeviceConfig,
    kernel: &dyn KernelSpec,
    opts: &SimOptions,
    launch_index: u64,
) -> Result<KernelReport, SimError> {
    let Some(plan) = opts.faults.filter(|p| !p.is_noop()) else {
        return simulate(device, kernel, opts);
    };
    let key = kernel.cache_key().unwrap_or_else(|| kernel.name());
    match plan.roll(&key, launch_index) {
        None => simulate(device, kernel, opts),
        Some(crate::faults::Fault::Throttled { factor }) => {
            let mut report = simulate(device, kernel, opts)?;
            report.timing.time *= factor;
            report.timing.dram_gbs /= factor;
            report.timing.flops_rate /= factor;
            Ok(report)
        }
        Some(fault) => {
            Err(SimError::Injected { fault: fault.kind(), kernel: key, launch: launch_index })
        }
    }
}

/// Execute one launch simulation in full (no cache involvement). Returns
/// the report plus the `smem_passes` / `smem_bytes` launch totals, which
/// the trace collector publishes but the report does not carry.
fn simulate_cold(
    device: &DeviceConfig,
    kernel: &dyn KernelSpec,
    opts: &SimOptions,
) -> Result<(KernelReport, f64, f64), SimError> {
    crate::simcache::note_cold();
    let launch = kernel.launch();
    let work = kernel.work();
    if work.footprint_bytes > device.device_mem {
        return Err(SimError::OutOfMemory {
            needed: work.footprint_bytes,
            available: device.device_mem,
        });
    }
    let occ = occupancy(device, &launch)?;

    let sampled = sample_blocks(launch.grid_blocks, opts.max_sampled_blocks);
    let traces: Vec<BlockTrace> = sampled
        .par_iter()
        .map(|&b| {
            let mut t = BlockTrace::new(launch.bank_mode, device.smem_banks);
            kernel.trace_block(b, &mut t);
            t
        })
        .collect();

    let scale = launch.grid_blocks as f64 / sampled.len().max(1) as f64;

    // Aggregate raw counters.
    let mut totals = LaunchTotals::default();
    for t in &traces {
        totals.flops += t.flops as f64;
        totals.mem_instrs += t.mem_instrs as f64;
        totals.load_sectors += t.load_sectors as f64;
        totals.store_sectors += t.store_sectors as f64;
        totals.requested_load_bytes += t.requested_load_bytes as f64;
        totals.requested_store_bytes += t.requested_store_bytes as f64;
        totals.smem_passes += t.smem_passes as f64;
        totals.smem_bytes += t.smem_bytes as f64;
        totals.aux_warp_instrs += t.aux_warp_instrs as f64;
    }
    totals.flops *= scale;
    totals.mem_instrs *= scale;
    totals.load_sectors *= scale;
    totals.store_sectors *= scale;
    totals.requested_load_bytes *= scale;
    totals.requested_store_bytes *= scale;
    totals.smem_passes *= scale;
    totals.smem_bytes *= scale;
    totals.aux_warp_instrs *= scale;

    // L2 model over the sampled sector streams. Blocks that would be
    // co-resident share the cache; we interleave their streams round-robin
    // in small chunks to approximate concurrent execution. When fewer
    // blocks are sampled than would be concurrent, the cache is shrunk
    // proportionally (sampled share of the real cache).
    let (mut miss_load, mut miss_store) = (0f64, 0f64);
    let mut l2_hit_rate = 0.0;
    if opts.l2_enabled && !traces.is_empty() {
        let wave = (occ.concurrent_blocks as usize).max(1);
        let sampled_in_wave = traces.len().min(wave);
        let cache_frac = sampled_in_wave as f64 / wave as f64;
        let cache_size = ((device.l2_size as f64 * cache_frac) as u64)
            .max(DeviceConfig::SECTOR_BYTES * device.l2_assoc as u64);
        let mut cache = Cache::new(cache_size, device.l2_assoc, DeviceConfig::SECTOR_BYTES);
        const CHUNK: usize = 8;
        for wave_traces in traces.chunks(wave) {
            let mut cursors: Vec<usize> = vec![0; wave_traces.len()];
            let mut live = wave_traces.len();
            while live > 0 {
                live = 0;
                for (t, cur) in wave_traces.iter().zip(cursors.iter_mut()) {
                    if *cur >= t.sectors.len() {
                        continue;
                    }
                    let end = (*cur + CHUNK).min(t.sectors.len());
                    for &(sector, is_store) in &t.sectors[*cur..end] {
                        if !cache.access(sector) {
                            if is_store {
                                miss_store += 1.0;
                            } else {
                                miss_load += 1.0;
                            }
                        }
                    }
                    *cur = end;
                    if *cur < t.sectors.len() {
                        live += 1;
                    }
                }
            }
        }
        l2_hit_rate = cache.hit_rate();
    } else {
        miss_load = traces.iter().map(|t| t.load_sectors as f64).sum();
        miss_store = traces.iter().map(|t| t.store_sectors as f64).sum();
    }

    let sector = DeviceConfig::SECTOR_BYTES as f64;
    // Loads: scale misses to the grid; floor by compulsory traffic, cap by
    // raw transactions.
    totals.dram_load_bytes = (miss_load * sector * scale)
        .max(work.min_dram_load_bytes)
        .min(totals.load_sectors * sector);
    let _ = miss_store;
    // Stores: every store transaction reaches DRAM. GDDR5 writes partial
    // sectors with byte-enables but still occupy a full burst, so the L2
    // gives scattered stores no write-combining credit — the mechanism
    // that makes the naive transformation kernel's strided writes so
    // expensive (§IV.C). Coalesced stores are unaffected (their sector
    // count already equals their byte count).
    totals.dram_store_bytes = (totals.store_sectors * sector).max(work.min_dram_store_bytes);

    let timing = score(device, &launch, &occ, &work, &totals);
    let report = KernelReport {
        name: kernel.name(),
        timing,
        occupancy: occ,
        dram_bytes: totals.dram_load_bytes + totals.dram_store_bytes,
        transaction_bytes: (totals.load_sectors + totals.store_sectors) * sector,
        requested_bytes: totals.requested_load_bytes + totals.requested_store_bytes,
        l2_hit_rate,
        flops: totals.flops,
        sampled_blocks: sampled.len() as u64,
        grid_blocks: launch.grid_blocks,
    };
    Ok((report, totals.smem_passes, totals.smem_bytes))
}

/// Publish a report's counters to an active trace collector (the closure
/// never runs — and allocates nothing — when tracing is off).
/// `smem_passes`/`smem_bytes` come from the launch totals because the
/// report itself does not carry them; cache hits replay the stored values
/// so a warm trace is byte-identical to a cold one.
fn publish_to_trace(report: &KernelReport, smem_passes: f64, smem_bytes: f64) {
    memcnn_trace::record_kernel(|| memcnn_trace::KernelCounters {
        name: report.name.clone(),
        time_s: report.timing.time,
        dram_bytes: report.dram_bytes,
        transaction_bytes: report.transaction_bytes,
        requested_bytes: report.requested_bytes,
        l2_hit_rate: report.l2_hit_rate,
        flops: report.flops,
        smem_passes,
        smem_bytes,
        occupancy: report.occupancy.fraction,
        occupancy_limiter: format!("{:?}", report.occupancy.limiter),
        bound: format!("{:?}", report.timing.bound),
        smem_time_s: report.timing.t_smem,
        grid_blocks: report.grid_blocks,
        sampled_blocks: report.sampled_blocks,
    });
}

/// Result of simulating a multi-kernel pipeline (e.g. im2col + GEMM, the
/// 5-kernel softmax, FFT's transform/multiply/inverse steps).
#[derive(Clone, Debug, Serialize)]
pub struct SequenceReport {
    /// Per-kernel reports, in order.
    pub kernels: Vec<KernelReport>,
}

impl SequenceReport {
    /// Total time of the pipeline (kernels serialize through global memory,
    /// which is exactly the inter-kernel cost §V.B eliminates by fusion).
    pub fn time(&self) -> f64 {
        self.kernels.iter().map(|k| k.time()).sum()
    }

    /// Total DRAM traffic of the pipeline.
    pub fn dram_bytes(&self) -> f64 {
        self.kernels.iter().map(|k| k.dram_bytes).sum()
    }

    /// Aggregate achieved DRAM bandwidth in GB/s.
    pub fn dram_gbs(&self) -> f64 {
        self.dram_bytes() / self.time() / 1e9
    }

    /// Total FLOPs.
    pub fn flops(&self) -> f64 {
        self.kernels.iter().map(|k| k.flops).sum()
    }

    /// Aggregate GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.flops() / self.time() / 1e9
    }
}

/// Simulate a sequence of dependent kernels.
pub fn simulate_sequence(
    device: &DeviceConfig,
    kernels: &[&dyn KernelSpec],
    opts: &SimOptions,
) -> Result<SequenceReport, SimError> {
    let reports =
        kernels.iter().map(|k| simulate(device, *k, opts)).collect::<Result<Vec<_>, _>>()?;
    Ok(SequenceReport { kernels: reports })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::BankMode;
    use crate::kernel::{LaunchConfig, WorkSummary};

    /// A streaming copy kernel: each block copies 256 KB coalesced.
    struct CopyKernel {
        grid: u64,
        src_base: u64,
        dst_base: u64,
        stride: u64,
    }

    impl KernelSpec for CopyKernel {
        fn name(&self) -> String {
            "copy".to_string()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig {
                grid_blocks: self.grid,
                threads_per_block: 256,
                regs_per_thread: 24,
                smem_per_block: 0,
                bank_mode: BankMode::FourByte,
            }
        }
        fn work(&self) -> WorkSummary {
            let bytes = self.grid as f64 * 256.0 * 128.0 * 4.0;
            WorkSummary::new(bytes, bytes, 2 * bytes as u64).with_ilp(4.0)
        }
        fn trace_block(&self, block: u64, t: &mut BlockTrace) {
            // 128 iterations x 8 warps x 32 lanes x 4 B = 128 KB in, 128 KB out.
            let block_bytes = 256 * 128 * 4u64;
            for i in 0..128u64 {
                for w in 0..8u64 {
                    let base = block * block_bytes + (i * 8 + w) * 128;
                    let addrs: Vec<u64> =
                        (0..32u64).map(|l| self.src_base + (base + l * 4) * self.stride).collect();
                    t.global_load(&addrs, 4);
                    let waddrs: Vec<u64> =
                        (0..32u64).map(|l| self.dst_base + base + l * 4).collect();
                    t.global_store(&waddrs, 4);
                    t.flops(32);
                    t.aux(2);
                }
            }
        }
    }

    #[test]
    fn coalesced_copy_achieves_near_peak_bandwidth() {
        let d = DeviceConfig::titan_black();
        let k = CopyKernel { grid: 4096, src_base: 0, dst_base: 1 << 33, stride: 1 };
        let r = simulate(&d, &k, &SimOptions::default()).unwrap();
        assert_eq!(r.timing.bound, crate::model::Bound::DramBandwidth);
        // Coalesced: transactions equal requested bytes.
        assert!((r.transaction_bytes / r.requested_bytes - 1.0).abs() < 0.01);
        assert!(r.dram_gbs() > 0.8 * d.dram_bw / 1e9, "got {} GB/s", r.dram_gbs());
    }

    #[test]
    fn strided_copy_overfetches_and_slows_down() {
        let d = DeviceConfig::titan_black();
        let unit = CopyKernel { grid: 1024, src_base: 0, dst_base: 1 << 33, stride: 1 };
        let strided = CopyKernel { grid: 1024, src_base: 0, dst_base: 1 << 33, stride: 16 };
        let r1 = simulate(&d, &unit, &SimOptions::default()).unwrap();
        let r2 = simulate(&d, &strided, &SimOptions::default()).unwrap();
        assert!(r2.transaction_bytes > 4.0 * r1.transaction_bytes);
        assert!(r2.time() > 2.0 * r1.time(), "{} vs {}", r2.time(), r1.time());
    }

    #[test]
    fn sampling_scales_to_full_grid() {
        let d = DeviceConfig::titan_black();
        let small = CopyKernel { grid: 24, src_base: 0, dst_base: 1 << 33, stride: 1 };
        let big = CopyKernel { grid: 2400, src_base: 0, dst_base: 1 << 33, stride: 1 };
        let rs = simulate(&d, &small, &SimOptions::default()).unwrap();
        let rb = simulate(&d, &big, &SimOptions::default()).unwrap();
        assert_eq!(rb.sampled_blocks, 24);
        let ratio = rb.requested_bytes / rs.requested_bytes;
        assert!((ratio - 100.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn oom_kernel_fails() {
        struct Huge;
        impl KernelSpec for Huge {
            fn name(&self) -> String {
                "huge".to_string()
            }
            fn launch(&self) -> LaunchConfig {
                LaunchConfig {
                    grid_blocks: 1,
                    threads_per_block: 32,
                    regs_per_thread: 16,
                    smem_per_block: 0,
                    bank_mode: BankMode::FourByte,
                }
            }
            fn work(&self) -> WorkSummary {
                WorkSummary { footprint_bytes: 8 << 30, ..Default::default() }
            }
            fn trace_block(&self, _: u64, _: &mut BlockTrace) {}
        }
        let d = DeviceConfig::titan_black();
        match simulate(&d, &Huge, &SimOptions::default()) {
            Err(SimError::OutOfMemory { needed, available }) => {
                assert_eq!(needed, 8 << 30);
                assert_eq!(available, d.device_mem);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn l2_reuse_reduces_dram_traffic() {
        // All blocks read the SAME 64 KB: with L2 enabled, DRAM traffic
        // collapses to roughly the footprint.
        struct SharedRead;
        impl KernelSpec for SharedRead {
            fn name(&self) -> String {
                "shared-read".to_string()
            }
            fn launch(&self) -> LaunchConfig {
                LaunchConfig {
                    grid_blocks: 16,
                    threads_per_block: 256,
                    regs_per_thread: 24,
                    smem_per_block: 0,
                    bank_mode: BankMode::FourByte,
                }
            }
            fn work(&self) -> WorkSummary {
                WorkSummary::new(64.0 * 1024.0, 0.0, 64 * 1024)
            }
            fn trace_block(&self, _: u64, t: &mut BlockTrace) {
                for i in 0..512u64 {
                    let addrs: Vec<u64> = (0..32u64).map(|l| i * 128 + l * 4).collect();
                    t.global_load(&addrs, 4);
                }
            }
        }
        let d = DeviceConfig::titan_black();
        let with_l2 = simulate(&d, &SharedRead, &SimOptions::default()).unwrap();
        let without =
            simulate(&d, &SharedRead, &SimOptions { l2_enabled: false, ..Default::default() })
                .unwrap();
        assert!(with_l2.dram_bytes < without.dram_bytes / 4.0);
        assert!(with_l2.l2_hit_rate > 0.8);
    }

    #[test]
    fn sequence_time_is_sum_of_kernels() {
        let d = DeviceConfig::titan_black();
        let k1 = CopyKernel { grid: 512, src_base: 0, dst_base: 1 << 33, stride: 1 };
        let k2 = CopyKernel { grid: 512, src_base: 1 << 33, dst_base: 1 << 34, stride: 1 };
        let seq = simulate_sequence(&d, &[&k1, &k2], &SimOptions::default()).unwrap();
        let solo = simulate(&d, &k1, &SimOptions::default()).unwrap();
        assert_eq!(seq.kernels.len(), 2);
        assert!((seq.time() - 2.0 * solo.time()).abs() / seq.time() < 0.05);
    }

    #[test]
    fn simulation_is_deterministic() {
        let d = DeviceConfig::titan_black();
        let k = CopyKernel { grid: 1000, src_base: 0, dst_base: 1 << 33, stride: 3 };
        let a = simulate(&d, &k, &SimOptions::default()).unwrap();
        let b = simulate(&d, &k, &SimOptions::default()).unwrap();
        assert_eq!(a.time(), b.time());
        assert_eq!(a.dram_bytes, b.dram_bytes);
    }

    #[test]
    fn sample_blocks_covers_grid_in_runs() {
        let s = sample_blocks(1000, 12);
        assert_eq!(s.len(), 12);
        assert!(s.iter().all(|&b| b < 1000));
        // Four runs of three consecutive blocks.
        assert_eq!(s[0] + 1, s[1]);
        assert_eq!(s[1] + 1, s[2]);
        // Runs span the grid: first run in the first half, last in the last.
        assert!(s[0] < 500 && *s.last().unwrap() > 500);
        assert_eq!(sample_blocks(5, 10), vec![0, 1, 2, 3, 4]);
        // Samples are unique even for tight grids.
        let t = sample_blocks(13, 12);
        let unique: std::collections::HashSet<_> = t.iter().collect();
        assert_eq!(unique.len(), t.len());
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;
    use crate::device::BankMode;
    use crate::kernel::{LaunchConfig, WorkSummary};

    struct Tiny;
    impl KernelSpec for Tiny {
        fn name(&self) -> String {
            "tiny-kernel".to_string()
        }
        fn launch(&self) -> LaunchConfig {
            LaunchConfig {
                grid_blocks: 8,
                threads_per_block: 64,
                regs_per_thread: 16,
                smem_per_block: 0,
                bank_mode: BankMode::FourByte,
            }
        }
        fn work(&self) -> WorkSummary {
            WorkSummary::default()
        }
        fn trace_block(&self, block: u64, t: &mut BlockTrace) {
            let addrs: Vec<u64> = (0..32u64).map(|l| block * 128 + l * 4).collect();
            t.global_load(&addrs, 4);
            t.flops(64);
        }
    }

    #[test]
    fn report_display_contains_the_profiler_fields() {
        let d = DeviceConfig::titan_black();
        let r = simulate(&d, &Tiny, &SimOptions::default()).unwrap();
        let text = r.to_string();
        for needle in ["tiny-kernel", "bound:", "occupancy:", "GB/s DRAM", "ALU utilization"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn sequence_propagates_launch_errors() {
        struct Bad;
        impl KernelSpec for Bad {
            fn name(&self) -> String {
                "bad".to_string()
            }
            fn launch(&self) -> LaunchConfig {
                LaunchConfig {
                    grid_blocks: 1,
                    threads_per_block: 4096, // exceeds device max
                    regs_per_thread: 16,
                    smem_per_block: 0,
                    bank_mode: BankMode::FourByte,
                }
            }
            fn work(&self) -> WorkSummary {
                WorkSummary::default()
            }
            fn trace_block(&self, _: u64, _: &mut BlockTrace) {}
        }
        let d = DeviceConfig::titan_black();
        let err = simulate_sequence(&d, &[&Tiny as &dyn KernelSpec, &Bad], &SimOptions::default())
            .unwrap_err();
        assert!(matches!(err, SimError::Unlaunchable(_)));
        assert!(err.to_string().contains("threads/block"));
    }

    #[test]
    fn disabling_sampling_traces_every_block() {
        let d = DeviceConfig::titan_black();
        let opts = SimOptions { max_sampled_blocks: 1 << 20, ..Default::default() };
        let r = simulate(&d, &Tiny, &opts).unwrap();
        assert_eq!(r.sampled_blocks, r.grid_blocks);
        // 8 blocks x 128 B requested each.
        assert_eq!(r.requested_bytes, 8.0 * 128.0);
    }
}
