//! The kernel cost model.
//!
//! Converts aggregate launch statistics (scaled from sampled block traces)
//! into a time estimate and a diagnosis of *what bounds the kernel* — the
//! quantity the paper reasons about throughout (§IV: layout changes move
//! kernels between the coalesced and uncoalesced regimes; §V: fusion trades
//! DRAM round-trips for on-chip traffic; low-parallelism kernels are
//! latency-bound).
//!
//! The model is a bounded-resource max:
//!
//! ```text
//! time = launch_overhead + max(T_compute, T_dram, T_L2, T_latency, T_smem, T_issue)
//! ```
//!
//! Each term is documented on [`score`].

use crate::device::DeviceConfig;
use crate::kernel::{LaunchConfig, WorkSummary};
use crate::occupancy::Occupancy;
use serde::Serialize;

/// Aggregate, full-grid launch statistics (sampled traces already scaled).
#[derive(Clone, Copy, Debug, Default)]
pub struct LaunchTotals {
    /// Floating-point operations.
    pub flops: f64,
    /// Warp-level global memory instructions.
    pub mem_instrs: f64,
    /// Global load sectors (32 B each) after coalescing.
    pub load_sectors: f64,
    /// Global store sectors after coalescing.
    pub store_sectors: f64,
    /// Bytes lanes requested on loads (for efficiency metrics).
    pub requested_load_bytes: f64,
    /// Bytes lanes requested on stores.
    pub requested_store_bytes: f64,
    /// DRAM read bytes after the L2 model.
    pub dram_load_bytes: f64,
    /// DRAM write bytes after the L2 model.
    pub dram_store_bytes: f64,
    /// Shared-memory passes (bank-adjusted warp cycles).
    pub smem_passes: f64,
    /// Shared-memory requested bytes.
    pub smem_bytes: f64,
    /// Auxiliary warp instructions.
    pub aux_warp_instrs: f64,
}

/// What bounds a kernel's execution time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Bound {
    /// FP32 pipeline throughput.
    Compute,
    /// DRAM bandwidth.
    DramBandwidth,
    /// L2 bandwidth.
    L2Bandwidth,
    /// Memory latency with insufficient parallelism to hide it.
    MemLatency,
    /// Shared-memory throughput (incl. bank conflicts).
    SharedMem,
    /// Instruction issue / per-block overhead.
    Issue,
    /// The kernel is so small the launch overhead dominates.
    Launch,
}

/// Scored launch: time, its decomposition, and derived metrics.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct KernelTime {
    /// Total wall time, seconds (including launch overhead).
    pub time: f64,
    /// Launch overhead component.
    pub t_launch: f64,
    /// FP32 pipeline time.
    pub t_compute: f64,
    /// DRAM bandwidth time.
    pub t_dram: f64,
    /// L2 bandwidth time.
    pub t_l2: f64,
    /// Latency-bound time (Little's law).
    pub t_latency: f64,
    /// Shared-memory time.
    pub t_smem: f64,
    /// Issue + per-block overhead time.
    pub t_issue: f64,
    /// The binding term.
    pub bound: Bound,
    /// Achieved DRAM bandwidth, bytes/s.
    pub dram_gbs: f64,
    /// Achieved arithmetic rate, FLOP/s.
    pub flops_rate: f64,
    /// Fraction of peak FP32 throughput sustained (the paper's "utilization
    /// rate of ALUs", §II.A).
    pub alu_utilization: f64,
    /// ALU efficiency factor used (latency-hiding model).
    pub alu_eff: f64,
}

/// DRAM efficiency as a function of warp-request granularity.
///
/// GDDR5 bursts favour large per-warp requests: a warp of 4-byte lanes
/// moves 128 B per request and sustains ~87% of the achievable bandwidth,
/// while 8-byte (`float2`) lanes move 256 B and reach ~100%. This is the
/// mechanism that makes the paper's vectorized transformation kernel
/// (§IV.C Opt2, Fig 11) and wide softmax loads profitable even though both
/// are already perfectly coalesced.
pub fn dram_efficiency(totals: &LaunchTotals) -> f64 {
    if totals.mem_instrs <= 0.0 {
        return 1.0;
    }
    let avg_request =
        (totals.requested_load_bytes + totals.requested_store_bytes) / totals.mem_instrs;
    (0.74 + 0.13 * avg_request / 128.0).clamp(0.74, 1.0)
}

/// Effective ALU/issue efficiency from latency hiding: how fully the
/// resident warps (times per-thread ILP) cover the pipeline's needs.
pub fn alu_efficiency(device: &DeviceConfig, occ: &Occupancy, ilp: f64) -> f64 {
    let warps_per_sm_active = occ.concurrent_warps as f64 / device.sms as f64;
    let ilp = ilp.max(1.0);
    (warps_per_sm_active * ilp / device.warps_to_saturate_alu).min(1.0)
}

/// Score a launch. See the module docs for the model shape; term by term:
///
/// - `T_compute = flops / (peak_flops x alu_eff)` where `alu_eff` grows with
///   resident warps x ILP until the pipeline saturates
///   ([`DeviceConfig::warps_to_saturate_alu`]).
/// - `T_dram = dram_bytes / dram_bw` — DRAM traffic is the post-L2 sector
///   traffic, floored by the kernel's compulsory unique footprint.
/// - `T_L2 = total_sector_bytes / l2_bw` — every transaction crosses the L2.
/// - `T_latency = mem_instrs x mem_latency / (concurrent_warps x mlp)` — a
///   Little's-law bound; kernels without enough warps in flight cannot keep
///   the memory pipe full (the §V.B softmax failure mode).
/// - `T_smem = smem_passes / (SMs x clock)` — one bank-conflict-adjusted
///   pass per SM per cycle.
/// - `T_issue = warp_instrs / (SMs x issue_width x clock x alu_eff) +
///   grid x block_overhead / (SMs x clock)` — instruction issue plus fixed
///   per-block cost; this is what bends the GFLOPS curves at small
///   work-per-block (Fig 4).
pub fn score(
    device: &DeviceConfig,
    launch: &LaunchConfig,
    occ: &Occupancy,
    work: &WorkSummary,
    totals: &LaunchTotals,
) -> KernelTime {
    let ilp = work.ilp.max(1.0);
    // alu_cap of 0 means "unset" (struct Default); treat as uncapped.
    let cap = if work.alu_cap > 0.0 { work.alu_cap } else { 1.0 };
    let alu_eff = alu_efficiency(device, occ, ilp).min(cap);

    let t_compute = if totals.flops > 0.0 {
        totals.flops / (device.peak_flops * alu_eff.max(1e-6))
    } else {
        0.0
    };

    let dram_bytes = totals.dram_load_bytes + totals.dram_store_bytes;
    let t_dram = dram_bytes / (device.dram_bw * dram_efficiency(totals));

    let sector_bytes =
        (totals.load_sectors + totals.store_sectors) * DeviceConfig::SECTOR_BYTES as f64;
    let t_l2 = sector_bytes / device.l2_bw;

    let inflight = (occ.concurrent_warps as f64 * device.mem_mlp).max(1.0);
    let t_latency = totals.mem_instrs * device.mem_latency / inflight;

    let t_smem = totals.smem_passes / (device.sms as f64 * device.clock_hz);

    // Warp-instruction issue: FMA instructions (2 FLOPs x 32 lanes each),
    // memory instructions, shared passes and auxiliary instructions all
    // occupy issue slots.
    let warp_instrs = totals.flops / (2.0 * device.warp_size as f64)
        + totals.mem_instrs
        + totals.smem_passes
        + totals.aux_warp_instrs;
    let issue_rate = device.sms as f64 * issue_width(device) * device.clock_hz * alu_eff.max(1e-6);
    // Per-block startup overlaps across resident blocks on an SM.
    let t_blocks = launch.grid_blocks as f64 * device.block_overhead_cycles
        / (device.sms as f64 * occ.blocks_per_sm.max(1) as f64 * device.clock_hz);
    let t_issue = warp_instrs / issue_rate + t_blocks;

    let t_launch = device.launch_overhead;
    let terms = [
        (t_compute, Bound::Compute),
        (t_dram, Bound::DramBandwidth),
        (t_l2, Bound::L2Bandwidth),
        (t_latency, Bound::MemLatency),
        (t_smem, Bound::SharedMem),
        (t_issue, Bound::Issue),
    ];
    let (t_exec, mut bound) =
        terms.into_iter().max_by(|a, b| a.0.total_cmp(&b.0)).expect("non-empty term list");
    if t_launch > t_exec {
        bound = Bound::Launch;
    }
    let time = t_launch + t_exec;

    KernelTime {
        time,
        t_launch,
        t_compute,
        t_dram,
        t_l2,
        t_latency,
        t_smem,
        t_issue,
        bound,
        dram_gbs: dram_bytes / time,
        flops_rate: totals.flops / time,
        alu_utilization: totals.flops / device.peak_flops / time,
        alu_eff,
    }
}

/// Warp-instructions issued per cycle per SM: FP32 width in warps plus 50%
/// co-issue headroom (Kepler/Maxwell schedulers dual-issue loads, stores and
/// address arithmetic alongside FMAs, so pure-FMA kernels are bounded by the
/// FP pipeline, not by issue).
fn issue_width(device: &DeviceConfig) -> f64 {
    (device.cores_per_sm as f64 / device.warp_size as f64).max(1.0) * 1.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::BankMode;
    use crate::occupancy::occupancy;

    fn full_launch(grid: u64) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: grid,
            threads_per_block: 256,
            regs_per_thread: 32,
            smem_per_block: 0,
            bank_mode: BankMode::FourByte,
        }
    }

    #[test]
    fn streaming_kernel_is_dram_bound_at_effective_bandwidth() {
        let d = DeviceConfig::titan_black();
        let launch = full_launch(100_000);
        let occ = occupancy(&d, &launch).unwrap();
        // 1 GB moved, perfectly coalesced, negligible compute.
        let gb = 1e9;
        let totals = LaunchTotals {
            flops: 1e6,
            mem_instrs: gb / 128.0,
            load_sectors: gb / 32.0,
            dram_load_bytes: gb,
            requested_load_bytes: gb,
            ..Default::default()
        };
        let t = score(&d, &launch, &occ, &WorkSummary::new(gb, 0.0, 0).with_ilp(4.0), &totals);
        assert_eq!(t.bound, Bound::DramBandwidth);
        // 128 B warp requests sustain 87% of effective bandwidth.
        let expect = 1e9 / (d.dram_bw * 0.87);
        assert!((t.t_dram - expect).abs() / expect < 1e-9, "{} vs {expect}", t.t_dram);
        assert!(t.dram_gbs < d.dram_bw);
        assert!(t.dram_gbs > 0.8 * d.dram_bw);
    }

    #[test]
    fn fma_kernel_with_full_occupancy_hits_peak() {
        let d = DeviceConfig::titan_black();
        let launch = full_launch(100_000);
        let occ = occupancy(&d, &launch).unwrap();
        let totals = LaunchTotals { flops: 1e12, ..Default::default() };
        let t = score(&d, &launch, &occ, &WorkSummary::default().with_ilp(8.0), &totals);
        assert_eq!(t.bound, Bound::Compute);
        assert!(t.alu_utilization > 0.9, "utilization {}", t.alu_utilization);
    }

    #[test]
    fn under_occupied_kernel_is_latency_bound() {
        let d = DeviceConfig::titan_black();
        // Four warps total (the paper's 128-thread softmax shape).
        let launch = LaunchConfig { grid_blocks: 1, threads_per_block: 128, ..full_launch(1) };
        let occ = occupancy(&d, &launch).unwrap();
        let totals = LaunchTotals {
            mem_instrs: 40_000.0,
            load_sectors: 40_000.0 * 32.0,
            dram_load_bytes: 40_000.0 * 32.0 * 32.0,
            ..Default::default()
        };
        let t = score(&d, &launch, &occ, &WorkSummary::default(), &totals);
        assert_eq!(t.bound, Bound::MemLatency);
        // 40k instrs x 450ns / (4 warps x 6 mlp) = 750us.
        assert!((t.t_latency - 40_000.0 * 450e-9 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_kernel_is_launch_bound() {
        let d = DeviceConfig::titan_black();
        let launch = full_launch(1);
        let occ = occupancy(&d, &launch).unwrap();
        let totals = LaunchTotals { flops: 100.0, ..Default::default() };
        let t = score(&d, &launch, &occ, &WorkSummary::default(), &totals);
        assert_eq!(t.bound, Bound::Launch);
        assert!(t.time >= d.launch_overhead);
    }

    #[test]
    fn bank_conflicts_increase_smem_time() {
        let d = DeviceConfig::titan_black();
        let launch = full_launch(10_000);
        let occ = occupancy(&d, &launch).unwrap();
        let clean = LaunchTotals { smem_passes: 1e6, ..Default::default() };
        let conflicted = LaunchTotals { smem_passes: 32e6, ..Default::default() };
        let t1 = score(&d, &launch, &occ, &WorkSummary::default(), &clean);
        let t2 = score(&d, &launch, &occ, &WorkSummary::default(), &conflicted);
        assert!((t2.t_smem / t1.t_smem - 32.0).abs() < 1e-9);
    }

    #[test]
    fn low_occupancy_degrades_alu_efficiency() {
        let d = DeviceConfig::titan_black();
        let small = LaunchConfig { grid_blocks: 15, threads_per_block: 32, ..full_launch(15) };
        let occ = occupancy(&d, &small).unwrap();
        // One warp per SM, ILP 1: far below saturation.
        let eff = alu_efficiency(&d, &occ, 1.0);
        assert!(eff < 0.1, "eff {eff}");
        // ILP scales it linearly until the cap.
        let eff4 = alu_efficiency(&d, &occ, 4.0);
        assert!((eff4 / eff - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dram_efficiency_rises_with_request_size() {
        let narrow = LaunchTotals {
            mem_instrs: 1000.0,
            requested_load_bytes: 1000.0 * 128.0,
            ..Default::default()
        };
        let wide = LaunchTotals {
            mem_instrs: 1000.0,
            requested_load_bytes: 1000.0 * 256.0,
            ..Default::default()
        };
        assert!((dram_efficiency(&narrow) - 0.87).abs() < 1e-9);
        assert!((dram_efficiency(&wide) - 1.0).abs() < 1e-9);
        // Scattered single-lane requests floor out.
        let scattered = LaunchTotals {
            mem_instrs: 1000.0,
            requested_load_bytes: 1000.0 * 4.0,
            ..Default::default()
        };
        assert!((dram_efficiency(&scattered) - 0.74).abs() < 0.01);
        assert_eq!(dram_efficiency(&LaunchTotals::default()), 1.0);
    }

    #[test]
    fn block_overhead_penalizes_many_tiny_blocks() {
        let d = DeviceConfig::titan_black();
        let launch = full_launch(1_000_000);
        let occ = occupancy(&d, &launch).unwrap();
        let totals = LaunchTotals { flops: 1e9, ..Default::default() };
        let t = score(&d, &launch, &occ, &WorkSummary::default().with_ilp(8.0), &totals);
        assert_eq!(t.bound, Bound::Issue);
        // 1e6 blocks x 700 cycles / (15 SMs x 8 resident x 0.889 GHz) = 6.6 ms.
        assert!(t.t_issue > 5e-3);
    }
}
