//! Process-wide memoization of [`simulate`](crate::simulate) results.
//!
//! The simulator is a *pure function*: a [`KernelReport`] is fully determined
//! by the device configuration, the kernel's launch-relevant parameters, and
//! the simulation options (the analytic-model property DeLTA exploits for
//! the same reason). The engine above re-simulates identical triples
//! hundreds of times — mechanism scoring, the layout DP's two-state probing,
//! and autotune sweeps all revisit the same kernels — so this module keeps a
//! sharded, read-mostly map from a canonical [`SimKey`] to the finished
//! report.
//!
//! **Key derivation.** A key is the concatenation of (a) the `Debug`
//! rendering of the `DeviceConfig` (every field participates; `f64` Debug is
//! round-trip exact), (b) the kernel's [`cache_key`](crate::KernelSpec::cache_key)
//! — for the workspace's kernels, `type name + Debug of all fields` via
//! [`derived_cache_key`] — and (c) the launch-relevant `SimOptions` fields
//! (`max_sampled_blocks`, `l2_enabled`; `use_cache` itself is excluded since
//! it cannot change the report). Kernels whose key cannot capture their
//! behaviour return `None` and bypass the cache entirely.
//!
//! **Invalidation by construction.** There is none, deliberately: keys embed
//! every input the simulator reads, so a stale entry cannot exist — a
//! changed device, kernel field, or option is a *different key*. Buffer
//! addresses inside kernel specs are assigned by per-construction
//! [`AddressSpace`](crate::AddressSpace) bump allocation starting at a fixed
//! origin, so two constructions of the same logical kernel render identical
//! Debug strings and share an entry.
//!
//! **Concurrency.** The map is sharded 16 ways by key hash; each shard is an
//! `RwLock<HashMap>` taken for read on lookup and briefly for write on
//! insert. Rayon probe workers therefore contend only when they hash to the
//! same shard *and* one is inserting. Statistics go to the global
//! [`memcnn_trace::perf`] registry (`sim.cache.hit` / `.miss` / `.bypass`,
//! `sim.kernels.cold`) so parallel workers' counts are never lost.

use crate::device::DeviceConfig;
use crate::launch::{KernelReport, SimOptions};
use memcnn_trace::perf;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

/// Canonical identity of one `simulate` invocation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SimKey {
    device: String,
    kernel: String,
    max_sampled_blocks: u64,
    l2_enabled: bool,
}

impl SimKey {
    /// Build the key for `(device, kernel_key, opts)`. `kernel_key` is the
    /// spec's [`cache_key`](crate::KernelSpec::cache_key) payload.
    pub fn new(device: &DeviceConfig, kernel_key: String, opts: &SimOptions) -> SimKey {
        SimKey {
            device: format!("{device:?}"),
            kernel: kernel_key,
            max_sampled_blocks: opts.max_sampled_blocks,
            l2_enabled: opts.l2_enabled,
        }
    }
}

/// A memoized simulation: the report plus the two launch-total counters the
/// trace collector publishes but the report does not carry. Storing them
/// makes a cache hit's `record_kernel` replay byte-identical to a cold run.
#[derive(Clone, Debug)]
pub struct CachedSim {
    /// The simulator's report, returned verbatim on every hit.
    pub report: KernelReport,
    /// Shared-memory passes from the launch totals (for trace replay).
    pub smem_passes: f64,
    /// Shared-memory bytes from the launch totals (for trace replay).
    pub smem_bytes: f64,
}

const SHARDS: usize = 16;

struct Store {
    shards: Vec<RwLock<HashMap<SimKey, Arc<CachedSim>>>>,
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| Store {
        shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
    })
}

fn shard(key: &SimKey) -> &'static RwLock<HashMap<SimKey, Arc<CachedSim>>> {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    &store().shards[(h.finish() as usize) % SHARDS]
}

struct Counters {
    hit: perf::Counter,
    miss: perf::Counter,
    bypass: perf::Counter,
    cold: perf::Counter,
}

fn counters() -> &'static Counters {
    static COUNTERS: OnceLock<Counters> = OnceLock::new();
    COUNTERS.get_or_init(|| Counters {
        hit: perf::counter("sim.cache.hit"),
        miss: perf::counter("sim.cache.miss"),
        bypass: perf::counter("sim.cache.bypass"),
        cold: perf::counter("sim.kernels.cold"),
    })
}

use std::sync::atomic::Ordering;

/// Look `key` up, counting a hit or miss.
pub fn lookup(key: &SimKey) -> Option<Arc<CachedSim>> {
    let found = shard(key).read().expect("sim cache poisoned").get(key).cloned();
    let c = counters();
    match &found {
        Some(_) => c.hit.fetch_add(1, Ordering::Relaxed),
        None => c.miss.fetch_add(1, Ordering::Relaxed),
    };
    found
}

/// Insert a finished simulation. Concurrent inserts of the same key are
/// idempotent (the simulator is deterministic), so last-write-wins is fine.
pub fn insert(key: SimKey, value: CachedSim) {
    shard(&key).write().expect("sim cache poisoned").insert(key, Arc::new(value));
}

/// Count one cache-ineligible simulation (spec opted out, or caching was
/// switched off in the options).
pub fn note_bypass() {
    counters().bypass.fetch_add(1, Ordering::Relaxed);
}

/// Count one cold (fully executed) simulation.
pub fn note_cold() {
    counters().cold.fetch_add(1, Ordering::Relaxed);
}

/// Number of memoized entries across all shards.
pub fn len() -> usize {
    store().shards.iter().map(|s| s.read().expect("sim cache poisoned").len()).sum()
}

/// Drop every entry (the perf counters are left untouched; reset those via
/// [`memcnn_trace::perf::reset`]).
pub fn clear() {
    for s in &store().shards {
        s.write().expect("sim cache poisoned").clear();
    }
}

/// Point-in-time cache statistics, read from the perf registry.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups that returned a memoized report.
    pub hits: u64,
    /// Lookups that found nothing (a cold simulation follows).
    pub misses: u64,
    /// Simulations that never consulted the cache.
    pub bypasses: u64,
    /// Simulations executed in full.
    pub cold: u64,
    /// Live entries.
    pub entries: u64,
}

impl CacheStats {
    /// Hits over lookups; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Snapshot the cache statistics.
pub fn stats() -> CacheStats {
    let c = counters();
    CacheStats {
        hits: c.hit.load(Ordering::Relaxed),
        misses: c.miss.load(Ordering::Relaxed),
        bypasses: c.bypass.load(Ordering::Relaxed),
        cold: c.cold.load(Ordering::Relaxed),
        entries: len() as u64,
    }
}

/// Derive a cache key from a spec's type and `Debug` rendering: sound
/// whenever the spec's trace is a pure function of its (Debug-visible)
/// fields. The type name disambiguates structurally identical specs of
/// different types; the Debug body captures every field, including buffer
/// base addresses.
pub fn derived_cache_key<K: std::fmt::Debug + ?Sized>(kernel: &K) -> Option<String> {
    Some(format!("{}::{:?}", std::any::type_name::<K>(), kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Bound, KernelTime};
    use crate::occupancy::{Limiter, Occupancy};

    fn dummy_report(name: &str, time: f64) -> KernelReport {
        KernelReport {
            name: name.to_string(),
            timing: KernelTime {
                time,
                t_launch: 0.0,
                t_compute: 0.0,
                t_dram: 0.0,
                t_l2: 0.0,
                t_latency: 0.0,
                t_smem: 0.0,
                t_issue: 0.0,
                bound: Bound::Launch,
                dram_gbs: 0.0,
                flops_rate: 0.0,
                alu_utilization: 0.0,
                alu_eff: 1.0,
            },
            occupancy: Occupancy {
                blocks_per_sm: 1,
                warps_per_sm: 1,
                concurrent_blocks: 1,
                concurrent_warps: 1,
                fraction: 1.0,
                limiter: Limiter::Blocks,
            },
            dram_bytes: 0.0,
            transaction_bytes: 0.0,
            requested_bytes: 0.0,
            l2_hit_rate: 0.0,
            flops: 0.0,
            sampled_blocks: 1,
            grid_blocks: 1,
        }
    }

    #[test]
    fn distinct_options_and_kernels_get_distinct_keys() {
        let d = DeviceConfig::titan_black();
        let base = SimOptions::default();
        let k1 = SimKey::new(&d, "A".to_string(), &base);
        let k2 = SimKey::new(&d, "B".to_string(), &base);
        assert_ne!(k1, k2);
        let no_l2 = SimOptions { l2_enabled: false, ..base };
        assert_ne!(k1, SimKey::new(&d, "A".to_string(), &no_l2));
        let more = SimOptions { max_sampled_blocks: 48, ..base };
        assert_ne!(k1, SimKey::new(&d, "A".to_string(), &more));
        let dx = DeviceConfig::titan_x();
        assert_ne!(k1, SimKey::new(&dx, "A".to_string(), &base));
        // use_cache is *not* part of the key: it cannot change the report.
        let cold = SimOptions { use_cache: false, ..base };
        assert_eq!(k1, SimKey::new(&d, "A".to_string(), &cold));
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let d = DeviceConfig::titan_black();
        let key = SimKey::new(&d, "simcache-test-roundtrip".to_string(), &SimOptions::default());
        assert!(lookup(&key).is_none());
        insert(
            key.clone(),
            CachedSim { report: dummy_report("rt", 1e-6), smem_passes: 3.0, smem_bytes: 96.0 },
        );
        let hit = lookup(&key).expect("inserted entry is retrievable");
        assert_eq!(hit.report.name, "rt");
        assert_eq!(hit.smem_passes, 3.0);
        assert!(len() >= 1);
    }

    #[test]
    fn derived_key_includes_type_and_fields() {
        // The field is only ever read through the derived Debug impl,
        // which dead-code analysis deliberately ignores.
        #[derive(Debug)]
        struct Probe {
            #[allow(dead_code)]
            n: u64,
        }
        let key = derived_cache_key(&Probe { n: 7 }).unwrap();
        assert!(key.contains("Probe"), "type name missing: {key}");
        assert!(key.contains("n: 7"), "field missing: {key}");
        assert_ne!(key, derived_cache_key(&Probe { n: 8 }).unwrap());
    }
}
