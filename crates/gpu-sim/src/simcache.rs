//! Process-wide memoization of [`simulate`](crate::simulate) results.
//!
//! The simulator is a *pure function*: a [`KernelReport`] is fully determined
//! by the device configuration, the kernel's launch-relevant parameters, and
//! the simulation options (the analytic-model property DeLTA exploits for
//! the same reason). The engine above re-simulates identical triples
//! hundreds of times — mechanism scoring, the layout DP's two-state probing,
//! and autotune sweeps all revisit the same kernels — so this module keeps a
//! sharded, read-mostly map from a canonical [`SimKey`] to the finished
//! report.
//!
//! **Key derivation.** A key is the concatenation of (a) the `Debug`
//! rendering of the `DeviceConfig` (every field participates; `f64` Debug is
//! round-trip exact), (b) the kernel's [`cache_key`](crate::KernelSpec::cache_key)
//! — for the workspace's kernels, `type name + Debug of all fields` via
//! [`derived_cache_key`] — and (c) the launch-relevant `SimOptions` fields
//! (`max_sampled_blocks`, `l2_enabled`; `use_cache` itself is excluded since
//! it cannot change the report). Kernels whose key cannot capture their
//! behaviour return `None` and bypass the cache entirely.
//!
//! **Invalidation by construction.** There is none, deliberately: keys embed
//! every input the simulator reads, so a stale entry cannot exist — a
//! changed device, kernel field, or option is a *different key*. Buffer
//! addresses inside kernel specs are assigned by per-construction
//! [`AddressSpace`](crate::AddressSpace) bump allocation starting at a fixed
//! origin, so two constructions of the same logical kernel render identical
//! Debug strings and share an entry.
//!
//! **Concurrency.** The map is sharded 16 ways by key hash; each shard is an
//! `RwLock<HashMap>` taken for read on lookup and briefly for write on
//! insert. Rayon probe workers therefore contend only when they hash to the
//! same shard *and* one is inserting. Statistics go to the global
//! [`memcnn_trace::perf`] registry (`sim.cache.hit` / `.miss` / `.bypass`,
//! `sim.kernels.cold`, `sim.cache.evict`) so parallel workers' counts are
//! never lost.
//!
//! **Bounded capacity.** The cache is capped (default [`DEFAULT_CAPACITY`]
//! entries, overridable via the `MEMCNN_SIMCACHE_CAP` environment variable,
//! read once at first use). Each shard holds at most `capacity / 16`
//! entries and evicts its least-recently-used entry on overflow — recency
//! is a per-entry atomic stamp from a global logical clock, updated on
//! every hit without taking the shard's write lock. Evictions only cost a
//! re-simulation, never correctness, so an approximate per-shard LRU is
//! exactly the right price point.

use crate::device::DeviceConfig;
use crate::launch::{KernelReport, SimOptions};
use memcnn_trace::perf;
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

/// Canonical identity of one `simulate` invocation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SimKey {
    device: String,
    kernel: String,
    max_sampled_blocks: u64,
    l2_enabled: bool,
}

impl SimKey {
    /// Build the key for `(device, kernel_key, opts)`. `kernel_key` is the
    /// spec's [`cache_key`](crate::KernelSpec::cache_key) payload.
    pub fn new(device: &DeviceConfig, kernel_key: String, opts: &SimOptions) -> SimKey {
        SimKey {
            device: format!("{device:?}"),
            kernel: kernel_key,
            max_sampled_blocks: opts.max_sampled_blocks,
            l2_enabled: opts.l2_enabled,
        }
    }
}

/// A memoized simulation: the report plus the two launch-total counters the
/// trace collector publishes but the report does not carry. Storing them
/// makes a cache hit's `record_kernel` replay byte-identical to a cold run.
#[derive(Clone, Debug)]
pub struct CachedSim {
    /// The simulator's report, returned verbatim on every hit.
    pub report: KernelReport,
    /// Shared-memory passes from the launch totals (for trace replay).
    pub smem_passes: f64,
    /// Shared-memory bytes from the launch totals (for trace replay).
    pub smem_bytes: f64,
}

const SHARDS: usize = 16;

/// Default total capacity (entries across all shards). Deliberately
/// generous: the full five-network evaluation sweep populates ~400
/// entries, so evictions only start under workloads two orders of
/// magnitude beyond anything the repo ships today.
pub const DEFAULT_CAPACITY: usize = 65_536;

struct Entry {
    value: Arc<CachedSim>,
    /// Logical-clock stamp of the last touch (read under the shard's
    /// *read* lock, so hits never serialize on the write lock).
    last_used: AtomicU64,
}

struct Store {
    shards: Vec<RwLock<HashMap<SimKey, Entry>>>,
    clock: AtomicU64,
    per_shard_cap: usize,
}

impl Store {
    fn with_capacity(capacity: usize) -> Store {
        Store {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            clock: AtomicU64::new(0),
            per_shard_cap: capacity.div_ceil(SHARDS).max(1),
        }
    }
}

/// Total capacity the process-wide cache was configured with:
/// `MEMCNN_SIMCACHE_CAP` if set to a positive integer, else
/// [`DEFAULT_CAPACITY`]. Read once, at the cache's first use; a malformed
/// override warns once on stderr and falls back to the default.
pub fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| capacity_from(std::env::var("MEMCNN_SIMCACHE_CAP").ok().as_deref()))
}

/// Parse a `MEMCNN_SIMCACHE_CAP` value, warning on stderr and returning
/// [`DEFAULT_CAPACITY`] when it is present but not a positive integer.
/// Pure so the fallback path is unit-testable; the `OnceLock` in
/// [`capacity`] guarantees the warning fires at most once per process.
fn capacity_from(raw: Option<&str>) -> usize {
    match raw {
        None => DEFAULT_CAPACITY,
        Some(v) => match v.parse::<usize>() {
            Ok(c) if c > 0 => c,
            _ => {
                eprintln!(
                    "memcnn: ignoring malformed MEMCNN_SIMCACHE_CAP={v:?} \
                     (want a positive integer); using {DEFAULT_CAPACITY}"
                );
                DEFAULT_CAPACITY
            }
        },
    }
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| Store::with_capacity(capacity()))
}

fn shard_index(key: &SimKey) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

struct Counters {
    hit: perf::Counter,
    miss: perf::Counter,
    bypass: perf::Counter,
    cold: perf::Counter,
    evict: perf::Counter,
}

fn counters() -> &'static Counters {
    static COUNTERS: OnceLock<Counters> = OnceLock::new();
    COUNTERS.get_or_init(|| Counters {
        hit: perf::counter("sim.cache.hit"),
        miss: perf::counter("sim.cache.miss"),
        bypass: perf::counter("sim.cache.bypass"),
        cold: perf::counter("sim.kernels.cold"),
        evict: perf::counter("sim.cache.evict"),
    })
}

use std::sync::atomic::{AtomicU64, Ordering};

fn lookup_in(store: &Store, key: &SimKey) -> Option<Arc<CachedSim>> {
    let shard = store.shards[shard_index(key)].read().expect("sim cache poisoned");
    shard.get(key).map(|e| {
        e.last_used.store(store.clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        Arc::clone(&e.value)
    })
}

/// Insert into `store`, evicting the shard's least-recently-used entry when
/// the shard is at capacity. Returns the number of evictions (0 or 1).
fn insert_in(store: &Store, key: SimKey, value: CachedSim) -> u64 {
    let mut shard = store.shards[shard_index(&key)].write().expect("sim cache poisoned");
    let mut evicted = 0;
    if shard.len() >= store.per_shard_cap && !shard.contains_key(&key) {
        // O(shard) scan: shards stay small (cap/16), and eviction is the
        // rare path — a heap or linked order would cost more on every hit.
        if let Some(victim) = shard
            .iter()
            .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
            .map(|(k, _)| k.clone())
        {
            shard.remove(&victim);
            evicted = 1;
        }
    }
    let stamp = store.clock.fetch_add(1, Ordering::Relaxed);
    shard.insert(key, Entry { value: Arc::new(value), last_used: AtomicU64::new(stamp) });
    evicted
}

/// Look `key` up, counting a hit or miss. A hit refreshes the entry's
/// LRU stamp.
pub fn lookup(key: &SimKey) -> Option<Arc<CachedSim>> {
    let found = lookup_in(store(), key);
    let c = counters();
    match &found {
        Some(_) => c.hit.fetch_add(1, Ordering::Relaxed),
        None => c.miss.fetch_add(1, Ordering::Relaxed),
    };
    found
}

/// Insert a finished simulation, evicting the least-recently-used entry of
/// the target shard when it is full. Concurrent inserts of the same key are
/// idempotent (the simulator is deterministic), so last-write-wins is fine.
pub fn insert(key: SimKey, value: CachedSim) {
    let evicted = insert_in(store(), key, value);
    if evicted > 0 {
        counters().evict.fetch_add(evicted, Ordering::Relaxed);
    }
}

/// Count one cache-ineligible simulation (spec opted out, or caching was
/// switched off in the options).
pub fn note_bypass() {
    counters().bypass.fetch_add(1, Ordering::Relaxed);
}

/// Count one cold (fully executed) simulation.
pub fn note_cold() {
    counters().cold.fetch_add(1, Ordering::Relaxed);
}

/// Number of memoized entries across all shards.
pub fn len() -> usize {
    store().shards.iter().map(|s| s.read().expect("sim cache poisoned").len()).sum()
}

/// Drop every entry (the perf counters are left untouched; reset those via
/// [`memcnn_trace::perf::reset`]).
pub fn clear() {
    for s in &store().shards {
        s.write().expect("sim cache poisoned").clear();
    }
}

/// Point-in-time cache statistics, read from the perf registry.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups that returned a memoized report.
    pub hits: u64,
    /// Lookups that found nothing (a cold simulation follows).
    pub misses: u64,
    /// Simulations that never consulted the cache.
    pub bypasses: u64,
    /// Simulations executed in full.
    pub cold: u64,
    /// Live entries.
    pub entries: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over lookups; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Snapshot the cache statistics.
pub fn stats() -> CacheStats {
    let c = counters();
    CacheStats {
        hits: c.hit.load(Ordering::Relaxed),
        misses: c.miss.load(Ordering::Relaxed),
        bypasses: c.bypass.load(Ordering::Relaxed),
        cold: c.cold.load(Ordering::Relaxed),
        entries: len() as u64,
        evictions: c.evict.load(Ordering::Relaxed),
    }
}

/// Derive a cache key from a spec's type and `Debug` rendering: sound
/// whenever the spec's trace is a pure function of its (Debug-visible)
/// fields. The type name disambiguates structurally identical specs of
/// different types; the Debug body captures every field, including buffer
/// base addresses.
pub fn derived_cache_key<K: std::fmt::Debug + ?Sized>(kernel: &K) -> Option<String> {
    Some(format!("{}::{:?}", std::any::type_name::<K>(), kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Bound, KernelTime};
    use crate::occupancy::{Limiter, Occupancy};

    fn dummy_report(name: &str, time: f64) -> KernelReport {
        KernelReport {
            name: name.to_string(),
            timing: KernelTime {
                time,
                t_launch: 0.0,
                t_compute: 0.0,
                t_dram: 0.0,
                t_l2: 0.0,
                t_latency: 0.0,
                t_smem: 0.0,
                t_issue: 0.0,
                bound: Bound::Launch,
                dram_gbs: 0.0,
                flops_rate: 0.0,
                alu_utilization: 0.0,
                alu_eff: 1.0,
            },
            occupancy: Occupancy {
                blocks_per_sm: 1,
                warps_per_sm: 1,
                concurrent_blocks: 1,
                concurrent_warps: 1,
                fraction: 1.0,
                limiter: Limiter::Blocks,
            },
            dram_bytes: 0.0,
            transaction_bytes: 0.0,
            requested_bytes: 0.0,
            l2_hit_rate: 0.0,
            flops: 0.0,
            sampled_blocks: 1,
            grid_blocks: 1,
        }
    }

    #[test]
    fn distinct_options_and_kernels_get_distinct_keys() {
        let d = DeviceConfig::titan_black();
        let base = SimOptions::default();
        let k1 = SimKey::new(&d, "A".to_string(), &base);
        let k2 = SimKey::new(&d, "B".to_string(), &base);
        assert_ne!(k1, k2);
        let no_l2 = SimOptions { l2_enabled: false, ..base };
        assert_ne!(k1, SimKey::new(&d, "A".to_string(), &no_l2));
        let more = SimOptions { max_sampled_blocks: 48, ..base };
        assert_ne!(k1, SimKey::new(&d, "A".to_string(), &more));
        let dx = DeviceConfig::titan_x();
        assert_ne!(k1, SimKey::new(&dx, "A".to_string(), &base));
        // use_cache is *not* part of the key: it cannot change the report.
        let cold = SimOptions { use_cache: false, ..base };
        assert_eq!(k1, SimKey::new(&d, "A".to_string(), &cold));
        // Neither is the fault plan: faults are rolled before the cache is
        // consulted, so the cache only ever holds clean results and a run
        // with injection shares them.
        let faulty =
            SimOptions { faults: Some(crate::faults::FaultPlan::new(42, 0.5, 0.1, 0.1)), ..base };
        assert_eq!(k1, SimKey::new(&d, "A".to_string(), &faulty));
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let d = DeviceConfig::titan_black();
        let key = SimKey::new(&d, "simcache-test-roundtrip".to_string(), &SimOptions::default());
        assert!(lookup(&key).is_none());
        insert(
            key.clone(),
            CachedSim { report: dummy_report("rt", 1e-6), smem_passes: 3.0, smem_bytes: 96.0 },
        );
        let hit = lookup(&key).expect("inserted entry is retrievable");
        assert_eq!(hit.report.name, "rt");
        assert_eq!(hit.smem_passes, 3.0);
        assert!(len() >= 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_at_capacity() {
        // A private store with one entry per shard: inserting two keys that
        // hash to the same shard must evict the less recently used one.
        let store = Store::with_capacity(SHARDS); // per-shard cap = 1
        let d = DeviceConfig::titan_black();
        let opts = SimOptions::default();
        let key = |i: usize| SimKey::new(&d, format!("lru-{i}"), &opts);
        let sim = |i: usize| CachedSim {
            report: dummy_report(&format!("lru-{i}"), 1e-6),
            smem_passes: 0.0,
            smem_bytes: 0.0,
        };
        // Find two distinct keys in the same shard.
        let k0 = key(0);
        let k1 = (1..64).map(key).find(|k| shard_index(k) == shard_index(&k0)).unwrap();
        assert_eq!(insert_in(&store, k0.clone(), sim(0)), 0);
        // Touch k0, then overflow the shard: k0 was just used, so it stays
        // only if k1 is the newcomer... the newcomer always stays; the
        // victim is the stale resident.
        assert!(lookup_in(&store, &k0).is_some());
        assert_eq!(insert_in(&store, k1.clone(), sim(1)), 1);
        assert!(lookup_in(&store, &k0).is_none(), "resident k0 was the LRU victim");
        assert!(lookup_in(&store, &k1).is_some(), "newcomer survives");
        // Re-inserting an existing key is an update, not an eviction.
        assert_eq!(insert_in(&store, k1.clone(), sim(1)), 0);
    }

    #[test]
    fn lru_victim_is_least_recently_used_not_oldest_inserted() {
        let store = Store::with_capacity(2 * SHARDS); // per-shard cap = 2
        let d = DeviceConfig::titan_black();
        let opts = SimOptions::default();
        let key = |i: usize| SimKey::new(&d, format!("lru2-{i}"), &opts);
        let k0 = key(0);
        let mut same_shard = (1..256).map(key).filter(|k| shard_index(k) == shard_index(&k0));
        let k1 = same_shard.next().unwrap();
        let k2 = same_shard.next().unwrap();
        let sim =
            || CachedSim { report: dummy_report("x", 1e-6), smem_passes: 0.0, smem_bytes: 0.0 };
        insert_in(&store, k0.clone(), sim());
        insert_in(&store, k1.clone(), sim());
        // Refresh the *older* entry: the victim must now be k1.
        assert!(lookup_in(&store, &k0).is_some());
        assert_eq!(insert_in(&store, k2.clone(), sim()), 1);
        assert!(lookup_in(&store, &k0).is_some(), "refreshed entry survives");
        assert!(lookup_in(&store, &k1).is_none(), "stale entry evicted");
        assert!(lookup_in(&store, &k2).is_some());
    }

    #[test]
    fn capacity_defaults_are_sane() {
        // The env override is read once per process; this test only checks
        // the default path plus the derived per-shard arithmetic.
        const { assert!(DEFAULT_CAPACITY >= 1024) };
        let s = Store::with_capacity(1); // degenerate cap still works
        assert_eq!(s.per_shard_cap, 1);
        let s = Store::with_capacity(DEFAULT_CAPACITY);
        assert_eq!(s.per_shard_cap, DEFAULT_CAPACITY / SHARDS);
    }

    #[test]
    fn malformed_capacity_override_warns_and_falls_back() {
        assert_eq!(capacity_from(None), DEFAULT_CAPACITY);
        assert_eq!(capacity_from(Some("4096")), 4096);
        assert_eq!(capacity_from(Some("lots")), DEFAULT_CAPACITY);
        assert_eq!(capacity_from(Some("0")), DEFAULT_CAPACITY);
        assert_eq!(capacity_from(Some("-1")), DEFAULT_CAPACITY);
        assert_eq!(capacity_from(Some("")), DEFAULT_CAPACITY);
    }

    #[test]
    fn derived_key_includes_type_and_fields() {
        // The field is only ever read through the derived Debug impl,
        // which dead-code analysis deliberately ignores.
        #[derive(Debug)]
        struct Probe {
            #[allow(dead_code)]
            n: u64,
        }
        let key = derived_cache_key(&Probe { n: 7 }).unwrap();
        assert!(key.contains("Probe"), "type name missing: {key}");
        assert!(key.contains("n: 7"), "field missing: {key}");
        assert_ne!(key, derived_cache_key(&Probe { n: 8 }).unwrap());
    }
}
