//! Virtual device-address allocation for kernel specs.
//!
//! Kernel specs describe memory behaviour with *virtual* global addresses.
//! Distinct buffers must not alias in the L2 model, so specs allocate their
//! tensors from an [`AddressSpace`], which hands out disjoint, aligned
//! ranges and tracks the total footprint (used for out-of-memory checks,
//! e.g. the FFT convolution failures on CV5/CV6 in Fig 5).

/// A buffer in simulated device memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceBuffer {
    /// Base byte address.
    pub base: u64,
    /// Size in bytes.
    pub bytes: u64,
}

impl DeviceBuffer {
    /// Byte address of element `index` for `elem_bytes`-sized elements.
    #[inline]
    pub fn addr(&self, index: u64, elem_bytes: u64) -> u64 {
        debug_assert!(
            (index + 1) * elem_bytes <= self.bytes,
            "element {index} x {elem_bytes}B out of buffer of {}B",
            self.bytes
        );
        self.base + index * elem_bytes
    }

    /// Byte address of `f32` element `index`.
    #[inline]
    pub fn f32(&self, index: u64) -> u64 {
        self.addr(index, 4)
    }
}

/// Bump allocator for simulated device memory.
#[derive(Debug, Default)]
pub struct AddressSpace {
    next: u64,
}

/// Alignment of allocations; larger than any cache line so buffers never
/// share a sector.
const ALIGN: u64 = 256;

impl AddressSpace {
    /// An empty address space starting at a non-zero base (so address 0 is
    /// never valid and accidental zero addresses are distinguishable).
    pub fn new() -> AddressSpace {
        AddressSpace { next: ALIGN }
    }

    /// Allocate `bytes` of device memory.
    pub fn alloc(&mut self, bytes: u64) -> DeviceBuffer {
        let base = self.next;
        let padded = bytes.div_ceil(ALIGN) * ALIGN;
        self.next += padded.max(ALIGN);
        DeviceBuffer { base, bytes }
    }

    /// Allocate room for `elems` `f32` values.
    pub fn alloc_f32(&mut self, elems: u64) -> DeviceBuffer {
        self.alloc(elems * 4)
    }

    /// Total bytes allocated so far (footprint for OOM checks).
    pub fn footprint(&self) -> u64 {
        self.next - ALIGN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut a = AddressSpace::new();
        let x = a.alloc(100);
        let y = a.alloc(1);
        let z = a.alloc_f32(64);
        assert_eq!(x.base % ALIGN, 0);
        assert_eq!(y.base % ALIGN, 0);
        assert_eq!(z.base % ALIGN, 0);
        assert!(x.base + x.bytes <= y.base);
        assert!(y.base + y.bytes <= z.base);
        assert_eq!(z.bytes, 256);
    }

    #[test]
    fn footprint_accumulates() {
        let mut a = AddressSpace::new();
        assert_eq!(a.footprint(), 0);
        a.alloc(1000);
        assert_eq!(a.footprint(), 1024);
        a.alloc(24);
        assert_eq!(a.footprint(), 1024 + 256);
    }

    #[test]
    fn element_addressing() {
        let mut a = AddressSpace::new();
        let b = a.alloc_f32(10);
        assert_eq!(b.f32(0), b.base);
        assert_eq!(b.f32(3), b.base + 12);
    }

    #[test]
    #[should_panic(expected = "out of buffer")]
    #[cfg(debug_assertions)]
    fn out_of_bounds_element_panics_in_debug() {
        let mut a = AddressSpace::new();
        let b = a.alloc_f32(10);
        let _ = b.f32(10);
    }
}
