//! Kernel specifications: how kernels describe themselves to the simulator.
//!
//! A [`KernelSpec`] plays the role of compiled CUDA kernel + launch call: it
//! declares a launch configuration, summary bounds, and — the heart of the
//! substitution — can *replay the memory behaviour of any thread block* into
//! a [`BlockTrace`]. The simulator samples blocks, coalesces their warp
//! accesses, runs the sector stream through the L2 model, and scores the
//! launch (see [`crate::launch::simulate`]).

use crate::banks;
use crate::coalesce;
use crate::device::BankMode;

/// Launch configuration of a kernel (grid and per-block resources).
#[derive(Clone, Copy, Debug)]
pub struct LaunchConfig {
    /// Total thread blocks in the grid (flattened).
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Registers per thread (occupancy input).
    pub regs_per_thread: u32,
    /// Static shared memory per block, bytes.
    pub smem_per_block: u32,
    /// Shared-memory bank mode requested by the kernel.
    pub bank_mode: BankMode,
}

/// Analytic bounds a kernel knows about itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkSummary {
    /// Compulsory DRAM read traffic: the unique bytes the kernel must load
    /// at least once. Used as a floor under the sampled-L2 estimate.
    pub min_dram_load_bytes: f64,
    /// Compulsory DRAM write traffic.
    pub min_dram_store_bytes: f64,
    /// Device-memory footprint of all buffers (OOM checks).
    pub footprint_bytes: u64,
    /// Instruction-level parallelism hint: independent in-flight operations
    /// per thread (e.g. `imgsPerThread x filtersPerThread` register tiles in
    /// cuda-convnet's direct convolution). Feeds the ALU-efficiency and
    /// latency-hiding terms.
    pub ilp: f64,
    /// Sustained-fraction-of-peak ceiling for the FP pipeline (1.0 = no
    /// cap). Encodes measured per-kernel-family code-generation quality
    /// that the occupancy model cannot see — e.g. cuDNN v4's
    /// matrix-multiply convolution sustained ~28-30% of Kepler's FMA peak
    /// (the paper's Fig 4 plateau), far below what a perfectly scheduled
    /// inner loop would reach.
    pub alu_cap: f64,
}

impl WorkSummary {
    /// A summary with the given floors, ILP 1.0 and no ALU cap.
    pub fn new(min_load: f64, min_store: f64, footprint: u64) -> WorkSummary {
        WorkSummary {
            min_dram_load_bytes: min_load,
            min_dram_store_bytes: min_store,
            footprint_bytes: footprint,
            ilp: 1.0,
            alu_cap: 1.0,
        }
    }

    /// Builder-style ILP override.
    pub fn with_ilp(mut self, ilp: f64) -> WorkSummary {
        self.ilp = ilp;
        self
    }

    /// Builder-style ALU sustained-fraction cap.
    pub fn with_alu_cap(mut self, cap: f64) -> WorkSummary {
        self.alu_cap = cap;
        self
    }
}

/// A GPU kernel, described behaviourally.
pub trait KernelSpec: Sync {
    /// Kernel name for reports.
    fn name(&self) -> String;
    /// Launch configuration.
    fn launch(&self) -> LaunchConfig;
    /// Analytic bounds.
    fn work(&self) -> WorkSummary;
    /// Replay the memory/compute behaviour of `block` (0-based flat id)
    /// into `trace`. Must be deterministic.
    fn trace_block(&self, block: u64, trace: &mut BlockTrace);
    /// Canonical identity of this kernel for simulation memoization: two
    /// specs with equal keys must trace identically on every block.
    ///
    /// `None` (the default) opts the kernel out of the cache — the safe
    /// choice for specs whose trace depends on state their key cannot see.
    /// Specs that are pure functions of their fields (every spec in
    /// `memcnn-kernels` is) should return
    /// [`derived_cache_key`](crate::simcache::derived_cache_key)`(self)`,
    /// which needs only `#[derive(Debug)]`.
    fn cache_key(&self) -> Option<String> {
        None
    }
}

/// Per-block trace accumulator handed to [`KernelSpec::trace_block`].
///
/// Global accesses are coalesced *as they are recorded* into 32 B sectors;
/// the resulting sector stream is kept (in order) for the L2 model, while
/// shared-memory accesses are folded immediately into pass counts under the
/// launch's bank mode.
#[derive(Debug)]
pub struct BlockTrace {
    bank_mode: BankMode,
    banks: u32,
    /// Ordered (sector, is_store) stream for the cache model.
    pub(crate) sectors: Vec<(u64, bool)>,
    /// Scratch for the coalescer.
    scratch: Vec<u64>,
    /// Warp-level global memory instructions issued.
    pub(crate) mem_instrs: u64,
    /// Global sectors from loads.
    pub(crate) load_sectors: u64,
    /// Global sectors from stores.
    pub(crate) store_sectors: u64,
    /// Bytes the lanes actually requested (loads).
    pub(crate) requested_load_bytes: u64,
    /// Bytes the lanes actually requested (stores).
    pub(crate) requested_store_bytes: u64,
    /// Shared-memory passes (bank-conflict adjusted cycles).
    pub(crate) smem_passes: u64,
    /// Shared-memory bytes requested.
    pub(crate) smem_bytes: u64,
    /// Floating-point operations executed by the block.
    pub(crate) flops: u64,
    /// Non-memory, non-FP warp instructions (index math, control).
    pub(crate) aux_warp_instrs: u64,
    /// `__syncthreads()` count.
    pub(crate) syncs: u64,
}

impl BlockTrace {
    /// New empty trace under a bank mode.
    pub fn new(bank_mode: BankMode, banks: u32) -> BlockTrace {
        BlockTrace {
            bank_mode,
            banks,
            sectors: Vec::new(),
            scratch: Vec::new(),
            mem_instrs: 0,
            load_sectors: 0,
            store_sectors: 0,
            requested_load_bytes: 0,
            requested_store_bytes: 0,
            smem_passes: 0,
            smem_bytes: 0,
            flops: 0,
            aux_warp_instrs: 0,
            syncs: 0,
        }
    }

    fn global(&mut self, addrs: &[u64], bytes_per_lane: u64, store: bool) {
        if addrs.is_empty() {
            return;
        }
        debug_assert!(addrs.len() <= 32, "a warp access has at most 32 lanes");
        self.mem_instrs += 1;
        coalesce::coalesce(addrs, bytes_per_lane, &mut self.scratch);
        let n = self.scratch.len() as u64;
        if store {
            self.store_sectors += n;
            self.requested_store_bytes += addrs.len() as u64 * bytes_per_lane;
        } else {
            self.load_sectors += n;
            self.requested_load_bytes += addrs.len() as u64 * bytes_per_lane;
        }
        for &s in &self.scratch {
            self.sectors.push((s, store));
        }
    }

    /// One warp global load of `bytes_per_lane` bytes per lane.
    pub fn global_load(&mut self, addrs: &[u64], bytes_per_lane: u64) {
        self.global(addrs, bytes_per_lane, false);
    }

    /// One warp global store of `bytes_per_lane` bytes per lane.
    pub fn global_store(&mut self, addrs: &[u64], bytes_per_lane: u64) {
        self.global(addrs, bytes_per_lane, true);
    }

    /// One warp shared-memory access (load or store — the bank model does
    /// not distinguish).
    pub fn shared(&mut self, byte_addrs: &[u64], bytes_per_lane: u64) {
        if byte_addrs.is_empty() {
            return;
        }
        self.smem_passes +=
            banks::passes(byte_addrs, bytes_per_lane, self.bank_mode, self.banks) as u64;
        self.smem_bytes += banks::bytes(byte_addrs, bytes_per_lane);
    }

    /// A warp shared-memory access pattern repeated `times` times (e.g. the
    /// identical register-tile reads of every GEMM k-step). Pass counts are
    /// computed once and multiplied, keeping traces compact.
    pub fn shared_repeat(&mut self, byte_addrs: &[u64], bytes_per_lane: u64, times: u64) {
        if byte_addrs.is_empty() || times == 0 {
            return;
        }
        let passes = banks::passes(byte_addrs, bytes_per_lane, self.bank_mode, self.banks) as u64;
        self.smem_passes += passes * times;
        self.smem_bytes += banks::bytes(byte_addrs, bytes_per_lane) * times;
    }

    /// Record `n` floating-point operations (FMA = 2).
    pub fn flops(&mut self, n: u64) {
        self.flops += n;
    }

    /// Record `n` auxiliary warp instructions (addressing, loop control).
    pub fn aux(&mut self, n: u64) {
        self.aux_warp_instrs += n;
    }

    /// Record a block-wide barrier.
    pub fn sync(&mut self) {
        self.syncs += 1;
    }

    /// Total global sectors recorded.
    pub fn total_sectors(&self) -> u64 {
        self.load_sectors + self.store_sectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accumulates_coalesced_sectors() {
        let mut t = BlockTrace::new(BankMode::FourByte, 32);
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        t.global_load(&addrs, 4);
        assert_eq!(t.load_sectors, 4);
        assert_eq!(t.mem_instrs, 1);
        assert_eq!(t.requested_load_bytes, 128);
        assert_eq!(t.sectors.len(), 4);
        assert!(t.sectors.iter().all(|&(_, st)| !st));
    }

    #[test]
    fn strided_store_overfetches() {
        let mut t = BlockTrace::new(BankMode::FourByte, 32);
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 256).collect();
        t.global_store(&addrs, 4);
        assert_eq!(t.store_sectors, 32);
        assert_eq!(t.requested_store_bytes, 128);
    }

    #[test]
    fn shared_access_counts_passes() {
        let mut t = BlockTrace::new(BankMode::FourByte, 32);
        let conflict_free: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        let fully_conflicted: Vec<u64> = (0..32u64).map(|i| i * 128).collect();
        t.shared(&conflict_free, 4);
        t.shared(&fully_conflicted, 4);
        assert_eq!(t.smem_passes, 1 + 32);
        assert_eq!(t.smem_bytes, 256);
    }

    #[test]
    fn float2_shared_in_8byte_mode_single_pass() {
        let mut t = BlockTrace::new(BankMode::EightByte, 32);
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 8).collect();
        t.shared(&addrs, 8);
        assert_eq!(t.smem_passes, 1);
    }

    #[test]
    fn counters_start_zero_and_accumulate() {
        let mut t = BlockTrace::new(BankMode::FourByte, 32);
        assert_eq!(t.total_sectors(), 0);
        t.flops(100);
        t.aux(7);
        t.sync();
        assert_eq!(t.flops, 100);
        assert_eq!(t.aux_warp_instrs, 7);
        assert_eq!(t.syncs, 1);
    }

    #[test]
    #[should_panic(expected = "at most 32 lanes")]
    #[cfg(debug_assertions)]
    fn oversized_warp_panics_in_debug() {
        let mut t = BlockTrace::new(BankMode::FourByte, 32);
        let addrs: Vec<u64> = (0..33u64).collect();
        t.global_load(&addrs, 4);
    }
}
