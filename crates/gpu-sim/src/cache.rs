//! Set-associative LRU cache model (used for the L2).
//!
//! The model works at sector (32 B) granularity — Kepler's L2 is sectored,
//! and modelling whole 128 B lines would overstate the cost of the strided
//! accesses this reproduction cares about. LRU state is an age counter per
//! way; sets are found by the low sector bits.

/// A set-associative, LRU, sector-granular cache.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: usize,
    assoc: usize,
    /// tags[set * assoc + way], u64::MAX = invalid.
    tags: Vec<u64>,
    /// Monotonic per-access counter for LRU ages.
    ages: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache of `size_bytes` with `assoc` ways and `sector_bytes`
    /// granularity. Sizes that do not divide evenly are rounded down to a
    /// whole number of sets (minimum one set).
    pub fn new(size_bytes: u64, assoc: u32, sector_bytes: u64) -> Cache {
        let sectors = (size_bytes / sector_bytes).max(1) as usize;
        let assoc = (assoc as usize).clamp(1, sectors);
        let sets = (sectors / assoc).max(1);
        Cache {
            sets,
            assoc,
            tags: vec![u64::MAX; sets * assoc],
            ages: vec![0; sets * assoc],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Access one sector; returns `true` on hit. Misses fill the LRU way.
    pub fn access(&mut self, sector: u64) -> bool {
        self.tick += 1;
        let set = (sector as usize) % self.sets;
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];
        if let Some(way) = ways.iter().position(|&t| t == sector) {
            self.ages[base + way] = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Evict LRU (or an invalid way).
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.assoc {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.ages[base + w] < oldest {
                oldest = self.ages[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = sector;
        self.ages[base + victim] = self.tick;
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Reset statistics but keep contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Capacity in sectors.
    pub fn capacity_sectors(&self) -> usize {
        self.sets * self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_misses_then_hits() {
        let mut c = Cache::new(1024, 4, 32);
        assert!(!c.access(7));
        assert!(c.access(7));
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut c = Cache::new(32 * 64, 8, 32); // 64 sectors
        for pass in 0..3 {
            for s in 0..64u64 {
                let hit = c.access(s);
                assert_eq!(hit, pass > 0, "pass {pass} sector {s}");
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_lru() {
        let mut c = Cache::new(32 * 16, 16, 32); // 16 sectors, fully assoc
                                                 // Cyclic sweep of 17 sectors over fully-associative LRU: always miss.
        for _ in 0..4 {
            for s in 0..17u64 {
                c.access(s);
            }
        }
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn set_mapping_isolates_conflicting_sectors() {
        // 2 sets, 1 way: sectors 0 and 2 share set 0 and evict each other;
        // sector 1 in set 1 is untouched.
        let mut c = Cache::new(2 * 32, 1, 32);
        assert!(!c.access(0));
        assert!(!c.access(1));
        assert!(!c.access(2)); // evicts 0
        assert!(c.access(1)); // still resident
        assert!(!c.access(0)); // was evicted
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = Cache::new(1024, 4, 32);
        c.access(3);
        c.reset_stats();
        assert_eq!(c.accesses(), 0);
        assert!(c.access(3), "contents survive a stats reset");
    }

    #[test]
    fn degenerate_sizes_still_work() {
        let mut c = Cache::new(0, 16, 32);
        assert_eq!(c.capacity_sectors(), 1);
        assert!(!c.access(1));
        assert!(c.access(1));
    }
}
