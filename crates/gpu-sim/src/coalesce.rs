//! Warp-level global-memory coalescing.
//!
//! On Kepler/Maxwell a warp's global access is decomposed into 32-byte
//! *sectors*: the memory system fetches every distinct sector any lane
//! touches. A warp of 32 lanes reading consecutive `f32`s touches 4 sectors
//! (128 B moved for 128 B requested — perfectly coalesced); lanes striding
//! through memory touch up to 32 sectors (1024 B moved for 128 B requested —
//! the over-fetch that ruins NCHW pooling in §IV.B).

use crate::device::DeviceConfig;

/// Sector index of a byte address.
#[inline]
pub fn sector_of(addr: u64) -> u64 {
    addr / DeviceConfig::SECTOR_BYTES
}

/// Coalesce one warp access: the distinct sectors touched by lanes reading
/// `bytes_per_lane` bytes starting at each address.
///
/// Returns sector indices in first-touch order, deduplicated. The number of
/// sectors is the transaction count for this warp instruction.
pub fn coalesce(addrs: &[u64], bytes_per_lane: u64, out: &mut Vec<u64>) {
    out.clear();
    for &a in addrs {
        let first = sector_of(a);
        let last = sector_of(a + bytes_per_lane - 1);
        for s in first..=last {
            // Warp accesses touch a handful of sectors; linear dedup against
            // the small output buffer beats a hash set here.
            if !out.contains(&s) {
                out.push(s);
            }
        }
    }
}

/// Transaction count for a warp access without materializing sectors.
pub fn transaction_count(addrs: &[u64], bytes_per_lane: u64) -> usize {
    let mut sectors = Vec::with_capacity(addrs.len());
    coalesce(addrs, bytes_per_lane, &mut sectors);
    sectors.len()
}

/// Coalescing efficiency of a warp access: requested bytes / moved bytes.
/// 1.0 means perfectly coalesced; 0.125 is the worst case for 4-byte lanes.
pub fn efficiency(addrs: &[u64], bytes_per_lane: u64) -> f64 {
    if addrs.is_empty() {
        return 1.0;
    }
    let requested = addrs.len() as u64 * bytes_per_lane;
    let moved = transaction_count(addrs, bytes_per_lane) as u64 * DeviceConfig::SECTOR_BYTES;
    requested as f64 / moved as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_addrs(base: u64, stride: u64, lanes: usize) -> Vec<u64> {
        (0..lanes as u64).map(|i| base + i * stride).collect()
    }

    #[test]
    fn unit_stride_f32_warp_is_four_sectors() {
        let addrs = seq_addrs(0, 4, 32);
        assert_eq!(transaction_count(&addrs, 4), 4);
        assert_eq!(efficiency(&addrs, 4), 1.0);
    }

    #[test]
    fn unaligned_unit_stride_costs_one_extra_sector() {
        let addrs = seq_addrs(16, 4, 32);
        assert_eq!(transaction_count(&addrs, 4), 5);
    }

    #[test]
    fn large_stride_is_fully_uncoalesced() {
        // Stride of 128 B: every lane in its own sector — the §IV.B pooling
        // pathology.
        let addrs = seq_addrs(0, 128, 32);
        assert_eq!(transaction_count(&addrs, 4), 32);
        assert_eq!(efficiency(&addrs, 4), 4.0 / 32.0);
    }

    #[test]
    fn stride_two_floats_doubles_sectors() {
        let addrs = seq_addrs(0, 8, 32);
        assert_eq!(transaction_count(&addrs, 4), 8);
        assert_eq!(efficiency(&addrs, 4), 0.5);
    }

    #[test]
    fn broadcast_is_one_sector() {
        let addrs = vec![64; 32];
        assert_eq!(transaction_count(&addrs, 4), 1);
    }

    #[test]
    fn float2_lanes_span_eight_sectors() {
        let addrs = seq_addrs(0, 8, 32);
        assert_eq!(transaction_count(&addrs, 8), 8);
        assert_eq!(efficiency(&addrs, 8), 1.0);
    }

    #[test]
    fn lane_access_straddling_sector_boundary_counts_both() {
        let addrs = vec![30];
        assert_eq!(transaction_count(&addrs, 4), 2);
    }

    #[test]
    fn partial_warp_counts_only_active_lanes() {
        let addrs = seq_addrs(0, 4, 8);
        assert_eq!(transaction_count(&addrs, 4), 1);
    }

    #[test]
    fn sectors_reported_in_first_touch_order() {
        let mut out = Vec::new();
        coalesce(&[100, 0, 100, 64], 4, &mut out);
        assert_eq!(out, vec![3, 0, 2]);
    }

    #[test]
    fn empty_access_is_free() {
        assert_eq!(transaction_count(&[], 4), 0);
        assert_eq!(efficiency(&[], 4), 1.0);
    }
}
