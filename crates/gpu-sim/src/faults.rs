//! Deterministic, seeded fault injection.
//!
//! Production GPUs fail in ways the clean simulator never does: kernel
//! launches error out, allocations fail under memory pressure, and thermal
//! or power throttling stretches execution times. This module models those
//! failure classes the same way the rest of the simulator models timing —
//! as a *pure function of its inputs* — so chaos experiments replay
//! bit-identically.
//!
//! A [`FaultPlan`] is a seed plus per-launch probabilities for the three
//! fault classes. Whether a given launch faults is decided by
//! [`FaultPlan::roll`], a stateless hash of `(seed, kernel key, launch
//! index)`: no RNG object, no interior mutability, no dependence on thread
//! interleaving. Two processes — or two thread counts — rolling the same
//! triple always see the same fault. The *launch index* is supplied by the
//! caller (the serving event loop counts launch attempts on its simulated
//! device), which is what makes a retry a fresh roll rather than a
//! guaranteed repeat of the last failure.
//!
//! The plan rides on [`SimOptions`](crate::SimOptions) (`faults` field) and
//! is consulted by [`simulate_injected`](crate::simulate_injected) at the
//! kernel level, and by the engine's fault-aware plan execution at the
//! batch level. It is deliberately excluded from the simulation cache key:
//! faults are rolled *before* the cache is consulted, so the cache only
//! ever stores clean results.

use serde::Serialize;

/// One injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The kernel launch errored (a transient: retrying may succeed).
    LaunchFailed,
    /// The device rejected the allocation (retrying the same size will
    /// keep failing; callers must shrink the work instead).
    DeviceOom,
    /// The device is throttled: execution completes, `factor` times
    /// slower.
    Throttled {
        /// Slowdown multiplier (> 1).
        factor: f64,
    },
}

impl Fault {
    /// The fault's class, without payload (usable in `Eq` contexts).
    pub fn kind(&self) -> FaultKind {
        match self {
            Fault::LaunchFailed => FaultKind::LaunchFailed,
            Fault::DeviceOom => FaultKind::DeviceOom,
            Fault::Throttled { .. } => FaultKind::Throttled,
        }
    }
}

/// Payload-free fault class (carried by error types that need `Eq`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// See [`Fault::LaunchFailed`].
    LaunchFailed,
    /// See [`Fault::DeviceOom`].
    DeviceOom,
    /// See [`Fault::Throttled`].
    Throttled,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::LaunchFailed => write!(f, "launch-failed"),
            FaultKind::DeviceOom => write!(f, "device-oom"),
            FaultKind::Throttled => write!(f, "throttled"),
        }
    }
}

/// A seeded fault-injection plan: per-kernel-launch probabilities for each
/// fault class. `Copy` and stateless — the same plan value can be shared
/// freely across threads and the rolls stay bit-identical.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed of the fault stream. Different seeds give independent streams
    /// over the same workload.
    pub seed: u64,
    /// Probability a launch fails transiently, in `[0, 1]`.
    pub launch_failed: f64,
    /// Probability a launch hits an allocation failure, in `[0, 1]`.
    pub device_oom: f64,
    /// Probability a launch is throttled, in `[0, 1]`.
    pub throttled: f64,
    /// Slowdown multiplier applied when a throttle fires (> 1).
    pub throttle_factor: f64,
}

impl FaultPlan {
    /// A plan that never fires (all probabilities zero).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            launch_failed: 0.0,
            device_oom: 0.0,
            throttled: 0.0,
            throttle_factor: 2.0,
        }
    }

    /// A plan with the given transient / OOM / throttle rates.
    pub fn new(seed: u64, launch_failed: f64, device_oom: f64, throttled: f64) -> FaultPlan {
        FaultPlan { seed, launch_failed, device_oom, throttled, throttle_factor: 2.0 }
    }

    /// Override the throttle slowdown factor.
    pub fn with_throttle_factor(mut self, factor: f64) -> FaultPlan {
        self.throttle_factor = factor;
        self
    }

    /// Whether the plan can never fire. A no-op plan is required to be
    /// indistinguishable from no plan at all (the chaos tests check this
    /// byte for byte), so callers short-circuit on it before rolling.
    pub fn is_noop(&self) -> bool {
        self.launch_failed <= 0.0 && self.device_oom <= 0.0 && self.throttled <= 0.0
    }

    /// Decide the fault (if any) for one launch of the kernel identified
    /// by `key` at launch attempt `launch_index`.
    ///
    /// Pure and deterministic: the decision is a hash of `(seed, key,
    /// launch_index)` mapped to a uniform draw in `[0, 1)`, compared
    /// against the cumulative probabilities in the fixed order
    /// launch-failed, device-OOM, throttled. No state is consumed, so the
    /// same triple always rolls the same fault on any thread, process, or
    /// replay.
    pub fn roll(&self, key: &str, launch_index: u64) -> Option<Fault> {
        if self.is_noop() {
            return None;
        }
        let u = unit_draw(self.seed, key, launch_index);
        let mut edge = self.launch_failed;
        if u < edge {
            return Some(Fault::LaunchFailed);
        }
        edge += self.device_oom;
        if u < edge {
            return Some(Fault::DeviceOom);
        }
        edge += self.throttled;
        if u < edge {
            return Some(Fault::Throttled { factor: self.throttle_factor.max(1.0) });
        }
        None
    }
}

/// Uniform draw in `[0, 1)` from `(seed, key, index)`: FNV-1a over the
/// inputs, finalized with the SplitMix64 mixer so nearby indices decorrelate.
fn unit_draw(seed: u64, key: &str, index: u64) -> f64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET;
    for chunk in [seed, index] {
        for b in chunk.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    // SplitMix64 finalizer.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Top 53 bits -> [0, 1).
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roll_is_a_pure_function_of_its_inputs() {
        let plan = FaultPlan::new(42, 0.05, 0.01, 0.02);
        for i in 0..256u64 {
            assert_eq!(plan.roll("k", i), plan.roll("k", i));
        }
        // Distinct seeds give distinct streams (somewhere in 256 rolls).
        let other = FaultPlan::new(43, 0.05, 0.01, 0.02);
        assert!((0..256).any(|i| plan.roll("k", i) != other.roll("k", i)));
        // Distinct keys give distinct streams too.
        assert!((0..256).any(|i| plan.roll("k", i) != plan.roll("j", i)));
    }

    #[test]
    fn noop_plan_never_fires_and_certain_plan_always_fires() {
        let quiet = FaultPlan::quiet(7);
        assert!(quiet.is_noop());
        assert!((0..1000).all(|i| quiet.roll("any", i).is_none()));

        let certain = FaultPlan::new(7, 1.0, 0.0, 0.0);
        assert!((0..1000).all(|i| certain.roll("any", i) == Some(Fault::LaunchFailed)));
        let oom = FaultPlan::new(7, 0.0, 1.0, 0.0);
        assert!((0..1000).all(|i| oom.roll("any", i) == Some(Fault::DeviceOom)));
        let throttle = FaultPlan::new(7, 0.0, 0.0, 1.0).with_throttle_factor(3.0);
        assert!(
            (0..1000).all(|i| throttle.roll("any", i) == Some(Fault::Throttled { factor: 3.0 }))
        );
    }

    #[test]
    fn observed_rates_track_configured_rates() {
        let plan = FaultPlan::new(1, 0.05, 0.01, 0.02);
        let n = 20_000u64;
        let mut counts = [0u64; 3];
        for i in 0..n {
            match plan.roll("conv/CV1/mm", i) {
                Some(Fault::LaunchFailed) => counts[0] += 1,
                Some(Fault::DeviceOom) => counts[1] += 1,
                Some(Fault::Throttled { .. }) => counts[2] += 1,
                None => {}
            }
        }
        let rate = |c: u64| c as f64 / n as f64;
        assert!((rate(counts[0]) - 0.05).abs() < 0.01, "transient rate {}", rate(counts[0]));
        assert!((rate(counts[1]) - 0.01).abs() < 0.005, "oom rate {}", rate(counts[1]));
        assert!((rate(counts[2]) - 0.02).abs() < 0.007, "throttle rate {}", rate(counts[2]));
    }

    #[test]
    fn throttle_factor_is_clamped_to_at_least_one() {
        let plan = FaultPlan::new(7, 0.0, 0.0, 1.0).with_throttle_factor(0.5);
        assert_eq!(plan.roll("k", 0), Some(Fault::Throttled { factor: 1.0 }));
    }
}
