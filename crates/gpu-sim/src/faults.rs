//! Deterministic, seeded fault injection.
//!
//! Production GPUs fail in ways the clean simulator never does: kernel
//! launches error out, allocations fail under memory pressure, and thermal
//! or power throttling stretches execution times. This module models those
//! failure classes the same way the rest of the simulator models timing —
//! as a *pure function of its inputs* — so chaos experiments replay
//! bit-identically.
//!
//! A [`FaultPlan`] is a seed plus per-launch probabilities for the three
//! fault classes. Whether a given launch faults is decided by
//! [`FaultPlan::roll`], a stateless hash of `(seed, kernel key, launch
//! index)`: no RNG object, no interior mutability, no dependence on thread
//! interleaving. Two processes — or two thread counts — rolling the same
//! triple always see the same fault. The *launch index* is supplied by the
//! caller (the serving event loop counts launch attempts on its simulated
//! device), which is what makes a retry a fresh roll rather than a
//! guaranteed repeat of the last failure.
//!
//! The plan rides on [`SimOptions`](crate::SimOptions) (`faults` field) and
//! is consulted by [`simulate_injected`](crate::simulate_injected) at the
//! kernel level, and by the engine's fault-aware plan execution at the
//! batch level. It is deliberately excluded from the simulation cache key:
//! faults are rolled *before* the cache is consulted, so the cache only
//! ever stores clean results.

use serde::Serialize;

/// One injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// The kernel launch errored (a transient: retrying may succeed).
    LaunchFailed,
    /// The device rejected the allocation (retrying the same size will
    /// keep failing; callers must shrink the work instead).
    DeviceOom,
    /// The device is throttled: execution completes, `factor` times
    /// slower.
    Throttled {
        /// Slowdown multiplier (> 1).
        factor: f64,
    },
}

impl Fault {
    /// The fault's class, without payload (usable in `Eq` contexts).
    pub fn kind(&self) -> FaultKind {
        match self {
            Fault::LaunchFailed => FaultKind::LaunchFailed,
            Fault::DeviceOom => FaultKind::DeviceOom,
            Fault::Throttled { .. } => FaultKind::Throttled,
        }
    }
}

/// Payload-free fault class (carried by error types that need `Eq`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// See [`Fault::LaunchFailed`].
    LaunchFailed,
    /// See [`Fault::DeviceOom`].
    DeviceOom,
    /// See [`Fault::Throttled`].
    Throttled,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::LaunchFailed => write!(f, "launch-failed"),
            FaultKind::DeviceOom => write!(f, "device-oom"),
            FaultKind::Throttled => write!(f, "throttled"),
        }
    }
}

/// A seeded fault-injection plan: per-kernel-launch probabilities for each
/// fault class. `Copy` and stateless — the same plan value can be shared
/// freely across threads and the rolls stay bit-identical.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed of the fault stream. Different seeds give independent streams
    /// over the same workload.
    pub seed: u64,
    /// Probability a launch fails transiently, in `[0, 1]`.
    pub launch_failed: f64,
    /// Probability a launch hits an allocation failure, in `[0, 1]`.
    pub device_oom: f64,
    /// Probability a launch is throttled, in `[0, 1]`.
    pub throttled: f64,
    /// Slowdown multiplier applied when a throttle fires (> 1).
    pub throttle_factor: f64,
}

impl FaultPlan {
    /// A plan that never fires (all probabilities zero).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            launch_failed: 0.0,
            device_oom: 0.0,
            throttled: 0.0,
            throttle_factor: 2.0,
        }
    }

    /// A plan with the given transient / OOM / throttle rates.
    pub fn new(seed: u64, launch_failed: f64, device_oom: f64, throttled: f64) -> FaultPlan {
        FaultPlan { seed, launch_failed, device_oom, throttled, throttle_factor: 2.0 }
    }

    /// Override the throttle slowdown factor.
    pub fn with_throttle_factor(mut self, factor: f64) -> FaultPlan {
        self.throttle_factor = factor;
        self
    }

    /// Whether the plan can never fire. A no-op plan is required to be
    /// indistinguishable from no plan at all (the chaos tests check this
    /// byte for byte), so callers short-circuit on it before rolling.
    pub fn is_noop(&self) -> bool {
        self.launch_failed <= 0.0 && self.device_oom <= 0.0 && self.throttled <= 0.0
    }

    /// Decide the fault (if any) for one launch of the kernel identified
    /// by `key` at launch attempt `launch_index`.
    ///
    /// Pure and deterministic: the decision is a hash of `(seed, key,
    /// launch_index)` mapped to a uniform draw in `[0, 1)`, compared
    /// against the cumulative probabilities in the fixed order
    /// launch-failed, device-OOM, throttled. No state is consumed, so the
    /// same triple always rolls the same fault on any thread, process, or
    /// replay.
    pub fn roll(&self, key: &str, launch_index: u64) -> Option<Fault> {
        if self.is_noop() {
            return None;
        }
        let u = unit_draw(self.seed, key, launch_index);
        let mut edge = self.launch_failed;
        if u < edge {
            return Some(Fault::LaunchFailed);
        }
        edge += self.device_oom;
        if u < edge {
            return Some(Fault::DeviceOom);
        }
        edge += self.throttled;
        if u < edge {
            return Some(Fault::Throttled { factor: self.throttle_factor.max(1.0) });
        }
        None
    }
}

/// Class of a whole-device lifecycle event.
///
/// Unlike [`FaultKind`] (per-kernel-launch faults inside a healthy
/// device), these take the *entire device* through the
/// `Healthy → Draining → Down → Warming → Healthy` state machine that
/// the fleet's health layer runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum DeviceFaultKind {
    /// The device dies instantly: queued work fails over to surviving
    /// devices and the device is `Down` until repaired.
    Crash,
    /// The device stops accepting new work but is held until its
    /// in-flight batches drain, then goes `Down`. Queued (not yet
    /// committed) work still fails over at the hang point.
    Hang,
    /// A planned drain: the device serves out everything already queued
    /// to it, takes no new placements, then goes `Down` for repair.
    Drain,
}

impl std::fmt::Display for DeviceFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceFaultKind::Crash => write!(f, "crash"),
            DeviceFaultKind::Hang => write!(f, "hang"),
            DeviceFaultKind::Drain => write!(f, "drain"),
        }
    }
}

/// One device-lifecycle event: `device` suffers `kind` at simulated
/// stream time `t` (seconds).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct DeviceFault {
    /// Simulated time (seconds on the stream clock) the event fires.
    pub t: f64,
    /// Target device index in the fleet.
    pub device: u32,
    /// What happens to it.
    pub kind: DeviceFaultKind,
}

/// A seeded whole-device fault plan: per-device-second rates for crash /
/// hang / drain events, plus explicitly scheduled events.
///
/// Like [`FaultPlan`], the plan is a *pure function of its inputs*. Rate-
/// derived events are quantized onto fixed epochs of the simulated clock:
/// for device `d` and epoch `i`, one stateless draw
/// `unit_draw(seed, "dev{d}", i)` decides whether (and which) event fires
/// in that epoch — at most one per device per epoch — and a second draw
/// places it uniformly inside the epoch. Nothing depends on wall-clock
/// time, thread count, or evaluation order, so the same plan over the
/// same workload horizon expands to the same event list on every replay.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DeviceFaultPlan {
    /// Seed of the device-fault stream (independent of [`FaultPlan::seed`]).
    pub seed: u64,
    /// Expected crashes per device-second (quantized per epoch).
    pub crash_rate: f64,
    /// Expected hangs per device-second (quantized per epoch).
    pub hang_rate: f64,
    /// Expected planned drains per device-second (quantized per epoch).
    pub drain_rate: f64,
    /// Epoch length in simulated seconds for rate quantization (> 0).
    pub epoch: f64,
    /// Simulated seconds a device stays `Down` before warming.
    pub repair: f64,
    /// Simulated seconds of `Warming` (cold `PlanCache` spin-up) charged
    /// on the device clock before it serves again.
    pub warmup: f64,
    /// Explicitly scheduled events, merged with the rate-derived stream.
    pub scheduled: Vec<DeviceFault>,
}

impl DeviceFaultPlan {
    /// A plan that never fires (all rates zero, nothing scheduled).
    pub fn quiet(seed: u64) -> DeviceFaultPlan {
        DeviceFaultPlan {
            seed,
            crash_rate: 0.0,
            hang_rate: 0.0,
            drain_rate: 0.0,
            epoch: 0.05,
            repair: 0.05,
            warmup: 0.02,
            scheduled: Vec::new(),
        }
    }

    /// A plan with the given crash / hang / drain rates (events per
    /// device-second) and default epoch, repair, and warmup times.
    pub fn new(seed: u64, crash_rate: f64, hang_rate: f64, drain_rate: f64) -> DeviceFaultPlan {
        DeviceFaultPlan { crash_rate, hang_rate, drain_rate, ..DeviceFaultPlan::quiet(seed) }
    }

    /// Override the rate-quantization epoch (simulated seconds, > 0).
    pub fn with_epoch(mut self, epoch: f64) -> DeviceFaultPlan {
        self.epoch = epoch;
        self
    }

    /// Override the `Down` duration (simulated seconds).
    pub fn with_repair(mut self, repair: f64) -> DeviceFaultPlan {
        self.repair = repair;
        self
    }

    /// Override the `Warming` duration (simulated seconds).
    pub fn with_warmup(mut self, warmup: f64) -> DeviceFaultPlan {
        self.warmup = warmup;
        self
    }

    /// Schedule a crash of `device` at simulated time `t`.
    pub fn crash_at(self, t: f64, device: u32) -> DeviceFaultPlan {
        self.at(t, device, DeviceFaultKind::Crash)
    }

    /// Schedule a hang of `device` at simulated time `t`.
    pub fn hang_at(self, t: f64, device: u32) -> DeviceFaultPlan {
        self.at(t, device, DeviceFaultKind::Hang)
    }

    /// Schedule a planned drain of `device` at simulated time `t`.
    pub fn drain_at(self, t: f64, device: u32) -> DeviceFaultPlan {
        self.at(t, device, DeviceFaultKind::Drain)
    }

    fn at(mut self, t: f64, device: u32, kind: DeviceFaultKind) -> DeviceFaultPlan {
        self.scheduled.push(DeviceFault { t, device, kind });
        self
    }

    /// Whether the plan can never fire. Like [`FaultPlan::is_noop`], a
    /// no-op plan must be indistinguishable from no plan at all (the
    /// failover tests check this field for field), so callers
    /// short-circuit on it before expanding events.
    pub fn is_noop(&self) -> bool {
        self.crash_rate <= 0.0
            && self.hang_rate <= 0.0
            && self.drain_rate <= 0.0
            && self.scheduled.is_empty()
    }

    /// Expand the plan into the concrete, time-ordered event list for a
    /// `k`-device fleet over `[0, horizon]` simulated seconds.
    ///
    /// Pure and deterministic: rate-derived events come from stateless
    /// draws keyed on `(seed, device, epoch index)`; scheduled events are
    /// filtered to valid devices and the horizon, then everything is
    /// sorted by `(t, device)`. The horizon is the caller's last arrival
    /// time, so every emitted event has a routing point to fire at.
    pub fn events_for(&self, k: usize, horizon: f64) -> Vec<DeviceFault> {
        let mut out: Vec<DeviceFault> = self
            .scheduled
            .iter()
            .copied()
            .filter(|e| (e.device as usize) < k && e.t >= 0.0 && e.t <= horizon)
            .collect();
        let any_rate = self.crash_rate > 0.0 || self.hang_rate > 0.0 || self.drain_rate > 0.0;
        if any_rate && self.epoch > 0.0 && horizon >= 0.0 {
            let epochs = (horizon / self.epoch).floor() as u64 + 1;
            let p_crash = (self.crash_rate.max(0.0) * self.epoch).min(1.0);
            let p_hang = (self.hang_rate.max(0.0) * self.epoch).min(1.0);
            let p_drain = (self.drain_rate.max(0.0) * self.epoch).min(1.0);
            for d in 0..k as u32 {
                let key = format!("dev{d}");
                let tkey = format!("dev{d}/t");
                for i in 0..epochs {
                    let u = unit_draw(self.seed, &key, i);
                    let kind = if u < p_crash {
                        DeviceFaultKind::Crash
                    } else if u < p_crash + p_hang {
                        DeviceFaultKind::Hang
                    } else if u < p_crash + p_hang + p_drain {
                        DeviceFaultKind::Drain
                    } else {
                        continue;
                    };
                    let t = (i as f64 + unit_draw(self.seed, &tkey, i)) * self.epoch;
                    if t <= horizon {
                        out.push(DeviceFault { t, device: d, kind });
                    }
                }
            }
        }
        out.sort_by(|a, b| a.t.total_cmp(&b.t).then(a.device.cmp(&b.device)));
        out
    }
}

/// Uniform draw in `[0, 1)` from `(seed, key, index)`: FNV-1a over the
/// inputs, finalized with the SplitMix64 mixer so nearby indices decorrelate.
fn unit_draw(seed: u64, key: &str, index: u64) -> f64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET;
    for chunk in [seed, index] {
        for b in chunk.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    // SplitMix64 finalizer.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Top 53 bits -> [0, 1).
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roll_is_a_pure_function_of_its_inputs() {
        let plan = FaultPlan::new(42, 0.05, 0.01, 0.02);
        for i in 0..256u64 {
            assert_eq!(plan.roll("k", i), plan.roll("k", i));
        }
        // Distinct seeds give distinct streams (somewhere in 256 rolls).
        let other = FaultPlan::new(43, 0.05, 0.01, 0.02);
        assert!((0..256).any(|i| plan.roll("k", i) != other.roll("k", i)));
        // Distinct keys give distinct streams too.
        assert!((0..256).any(|i| plan.roll("k", i) != plan.roll("j", i)));
    }

    #[test]
    fn noop_plan_never_fires_and_certain_plan_always_fires() {
        let quiet = FaultPlan::quiet(7);
        assert!(quiet.is_noop());
        assert!((0..1000).all(|i| quiet.roll("any", i).is_none()));

        let certain = FaultPlan::new(7, 1.0, 0.0, 0.0);
        assert!((0..1000).all(|i| certain.roll("any", i) == Some(Fault::LaunchFailed)));
        let oom = FaultPlan::new(7, 0.0, 1.0, 0.0);
        assert!((0..1000).all(|i| oom.roll("any", i) == Some(Fault::DeviceOom)));
        let throttle = FaultPlan::new(7, 0.0, 0.0, 1.0).with_throttle_factor(3.0);
        assert!(
            (0..1000).all(|i| throttle.roll("any", i) == Some(Fault::Throttled { factor: 3.0 }))
        );
    }

    #[test]
    fn observed_rates_track_configured_rates() {
        let plan = FaultPlan::new(1, 0.05, 0.01, 0.02);
        let n = 20_000u64;
        let mut counts = [0u64; 3];
        for i in 0..n {
            match plan.roll("conv/CV1/mm", i) {
                Some(Fault::LaunchFailed) => counts[0] += 1,
                Some(Fault::DeviceOom) => counts[1] += 1,
                Some(Fault::Throttled { .. }) => counts[2] += 1,
                None => {}
            }
        }
        let rate = |c: u64| c as f64 / n as f64;
        assert!((rate(counts[0]) - 0.05).abs() < 0.01, "transient rate {}", rate(counts[0]));
        assert!((rate(counts[1]) - 0.01).abs() < 0.005, "oom rate {}", rate(counts[1]));
        assert!((rate(counts[2]) - 0.02).abs() < 0.007, "throttle rate {}", rate(counts[2]));
    }

    #[test]
    fn throttle_factor_is_clamped_to_at_least_one() {
        let plan = FaultPlan::new(7, 0.0, 0.0, 1.0).with_throttle_factor(0.5);
        assert_eq!(plan.roll("k", 0), Some(Fault::Throttled { factor: 1.0 }));
    }

    #[test]
    fn device_plan_expansion_is_pure_sorted_and_bounded() {
        let plan = DeviceFaultPlan::new(9, 2.0, 1.0, 1.0).with_epoch(0.01);
        let a = plan.events_for(4, 0.5);
        let b = plan.events_for(4, 0.5);
        assert_eq!(a, b, "expansion must be a pure function of (plan, k, horizon)");
        assert!(!a.is_empty(), "rates this hot must fire within half a second");
        for w in a.windows(2) {
            assert!(
                w[0].t < w[1].t || (w[0].t == w[1].t && w[0].device <= w[1].device),
                "events must be (t, device)-ordered"
            );
        }
        for e in &a {
            assert!(e.device < 4 && e.t >= 0.0 && e.t <= 0.5);
        }
        // A longer horizon only appends: the shared prefix is identical.
        let longer = plan.events_for(4, 1.0);
        assert!(longer.len() >= a.len());
        // Different seeds give different event streams.
        let other = DeviceFaultPlan::new(10, 2.0, 1.0, 1.0).with_epoch(0.01).events_for(4, 0.5);
        assert_ne!(a, other);
    }

    #[test]
    fn device_plan_noop_and_scheduled_filtering() {
        let quiet = DeviceFaultPlan::quiet(3);
        assert!(quiet.is_noop());
        assert!(quiet.events_for(8, 10.0).is_empty());
        assert!(DeviceFaultPlan::new(3, 0.0, 0.0, 0.0).is_noop());

        // Scheduled events make the plan non-noop; out-of-range devices
        // and events past the horizon are dropped at expansion.
        let plan = DeviceFaultPlan::quiet(3)
            .crash_at(0.1, 1)
            .hang_at(0.2, 9)
            .drain_at(5.0, 0)
            .drain_at(0.05, 0);
        assert!(!plan.is_noop());
        let ev = plan.events_for(2, 1.0);
        assert_eq!(
            ev,
            vec![
                DeviceFault { t: 0.05, device: 0, kind: DeviceFaultKind::Drain },
                DeviceFault { t: 0.1, device: 1, kind: DeviceFaultKind::Crash },
            ]
        );
    }
}
