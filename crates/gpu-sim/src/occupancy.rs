//! Occupancy: how many blocks/warps an SM can keep resident.
//!
//! Occupancy drives two terms of the cost model: the ability to hide
//! arithmetic latency (ALU efficiency) and the memory-level parallelism
//! available for the Little's-law latency bound. The paper's §V.B softmax
//! analysis ("the number of threads for the kernel is only 128") is an
//! occupancy starvation diagnosis; §IV.A's hill-climbing stop criterion
//! ("further expansion leads to high register pressure thus limiting the
//! TLP") is an occupancy cliff.

use crate::device::DeviceConfig;
use crate::kernel::LaunchConfig;
use crate::SimError;
use serde::Serialize;

/// Which resource bounds residency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Limiter {
    /// Thread count per SM.
    Threads,
    /// Register file capacity.
    Registers,
    /// Shared-memory capacity.
    SharedMem,
    /// Architectural max blocks per SM.
    Blocks,
    /// The grid has fewer blocks than the device could hold.
    GridSize,
}

/// Residency of a kernel launch on a device.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Occupancy {
    /// Blocks resident per SM (resource-limited, ignoring grid size).
    pub blocks_per_sm: u32,
    /// Warps resident per SM when the grid is large enough.
    pub warps_per_sm: u32,
    /// Blocks actually running concurrently device-wide
    /// (`min(grid, blocks_per_sm x SMs)`).
    pub concurrent_blocks: u64,
    /// Warps actually running concurrently device-wide.
    pub concurrent_warps: u64,
    /// Fraction of the SM's max threads that are resident, in `[0, 1]`.
    pub fraction: f64,
    /// The binding resource.
    pub limiter: Limiter,
}

/// Compute occupancy, or fail if a single block exceeds device resources.
pub fn occupancy(device: &DeviceConfig, launch: &LaunchConfig) -> Result<Occupancy, SimError> {
    if launch.threads_per_block == 0 || launch.grid_blocks == 0 {
        return Err(SimError::Unlaunchable("empty grid or block".to_string()));
    }
    if launch.threads_per_block > device.max_threads_per_block {
        return Err(SimError::Unlaunchable(format!(
            "{} threads/block exceeds device max {}",
            launch.threads_per_block, device.max_threads_per_block
        )));
    }
    if launch.smem_per_block > device.smem_per_block_max {
        return Err(SimError::Unlaunchable(format!(
            "{} B shared memory/block exceeds device max {}",
            launch.smem_per_block, device.smem_per_block_max
        )));
    }
    if launch.regs_per_thread > device.max_regs_per_thread {
        return Err(SimError::Unlaunchable(format!(
            "{} registers/thread exceeds device max {}",
            launch.regs_per_thread, device.max_regs_per_thread
        )));
    }

    let by_threads = device.max_threads_per_sm / launch.threads_per_block;
    let regs_per_block = launch.regs_per_thread.max(1) * launch.threads_per_block;
    let by_regs = device.regs_per_sm / regs_per_block;
    let by_smem = device.smem_per_sm.checked_div(launch.smem_per_block).unwrap_or(u32::MAX);
    let by_blocks = device.max_blocks_per_sm;

    let (blocks_per_sm, limiter) = [
        (by_threads, Limiter::Threads),
        (by_regs, Limiter::Registers),
        (by_smem, Limiter::SharedMem),
        (by_blocks, Limiter::Blocks),
    ]
    .into_iter()
    .min_by_key(|&(b, _)| b)
    .expect("non-empty candidate list");

    if blocks_per_sm == 0 {
        return Err(SimError::Unlaunchable(format!(
            "block needs more {:?} than one SM has",
            limiter
        )));
    }

    let warps_per_block = launch.threads_per_block.div_ceil(device.warp_size);
    let warps_per_sm = blocks_per_sm * warps_per_block;
    let device_capacity = blocks_per_sm as u64 * device.sms as u64;
    let concurrent_blocks = launch.grid_blocks.min(device_capacity);
    let limiter = if launch.grid_blocks < device_capacity { Limiter::GridSize } else { limiter };
    Ok(Occupancy {
        blocks_per_sm,
        warps_per_sm,
        concurrent_blocks,
        concurrent_warps: concurrent_blocks * warps_per_block as u64,
        fraction: (warps_per_sm * device.warp_size) as f64 / device.max_threads_per_sm as f64
            * (concurrent_blocks as f64 / device_capacity as f64),
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::BankMode;

    fn launch(grid: u64, threads: u32, regs: u32, smem: u32) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: grid,
            threads_per_block: threads,
            regs_per_thread: regs,
            smem_per_block: smem,
            bank_mode: BankMode::FourByte,
        }
    }

    #[test]
    fn thread_limited_kernel() {
        let d = DeviceConfig::titan_black();
        let o = occupancy(&d, &launch(10_000, 1024, 16, 0)).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.warps_per_sm, 64);
        assert_eq!(o.limiter, Limiter::Threads);
        assert!((o.fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn register_limited_kernel() {
        let d = DeviceConfig::titan_black();
        // 255 regs x 256 threads = 65280 regs/block: one block per SM.
        let o = occupancy(&d, &launch(10_000, 256, 255, 0)).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::Registers);
    }

    #[test]
    fn smem_limited_kernel() {
        let d = DeviceConfig::titan_black();
        let o = occupancy(&d, &launch(10_000, 64, 16, 24 * 1024)).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::SharedMem);
    }

    #[test]
    fn tiny_grid_is_grid_limited() {
        let d = DeviceConfig::titan_black();
        // The paper's baseline softmax: one block of 128 threads.
        let o = occupancy(&d, &launch(1, 128, 24, 0)).unwrap();
        assert_eq!(o.concurrent_blocks, 1);
        assert_eq!(o.concurrent_warps, 4);
        assert_eq!(o.limiter, Limiter::GridSize);
        assert!(o.fraction < 0.01);
    }

    #[test]
    fn oversized_block_fails() {
        let d = DeviceConfig::titan_black();
        assert!(occupancy(&d, &launch(1, 2048, 16, 0)).is_err());
        assert!(occupancy(&d, &launch(1, 128, 16, 64 * 1024)).is_err());
        assert!(occupancy(&d, &launch(0, 128, 16, 0)).is_err());
    }

    #[test]
    fn block_cap_limits_small_blocks() {
        let d = DeviceConfig::titan_black();
        let o = occupancy(&d, &launch(10_000, 32, 8, 0)).unwrap();
        assert_eq!(o.blocks_per_sm, 16);
        assert_eq!(o.limiter, Limiter::Blocks);
    }
}
