//! # memcnn-gpusim — a warp-level GPU memory-hierarchy simulator
//!
//! This crate is the substitution substrate for the SC'16 paper's hardware
//! (see `DESIGN.md` §2): instead of measuring CUDA kernels on a GTX Titan
//! Black / Titan X, kernels describe their launch configuration and replay
//! per-block warp access patterns ([`KernelSpec`]), and the simulator scores
//! them with the memory-system mechanisms the paper's arguments rest on:
//!
//! - **Coalescing** ([`coalesce`]): warp accesses decompose into 32 B
//!   sectors; strided layouts over-fetch (§IV.B pooling on NCHW).
//! - **L2 cache** ([`cache`]): sampled block streams interleave through a
//!   set-associative LRU model; reuse reduces DRAM traffic (§V.A pooling
//!   windows).
//! - **Shared-memory banks** ([`banks`]): conflict passes under 4 B/8 B bank
//!   modes (§IV.C transformation kernel, `float2` vectorization).
//! - **Occupancy** ([`occupancy()`]): resource-limited residency; feeds
//!   latency hiding (§V.B softmax's 128-thread starvation).
//! - **Cost model** ([`model`]): `launch + max(compute, DRAM, L2, latency,
//!   shared, issue)` with documented terms.
//!
//! Entry point: [`simulate`] (one kernel) / [`simulate_sequence`]
//! (dependent kernels that round-trip through global memory).
//!
//! # Example: score a custom kernel
//!
//! A strided-copy kernel, showing how layouts/strides surface as time:
//!
//! ```
//! use memcnn_gpusim::*;
//!
//! struct StridedCopy { stride: u64 }
//!
//! impl KernelSpec for StridedCopy {
//!     fn name(&self) -> String { format!("copy stride {}", self.stride) }
//!     fn launch(&self) -> LaunchConfig {
//!         LaunchConfig { grid_blocks: 1024, threads_per_block: 256,
//!                        regs_per_thread: 16, smem_per_block: 0,
//!                        bank_mode: BankMode::FourByte }
//!     }
//!     fn work(&self) -> WorkSummary { WorkSummary::default().with_ilp(4.0) }
//!     fn trace_block(&self, block: u64, t: &mut BlockTrace) {
//!         for i in 0..32u64 {
//!             let base = (block * 32 + i) * 128 * self.stride;
//!             let addrs: Vec<u64> =
//!                 (0..32).map(|lane| base + lane * 4 * self.stride).collect();
//!             t.global_load(&addrs, 4);
//!             let out: Vec<u64> =
//!                 (0..32).map(|lane| (1 << 33) + (block * 32 + i) * 128 + lane * 4).collect();
//!             t.global_store(&out, 4);
//!         }
//!     }
//! }
//!
//! let device = DeviceConfig::titan_black();
//! let unit = simulate(&device, &StridedCopy { stride: 1 }, &SimOptions::default()).unwrap();
//! let strided = simulate(&device, &StridedCopy { stride: 16 }, &SimOptions::default()).unwrap();
//! assert!(strided.time() > 2.0 * unit.time()); // un-coalesced reads over-fetch
//! ```

#![warn(missing_docs)]

pub mod address;
pub mod banks;
pub mod cache;
pub mod coalesce;
pub mod device;
pub mod faults;
pub mod kernel;
pub mod launch;
pub mod model;
pub mod occupancy;
pub mod simcache;

pub use address::{AddressSpace, DeviceBuffer};
pub use device::{BankMode, DeviceConfig};
pub use faults::{DeviceFault, DeviceFaultKind, DeviceFaultPlan, Fault, FaultKind, FaultPlan};
pub use kernel::{BlockTrace, KernelSpec, LaunchConfig, WorkSummary};
pub use launch::{
    simulate, simulate_injected, simulate_sequence, KernelReport, SequenceReport, SimOptions,
};
pub use model::{Bound, KernelTime};
pub use occupancy::{occupancy, Limiter, Occupancy};
pub use simcache::derived_cache_key;

use std::fmt;

/// Errors from the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The kernel cannot launch on this device (block exceeds resources).
    Unlaunchable(String),
    /// Declared footprint exceeds device memory — the paper's FFT
    /// "execution failures" on CV5/CV6 (Fig 5) take this path.
    OutOfMemory {
        /// Bytes the kernel needs.
        needed: u64,
        /// Bytes the device has.
        available: u64,
    },
    /// A fault injected by an active [`faults::FaultPlan`] (never produced
    /// by a clean simulation). Carries the payload-free [`FaultKind`] so
    /// this enum keeps `Eq`.
    Injected {
        /// Which fault class fired.
        fault: FaultKind,
        /// Key of the kernel whose launch faulted.
        kernel: String,
        /// The launch index the fault was rolled at (replaying the same
        /// plan at this index reproduces the fault).
        launch: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unlaunchable(msg) => write!(f, "kernel cannot launch: {msg}"),
            SimError::OutOfMemory { needed, available } => write!(
                f,
                "out of device memory: kernel needs {:.1} MB, device has {:.1} MB",
                *needed as f64 / 1e6,
                *available as f64 / 1e6
            ),
            SimError::Injected { fault, kernel, launch } => {
                write!(f, "injected fault {fault} on kernel {kernel:?} at launch {launch}")
            }
        }
    }
}

impl std::error::Error for SimError {}
