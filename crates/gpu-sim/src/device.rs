//! GPU device descriptions.
//!
//! The paper evaluates on a GTX Titan Black (Kepler GK110B) and a GTX
//! Titan X (Maxwell GM200); [`DeviceConfig::titan_black`] and
//! [`DeviceConfig::titan_x`] encode those machines' published parameters
//! (SM count, clock, effective bandwidth the paper quotes, shared-memory
//! bank modes, occupancy limits). Arbitrary hypothetical devices can be
//! built for sensitivity studies.

use serde::{Deserialize, Serialize};

/// Shared-memory bank width mode (Kepler supports switching to 8-byte
/// banks, `cudaSharedMemBankSizeEightByte`; Maxwell and later are fixed at
/// 4 bytes). The 8-byte mode is what makes the paper's `float2`-vectorized
/// transformation kernel profitable (§IV.C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankMode {
    /// 4-byte banks (all architectures).
    FourByte,
    /// 8-byte banks (Kepler only).
    EightByte,
}

impl BankMode {
    /// Bank width in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            BankMode::FourByte => 4,
            BankMode::EightByte => 8,
        }
    }
}

/// A GPU device model: everything the cost model needs to score a kernel.
///
/// All throughputs are in base units (bytes/s, FLOP/s, Hz); all sizes in
/// bytes. Fields are public so experiments can build hypothetical devices.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// FP32 lanes (CUDA cores) per SM.
    pub cores_per_sm: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Peak FP32 throughput in FLOP/s (2 x cores x clock for FMA machines).
    pub peak_flops: f64,
    /// Effective (achievable) DRAM bandwidth in bytes/s. The paper quotes
    /// 235 GB/s "effective" for the Titan Black, which is what its
    /// bandwidth percentages (e.g. 97.6% for the CV6 transform) are
    /// relative to.
    pub dram_bw: f64,
    /// L2-to-SM aggregate bandwidth in bytes/s.
    pub l2_bw: f64,
    /// Total device memory in bytes (OOM detection for FFT convolution).
    pub device_mem: u64,
    /// L2 cache size in bytes.
    pub l2_size: u64,
    /// L2 associativity (ways) used by the cache model.
    pub l2_assoc: u32,
    /// Global-memory latency in seconds (L2 miss, to first data).
    pub mem_latency: f64,
    /// Maximum memory requests a warp keeps in flight (memory-level
    /// parallelism cap used by the Little's-law latency bound).
    pub mem_mlp: f64,
    /// Warp width (32 on every NVIDIA architecture).
    pub warp_size: u32,
    /// Max resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Max resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Registers per SM (32-bit).
    pub regs_per_sm: u32,
    /// Max registers addressable per thread.
    pub max_regs_per_thread: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u32,
    /// Max shared memory per block in bytes.
    pub smem_per_block_max: u32,
    /// Max threads per block.
    pub max_threads_per_block: u32,
    /// Number of shared-memory banks.
    pub smem_banks: u32,
    /// Whether the 8-byte shared-memory bank mode exists (Kepler).
    pub supports_8byte_banks: bool,
    /// Kernel launch overhead in seconds (driver + hardware dispatch). This
    /// is what the softmax kernel fusion (§V.B) saves four of.
    pub launch_overhead: f64,
    /// Warps-in-flight (x ILP) needed per SM to saturate the FP32 pipeline.
    pub warps_to_saturate_alu: f64,
    /// Per-block fixed startup cost in cycles (scheduling, prologue). This
    /// is what makes tiny-work blocks inefficient and creates the GFLOPS
    /// saturation curves of Fig 4.
    pub block_overhead_cycles: f64,
}

impl DeviceConfig {
    /// NVIDIA GTX Titan Black (Kepler GK110B) — the paper's primary
    /// platform: 5121 GFLOPS, 235 GB/s effective bandwidth, 6 GB (§III.B).
    pub fn titan_black() -> DeviceConfig {
        DeviceConfig {
            name: "GTX Titan Black (Kepler GK110B)".to_string(),
            sms: 15,
            cores_per_sm: 192,
            clock_hz: 0.889e9,
            peak_flops: 5121e9,
            dram_bw: 235.0e9,
            l2_bw: 470.0e9,
            device_mem: 6144 * 1024 * 1024,
            l2_size: 1536 * 1024,
            l2_assoc: 16,
            mem_latency: 450e-9,
            mem_mlp: 6.0,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            smem_per_sm: 48 * 1024,
            smem_per_block_max: 48 * 1024,
            max_threads_per_block: 1024,
            smem_banks: 32,
            supports_8byte_banks: true,
            launch_overhead: 5e-6,
            warps_to_saturate_alu: 30.0,
            block_overhead_cycles: 700.0,
        }
    }

    /// NVIDIA GTX Titan X (Maxwell GM200) — the paper's secondary platform
    /// (§VI.C): 24 SMs, 3072 cores, 12 GB, higher bandwidth, better latency
    /// tolerance, no 8-byte bank mode.
    pub fn titan_x() -> DeviceConfig {
        DeviceConfig {
            name: "GTX Titan X (Maxwell GM200)".to_string(),
            sms: 24,
            cores_per_sm: 128,
            clock_hz: 1.0e9,
            peak_flops: 6144e9,
            dram_bw: 260.0e9,
            l2_bw: 520.0e9,
            device_mem: 12288 * 1024 * 1024,
            l2_size: 3 * 1024 * 1024,
            l2_assoc: 16,
            mem_latency: 368e-9,
            mem_mlp: 8.0,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            smem_per_sm: 96 * 1024,
            smem_per_block_max: 48 * 1024,
            max_threads_per_block: 1024,
            smem_banks: 32,
            supports_8byte_banks: false,
            launch_overhead: 5e-6,
            warps_to_saturate_alu: 16.0,
            block_overhead_cycles: 400.0,
        }
    }

    /// The device models the repo ships, for fleet construction and
    /// lookup by short name.
    pub fn catalog() -> Vec<DeviceConfig> {
        vec![DeviceConfig::titan_black(), DeviceConfig::titan_x()]
    }

    /// Look a shipped device up by short name (`"titan-black"` /
    /// `"titan-x"`), case-insensitive.
    pub fn by_name(name: &str) -> Option<DeviceConfig> {
        match name.to_ascii_lowercase().as_str() {
            "titan-black" | "titan_black" => Some(DeviceConfig::titan_black()),
            "titan-x" | "titan_x" => Some(DeviceConfig::titan_x()),
            _ => None,
        }
    }

    /// The same device under a different display name. Note the name is
    /// part of the `Debug` rendering and therefore of the simulation
    /// cache key, so renamed copies do not share cache entries — fleets
    /// that want shared warmup should keep identical configs identical.
    pub fn with_name(mut self, name: &str) -> DeviceConfig {
        self.name = name.to_string();
        self
    }

    /// `k` copies of this device for a homogeneous fleet. The configs are
    /// identical (names included) so every device shares the same plans
    /// and simulation-cache entries; per-device identity in reports comes
    /// from the device *index*, not the name.
    pub fn homogeneous_fleet(&self, k: usize) -> Vec<DeviceConfig> {
        vec![self.clone(); k]
    }

    /// Aggregate shared-memory bandwidth in bytes/s under a bank mode:
    /// `SMs x banks x bank_width x clock`.
    pub fn smem_bw(&self, mode: BankMode) -> f64 {
        let width = if mode == BankMode::EightByte && !self.supports_8byte_banks {
            BankMode::FourByte.bytes()
        } else {
            mode.bytes()
        };
        self.sms as f64 * self.smem_banks as f64 * width as f64 * self.clock_hz
    }

    /// Total FP32 lanes on the device.
    pub fn total_cores(&self) -> u32 {
        self.sms * self.cores_per_sm
    }

    /// Memory sector (transaction) size in bytes. 32 B on Kepler/Maxwell;
    /// constant here because both evaluated devices share it.
    pub const SECTOR_BYTES: u64 = 32;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_black_matches_paper_quotes() {
        let d = DeviceConfig::titan_black();
        // §III.B: "6144MB device memory, 5121 GFLOPS computing capability
        // and 235GB/s effective memory bandwidth".
        assert_eq!(d.device_mem, 6144 * 1024 * 1024);
        assert_eq!(d.peak_flops, 5121e9);
        assert_eq!(d.dram_bw, 235.0e9);
        assert_eq!(d.total_cores(), 2880);
        assert!(d.supports_8byte_banks);
    }

    #[test]
    fn titan_x_is_maxwell() {
        let d = DeviceConfig::titan_x();
        assert_eq!(d.total_cores(), 3072);
        assert!(!d.supports_8byte_banks);
        assert!(d.l2_size > DeviceConfig::titan_black().l2_size);
    }

    #[test]
    fn smem_bw_depends_on_mode_only_when_supported() {
        let kepler = DeviceConfig::titan_black();
        assert_eq!(kepler.smem_bw(BankMode::EightByte), 2.0 * kepler.smem_bw(BankMode::FourByte));
        let maxwell = DeviceConfig::titan_x();
        assert_eq!(maxwell.smem_bw(BankMode::EightByte), maxwell.smem_bw(BankMode::FourByte));
    }

    #[test]
    fn bank_mode_bytes() {
        assert_eq!(BankMode::FourByte.bytes(), 4);
        assert_eq!(BankMode::EightByte.bytes(), 8);
    }

    #[test]
    fn catalog_lookup_and_fleet_helpers() {
        assert_eq!(DeviceConfig::catalog().len(), 2);
        assert_eq!(
            DeviceConfig::by_name("Titan-Black").map(|d| d.name),
            Some(DeviceConfig::titan_black().name)
        );
        assert_eq!(
            DeviceConfig::by_name("titan_x").map(|d| d.sms),
            Some(DeviceConfig::titan_x().sms)
        );
        assert!(DeviceConfig::by_name("k80").is_none());
        let renamed = DeviceConfig::titan_black().with_name("dev0");
        assert_eq!(renamed.name, "dev0");
        assert_eq!(renamed.sms, 15);
        let fleet = DeviceConfig::titan_black().homogeneous_fleet(4);
        assert_eq!(fleet.len(), 4);
        assert!(fleet.iter().all(|d| d.name == fleet[0].name));
    }
}
