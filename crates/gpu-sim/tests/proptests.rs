//! Property-based tests for the simulator's building blocks.

use memcnn_gpusim::cache::Cache;
use memcnn_gpusim::coalesce;
use memcnn_gpusim::device::{BankMode, DeviceConfig};
use memcnn_gpusim::occupancy::occupancy;
use memcnn_gpusim::{banks, LaunchConfig};
use proptest::prelude::*;

fn lane_addrs() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..100_000, 1..=32)
}

proptest! {
    /// A warp access touches at least one sector and no more than
    /// lanes x spanned sectors; transaction count is invariant under
    /// address-order permutation.
    #[test]
    fn coalescer_bounds_and_order_invariance(addrs in lane_addrs(), width in 1u64..=16) {
        let n = coalesce::transaction_count(&addrs, width);
        prop_assert!(n >= 1);
        let max_per_lane = (width as usize).div_ceil(32) + 1;
        prop_assert!(n <= addrs.len() * max_per_lane);
        let mut rev = addrs.clone();
        rev.reverse();
        prop_assert_eq!(coalesce::transaction_count(&rev, width), n);
    }

    /// Coalescing efficiency never exceeds 1 for aligned pow2 widths and
    /// duplicates never increase the transaction count.
    #[test]
    fn coalescer_efficiency_bounds(addrs in lane_addrs()) {
        let eff = coalesce::efficiency(&addrs, 4);
        prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-9);
        let mut dup = addrs.clone();
        dup.extend(addrs.iter().copied().take(32 - addrs.len().min(31)));
        let a = coalesce::transaction_count(&addrs, 4);
        let b = coalesce::transaction_count(&dup[..addrs.len()], 4);
        prop_assert_eq!(a, b);
    }

    /// Bank conflict passes are within [ceil(width/bank), 32 x phases] and
    /// broadcast (all equal) is always minimal.
    #[test]
    fn bank_passes_bounds(addrs in lane_addrs(), wide in prop::bool::ANY) {
        let width = if wide { 8 } else { 4 };
        for mode in [BankMode::FourByte, BankMode::EightByte] {
            let p = banks::passes(&addrs, width, mode, 32);
            prop_assert!(p >= 1, "passes {p} below min");
            prop_assert!(p <= 64, "passes {p} above max");
        }
        let broadcast = vec![addrs[0]; addrs.len()];
        let pb = banks::passes(&broadcast, 4, BankMode::FourByte, 32);
        prop_assert!(pb <= banks::passes(&addrs, 4, BankMode::FourByte, 32).max(1));
    }

    /// Cache sanity: hits + misses == accesses; a repeated single-sector
    /// stream has exactly one miss; hit rate is within [0, 1].
    #[test]
    fn cache_accounting(sectors in proptest::collection::vec(0u64..512, 1..200)) {
        let mut c = Cache::new(16 * 1024, 8, 32);
        for &s in &sectors {
            c.access(s);
        }
        prop_assert_eq!(c.accesses(), sectors.len() as u64);
        prop_assert_eq!(c.hits() + c.misses(), c.accesses());
        let rate = c.hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
        // Unique sectors lower-bound the misses for an LRU cache larger
        // than the stream's footprint.
        let unique: std::collections::HashSet<_> = sectors.iter().collect();
        if unique.len() <= c.capacity_sectors() {
            prop_assert_eq!(c.misses(), unique.len() as u64);
        } else {
            prop_assert!(c.misses() >= unique.len() as u64);
        }
    }

    /// Occupancy is monotone: more registers or shared memory per block
    /// never increases resident blocks.
    #[test]
    fn occupancy_monotonicity(
        threads_pow in 5u32..=10,
        regs in 8u32..64,
        smem in 0u32..24_000,
    ) {
        let d = DeviceConfig::titan_black();
        let mk = |regs, smem| LaunchConfig {
            grid_blocks: 10_000,
            threads_per_block: 1 << threads_pow,
            regs_per_thread: regs,
            smem_per_block: smem,
            bank_mode: BankMode::FourByte,
        };
        let blocks = |l| occupancy(&d, &l).map(|o| o.blocks_per_sm).unwrap_or(0);
        let base = match occupancy(&d, &mk(regs, smem)) {
            Ok(o) => o,
            Err(_) => return Ok(()), // base config itself unlaunchable
        };
        prop_assert!(blocks(mk(regs * 2, smem)) <= base.blocks_per_sm);
        prop_assert!(blocks(mk(regs, smem + 8_192)) <= base.blocks_per_sm);
        // Residency never exceeds architectural caps.
        prop_assert!(base.warps_per_sm * d.warp_size <= d.max_threads_per_sm);
        prop_assert!(base.blocks_per_sm <= d.max_blocks_per_sm);
    }
}
