//! Deterministic, simulated-time metrics for the serving simulators.
//!
//! The serving layers (`memcnn-serve` single-device and fleet loops) are
//! discrete-event simulations whose reports are bit-identical regardless
//! of thread count. This crate gives them an observability layer with the
//! same guarantee: [`Recorder`] collects gauge samples keyed to the
//! *simulated* event clock — queue depth, in-flight images, utilization,
//! plan-cache hit rate, fault-ladder state — plus log-bucketed mergeable
//! latency [`Histogram`]s with sliding-window p50/p95/p99.
//!
//! Two export paths from the finished [`MetricsTimeline`]:
//!
//! * [`MetricsTimeline::emit_trace_counters`] renders every series as
//!   Perfetto counter tracks through `memcnn-trace`'s Chrome-trace
//!   exporter (`"C"`-phase events, one counter lane per series);
//! * [`MetricsTimeline::to_json`] produces the `metrics.json` timeline
//!   the scenario regression harness in `memcnn-bench` diffs against
//!   committed baselines.
//!
//! Determinism is the design constraint throughout: no wall clock, no
//! libm in the histogram bucketing (pure IEEE-754 bit manipulation), and
//! nothing sampled that depends on cross-thread scheduling. See
//! `DESIGN.md` §13 for the full argument.

#![warn(missing_docs)]

pub mod histogram;
pub mod timeline;

pub use histogram::{bucket_index, bucket_lower, bucket_upper, bucket_value, Histogram};
pub use histogram::{SUB_BITS, SUB_BUCKETS};
pub use timeline::{
    GaugeId, KeyId, MetricsTimeline, Recorder, Sample, Series, SlidingWindow, DEFAULT_WINDOW,
};
