//! Log-bucketed, mergeable histograms for latency samples.
//!
//! # Bucketing scheme
//!
//! A bucket index is derived from the IEEE-754 bit pattern of the sample:
//! the 11 exponent bits select an octave and the top [`SUB_BITS`] mantissa
//! bits split that octave into [`SUB_BUCKETS`] linear sub-buckets, so
//!
//! ```text
//! index(v) = exponent(v) * SUB_BUCKETS + top_mantissa_bits(v)
//! ```
//!
//! Every bucket spans at most `1/SUB_BUCKETS` (6.25%) of its lower bound,
//! which is what makes bucket-resolution percentiles honest: a recorded
//! p99 always lands in the bucket of the exact sorted-vector p99 or an
//! adjacent one. Because the index is pure bit manipulation — no `log2`,
//! no libm — two machines bucket identically, bit for bit.
//!
//! Index 0 is reserved for non-positive (and NaN) samples; the serving
//! simulator uses a 0.0 latency as its "request was shed" sentinel, so
//! those sort below every real latency instead of poisoning the scale.
//!
//! # Merging
//!
//! A histogram is a sparse map of bucket counts, so merging is per-bucket
//! addition: associative, commutative, and independent of chunking. The
//! scenario orchestrator leans on this to fold per-process histograms
//! into suite-wide ones without ever holding raw samples.

use serde::Serialize;
use std::collections::BTreeMap;

/// Mantissa bits used for sub-bucketing (16 sub-buckets per octave).
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: u32 = 1 << SUB_BITS;

/// Bucket index of a sample. Deterministic bit manipulation only; index
/// 0 collects non-positive and NaN samples.
pub fn bucket_index(v: f64) -> u32 {
    if v.is_nan() || v <= 0.0 {
        return 0; // non-positive and NaN alike
    }
    let bits = v.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as u32;
    let sub = ((bits >> (52 - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as u32;
    // Reserve index 0 even for subnormals (exponent 0, sub 0).
    (exponent * SUB_BUCKETS + sub).max(1)
}

/// Inclusive lower bound of a bucket (0.0 for the reserved bucket 0).
pub fn bucket_lower(index: u32) -> f64 {
    if index == 0 {
        return 0.0;
    }
    let exponent = (index / SUB_BUCKETS) as u64;
    let sub = (index % SUB_BUCKETS) as u64;
    f64::from_bits((exponent << 52) | (sub << (52 - SUB_BITS)))
}

/// Exclusive upper bound of a bucket (the next bucket's lower bound).
pub fn bucket_upper(index: u32) -> f64 {
    bucket_lower(index + 1)
}

/// Representative value reported for a bucket: the midpoint of its
/// bounds (0.0 for the reserved bucket).
pub fn bucket_value(index: u32) -> f64 {
    if index == 0 {
        return 0.0;
    }
    let upper = bucket_upper(index);
    let lower = bucket_lower(index);
    if upper.is_finite() {
        0.5 * (lower + upper)
    } else {
        lower
    }
}

/// A sparse log-bucketed histogram. See the module docs for the
/// bucketing scheme and merge semantics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u32, u64>,
    count: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(bucket_index(v)).or_insert(0) += n;
        self.count += n;
    }

    /// Remove one previously recorded sample (sliding windows decrement
    /// the bucket the expiring sample landed in). A no-op if the bucket
    /// is already empty, so unbalanced calls cannot underflow.
    pub fn unrecord(&mut self, v: f64) {
        let idx = bucket_index(v);
        if let Some(c) = self.counts.get_mut(&idx) {
            *c -= 1;
            self.count -= 1;
            if *c == 0 {
                self.counts.remove(&idx);
            }
        }
    }

    /// Add `n` samples directly into bucket `index` — the inverse of the
    /// `Serialize` impl's `[index, count]` pairs, for rebuilding a
    /// histogram from its JSON form.
    pub fn record_bucket(&mut self, index: u32, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(index).or_insert(0) += n;
        self.count += n;
    }

    /// Fold another histogram into this one (per-bucket addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (&idx, &n) in &other.counts {
            *self.counts.entry(idx).or_insert(0) += n;
        }
        self.count += other.count;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Occupied `(bucket index, count)` pairs, ascending by index.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&i, &c)| (i, c))
    }

    /// Bucket index holding the nearest-rank `p`-th percentile (`p` in
    /// [0, 100]); `None` when empty. Matches [`crate::percentile`]'s
    /// nearest-rank rule: rank `ceil(p/100 * count)` clamped to [1, count].
    pub fn percentile_index(&self, p: f64) -> Option<u32> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (&idx, &n) in &self.counts {
            seen += n;
            if seen >= rank {
                return Some(idx);
            }
        }
        None // unreachable: counts sum to self.count
    }

    /// Nearest-rank percentile at bucket resolution: the representative
    /// value ([`bucket_value`]) of the bucket holding the rank. 0.0 when
    /// empty.
    pub fn percentile(&self, p: f64) -> f64 {
        self.percentile_index(p).map_or(0.0, bucket_value)
    }
}

impl Serialize for Histogram {
    fn serialize_json(&self, out: &mut String) {
        // {"count":N,"buckets":[[index,count],...]} — pairs serialize as
        // JSON arrays, sparse and ascending, so equal histograms have
        // equal serializations.
        out.push_str("{\"count\":");
        self.count.serialize_json(out);
        out.push_str(",\"buckets\":[");
        for (i, (idx, n)) in self.buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            idx.serialize_json(out);
            out.push(',');
            n.serialize_json(out);
            out.push(']');
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_positive_reals_with_tight_relative_width() {
        for v in [1e-7, 1e-4, 3.7e-3, 0.5, 1.0, 1.5, 8.0, 1e6] {
            let idx = bucket_index(v);
            assert!(bucket_lower(idx) <= v && v < bucket_upper(idx), "bucket must contain {v}");
            let rel = (bucket_upper(idx) - bucket_lower(idx)) / bucket_lower(idx);
            assert!(rel <= 1.0 / SUB_BUCKETS as f64 + 1e-12, "bucket too wide at {v}: {rel}");
        }
        // Bucket boundaries are exact powers of two times (1 + k/16).
        assert_eq!(bucket_lower(bucket_index(1.0)), 1.0);
        assert_eq!(bucket_upper(bucket_index(1.0)), 1.0625);
        // Non-positive and NaN collapse into the reserved bucket.
        for v in [0.0, -1.0, f64::NAN] {
            assert_eq!(bucket_index(v), 0);
        }
        assert_eq!(bucket_value(0), 0.0);
    }

    #[test]
    fn merge_is_commutative_and_chunking_invariant() {
        let samples: Vec<f64> = (1..200).map(|i| (i as f64) * 3.3e-4).collect();
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let (left, right) = samples.split_at(71);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        left.iter().for_each(|&s| a.record(s));
        right.iter().for_each(|&s| b.record(s));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab, whole, "chunked merge must equal whole-vector recording");
        assert_eq!(ab.count(), samples.len() as u64);
    }

    #[test]
    fn percentiles_land_within_one_bucket_of_exact() {
        let mut sorted: Vec<f64> = (1..=500).map(|i| 1e-4 * (i as f64).powf(1.3)).collect();
        sorted.sort_by(f64::total_cmp);
        let mut h = Histogram::new();
        sorted.iter().for_each(|&s| h.record(s));
        for p in [50.0, 95.0, 99.0] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            let exact = sorted[rank.clamp(1, sorted.len()) - 1];
            let got = h.percentile_index(p).unwrap();
            assert!(
                got.abs_diff(bucket_index(exact)) <= 1,
                "p{p}: bucket {got} vs exact bucket {}",
                bucket_index(exact)
            );
            // The representative value is within one bucket width too.
            let v = h.percentile(p);
            assert!(bucket_lower(bucket_index(exact) - 1) <= v);
            assert!(v <= bucket_upper(bucket_index(exact) + 1));
        }
    }

    #[test]
    fn unrecord_reverses_record_for_sliding_windows() {
        let mut h = Histogram::new();
        h.record(0.002);
        h.record(0.004);
        h.record(0.002);
        h.unrecord(0.002);
        assert_eq!(h.count(), 2);
        let mut expect = Histogram::new();
        expect.record(0.002);
        expect.record(0.004);
        assert_eq!(h, expect, "unrecord must cancel one record exactly");
        h.unrecord(0.002);
        h.unrecord(0.004);
        assert!(h.is_empty());
        // Empty serialization is canonical (removed buckets leave no keys).
        let mut s = String::new();
        h.serialize_json(&mut s);
        assert_eq!(s, "{\"count\":0,\"buckets\":[]}");
    }

    #[test]
    fn shed_sentinels_stay_in_the_reserved_bucket() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(0.003);
        assert_eq!(h.percentile_index(1.0), Some(0));
        assert_eq!(h.percentile(100.0), bucket_value(bucket_index(0.003)));
    }
}
