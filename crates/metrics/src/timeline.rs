//! Gauge timelines sampled on the simulated clock, with sliding-window
//! latency percentiles.
//!
//! A [`Recorder`] rides inside a serving event loop: the loop calls
//! [`Recorder::gauge`] at its event boundaries (batch commits, arrival
//! routing) with the *simulated* event time, [`Recorder::observe_latency`]
//! for every served request, and [`Recorder::sample_window`] to emit the
//! current sliding-window p50/p95/p99 as gauges. Everything the recorder
//! captures is a pure function of the loop's own state — no wall clock,
//! no global counters — so the finished [`MetricsTimeline`] is
//! bit-identical across `MEMCNN_THREADS`, like every other report in the
//! workspace.
//!
//! The timeline exports two ways: [`MetricsTimeline::to_json`] for the
//! machine-readable `metrics.json` per run, and
//! [`MetricsTimeline::emit_trace_counters`] to push every series into the
//! active `memcnn-trace` collection window as Perfetto counter tracks.

use crate::histogram::Histogram;
use memcnn_trace as trace;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};

/// Default sliding-window size for latency percentiles (samples).
pub const DEFAULT_WINDOW: usize = 64;

/// One gauge sample on the simulated clock.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Sample {
    /// Simulated time, seconds.
    pub t: f64,
    /// Sampled value.
    pub value: f64,
}

/// One named gauge series, samples in record order (non-decreasing `t`).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Series {
    /// Series name (dotted lowercase, e.g. `queue.depth`, `dev0.util`).
    pub name: String,
    /// The samples.
    pub samples: Vec<Sample>,
}

/// A sliding window over the last `cap` latency samples, backed by a
/// histogram so percentile queries never sort. `unrecord` on expiry keeps
/// the histogram in lockstep with the deque.
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    cap: usize,
    buf: VecDeque<f64>,
    hist: Histogram,
}

impl SlidingWindow {
    /// A window holding at most `cap` samples (`cap` ≥ 1).
    pub fn new(cap: usize) -> SlidingWindow {
        SlidingWindow { cap: cap.max(1), buf: VecDeque::new(), hist: Histogram::new() }
    }

    /// Push a sample, expiring the oldest when full.
    pub fn push(&mut self, v: f64) {
        if self.buf.len() == self.cap {
            if let Some(old) = self.buf.pop_front() {
                self.hist.unrecord(old);
            }
        }
        self.buf.push_back(v);
        self.hist.record(v);
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Bucket-resolution nearest-rank percentile over the window.
    pub fn percentile(&self, p: f64) -> f64 {
        self.hist.percentile(p)
    }
}

/// The finished timeline of one run: every gauge series plus the
/// whole-run latency histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsTimeline {
    /// Gauge series, ascending by name.
    pub series: Vec<Series>,
    /// Every served latency of the run (shed sentinels excluded by the
    /// recording loop).
    pub latency_hist: Histogram,
    /// Keyed latency histograms (per-tenant in the SLO scheduler),
    /// ascending by key. Empty unless the recording loop observed keyed
    /// latencies.
    pub keyed_hists: Vec<(String, Histogram)>,
}

// Manual impl: `keyed_hists` is omitted when empty so timelines recorded
// by loops that never key a latency (every pre-SLO run) serialize to the
// exact bytes the derived impl produced before the field existed.
impl Serialize for MetricsTimeline {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"series\":");
        self.series.serialize_json(out);
        out.push_str(",\"latency_hist\":");
        self.latency_hist.serialize_json(out);
        if !self.keyed_hists.is_empty() {
            out.push_str(",\"keyed_hists\":");
            self.keyed_hists.serialize_json(out);
        }
        out.push('}');
    }
}

impl MetricsTimeline {
    /// Look up one series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Every series name, in the timeline's (ascending) order.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.iter().map(|s| s.name.as_str())
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty() && self.latency_hist.is_empty() && self.keyed_hists.is_empty()
    }

    /// Look up one keyed latency histogram (per-tenant in SLO runs).
    pub fn keyed_hist(&self, key: &str) -> Option<&Histogram> {
        self.keyed_hists.iter().find(|(k, _)| k == key).map(|(_, h)| h)
    }

    /// The timeline as a JSON document (the `metrics.json` payload).
    /// Bit-identical runs serialize to identical strings — the scenario
    /// harness and the determinism tests compare these directly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.serialize_json(&mut out);
        out
    }

    /// Push every series into the active trace collection window as
    /// Perfetto counter-track samples on `track` (seconds become the
    /// trace's microseconds). A no-op when collection is inactive.
    pub fn emit_trace_counters(&self, track: trace::Track) {
        for s in &self.series {
            for sample in &s.samples {
                trace::record_counter(|| trace::CounterEvent {
                    name: s.name.clone(),
                    track,
                    ts_us: sample.t * 1e6,
                    value: sample.value,
                });
            }
        }
    }
}

/// A pre-registered gauge series handle: an index into the recorder's
/// slot table, resolved once by [`Recorder::gauge_id`]. Hot recording
/// loops hold these so a sample costs one `Vec::push` — no name lookup
/// and no `String` allocation per event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// A pre-registered keyed-latency-histogram handle, resolved once by
/// [`Recorder::latency_key`] (per-tenant in the SLO scheduler).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyId(usize);

/// Accumulates gauges and latencies during a run; [`Recorder::finish`]
/// produces the immutable [`MetricsTimeline`].
///
/// Series live in an index-addressed slot table; the name map is only
/// consulted when a series is first referenced (or on every call of the
/// string-keyed convenience [`Recorder::gauge`]). Registering a series
/// that never receives a sample is free: empty slots are dropped by
/// [`Recorder::finish`], so pre-registration cannot perturb the
/// serialized timeline.
#[derive(Clone, Debug)]
pub struct Recorder {
    names: BTreeMap<String, usize>,
    slots: Vec<Vec<Sample>>,
    window: SlidingWindow,
    window_ids: Option<[GaugeId; 3]>,
    hist: Histogram,
    keyed_names: BTreeMap<String, usize>,
    keyed_slots: Vec<Histogram>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new(DEFAULT_WINDOW)
    }
}

impl Recorder {
    /// A recorder whose latency window holds `window` samples.
    pub fn new(window: usize) -> Recorder {
        Recorder {
            names: BTreeMap::new(),
            slots: Vec::new(),
            window: SlidingWindow::new(window),
            window_ids: None,
            hist: Histogram::new(),
            keyed_names: BTreeMap::new(),
            keyed_slots: Vec::new(),
        }
    }

    /// Resolve (registering on first use) the series named `name`. The
    /// returned id is stable for the recorder's lifetime.
    pub fn gauge_id(&mut self, name: &str) -> GaugeId {
        if let Some(&i) = self.names.get(name) {
            return GaugeId(i);
        }
        let i = self.slots.len();
        self.slots.push(Vec::new());
        self.names.insert(name.to_string(), i);
        GaugeId(i)
    }

    /// Append one sample to a pre-registered series at simulated time
    /// `t` — the allocation-free hot path.
    pub fn gauge_at(&mut self, id: GaugeId, t: f64, value: f64) {
        self.slots[id.0].push(Sample { t, value });
    }

    /// Append one sample to the named series at simulated time `t`
    /// (resolves the name each call; hot loops should pre-register with
    /// [`Recorder::gauge_id`] and use [`Recorder::gauge_at`]).
    pub fn gauge(&mut self, name: &str, t: f64, value: f64) {
        let id = self.gauge_id(name);
        self.gauge_at(id, t, value);
    }

    /// Feed one served latency into the run histogram and the sliding
    /// window (callers exclude shed sentinels).
    pub fn observe_latency(&mut self, latency: f64) {
        self.hist.record(latency);
        self.window.push(latency);
    }

    /// Resolve (registering on first use) the keyed latency histogram
    /// for `key`.
    pub fn latency_key(&mut self, key: &str) -> KeyId {
        if let Some(&i) = self.keyed_names.get(key) {
            return KeyId(i);
        }
        let i = self.keyed_slots.len();
        self.keyed_slots.push(Histogram::new());
        self.keyed_names.insert(key.to_string(), i);
        KeyId(i)
    }

    /// Feed one served latency into a pre-registered keyed histogram —
    /// the allocation-free hot path. Does *not* touch the run histogram
    /// or the sliding window — callers pair it with
    /// [`Recorder::observe_latency`].
    pub fn observe_latency_keyed_at(&mut self, id: KeyId, latency: f64) {
        self.keyed_slots[id.0].record(latency);
    }

    /// Feed one served latency into the keyed histogram for `key`
    /// (per-tenant in SLO runs), resolving the key each call. Does *not*
    /// touch the run histogram or the sliding window — callers pair it
    /// with [`Recorder::observe_latency`].
    pub fn observe_latency_keyed(&mut self, key: &str, latency: f64) {
        let id = self.latency_key(key);
        self.observe_latency_keyed_at(id, latency);
    }

    /// Emit the window's current p50/p95/p99 as gauges at time `t`
    /// (`latency.window.p50` etc.). A no-op before the first latency.
    pub fn sample_window(&mut self, t: f64) {
        if self.window.is_empty() {
            return;
        }
        let ids = match self.window_ids {
            Some(ids) => ids,
            None => {
                let ids = [
                    self.gauge_id("latency.window.p50"),
                    self.gauge_id("latency.window.p95"),
                    self.gauge_id("latency.window.p99"),
                ];
                self.window_ids = Some(ids);
                ids
            }
        };
        for (id, p) in ids.into_iter().zip([50.0, 95.0, 99.0]) {
            let v = self.window.percentile(p);
            self.gauge_at(id, t, v);
        }
    }

    /// Freeze into the finished timeline (series ascending by name,
    /// keyed histograms ascending by key). Registered series and keys
    /// that never received a sample are dropped, so pre-registration is
    /// invisible in the output.
    pub fn finish(self) -> MetricsTimeline {
        let mut slots = self.slots;
        let mut keyed_slots = self.keyed_slots;
        MetricsTimeline {
            series: self
                .names
                .into_iter()
                .filter_map(|(name, i)| {
                    let samples = std::mem::take(&mut slots[i]);
                    (!samples.is_empty()).then_some(Series { name, samples })
                })
                .collect(),
            latency_hist: self.hist,
            keyed_hists: self
                .keyed_names
                .into_iter()
                .filter_map(|(key, i)| {
                    let hist = std::mem::take(&mut keyed_slots[i]);
                    (!hist.is_empty()).then_some((key, hist))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::bucket_index;

    #[test]
    fn recorder_builds_sorted_series_and_run_histogram() {
        let mut r = Recorder::new(4);
        r.gauge("queue.depth", 0.0, 2.0);
        r.gauge("util", 0.1, 0.5);
        r.gauge("queue.depth", 0.2, 5.0);
        for l in [0.002, 0.004, 0.003] {
            r.observe_latency(l);
        }
        r.sample_window(0.2);
        let t = r.finish();
        assert!(!t.is_empty());
        // Ascending by name; samples in record order.
        let names: Vec<&str> = t.series.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(t.series("queue.depth").unwrap().samples.len(), 2);
        assert_eq!(t.latency_hist.count(), 3);
        let p99 = t.series("latency.window.p99").unwrap();
        assert_eq!(p99.samples.len(), 1);
        assert_eq!(bucket_index(p99.samples[0].value), bucket_index(0.004));
        // JSON is valid-looking and stable across identical recordings.
        let json = t.to_json();
        assert!(json.contains("\"queue.depth\""));
        assert!(json.contains("\"latency_hist\""));
    }

    #[test]
    fn keyed_hists_serialize_only_when_observed() {
        let mut r = Recorder::new(4);
        r.observe_latency(0.002);
        let plain = r.clone().finish();
        assert!(!plain.to_json().contains("keyed_hists"), "unkeyed timelines keep the old shape");
        r.observe_latency_keyed("chat", 0.002);
        r.observe_latency_keyed("batch", 0.004);
        r.observe_latency_keyed("chat", 0.003);
        let t = r.finish();
        assert_eq!(t.keyed_hist("chat").unwrap().count(), 2);
        assert_eq!(t.keyed_hist("batch").unwrap().count(), 1);
        assert!(t.keyed_hist("nope").is_none());
        // Ascending by key, and present in the JSON.
        let keys: Vec<&str> = t.keyed_hists.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["batch", "chat"]);
        assert!(t.to_json().contains("\"keyed_hists\":[[\"batch\""));
        // The run histogram is untouched by keyed observations.
        assert_eq!(t.latency_hist.count(), 1);
    }

    #[test]
    fn id_handles_match_string_paths_and_empty_registrations_vanish() {
        // Two recorders, one using the string API and one pre-registering
        // ids, must freeze to identical timelines — including when some
        // registered series/keys never receive a sample.
        let mut by_name = Recorder::new(4);
        by_name.gauge("queue.depth", 0.0, 2.0);
        by_name.gauge("util", 0.1, 0.5);
        by_name.gauge("queue.depth", 0.2, 5.0);
        by_name.observe_latency(0.002);
        by_name.observe_latency_keyed("chat", 0.002);

        let mut by_id = Recorder::new(4);
        let unused = by_id.gauge_id("never.sampled");
        let depth = by_id.gauge_id("queue.depth");
        let util = by_id.gauge_id("util");
        assert_eq!(depth, by_id.gauge_id("queue.depth"), "ids are stable across lookups");
        assert_ne!(unused, depth);
        by_id.gauge_at(depth, 0.0, 2.0);
        by_id.gauge_at(util, 0.1, 0.5);
        by_id.gauge_at(depth, 0.2, 5.0);
        by_id.observe_latency(0.002);
        let silent = by_id.latency_key("batch"); // registered, never observed
        let chat = by_id.latency_key("chat");
        assert_eq!(chat, by_id.latency_key("chat"));
        assert_ne!(silent, chat);
        by_id.observe_latency_keyed_at(chat, 0.002);

        let a = by_name.finish();
        let b = by_id.finish();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert!(b.series("never.sampled").is_none(), "empty registrations are dropped");
        assert!(b.keyed_hist("batch").is_none());
    }

    #[test]
    fn sliding_window_expires_oldest_samples() {
        let mut w = SlidingWindow::new(3);
        for l in [0.100, 0.001, 0.001, 0.001] {
            w.push(l);
        }
        assert_eq!(w.len(), 3);
        // The 100 ms outlier expired: the window max is now 1 ms.
        assert_eq!(bucket_index(w.percentile(100.0)), bucket_index(0.001));
    }

    #[test]
    fn emit_trace_counters_lands_on_the_requested_track() {
        let mut r = Recorder::new(8);
        r.gauge("queue.depth", 0.0, 1.0);
        r.gauge("queue.depth", 0.5, 3.0);
        let t = r.finish();
        trace::start();
        t.emit_trace_counters(trace::Track::Serve);
        let tr = trace::finish().unwrap();
        assert_eq!(tr.counters.len(), 2);
        assert_eq!(tr.counters[0].track, trace::Track::Serve);
        assert_eq!(tr.counters[0].ts_us, 0.0);
        assert_eq!(tr.counters[1].ts_us, 0.5e6);
        // Inactive collection: a clean no-op.
        t.emit_trace_counters(trace::Track::Serve);
    }
}
