//! Property-based tests for the FFT substrate.

use memcnn_fft::{dft_naive, fft, fft_correlate2d, ifft, Complex32, Fft2dPlan};
use proptest::prelude::*;

fn signal(n: usize) -> impl Strategy<Value = Vec<Complex32>> {
    proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), n..=n)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex32::new(re, im)).collect())
}

proptest! {
    /// FFT agrees with the O(n^2) DFT.
    #[test]
    fn fft_matches_dft(log_n in 0usize..8, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let data: Vec<Complex32> = (0..n).map(|_| Complex32::new(next() * 5.0, next() * 5.0)).collect();
        let expect = dft_naive(&data);
        let mut got = data;
        fft(&mut got);
        for (a, b) in got.iter().zip(&expect) {
            prop_assert!((*a - *b).abs() < 1e-2 * n as f32 + 1e-3);
        }
    }

    /// ifft(fft(x)) == x.
    #[test]
    fn roundtrip(data in signal(64)) {
        let mut d = data.clone();
        fft(&mut d);
        ifft(&mut d);
        for (a, b) in d.iter().zip(&data) {
            prop_assert!((*a - *b).abs() < 1e-3);
        }
    }

    /// Parseval: energy preserved up to the 1/n convention.
    #[test]
    fn parseval(data in signal(128)) {
        let time: f64 = data.iter().map(|z| z.norm_sqr() as f64).sum();
        let mut freq = data;
        fft(&mut freq);
        let f: f64 = freq.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / 128.0;
        prop_assert!((time - f).abs() <= 1e-3 * time.max(1.0));
    }

    /// Time shift multiplies the spectrum by a unit-magnitude phase:
    /// magnitudes are shift-invariant.
    #[test]
    fn shift_preserves_magnitudes(data in signal(32), shift in 0usize..32) {
        let mut orig = data.clone();
        let mut shifted: Vec<Complex32> = (0..32).map(|i| data[(i + shift) % 32]).collect();
        fft(&mut orig);
        fft(&mut shifted);
        for (a, b) in orig.iter().zip(&shifted) {
            prop_assert!((a.abs() - b.abs()).abs() < 1e-2);
        }
    }

    /// 2D roundtrip at arbitrary power-of-two dims.
    #[test]
    fn roundtrip_2d(log_r in 0usize..5, log_c in 0usize..5, seed in any::<u32>()) {
        let (r, c) = (1usize << log_r, 1usize << log_c);
        let data: Vec<Complex32> = (0..r * c)
            .map(|i| Complex32::real((((i as u32).wrapping_mul(seed | 1) >> 16) % 17) as f32 - 8.0))
            .collect();
        let plan = Fft2dPlan::new(r, c);
        let mut d = data.clone();
        plan.forward(&mut d);
        plan.inverse(&mut d);
        for (a, b) in d.iter().zip(&data) {
            prop_assert!((*a - *b).abs() < 1e-3);
        }
    }

    /// The convolution theorem path equals direct correlation for random
    /// shapes and contents.
    #[test]
    fn fft_correlation_matches_direct(
        ih in 3usize..14,
        iw in 3usize..14,
        kh in 1usize..4,
        kw in 1usize..4,
        seed in any::<u32>(),
    ) {
        prop_assume!(kh <= ih && kw <= iw);
        let val = |i: usize| ((((i as u32).wrapping_mul(seed | 1)) >> 20) % 9) as f32 - 4.0;
        let input: Vec<f32> = (0..ih * iw).map(val).collect();
        let kernel: Vec<f32> = (0..kh * kw).map(|i| val(i + 1000)).collect();
        let direct = memcnn_fft::direct_correlate2d(&input, ih, iw, &kernel, kh, kw);
        let freq = fft_correlate2d(&input, ih, iw, &kernel, kh, kw);
        for (a, b) in direct.iter().zip(&freq) {
            prop_assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }
}
