//! 2D and batched FFTs (row-column decomposition).

use crate::{Complex32, FftPlan};
use rayon::prelude::*;

/// A 2D FFT plan for fixed power-of-two `rows x cols`.
#[derive(Clone, Debug)]
pub struct Fft2dPlan {
    rows: usize,
    cols: usize,
    row_plan: FftPlan,
    col_plan: FftPlan,
}

impl Fft2dPlan {
    /// Build a plan; both dimensions must be powers of two.
    pub fn new(rows: usize, cols: usize) -> Fft2dPlan {
        Fft2dPlan { rows, cols, row_plan: FftPlan::new(cols), col_plan: FftPlan::new(rows) }
    }

    /// `(rows, cols)` of the transform.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// In-place forward 2D FFT of a row-major `rows x cols` buffer.
    pub fn forward(&self, data: &mut [Complex32]) {
        self.transform(data, false);
    }

    /// In-place inverse 2D FFT (normalized by `1/(rows*cols)`).
    pub fn inverse(&self, data: &mut [Complex32]) {
        self.transform(data, true);
    }

    fn transform(&self, data: &mut [Complex32], inverse: bool) {
        assert_eq!(data.len(), self.rows * self.cols, "buffer must be rows*cols");
        // Rows.
        for row in data.chunks_mut(self.cols) {
            if inverse {
                self.row_plan.inverse(row);
            } else {
                self.row_plan.forward(row);
            }
        }
        // Columns via transpose-free strided gather.
        let mut col = vec![Complex32::ZERO; self.rows];
        for c in 0..self.cols {
            for r in 0..self.rows {
                col[r] = data[r * self.cols + c];
            }
            if inverse {
                self.col_plan.inverse(&mut col);
            } else {
                self.col_plan.forward(&mut col);
            }
            for r in 0..self.rows {
                data[r * self.cols + c] = col[r];
            }
        }
    }
}

/// Forward-transform a batch of independent `rows x cols` images in
/// parallel (the batched FFT step of FFT convolution: every image and
/// every filter transforms independently).
pub fn batched_forward(plan: &Fft2dPlan, batch: &mut [Complex32]) {
    let per = plan.rows * plan.cols;
    assert_eq!(batch.len() % per, 0, "batch must be a whole number of images");
    batch.par_chunks_mut(per).for_each(|img| plan.forward(img));
}

/// Inverse-transform a batch of independent images in parallel.
pub fn batched_inverse(plan: &Fft2dPlan, batch: &mut [Complex32]) {
    let per = plan.rows * plan.cols;
    assert_eq!(batch.len() % per, 0, "batch must be a whole number of images");
    batch.par_chunks_mut(per).for_each(|img| plan.inverse(img));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Vec<Complex32> {
        (0..rows * cols).map(|i| Complex32::real(f(i / cols, i % cols))).collect()
    }

    #[test]
    fn impulse_is_flat_in_2d() {
        let mut d = image(4, 8, |r, c| if r == 0 && c == 0 { 1.0 } else { 0.0 });
        Fft2dPlan::new(4, 8).forward(&mut d);
        for v in &d {
            assert!((*v - Complex32::ONE).abs() < 1e-5);
        }
    }

    #[test]
    fn dc_component_is_sum() {
        let mut d = image(8, 8, |r, c| (r + c) as f32);
        let sum: f32 = d.iter().map(|z| z.re).sum();
        Fft2dPlan::new(8, 8).forward(&mut d);
        assert!((d[0].re - sum).abs() < 1e-3);
    }

    #[test]
    fn roundtrip_2d() {
        let orig = image(16, 8, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let mut d = orig.clone();
        let plan = Fft2dPlan::new(16, 8);
        plan.forward(&mut d);
        plan.inverse(&mut d);
        for (a, b) in d.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }

    #[test]
    fn separability_matches_manual_row_col() {
        // 2D FFT = 1D over rows then 1D over cols.
        let orig = image(4, 4, |r, c| (r * 4 + c) as f32);
        let mut auto = orig.clone();
        Fft2dPlan::new(4, 4).forward(&mut auto);

        let mut manual = orig;
        let plan = FftPlan::new(4);
        for row in manual.chunks_mut(4) {
            plan.forward(row);
        }
        for c in 0..4 {
            let mut col: Vec<Complex32> = (0..4).map(|r| manual[r * 4 + c]).collect();
            plan.forward(&mut col);
            for r in 0..4 {
                manual[r * 4 + c] = col[r];
            }
        }
        for (a, b) in auto.iter().zip(&manual) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }

    #[test]
    fn batched_equals_individual() {
        let plan = Fft2dPlan::new(8, 8);
        let img0 = image(8, 8, |r, c| (r * c) as f32);
        let img1 = image(8, 8, |r, c| (r + 3 * c) as f32);
        let mut batch: Vec<Complex32> = img0.iter().chain(&img1).copied().collect();
        batched_forward(&plan, &mut batch);
        let (mut a, mut b) = (img0, img1);
        plan.forward(&mut a);
        plan.forward(&mut b);
        for (x, y) in batch.iter().zip(a.iter().chain(&b)) {
            assert!((*x - *y).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "whole number of images")]
    fn ragged_batch_panics() {
        let plan = Fft2dPlan::new(4, 4);
        let mut batch = vec![Complex32::ZERO; 17];
        batched_forward(&plan, &mut batch);
    }
}
