//! Iterative radix-2 decimation-in-time FFT.

use crate::Complex32;

/// Round up to the next power of two (minimum 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// A reusable FFT plan for a fixed power-of-two size: precomputed twiddle
/// factors and bit-reversal table, shared across the many batched
/// transforms an FFT convolution performs.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// Forward twiddles, laid out per stage: stage s (len = 2^(s+1)) uses
    /// `twiddles[2^s - 1 ..][..2^s]`.
    twiddles: Vec<Complex32>,
    /// Bit-reversal permutation.
    rev: Vec<u32>,
}

impl FftPlan {
    /// Build a plan for size `n` (must be a power of two).
    pub fn new(n: usize) -> FftPlan {
        assert!(n.is_power_of_two(), "FFT size must be a power of two, got {n}");
        assert!(n <= u32::MAX as usize, "FFT size too large");
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = -2.0 * std::f32::consts::PI / len as f32;
            for k in 0..half {
                twiddles.push(Complex32::cis(step * k as f32));
            }
            len *= 2;
        }
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| if bits == 0 { 0 } else { i.reverse_bits() >> (32 - bits) })
            .collect();
        FftPlan { n, twiddles, rev }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is the trivial size-1 transform.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// In-place forward FFT.
    pub fn forward(&self, data: &mut [Complex32]) {
        self.transform(data, false);
    }

    /// In-place inverse FFT (includes the `1/n` normalization).
    pub fn inverse(&self, data: &mut [Complex32]) {
        self.transform(data, true);
        let k = 1.0 / self.n as f32;
        for v in data.iter_mut() {
            *v = v.scale(k);
        }
    }

    fn transform(&self, data: &mut [Complex32], inverse: bool) {
        assert_eq!(data.len(), self.n, "buffer length must match plan size");
        let n = self.n;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies.
        let mut len = 2;
        let mut tw_base = 0;
        while len <= n {
            let half = len / 2;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[tw_base + k];
                    if inverse {
                        w = w.conj();
                    }
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            tw_base += half;
            len *= 2;
        }
    }
}

/// One-shot forward FFT (builds a plan; prefer [`FftPlan`] in loops).
pub fn fft(data: &mut [Complex32]) {
    FftPlan::new(data.len()).forward(data);
}

/// One-shot inverse FFT with `1/n` normalization.
pub fn ifft(data: &mut [Complex32]) {
    FftPlan::new(data.len()).inverse(data);
}

/// Direct O(n^2) DFT, the oracle the FFT is tested against.
pub fn dft_naive(data: &[Complex32]) -> Vec<Complex32> {
    let n = data.len();
    let step = -2.0 * std::f64::consts::PI / n as f64;
    (0..n)
        .map(|k| {
            let mut acc_re = 0f64;
            let mut acc_im = 0f64;
            for (j, &x) in data.iter().enumerate() {
                let theta = step * (k * j % n) as f64;
                let (s, c) = theta.sin_cos();
                acc_re += x.re as f64 * c - x.im as f64 * s;
                acc_im += x.re as f64 * s + x.im as f64 * c;
            }
            Complex32::new(acc_re as f32, acc_im as f32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex32], b: &[Complex32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut d = vec![Complex32::ZERO; 8];
        d[0] = Complex32::ONE;
        fft(&mut d);
        assert_close(&d, &[Complex32::ONE; 8], 1e-6);
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut d = vec![Complex32::ONE; 8];
        fft(&mut d);
        assert!((d[0] - Complex32::real(8.0)).abs() < 1e-5);
        for v in &d[1..] {
            assert!(v.abs() < 1e-5);
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let mut d: Vec<Complex32> = (0..n)
                .map(|i| {
                    Complex32::new(((i * 7 + 3) % 11) as f32 - 5.0, ((i * 5 + 1) % 7) as f32 - 3.0)
                })
                .collect();
            let expect = dft_naive(&d);
            fft(&mut d);
            assert_close(&d, &expect, n as f32 * 1e-4);
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let orig: Vec<Complex32> =
            (0..128).map(|i| Complex32::new((i as f32).sin(), (i as f32 * 0.7).cos())).collect();
        let mut d = orig.clone();
        fft(&mut d);
        ifft(&mut d);
        assert_close(&d, &orig, 1e-4);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let data: Vec<Complex32> =
            (0..64).map(|i| Complex32::new((i as f32 * 0.3).sin(), 0.0)).collect();
        let time_energy: f32 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = data.clone();
        fft(&mut freq);
        let freq_energy: f32 = freq.iter().map(|z| z.norm_sqr()).sum::<f32>() / 64.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    fn plan_is_reusable() {
        let plan = FftPlan::new(32);
        for seed in 0..4 {
            let mut d: Vec<Complex32> =
                (0..32).map(|i| Complex32::real(((i + seed) % 5) as f32)).collect();
            let expect = dft_naive(&d);
            plan.forward(&mut d);
            assert_close(&d, &expect, 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_size_panics() {
        FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_length_panics() {
        let plan = FftPlan::new(8);
        let mut d = vec![Complex32::ZERO; 4];
        plan.forward(&mut d);
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(64), 64);
        assert_eq!(next_pow2(65), 128);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex32> = (0..16).map(|i| Complex32::real(i as f32)).collect();
        let b: Vec<Complex32> = (0..16).map(|i| Complex32::new(0.0, (i % 3) as f32)).collect();
        let sum: Vec<Complex32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let (mut fa, mut fb, mut fsum) = (a, b, sum);
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fsum);
        let combined: Vec<Complex32> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&fsum, &combined, 1e-3);
    }
}
