//! Convolution via the convolution theorem.
//!
//! These helpers give `memcnn-kernels`' FFT convolution its math: pad both
//! operands into a common power-of-two frame, transform, multiply
//! pointwise, inverse-transform, and read out the valid region. The framing
//! cost (zero-padding small filters up to image size) is exactly the memory
//! overhead the paper discusses for cuDNN's FFT mode (§IV.A).

use crate::{Complex32, Fft2dPlan};

/// Valid-mode direct 2D cross-correlation (the CNN "convolution"), the
/// oracle FFT convolution is tested against.
///
/// `input` is `ih x iw` row-major, `kernel` is `kh x kw`; output is
/// `(ih-kh+1) x (iw-kw+1)`.
pub fn direct_correlate2d(
    input: &[f32],
    ih: usize,
    iw: usize,
    kernel: &[f32],
    kh: usize,
    kw: usize,
) -> Vec<f32> {
    assert_eq!(input.len(), ih * iw);
    assert_eq!(kernel.len(), kh * kw);
    assert!(kh <= ih && kw <= iw, "kernel larger than input");
    let oh = ih - kh + 1;
    let ow = iw - kw + 1;
    let mut out = vec![0f32; oh * ow];
    for oy in 0..oh {
        for ox in 0..ow {
            let mut acc = 0f32;
            for ky in 0..kh {
                for kx in 0..kw {
                    acc += input[(oy + ky) * iw + (ox + kx)] * kernel[ky * kw + kx];
                }
            }
            out[oy * ow + ox] = acc;
        }
    }
    out
}

/// Pad a real `h x w` image into a complex `fh x fw` frame (zero-filled).
pub fn pad_into_frame(src: &[f32], h: usize, w: usize, fh: usize, fw: usize) -> Vec<Complex32> {
    assert_eq!(src.len(), h * w);
    assert!(fh >= h && fw >= w, "frame smaller than image");
    let mut out = vec![Complex32::ZERO; fh * fw];
    for r in 0..h {
        for c in 0..w {
            out[r * fw + c] = Complex32::real(src[r * w + c]);
        }
    }
    out
}

/// Valid-mode cross-correlation computed in the frequency domain.
///
/// Cross-correlation is convolution with a conjugated spectrum:
/// `corr = IFFT(FFT(input) * conj(FFT(kernel)))`, indexed at the kernel
/// origin. Frames are the next power of two >= `ih, iw` (circular wrap
/// never reaches the valid region because the frame covers `ih + kh - 1`
/// only when... we guarantee it by framing to `>= ih` and `>= iw`, and
/// valid outputs only read offsets `0..ih-kh`).
pub fn fft_correlate2d(
    input: &[f32],
    ih: usize,
    iw: usize,
    kernel: &[f32],
    kh: usize,
    kw: usize,
) -> Vec<f32> {
    assert!(kh <= ih && kw <= iw, "kernel larger than input");
    let fh = crate::next_pow2(ih);
    let fw = crate::next_pow2(iw);
    let plan = Fft2dPlan::new(fh, fw);

    let mut fin = pad_into_frame(input, ih, iw, fh, fw);
    let mut fker = pad_into_frame(kernel, kh, kw, fh, fw);
    plan.forward(&mut fin);
    plan.forward(&mut fker);
    for (a, b) in fin.iter_mut().zip(&fker) {
        *a *= b.conj();
    }
    plan.inverse(&mut fin);

    let oh = ih - kh + 1;
    let ow = iw - kw + 1;
    let mut out = vec![0f32; oh * ow];
    for r in 0..oh {
        for c in 0..ow {
            out[r * ow + c] = fin[r * fw + c].re;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect()
    }

    #[test]
    fn direct_identity_kernel() {
        let input = ramp(25);
        let out = direct_correlate2d(&input, 5, 5, &[1.0], 1, 1);
        assert_eq!(out, input);
    }

    #[test]
    fn direct_box_sum() {
        let input = vec![1.0; 16];
        let out = direct_correlate2d(&input, 4, 4, &[1.0; 4], 2, 2);
        assert_eq!(out, vec![4.0; 9]);
    }

    #[test]
    fn fft_matches_direct_small() {
        let input = ramp(36);
        let kernel = ramp(9);
        let a = direct_correlate2d(&input, 6, 6, &kernel, 3, 3);
        let b = fft_correlate2d(&input, 6, 6, &kernel, 3, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn fft_matches_direct_rectangular() {
        let input = ramp(7 * 12);
        let kernel = ramp(5 * 3);
        let a = direct_correlate2d(&input, 7, 12, &kernel, 5, 3);
        let b = fft_correlate2d(&input, 7, 12, &kernel, 5, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn fft_matches_direct_larger() {
        let input = ramp(24 * 24);
        let kernel = ramp(25);
        let a = direct_correlate2d(&input, 24, 24, &kernel, 5, 5);
        let b = fft_correlate2d(&input, 24, 24, &kernel, 5, 5);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 2e-3);
        }
    }

    #[test]
    fn pad_into_frame_zero_fills() {
        let f = pad_into_frame(&[1.0, 2.0, 3.0, 4.0], 2, 2, 4, 4);
        assert_eq!(f.len(), 16);
        assert_eq!(f[0], Complex32::real(1.0));
        assert_eq!(f[1], Complex32::real(2.0));
        assert_eq!(f[4], Complex32::real(3.0));
        assert_eq!(f[5], Complex32::real(4.0));
        assert!(f[2..4].iter().all(|&z| z == Complex32::ZERO));
        assert!(f[6..].iter().all(|&z| z == Complex32::ZERO));
    }

    #[test]
    #[should_panic(expected = "kernel larger than input")]
    fn oversized_kernel_panics() {
        direct_correlate2d(&[1.0; 4], 2, 2, &[1.0; 9], 3, 3);
    }
}
