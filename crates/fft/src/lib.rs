//! # memcnn-fft — from-scratch FFT substrate
//!
//! The SC'16 paper's evaluation compares cuDNN's FFT-based convolution
//! modes against matrix-multiplication and direct convolution (Fig 5).
//! That comparison needs a real FFT; this crate provides one built from
//! scratch (no external numeric dependencies):
//!
//! - [`Complex32`]: single-precision complex arithmetic.
//! - [`FftPlan`] / [`fft`] / [`ifft`]: iterative radix-2 DIT with
//!   precomputed twiddles and bit-reversal, tested against a naive DFT.
//! - [`Fft2dPlan`] and rayon-parallel [`batched_forward`] /
//!   [`batched_inverse`]: row-column 2D transforms for batches of feature
//!   maps.
//! - [`conv`]: direct and frequency-domain valid-mode cross-correlation
//!   (the convolution theorem path FFT convolution uses).

#![warn(missing_docs)]

mod complex;
pub mod conv;
mod fft1d;
mod fft2d;

pub use complex::Complex32;
pub use conv::{direct_correlate2d, fft_correlate2d};
pub use fft1d::{dft_naive, fft, ifft, next_pow2, FftPlan};
pub use fft2d::{batched_forward, batched_inverse, Fft2dPlan};
