//! Minimal single-precision complex arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A single-precision complex number.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// Zero.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex32 = Complex32 { re: 0.0, im: 1.0 };

    /// Construct from parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Complex32 {
        Complex32 { re, im }
    }

    /// A real number.
    #[inline]
    pub const fn real(re: f32) -> Complex32 {
        Complex32 { re, im: 0.0 }
    }

    /// `e^(i theta)`.
    #[inline]
    pub fn cis(theta: f32) -> Complex32 {
        Complex32 { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex32 {
        Complex32 { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f32) -> Complex32 {
        Complex32 { re: self.re * k, im: self.im * k }
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex32) {
        *self = *self * rhs;
    }
}

impl Div for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, rhs: Complex32) -> Complex32 {
        let d = rhs.norm_sqr();
        Complex32 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Complex32 {
        Complex32 { re: -self.re, im: -self.im }
    }
}

impl fmt::Display for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex32, b: Complex32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex32::new(3.0, -4.0);
        assert_eq!(z + Complex32::ZERO, z);
        assert_eq!(z * Complex32::ONE, z);
        assert_eq!(z - z, Complex32::ZERO);
        assert!(close(z / z, Complex32::ONE));
        assert_eq!(-z, Complex32::new(-3.0, 4.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex32::I * Complex32::I, Complex32::real(-1.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex32::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex32::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!(close(z * z.conj(), Complex32::real(25.0)));
    }

    #[test]
    fn cis_is_on_unit_circle() {
        use std::f32::consts::PI;
        assert!(close(Complex32::cis(0.0), Complex32::ONE));
        assert!(close(Complex32::cis(PI / 2.0), Complex32::I));
        assert!(close(Complex32::cis(PI), Complex32::real(-1.0)));
    }

    #[test]
    fn multiplication_is_rotation() {
        use std::f32::consts::PI;
        let z = Complex32::cis(PI / 6.0) * Complex32::cis(PI / 3.0);
        assert!(close(z, Complex32::cis(PI / 2.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex32::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex32::new(1.0, -2.0).to_string(), "1-2i");
    }
}
