//! Layer shape descriptions shared by every kernel in this crate.

use memcnn_tensor::Shape;
use std::fmt;

/// Shape of a convolutional layer (the columns of the paper's Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size (`Ni`).
    pub n: usize,
    /// Input feature maps (`Ci`).
    pub ci: usize,
    /// Input height/width (square images, `H/W` in Table 1).
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output feature maps (`Co`).
    pub co: usize,
    /// Filter height (`Fh`).
    pub fh: usize,
    /// Filter width (`Fw`).
    pub fw: usize,
    /// Stride (`S`).
    pub stride: usize,
    /// Zero padding on each border.
    pub pad: usize,
}

impl ConvShape {
    /// Square-image constructor matching Table 1 columns
    /// `(Ni, Co, H/W, Fw/Fh, Ci, S)`.
    pub const fn table1(n: usize, co: usize, hw: usize, f: usize, ci: usize, s: usize) -> Self {
        ConvShape { n, ci, h: hw, w: hw, co, fh: f, fw: f, stride: s, pad: 0 }
    }

    /// Output height.
    pub const fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.fh) / self.stride + 1
    }

    /// Output width.
    pub const fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.fw) / self.stride + 1
    }

    /// Input tensor shape.
    pub const fn input_shape(&self) -> Shape {
        Shape::new(self.n, self.ci, self.h, self.w)
    }

    /// Output tensor shape.
    pub const fn output_shape(&self) -> Shape {
        Shape::new(self.n, self.co, self.out_h(), self.out_w())
    }

    /// Filter tensor shape (`N`=Co, `C`=Ci, `H`=Fh, `W`=Fw).
    pub const fn filter_shape(&self) -> Shape {
        Shape::new(self.co, self.ci, self.fh, self.fw)
    }

    /// FMA FLOPs of the convolution (2 per multiply-accumulate).
    pub const fn flops(&self) -> u64 {
        2 * (self.n * self.co * self.out_h() * self.out_w() * self.ci * self.fh * self.fw) as u64
    }

    /// Validate basic consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 || self.ci == 0 || self.co == 0 {
            return Err(format!("degenerate conv shape {self:?}"));
        }
        if self.fh > self.h + 2 * self.pad || self.fw > self.w + 2 * self.pad {
            return Err(format!("filter exceeds padded input in {self:?}"));
        }
        if self.stride == 0 {
            return Err("stride must be positive".into());
        }
        Ok(())
    }
}

impl fmt::Display for ConvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conv N={} Ci={} {}x{} -> Co={} F={}x{} s={} p={}",
            self.n, self.ci, self.h, self.w, self.co, self.fh, self.fw, self.stride, self.pad
        )
    }
}

/// Shape of a pooling layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PoolShape {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Pooling window (square, `X = Y` in Eq. 2).
    pub window: usize,
    /// Stride between successive windows.
    pub stride: usize,
    /// Ceil-mode output sizing (cuda-convnet/Caffe convention): a final,
    /// clamped window covers the remainder. Floor mode drops it.
    pub ceil_mode: bool,
}

impl PoolShape {
    /// Square constructor matching Table 1 columns `(Ni, H/W, Fw, Ci, S)`,
    /// floor-mode.
    pub const fn table1(n: usize, hw: usize, window: usize, c: usize, s: usize) -> Self {
        PoolShape { n, c, h: hw, w: hw, window, stride: s, ceil_mode: false }
    }

    /// Builder-style ceil-mode toggle.
    pub const fn with_ceil_mode(mut self, ceil: bool) -> Self {
        self.ceil_mode = ceil;
        self
    }

    const fn out_dim(&self, extent: usize) -> usize {
        let span = extent - self.window;
        if self.ceil_mode {
            // ceil(span / stride) + 1; the last window clamps to the edge.
            span.div_ceil(self.stride) + 1
        } else {
            span / self.stride + 1
        }
    }

    /// Output height.
    pub const fn out_h(&self) -> usize {
        self.out_dim(self.h)
    }

    /// Output width.
    pub const fn out_w(&self) -> usize {
        self.out_dim(self.w)
    }

    /// Whether windows overlap (`window > stride`), the case §V.A's
    /// register-reuse optimization targets.
    pub const fn overlapped(&self) -> bool {
        self.window > self.stride
    }

    /// Input tensor shape.
    pub const fn input_shape(&self) -> Shape {
        Shape::new(self.n, self.c, self.h, self.w)
    }

    /// Output tensor shape.
    pub const fn output_shape(&self) -> Shape {
        Shape::new(self.n, self.c, self.out_h(), self.out_w())
    }

    /// Validate basic consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 || self.stride == 0 {
            return Err("window and stride must be positive".into());
        }
        if self.window > self.h || self.window > self.w {
            return Err(format!("window exceeds input in {self:?}"));
        }
        Ok(())
    }
}

impl fmt::Display for PoolShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pool N={} C={} {}x{} win={} s={}{}",
            self.n,
            self.c,
            self.h,
            self.w,
            self.window,
            self.stride,
            if self.overlapped() { " (overlapped)" } else { "" }
        )
    }
}

/// Shape of a softmax (classifier) layer: a `batch x categories` matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SoftmaxShape {
    /// Batch size (images).
    pub batch: usize,
    /// Number of categories.
    pub categories: usize,
}

impl SoftmaxShape {
    /// Construct from batch and category counts.
    pub const fn new(batch: usize, categories: usize) -> Self {
        SoftmaxShape { batch, categories }
    }

    /// Elements of the input/output matrix.
    pub const fn len(&self) -> usize {
        self.batch * self.categories
    }

    /// Whether the matrix is empty.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for SoftmaxShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "softmax {}/{}", self.batch, self.categories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_dims() {
        // LeNet CONV1: 28x28, F=5, s=1 -> 24x24.
        let cv1 = ConvShape::table1(128, 16, 28, 5, 1, 1);
        assert_eq!(cv1.out_h(), 24);
        // ZFNet CONV5: 224, F=3, s=2 -> 111.
        let cv5 = ConvShape::table1(64, 96, 224, 3, 3, 2);
        assert_eq!(cv5.out_h(), 111);
        // Padding: 13 + 2*1 - 3 + 1 = 13 (same-conv).
        let same = ConvShape { pad: 1, ..ConvShape::table1(64, 384, 13, 3, 256, 1) };
        assert_eq!(same.out_h(), 13);
    }

    #[test]
    fn conv_flops_formula() {
        let s = ConvShape::table1(1, 1, 3, 3, 1, 1);
        // 1 output element, 9 MACs = 18 FLOPs.
        assert_eq!(s.flops(), 18);
    }

    #[test]
    fn conv_validation() {
        assert!(ConvShape::table1(128, 16, 28, 5, 1, 1).validate().is_ok());
        assert!(ConvShape::table1(0, 16, 28, 5, 1, 1).validate().is_err());
        assert!(ConvShape::table1(128, 16, 4, 5, 1, 1).validate().is_err());
        let zero_stride = ConvShape { stride: 0, ..ConvShape::table1(1, 1, 8, 3, 1, 1) };
        assert!(zero_stride.validate().is_err());
    }

    #[test]
    fn pool_output_dims_and_overlap() {
        // PL1 (LeNet): 28x28, win 2, s 2 -> 14x14, non-overlapped.
        let pl1 = PoolShape::table1(128, 28, 2, 16, 2);
        assert_eq!(pl1.out_h(), 14);
        assert!(!pl1.overlapped());
        // PL5 (AlexNet): 55x55, win 3, s 2 -> 27x27, overlapped.
        let pl5 = PoolShape::table1(128, 55, 3, 96, 2);
        assert_eq!(pl5.out_h(), 27);
        assert!(pl5.overlapped());
    }

    #[test]
    fn pool_validation() {
        assert!(PoolShape::table1(128, 28, 2, 16, 2).validate().is_ok());
        assert!(PoolShape::table1(128, 2, 3, 16, 2).validate().is_err());
        let zero = PoolShape { stride: 0, ..PoolShape::table1(1, 8, 2, 1, 2) };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn shapes_display() {
        let s = ConvShape::table1(128, 16, 28, 5, 1, 1).to_string();
        assert!(s.contains("N=128"));
        assert!(PoolShape::table1(128, 55, 3, 96, 2).to_string().contains("overlapped"));
        assert_eq!(SoftmaxShape::new(128, 10).to_string(), "softmax 128/10");
    }
}
